// Deterministic open-loop request arrival processes for the serving tier
// (DESIGN.md "Serving tier").
//
// Three arrival shapes cover the traffic regimes a micro-cloud serving
// deployment sees: a stationary Poisson stream, a bursty stream (flash
// traffic multiplying the base rate in periodic windows), and a diurnal
// stream (sinusoidal day/night wave). Non-stationary streams are sampled by
// Lewis-Shedler thinning against the peak rate, so every arrival sequence
// is a pure function of (config, seed) — the serving determinism contract
// inherits directly from common/rng.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"

namespace dlion::serve {

enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,  ///< stationary rate_rps
  kBursty = 1,   ///< rate_rps, times burst_factor in periodic windows
  kDiurnal = 2,  ///< sinusoidal wave between min_frac*rate_rps and rate_rps
};

const char* arrival_kind_name(ArrivalKind kind);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_rps = 300.0;  ///< base (peak for diurnal) request rate

  /// Bursty: every burst_period_s, the rate is rate_rps * burst_factor for
  /// burst_duration_s, then back to rate_rps.
  double burst_factor = 4.0;
  double burst_period_s = 20.0;
  double burst_duration_s = 3.0;

  /// Diurnal: rate(t) = rate_rps * (min_frac + (1 - min_frac) *
  /// 0.5 * (1 - cos(2*pi*t / period_s))) — a "day" of length period_s
  /// starting at the night minimum.
  double diurnal_period_s = 120.0;
  double diurnal_min_frac = 0.1;
};

/// Generator of the arrival time sequence. next() returns strictly
/// increasing simulated times.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& config, std::uint64_t seed);

  /// Instantaneous rate at time t (requests per second).
  double rate_at(common::SimTime t) const;
  /// Upper bound of rate_at over all t (the thinning envelope).
  double peak_rate() const;

  /// Time of the next arrival after the previous one (starts at t=0).
  common::SimTime next();

 private:
  ArrivalConfig config_;
  common::Rng rng_;
  common::SimTime t_ = 0.0;
};

}  // namespace dlion::serve

#include "serve/replica.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "obs/track_names.h"

namespace dlion::serve {

Replica::Replica(sim::Engine& engine, ReplicaConfig config,
                 nn::BuiltModel built, const data::Dataset* dataset,
                 ReplicaMetrics* metrics, obs::Observability* obs)
    : engine_(&engine),
      config_(std::move(config)),
      built_(std::move(built)),
      dataset_(dataset),
      session_(built_.model, built_.profile.channels, built_.profile.height,
               built_.profile.width),
      metrics_(metrics),
      obs_(obs) {
  DLION_ASSERT(dataset_ != nullptr && dataset_->size() > 0,
              "replica needs a serving dataset");
  DLION_ASSERT(config_.batching.max_batch > 0, "max_batch must be positive");
  if (metrics_->batch_size_counts.size() < config_.batching.max_batch + 1) {
    metrics_->batch_size_counts.resize(config_.batching.max_batch + 1, 0);
  }
  if (obs::on(obs_)) {
    obs_track_ =
        obs_->tracer().track("serving", obs::replica_track(config_.id));
  }
}

double Replica::load_score(common::SimTime t) const {
  const double capacity =
      std::max(1e-9, config_.units.at(t) * config_.flops_per_unit);
  return static_cast<double>(outstanding() + 1) / capacity;
}

double Replica::inference_seconds(std::size_t batch,
                                  common::SimTime t) const {
  const double capacity =
      std::max(1e-9, config_.units.at(t) * config_.flops_per_unit);
  const double b = static_cast<double>(batch);
  const double eff = b / (b + config_.eff_half_batch);
  return config_.batch_overhead_s +
         b * config_.flops_per_sample / (capacity * eff);
}

void Replica::enqueue(const Request& req) {
  queue_.push_back(req);
  maybe_launch();
}

void Replica::maybe_launch() {
  if (busy_ || queue_.empty()) return;
  const common::SimTime now = engine_->now();
  const double oldest_age = now - queue_.front().arrival;
  if (queue_.size() >= config_.batching.max_batch ||
      oldest_age >= config_.batching.batch_deadline_s) {
    if (deadline_timer_ != kNoTimer) {
      engine_->cancel(deadline_timer_);
      deadline_timer_ = kNoTimer;
    }
    launch(now);
    return;
  }
  // Arm the batch-formation deadline for the current oldest request, so a
  // quiet queue never waits longer than batch_deadline_s. The callback
  // launches directly rather than re-testing `age >= deadline`: recomputing
  // the age at fire time can round to just under the deadline, which would
  // re-arm a zero-delay timer forever. A live timer implies the replica is
  // still idle with that request queued (launching cancels it), but both
  // guards stay for robustness.
  if (deadline_timer_ == kNoTimer) {
    const common::SimTime fire_at = std::max(
        now, queue_.front().arrival + config_.batching.batch_deadline_s);
    deadline_timer_ = engine_->at(fire_at, [this] {
      deadline_timer_ = kNoTimer;
      if (!busy_ && !queue_.empty()) launch(engine_->now());
    });
  }
}

void Replica::launch(common::SimTime now) {
  // Admission SLO: shed requests that already waited past queue_timeout_s.
  while (!queue_.empty() &&
         now - queue_.front().arrival > config_.batching.queue_timeout_s) {
    queue_.pop_front();
    ++deadline_drops_;
  }
  if (queue_.empty()) return;

  const std::size_t b =
      std::min(queue_.size(), config_.batching.max_batch);
  batch_.clear();
  for (std::size_t i = 0; i < b; ++i) {
    batch_.push_back(queue_.front());
    queue_.pop_front();
  }
  in_flight_ = b;
  busy_ = true;
  ++batches_;
  metrics_->batch_size_counts[b] += 1;

  // Staleness of the weights this batch is served with, measured against
  // the last adopted refresh (initial weights = v0 adopted at t=0).
  const double staleness = now - adopt_time_;
  metrics_->staleness.observe(staleness);
  if (staleness > config_.max_staleness_s) ++stale_batches_;

  // Run the actual forward pass now (launch-time weight snapshot); results
  // are surfaced at completion time. Input rows are staged into a pooled
  // tensor, so a warm replica allocates nothing here.
  const std::size_t elems = dataset_->sample_elems();
  tensor::Tensor input =
      pool_.acquire(tensor::Shape{b, static_cast<std::size_t>(elems)});
  const float* src = dataset_->images.data();
  for (std::size_t i = 0; i < b; ++i) {
    std::memcpy(input.data() + i * elems,
                src + static_cast<std::size_t>(batch_[i].sample) * elems,
                elems * sizeof(float));
  }
  const float* logits = session_.run(input.data(), b);
  const std::size_t classes = dataset_->num_classes();
  for (std::size_t i = 0; i < b; ++i) {
    const float* row = logits + i * classes;
    std::size_t arg = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[arg]) arg = c;
    }
    if (static_cast<std::int32_t>(arg) ==
        dataset_->labels[batch_[i].sample]) {
      ++correct_;
    }
  }
  pool_.release(std::move(input));

  const double service_s = inference_seconds(b, now);
  engine_->after(service_s,
                 [this, now, b] { on_batch_done(now, b); });
}

void Replica::on_batch_done(common::SimTime started, std::size_t batch_size) {
  const common::SimTime now = engine_->now();
  for (const Request& req : batch_) {
    metrics_->latency.observe(now - req.arrival);
  }
  served_ += batch_size;
  if (obs::on(obs_)) {
    obs_->tracer().complete(
        obs_track_, "infer_batch", started, now,
        {{"batch", static_cast<double>(batch_size)},
         {"version", static_cast<double>(version_)}});
  }
  batch_.clear();
  in_flight_ = 0;
  busy_ = false;
  maybe_launch();
}

void Replica::on_publish(const comm::ModelPublish& msg,
                         common::SimTime now) {
  if (msg.version < version_) {
    ++stale_publishes_ignored_;
    return;
  }
  auto& vars = built_.model.variables();
  const std::size_t nvars = msg.weights.parts.size();
  if (msg.total_vars != vars.size() ||
      static_cast<std::size_t>(msg.first_var) + nvars > vars.size()) {
    ++stale_publishes_ignored_;  // geometry mismatch: never apply
    return;
  }
  for (std::size_t j = 0; j < nvars; ++j) {
    const auto src = msg.weights.parts[j].span();
    auto dst = vars[msg.first_var + j]->value().span();
    if (src.size() != dst.size()) {
      ++stale_publishes_ignored_;
      return;
    }
    // In-place span copy: variable storage (and the inference session's
    // compiled plan) stays valid.
    std::memcpy(dst.data(), src.data(), src.size() * sizeof(float));
  }
  if (static_cast<std::size_t>(msg.first_var) + nvars == vars.size() &&
      msg.version > version_) {
    // Last chunk of a newer version: the refresh is complete.
    version_ = msg.version;
    version_iteration_ = msg.iteration;
    adopt_time_ = now;
    ++refreshes_adopted_;
    if (obs::on(obs_)) {
      obs_->tracer().instant(
          obs_track_, "adopt_weights", now,
          {{"version", static_cast<double>(msg.version)},
           {"iteration", static_cast<double>(msg.iteration)}});
    }
  }
}

}  // namespace dlion::serve

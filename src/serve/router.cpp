#include "serve/router.h"

#include <algorithm>

#include "common/check.h"

namespace dlion::serve {

std::vector<std::size_t> ReplicaRouter::place(
    const std::vector<sim::ComputeSpec>& machines, std::size_t replicas) {
  DLION_ASSERT(!machines.empty(), "placement needs at least one machine");
  std::vector<std::size_t> order(machines.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&machines](std::size_t a, std::size_t b) {
                     return machines[a].units.at(0.0) >
                            machines[b].units.at(0.0);
                   });
  std::vector<std::size_t> placement(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    placement[r] = order[r % order.size()];
  }
  return placement;
}

ReplicaRouter::ReplicaRouter(std::vector<Replica*> replicas)
    : replicas_(std::move(replicas)) {}

Replica* ReplicaRouter::route(common::SimTime t) {
  Replica* best = nullptr;
  double best_score = 0.0;
  for (Replica* r : replicas_) {
    if (r->queue_full()) continue;
    const double score = r->load_score(t);
    // Strict < keeps the first (lowest-id) replica on ties.
    if (best == nullptr || score < best_score) {
      best = r;
      best_score = score;
    }
  }
  return best;
}

}  // namespace dlion::serve

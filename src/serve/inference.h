// Inference session: the allocation-free forward pass a serving replica
// runs per batch (DESIGN.md "Serving tier").
//
// compile() inspects the replica's model once. Pure MLP stacks (an optional
// Flatten followed by Dense layers, e.g. cipher-lite) take the fast path:
// the session drives tensor::gemm plus the fused maskless bias+ReLU
// epilogue directly, ping-ponging activations between two grow-only scratch
// buffers (common/scratch.h), so a warm replica's request path performs
// zero heap allocations. Any other architecture falls back to
// Model::forward — correct, but allocating. Both paths produce bit-
// identical logits to Model::forward (same kernels, same order), which
// tests/serve asserts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/scratch.h"
#include "nn/model.h"

namespace dlion::serve {

class InferenceSession {
 public:
  /// Compiles the forward plan for `model` over samples of geometry
  /// (channels, height, width). The model must outlive the session; weight
  /// refreshes that write variable values in place (span copy) do not
  /// invalidate the plan.
  InferenceSession(nn::Model& model, std::size_t channels,
                   std::size_t height, std::size_t width);

  /// Forward `rows` flattened samples (row-major, in_features() floats
  /// each). Returns the logits matrix (rows x classes), valid until the
  /// next run() call.
  const float* run(const float* input, std::size_t rows);

  bool fast_path() const { return fast_; }
  std::size_t in_features() const { return in_features_; }

 private:
  struct DenseStep {
    nn::Variable* weight = nullptr;  ///< (in, out)
    nn::Variable* bias = nullptr;    ///< (out)
    std::size_t in = 0;
    std::size_t out = 0;
    bool relu = false;
  };

  nn::Model* model_;
  bool fast_ = false;
  std::size_t channels_, height_, width_;
  std::size_t in_features_ = 0;
  std::vector<DenseStep> steps_;
  common::ScratchBuffer ping_;
  common::ScratchBuffer pong_;
  tensor::Tensor fallback_out_;  ///< keeps generic-path logits alive
};

}  // namespace dlion::serve

#include "serve/serving.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dlion::serve {

ServingTier::ServingTier(sim::Engine& engine, comm::Fabric& fabric,
                         const ServingSpec& spec,
                         const std::string& model_name,
                         const std::vector<sim::ComputeSpec>& machines,
                         const data::Dataset* dataset, std::uint64_t seed,
                         std::size_t first_slot,
                         PublishSourceFn publish_source,
                         obs::Observability* obs)
    : engine_(&engine),
      fabric_(&fabric),
      spec_(spec),
      dataset_(dataset),
      publish_source_(std::move(publish_source)),
      arrival_(spec.arrival, common::SplitMix64(seed ^ 0x5e71ceULL).next()),
      obs_(obs) {
  DLION_ASSERT(spec_.replicas > 0, "serving needs at least one replica");
  DLION_ASSERT(dataset_ != nullptr && dataset_->size() > 0,
              "serving needs a non-empty dataset");
  DLION_ASSERT(first_slot + spec_.replicas <= fabric_->size(),
              "fabric too small for serving slots");

  const std::vector<std::size_t> placement =
      ReplicaRouter::place(machines, spec_.replicas);
  for (std::size_t r = 0; r < spec_.replicas; ++r) {
    // Every replica starts from the workers' common initialization (same
    // seed), so pre-refresh serving matches a worker at iteration 0.
    common::Rng model_rng(seed);
    nn::BuiltModel built = nn::make_model(model_name, model_rng);
    ReplicaConfig config;
    config.id = r;
    config.slot = first_slot + r;
    config.machine = placement[r];
    config.units = machines[placement[r]].units;
    config.flops_per_unit = machines[placement[r]].flops_per_unit;
    config.flops_per_sample =
        built.profile.nominal_flops_per_sample * spec_.inference_flops_frac;
    config.batch_overhead_s = spec_.batch_overhead_s;
    config.eff_half_batch = spec_.eff_half_batch;
    config.batching = spec_.batching;
    config.max_staleness_s = spec_.max_staleness_s;
    replicas_.push_back(std::make_unique<Replica>(
        engine, std::move(config), std::move(built), dataset_, &metrics_,
        obs));
    Replica* rep = replicas_.back().get();
    fabric_->attach(rep->slot(),
                    [this, rep](std::size_t /*from*/, comm::MessagePtr msg) {
                      if (const auto* pub =
                              std::get_if<comm::ModelPublish>(msg.get())) {
                        rep->on_publish(*pub, engine_->now());
                      }
                    });
  }
  std::vector<Replica*> raw;
  raw.reserve(replicas_.size());
  for (auto& r : replicas_) raw.push_back(r.get());
  router_ = std::make_unique<ReplicaRouter>(std::move(raw));

  if (obs::on(obs_)) {
    obs_track_ = obs_->tracer().track("serving", "tier");
  }
}

void ServingTier::schedule_next_arrival(double duration_s) {
  const common::SimTime t = arrival_.next();
  if (t >= duration_s) return;
  engine_->at(t, [this, duration_s] { on_arrival(duration_s); });
}

void ServingTier::on_arrival(double duration_s) {
  const common::SimTime now = engine_->now();
  ++arrived_;
  Request req;
  req.id = next_request_id_++;
  req.arrival = now;
  req.sample = static_cast<std::uint32_t>(req.id % dataset_->size());
  Replica* rep = router_->route(now);
  if (rep == nullptr) {
    ++rejected_;
  } else {
    ++admitted_;
    rep->enqueue(req);
  }
  schedule_next_arrival(duration_s);
}

void ServingTier::publish() {
  DLION_ASSERT(publish_source_ != nullptr,
              "publish cadence needs a snapshot source");
  std::optional<PublishSource> source = publish_source_();
  if (!source.has_value()) return;
  ++publish_version_;
  const std::size_t total = source->weights.values.size();
  const std::size_t chunk = std::max<std::size_t>(1, spec_.publish_chunk_vars);
  // Stage the snapshot once; every replica x chunk message below shares
  // views over these parts (incref per message, no weight bytes copied).
  std::size_t total_bytes = 0;
  for (const tensor::Tensor& t : source->weights.values) {
    total_bytes += t.size() * sizeof(float);
  }
  comm::PayloadWriter writer(
      arena_, std::max(total_bytes, comm::PayloadArena::kMinBlockBytes));
  std::vector<comm::Payload<float>> parts;
  parts.reserve(total);
  for (const tensor::Tensor& t : source->weights.values) {
    parts.push_back(writer.copy(std::span<const float>(t.data(), t.size())));
  }
  for (const auto& rep : replicas_) {
    for (std::size_t first = 0; first < total; first += chunk) {
      const std::size_t n = std::min(chunk, total - first);
      comm::ModelPublish msg;
      msg.from = static_cast<std::uint32_t>(source->slot);
      msg.version = publish_version_;
      msg.iteration = source->iteration;
      msg.first_var = static_cast<std::uint32_t>(first);
      msg.total_vars = static_cast<std::uint32_t>(total);
      msg.weights.parts.assign(parts.begin() + first, parts.begin() + first + n);
      fabric_->send(source->slot, rep->slot(), std::move(msg));
    }
  }
  if (obs::on(obs_)) {
    obs_->tracer().instant(
        obs_track_, "publish", engine_->now(),
        {{"version", static_cast<double>(publish_version_)},
         {"iteration", static_cast<double>(source->iteration)}});
  }
}

void ServingTier::start(double duration_s) {
  schedule_next_arrival(duration_s);
  if (spec_.publish_period_s > 0.0 && publish_source_ != nullptr) {
    // Publish cadence: k * period for k = 1, 2, ... within the run.
    for (double t = spec_.publish_period_s; t < duration_s;
         t += spec_.publish_period_s) {
      engine_->at(t, [this] { publish(); });
    }
  }
}

void ServingTier::finalize(double duration_s) {
  DLION_ASSERT(!finalized_, "finalize called twice");
  finalized_ = true;

  ServingStats& s = stats_;
  s.duration_s = duration_s;
  s.requests_arrived = arrived_;
  s.requests_admitted = admitted_;
  s.requests_rejected = rejected_;
  s.refreshes_published = publish_version_;
  s.batch_size_counts = metrics_.batch_size_counts;

  std::uint64_t correct = 0;
  for (const auto& rep : replicas_) {
    s.requests_served += rep->served();
    s.deadline_drops += rep->deadline_drops();
    s.unserved_at_shutdown += rep->outstanding();
    s.batches += rep->batches();
    s.refreshes_adopted += rep->refreshes_adopted();
    s.stale_publishes_ignored += rep->stale_publishes_ignored();
    s.stale_batches += rep->stale_batches();
    s.pool_hits += rep->pool().hits();
    s.pool_misses += rep->pool().misses();
    s.per_replica_served.push_back(rep->served());
    s.replica_machines.push_back(rep->machine());
    correct += rep->correct();
  }
  // Requests stranded in queues or in-flight batches at shutdown were
  // admitted but never served; fold them into the drop count so
  // served == admitted - drops holds exactly.
  s.deadline_drops += s.unserved_at_shutdown;

  const obs::Histogram& lat = metrics_.latency;
  if (lat.count() > 0) {
    s.latency_p50_s = lat.quantile(0.50);
    s.latency_p99_s = lat.quantile(0.99);
    s.latency_mean_s = lat.mean();
    s.latency_max_s = lat.observed_max();
  }
  const obs::Histogram& stale = metrics_.staleness;
  if (stale.count() > 0) {
    s.staleness_p50_s = stale.quantile(0.50);
    s.staleness_mean_s = stale.mean();
    s.staleness_max_s = stale.observed_max();
  }
  s.requests_per_s =
      duration_s > 0.0 ? static_cast<double>(s.requests_served) / duration_s
                       : 0.0;
  double bsum = 0.0;
  for (std::size_t b = 0; b < s.batch_size_counts.size(); ++b) {
    bsum += static_cast<double>(b) * static_cast<double>(s.batch_size_counts[b]);
  }
  s.batch_size_mean =
      s.batches > 0 ? bsum / static_cast<double>(s.batches) : 0.0;
  s.served_accuracy =
      s.requests_served > 0
          ? static_cast<double>(correct) / static_cast<double>(s.requests_served)
          : 0.0;

  // Mirror the headline numbers into the metrics registry (counters are
  // deterministic totals; recording is obs-gated and purely additive).
  if (obs::on(obs_)) {
    auto& m = obs_->metrics();
    m.counter("serve.requests_arrived").inc(static_cast<double>(s.requests_arrived));
    m.counter("serve.requests_admitted").inc(static_cast<double>(s.requests_admitted));
    m.counter("serve.requests_rejected").inc(static_cast<double>(s.requests_rejected));
    m.counter("serve.requests_served").inc(static_cast<double>(s.requests_served));
    m.counter("serve.deadline_drops").inc(static_cast<double>(s.deadline_drops));
    m.counter("serve.batches").inc(static_cast<double>(s.batches));
    m.counter("serve.refreshes_published").inc(static_cast<double>(s.refreshes_published));
    m.counter("serve.refreshes_adopted").inc(static_cast<double>(s.refreshes_adopted));
    m.counter("serve.stale_batches").inc(static_cast<double>(s.stale_batches));
    m.gauge("serve.latency_p99_s").set(s.latency_p99_s);
    m.gauge("serve.requests_per_s").set(s.requests_per_s);
  }
}

}  // namespace dlion::serve

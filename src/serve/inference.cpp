#include "serve/inference.h"

#include <cstring>
#include <string>

#include "common/check.h"
#include "nn/dense.h"
#include "tensor/ops.h"

namespace dlion::serve {

InferenceSession::InferenceSession(nn::Model& model, std::size_t channels,
                                   std::size_t height, std::size_t width)
    : model_(&model),
      channels_(channels),
      height_(height),
      width_(width),
      in_features_(channels * height * width) {
  // Plan: [Flatten]? (Dense | DenseReLU)+ — anything else => generic path.
  fast_ = model.num_layers() > 0;
  std::size_t i = 0;
  if (fast_ && std::string(model.layer(0).kind()) == "Flatten") i = 1;
  if (i >= model.num_layers()) fast_ = false;
  for (; fast_ && i < model.num_layers(); ++i) {
    auto* dense = dynamic_cast<nn::Dense*>(&model.layer(i));
    if (dense == nullptr) {
      fast_ = false;
      break;
    }
    auto vars = dense->variables();
    DLION_ASSERT(vars.size() == 2, "Dense exposes weight and bias");
    steps_.push_back({vars[0], vars[1], dense->in_features(),
                      dense->out_features(), dense->fused_relu()});
  }
  if (fast_ && steps_.front().in != in_features_) fast_ = false;
  if (!fast_) steps_.clear();
}

const float* InferenceSession::run(const float* input, std::size_t rows) {
  DLION_ASSERT(rows > 0, "empty inference batch");
  if (!fast_) {
    // Generic path: stage the batch into a rank-4 tensor and run the
    // model's own forward. Allocates per call — only non-MLP models land
    // here.
    tensor::Tensor in(tensor::Shape{rows, channels_, height_, width_});
    std::memcpy(in.data(), input, rows * in_features_ * sizeof(float));
    fallback_out_ = model_->forward(in, /*train=*/false);
    return fallback_out_.data();
  }
  const float* cur = input;
  bool use_ping = true;
  for (const auto& step : steps_) {
    float* out = use_ping ? ping_.ensure(rows * step.out)
                          : pong_.ensure(rows * step.out);
    tensor::gemm(false, false, rows, step.out, step.in, 1.0f, cur,
                 step.weight->value().data(), 0.0f, out);
    const float* __restrict bp = step.bias->value().data();
    if (step.relu) {
      tensor::add_bias_rows_relu(out, rows, step.out, bp);
    } else {
      // Same arithmetic/order as tensor::add_bias_rows, on raw pointers.
      for (std::size_t r = 0; r < rows; ++r) {
        float* __restrict row = out + r * step.out;
        for (std::size_t c = 0; c < step.out; ++c) row[c] += bp[c];
      }
    }
    cur = out;
    use_ping = !use_ping;
  }
  return cur;
}

}  // namespace dlion::serve

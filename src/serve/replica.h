// A serving replica: one model copy pinned to a micro-cloud machine,
// serving dynamically-formed request batches on the simulated clock
// (DESIGN.md "Serving tier").
//
// Batching policy: a batch launches when the replica is idle and either
// max_batch requests are waiting or the oldest request has waited
// batch_deadline_s (the deadline-vs-packed-GEMM-efficiency tradeoff; see
// inference_seconds). Requests that waited past queue_timeout_s are dropped
// at batch-formation time — the open-loop admission SLO. All launch
// decisions are functions of (queue state, simulated clock), never of wall
// time or iteration order, so replicas are deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "comm/message.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "obs/obs.h"
#include "serve/inference.h"
#include "sim/engine.h"
#include "sim/resource_schedule.h"
#include "tensor/pool.h"

namespace dlion::serve {

/// One inference request, addressed to a test-set sample (known label =>
/// the tier can report a serving accuracy).
struct Request {
  std::uint64_t id = 0;
  common::SimTime arrival = 0.0;
  std::uint32_t sample = 0;  ///< index into the serving (test) dataset
};

struct BatchingConfig {
  std::size_t max_batch = 32;
  /// Longest the oldest queued request waits for the batch to fill.
  double batch_deadline_s = 0.03;
  /// Admission SLO: requests waiting longer are dropped at batch formation.
  double queue_timeout_s = 0.5;
  /// Router rejects new requests when a replica's queue is this deep.
  std::size_t queue_cap = 4096;
};

struct ReplicaConfig {
  std::size_t id = 0;       ///< replica index within the tier
  std::size_t slot = 0;     ///< fabric/network slot
  std::size_t machine = 0;  ///< hosting machine (environment index)
  sim::Schedule units = sim::Schedule(1.0);  ///< machine capacity over time
  double flops_per_unit = 1.0e8;
  double flops_per_sample = 1.0e7;  ///< forward-pass FLOPs per sample
  /// Fixed batch launch cost (kernel dispatch, staging).
  double batch_overhead_s = 0.004;
  /// Packed-GEMM efficiency: eff(b) = b / (b + eff_half_batch). Batch
  /// service time = overhead + b * flops/sample / (capacity * eff(b)), so
  /// larger batches amortize the packing cost — the pull against the
  /// batch-formation deadline.
  double eff_half_batch = 4.0;
  BatchingConfig batching;
  /// Stale-weight window: batches served more than this long after the
  /// last adopted refresh count as stale (ServingStats::stale_batches).
  double max_staleness_s = 15.0;
};

/// Sinks shared by all replicas of a tier (owned by ServingTier). Plain
/// obs::Histogram instances — always recorded, independent of whether an
/// observer is attached, so serving results are identical obs-on and
/// obs-off.
struct ReplicaMetrics {
  obs::Histogram latency{obs::Histogram::default_time_bounds()};
  obs::Histogram staleness{obs::Histogram::default_time_bounds()};
  std::vector<std::uint64_t> batch_size_counts;  ///< index = batch size
};

class Replica {
 public:
  Replica(sim::Engine& engine, ReplicaConfig config, nn::BuiltModel built,
          const data::Dataset* dataset, ReplicaMetrics* metrics,
          obs::Observability* obs);

  std::size_t id() const { return config_.id; }
  std::size_t slot() const { return config_.slot; }
  std::size_t machine() const { return config_.machine; }

  bool queue_full() const {
    return queue_.size() >= config_.batching.queue_cap;
  }
  /// Outstanding work per unit of current capacity — the router's
  /// least-loaded score (deterministic; ties broken by replica id).
  double load_score(common::SimTime t) const;

  /// Accept a routed request (the tier checked queue_full()).
  void enqueue(const Request& req);

  /// Adopt a published weight chunk (see comm::ModelPublish).
  void on_publish(const comm::ModelPublish& msg, common::SimTime now);

  /// Batch service time for `batch` samples at time t.
  double inference_seconds(std::size_t batch, common::SimTime t) const;

  /// Requests still queued or in flight (unserved at shutdown).
  std::uint64_t outstanding() const {
    return static_cast<std::uint64_t>(queue_.size()) + in_flight_;
  }

  // --- counters (aggregated by ServingTier::finalize) ---
  std::uint64_t served() const { return served_; }
  std::uint64_t deadline_drops() const { return deadline_drops_; }
  std::uint64_t batches() const { return batches_; }
  std::uint64_t correct() const { return correct_; }
  std::uint64_t stale_batches() const { return stale_batches_; }
  std::uint64_t refreshes_adopted() const { return refreshes_adopted_; }
  std::uint64_t stale_publishes_ignored() const {
    return stale_publishes_ignored_;
  }
  std::uint64_t weight_version() const { return version_; }
  std::uint64_t version_iteration() const { return version_iteration_; }
  const tensor::TensorPool& pool() const { return pool_; }
  nn::Model& model() { return built_.model; }
  InferenceSession& session() { return session_; }

 private:
  /// Launch a batch or arm the deadline timer, whichever the policy asks
  /// for. No-op while a batch is in flight.
  void maybe_launch();
  void launch(common::SimTime now);
  void on_batch_done(common::SimTime started, std::size_t batch_size);

  sim::Engine* engine_;
  ReplicaConfig config_;
  nn::BuiltModel built_;
  const data::Dataset* dataset_;
  InferenceSession session_;
  tensor::TensorPool pool_;
  ReplicaMetrics* metrics_;

  std::deque<Request> queue_;
  std::vector<Request> batch_;  ///< requests of the in-flight batch
  std::uint64_t in_flight_ = 0;
  bool busy_ = false;
  /// "No timer armed" sentinel (EventId 0 is a valid engine event id).
  static constexpr sim::EventId kNoTimer = ~sim::EventId{0};
  sim::EventId deadline_timer_ = kNoTimer;

  std::uint64_t served_ = 0;
  std::uint64_t deadline_drops_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t correct_ = 0;
  std::uint64_t stale_batches_ = 0;

  // Refresh state: the highest version seen wins; chunks of older versions
  // are ignored (links may interleave publishes from different donors).
  std::uint64_t version_ = 0;
  std::uint64_t version_iteration_ = 0;
  common::SimTime adopt_time_ = 0.0;  ///< initial weights count as v0 @ t=0
  std::uint64_t refreshes_adopted_ = 0;
  std::uint64_t stale_publishes_ignored_ = 0;

  obs::Observability* obs_ = nullptr;
  obs::TrackId obs_track_ = 0;
};

}  // namespace dlion::serve

// Replica placement and request routing across heterogeneous micro-cloud
// machines (DESIGN.md "Serving tier").
//
// Placement is static and deterministic: machines are ranked by capacity
// (descending initial units, ties to the lower machine id) and replicas are
// dealt round-robin down the ranking, so the strongest machines host
// replicas first — the serving analogue of DLion's capability-aware
// weighting. Routing is least-loaded: each request goes to the replica with
// the lowest outstanding-work-per-capacity score at the decision instant,
// ties to the lowest replica id. Both rules are pure functions of simulated
// state, so routing is bit-reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "serve/replica.h"
#include "sim/compute_model.h"

namespace dlion::serve {

class ReplicaRouter {
 public:
  /// Machine index for each of `replicas` replicas, given the environment's
  /// per-machine capability schedules.
  static std::vector<std::size_t> place(
      const std::vector<sim::ComputeSpec>& machines, std::size_t replicas);

  explicit ReplicaRouter(std::vector<Replica*> replicas);

  /// The admission target for a request arriving at time t: the
  /// least-loaded replica with queue headroom, or nullptr when every queue
  /// is full (the request is rejected).
  Replica* route(common::SimTime t);

 private:
  std::vector<Replica*> replicas_;
};

}  // namespace dlion::serve

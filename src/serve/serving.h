// ServingTier: the deterministic dynamic-batching inference tier
// (DESIGN.md "Serving tier").
//
// Assembles the arrival process, the replica set with its router, and the
// online model-refresh publisher on top of an existing simulation (engine +
// fabric). Replicas occupy fabric/network slots [first_slot, first_slot +
// replicas) — extra slots beyond the training workers — and adopt
// comm::ModelPublish snapshots streamed from the freshest live worker.
//
// Determinism: arrivals derive from common/rng, batching and routing are
// pure functions of simulated state, and the tier's own histograms record
// unconditionally (obs on/off identical). Serving disabled means none of
// this is constructed, leaving legacy runs bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/fabric.h"
#include "data/dataset.h"
#include "obs/obs.h"
#include "serve/arrival.h"
#include "serve/replica.h"
#include "serve/router.h"
#include "sim/compute_model.h"
#include "sim/engine.h"

namespace dlion::serve {

struct ServingSpec {
  std::size_t replicas = 3;
  ArrivalConfig arrival;
  BatchingConfig batching;
  /// Inference FLOPs per sample as a fraction of the model profile's
  /// (forward+backward) training FLOPs.
  double inference_flops_frac = 1.0 / 3.0;
  /// Fixed batch launch cost and packed-GEMM efficiency knee (see
  /// ReplicaConfig).
  double batch_overhead_s = 0.004;
  double eff_half_batch = 4.0;
  /// Online refresh period; 0 disables publishing (replicas serve the
  /// initial weights forever).
  double publish_period_s = 10.0;
  /// Weight variables per ModelPublish chunk (bootstrap-style streaming).
  std::size_t publish_chunk_vars = 2;
  /// Stale-weight window (see ReplicaConfig::max_staleness_s).
  double max_staleness_s = 15.0;
};

/// Aggregated results, computed once by finalize(). Accounting invariant:
/// requests_served == requests_admitted - deadline_drops, where
/// deadline_drops includes the requests still queued or in flight at
/// shutdown (reported separately as unserved_at_shutdown).
struct ServingStats {
  std::uint64_t requests_arrived = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_rejected = 0;  ///< full queues at admission
  std::uint64_t requests_served = 0;
  std::uint64_t deadline_drops = 0;     ///< SLO sheds + unserved at shutdown
  std::uint64_t unserved_at_shutdown = 0;
  std::uint64_t batches = 0;

  double duration_s = 0.0;
  double requests_per_s = 0.0;  ///< served / duration

  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_mean_s = 0.0;
  double latency_max_s = 0.0;

  double batch_size_mean = 0.0;
  std::vector<std::uint64_t> batch_size_counts;  ///< index = batch size

  std::uint64_t refreshes_published = 0;
  std::uint64_t refreshes_adopted = 0;
  std::uint64_t stale_publishes_ignored = 0;
  std::uint64_t stale_batches = 0;
  double staleness_p50_s = 0.0;
  double staleness_mean_s = 0.0;
  double staleness_max_s = 0.0;

  /// Fraction of served requests whose argmax matched the sample label.
  double served_accuracy = 0.0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;

  std::vector<std::uint64_t> per_replica_served;
  std::vector<std::size_t> replica_machines;  ///< placement (replica -> machine)
};

/// Snapshot source for the refresh publisher: the cluster supplies the
/// freshest worker's fabric slot, training iteration, and weights. nullopt
/// skips the publish round (e.g. no live worker).
struct PublishSource {
  std::size_t slot = 0;
  std::uint64_t iteration = 0;
  nn::Snapshot weights;
};
using PublishSourceFn = std::function<std::optional<PublishSource>()>;

class ServingTier {
 public:
  /// Replicas are placed over `machines` (the environment's capability
  /// schedules) and attached to fabric slots [first_slot, first_slot +
  /// spec.replicas). `dataset` drives request inputs/labels and must
  /// outlive the tier. `publish_source` may be empty when
  /// publish_period_s == 0.
  ServingTier(sim::Engine& engine, comm::Fabric& fabric,
              const ServingSpec& spec, const std::string& model_name,
              const std::vector<sim::ComputeSpec>& machines,
              const data::Dataset* dataset, std::uint64_t seed,
              std::size_t first_slot, PublishSourceFn publish_source,
              obs::Observability* obs);

  /// Schedule the arrival stream and the publish cadence over
  /// [0, duration_s). Call once, before the engine runs.
  void start(double duration_s);

  /// Fold shutdown state into the counters and compute stats(). Call once,
  /// after the engine reaches duration_s.
  void finalize(double duration_s);

  const ServingStats& stats() const { return stats_; }

  std::size_t num_replicas() const { return replicas_.size(); }
  Replica& replica(std::size_t i) { return *replicas_.at(i); }

 private:
  void on_arrival(double duration_s);
  void schedule_next_arrival(double duration_s);
  void publish();

  sim::Engine* engine_;
  comm::Fabric* fabric_;
  ServingSpec spec_;
  const data::Dataset* dataset_;
  PublishSourceFn publish_source_;

  ArrivalProcess arrival_;
  ReplicaMetrics metrics_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<ReplicaRouter> router_;

  /// Publish arena: each publish round stages the source snapshot into it
  /// once; every replica x chunk ModelPublish shares views over that single
  /// production write (comm/payload.h).
  comm::PayloadArena arena_;

  std::uint64_t next_request_id_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t publish_version_ = 0;

  bool finalized_ = false;
  ServingStats stats_;

  obs::Observability* obs_ = nullptr;
  obs::TrackId obs_track_ = 0;  ///< "serving / tier"
};

}  // namespace dlion::serve

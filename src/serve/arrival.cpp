#include "serve/arrival.h"

#include <cmath>

#include "common/check.h"

namespace dlion::serve {

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kDiurnal:
      return "diurnal";
  }
  return "unknown";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config,
                               std::uint64_t seed)
    : config_(config), rng_(seed) {
  DLION_ASSERT(config_.rate_rps > 0.0, "arrival rate must be positive");
}

double ArrivalProcess::rate_at(common::SimTime t) const {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      return config_.rate_rps;
    case ArrivalKind::kBursty: {
      const double phase = std::fmod(t, config_.burst_period_s);
      return phase < config_.burst_duration_s
                 ? config_.rate_rps * config_.burst_factor
                 : config_.rate_rps;
    }
    case ArrivalKind::kDiurnal: {
      const double wave =
          0.5 * (1.0 - std::cos(2.0 * M_PI * t / config_.diurnal_period_s));
      return config_.rate_rps *
             (config_.diurnal_min_frac +
              (1.0 - config_.diurnal_min_frac) * wave);
    }
  }
  return config_.rate_rps;
}

double ArrivalProcess::peak_rate() const {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
    case ArrivalKind::kDiurnal:
      return config_.rate_rps;
    case ArrivalKind::kBursty:
      return config_.rate_rps * std::max(1.0, config_.burst_factor);
  }
  return config_.rate_rps;
}

common::SimTime ArrivalProcess::next() {
  // Lewis-Shedler thinning: draw candidates from a homogeneous Poisson
  // process at the peak rate and accept each with probability
  // rate(t)/peak. For the stationary kind every candidate is accepted, so
  // the loop draws exactly one exponential.
  const double peak = peak_rate();
  for (;;) {
    // Inverse-CDF exponential; 1 - u keeps the argument of log positive.
    const double u = rng_.uniform();
    t_ += -std::log(1.0 - u) / peak;
    if (config_.kind == ArrivalKind::kPoisson) return t_;
    if (rng_.uniform() * peak <= rate_at(t_)) return t_;
  }
}

}  // namespace dlion::serve

// In-memory labeled image dataset and minibatch extraction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace dlion::data {

/// A dataset of images (N, C, H, W) with integer class labels.
struct Dataset {
  tensor::Tensor images;             ///< rank-4 (N, C, H, W)
  std::vector<std::int32_t> labels;  ///< length N

  std::size_t size() const { return labels.size(); }
  std::size_t num_classes() const;
  std::size_t sample_elems() const {
    return size() == 0 ? 0 : images.size() / size();
  }
};

/// A minibatch ready for Model::compute_gradients.
struct Batch {
  tensor::Tensor images;             ///< (B, C, H, W)
  std::vector<std::int32_t> labels;  ///< length B

  std::size_t size() const { return labels.size(); }
};

/// Gather the given sample indices into a batch.
Batch gather(const Dataset& dataset, std::span<const std::size_t> indices);

/// Contiguous shard `worker` of `n_workers` (sizes differ by at most one).
/// This models the paper's partitioned training data: each micro-cloud
/// worker trains on its local shard.
Dataset shard(const Dataset& dataset, std::size_t n_workers,
              std::size_t worker);

/// Uniform with-replacement minibatch sampler over a dataset. Each worker
/// owns one sampler seeded from its worker id, so runs are deterministic.
class MinibatchSampler {
 public:
  MinibatchSampler(const Dataset& dataset, std::uint64_t seed)
      : dataset_(&dataset), rng_(seed) {}

  /// Draw a batch of the requested size.
  Batch next(std::size_t batch_size);

 private:
  const Dataset* dataset_;
  common::Rng rng_;
};

}  // namespace dlion::data

#include "data/dataset.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace dlion::data {

std::size_t Dataset::num_classes() const {
  std::int32_t mx = -1;
  for (std::int32_t l : labels) mx = std::max(mx, l);
  return static_cast<std::size_t>(mx + 1);
}

Batch gather(const Dataset& dataset, std::span<const std::size_t> indices) {
  if (dataset.size() == 0) throw std::invalid_argument("gather: empty dataset");
  const auto& shape = dataset.images.shape();
  const std::size_t elems = dataset.sample_elems();
  std::vector<std::size_t> dims = shape.dims();
  dims[0] = indices.size();
  Batch batch;
  batch.images = tensor::Tensor(tensor::Shape(dims));
  batch.labels.reserve(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t src = indices[i];
    if (src >= dataset.size()) throw std::out_of_range("gather: bad index");
    std::memcpy(batch.images.data() + i * elems,
                dataset.images.data() + src * elems, elems * sizeof(float));
    batch.labels.push_back(dataset.labels[src]);
  }
  return batch;
}

Dataset shard(const Dataset& dataset, std::size_t n_workers,
              std::size_t worker) {
  if (n_workers == 0 || worker >= n_workers) {
    throw std::invalid_argument("shard: bad worker index");
  }
  const std::size_t n = dataset.size();
  const std::size_t base = n / n_workers;
  const std::size_t extra = n % n_workers;
  const std::size_t begin = worker * base + std::min(worker, extra);
  const std::size_t count = base + (worker < extra ? 1 : 0);
  Dataset out;
  out.images = dataset.images.slice_rows(begin, begin + count);
  out.labels.assign(dataset.labels.begin() + static_cast<std::ptrdiff_t>(begin),
                    dataset.labels.begin() +
                        static_cast<std::ptrdiff_t>(begin + count));
  return out;
}

Batch MinibatchSampler::next(std::size_t batch_size) {
  if (dataset_->size() == 0) {
    throw std::logic_error("MinibatchSampler: empty dataset");
  }
  std::vector<std::size_t> idx(batch_size);
  for (auto& i : idx) i = rng_.uniform_index(dataset_->size());
  return gather(*dataset_, idx);
}

}  // namespace dlion::data

// Synthetic dataset generators.
//
// The paper trains on CIFAR10 ("Cipher": 28x28 grayscale, 60K/10K, 10
// classes) and a 100-class ImageNet subset. Neither is available offline, so
// these generators synthesize classification tasks with the properties the
// experiments depend on: (1) accuracy rises steeply then saturates below
// 100% (so "time to 70%" and "converged accuracy" are meaningful), (2)
// difficulty is tunable via sample noise / label noise / class confusability,
// and (3) everything is deterministic given a seed.
//
// Generation model: each class gets a smooth random prototype image; a
// sample is prototype + per-sample smooth distortion + pixel noise, squashed
// through tanh. A fraction of labels is flipped uniformly (irreducible
// error), which caps the best achievable accuracy like real datasets do.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/dataset.h"

namespace dlion::data {

struct SyntheticSpec {
  std::size_t num_train = 6000;
  std::size_t num_test = 1000;
  std::size_t classes = 10;
  std::size_t channels = 1;
  std::size_t height = 8;
  std::size_t width = 8;
  /// Standard deviation of per-pixel Gaussian noise added to prototypes.
  double noise_std = 1.4;
  /// Standard deviation of the smooth (low-frequency) per-sample distortion.
  double distortion_std = 0.8;
  /// Fraction of labels flipped uniformly at random (irreducible error).
  double label_noise = 0.06;
  std::uint64_t seed = 42;
};

struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Generate a train/test pair from one spec (test shares prototypes with
/// train but uses fresh samples).
TrainTest make_synthetic(const SyntheticSpec& spec);

/// The default "SynthCipher" task used by CPU-cluster experiments at bench
/// scale: 10 classes, 8x8 grayscale. At `paper_scale`, 28x28 with 60K/10K
/// samples (matching the paper's description of the Cipher dataset).
TrainTest make_synth_cipher(std::uint64_t seed, bool paper_scale = false);

/// The "SynthImageNet100" task used by GPU-cluster experiments: 100 classes,
/// RGB. Bench scale is 16x16 with 10K samples; paper scale 32x32 / 120K.
TrainTest make_synth_imagenet100(std::uint64_t seed, bool paper_scale = false);

/// Linearly separable Gaussian blobs (features = height*width, channels=1):
/// logistic regression reaches ~100%; used by convergence property tests.
TrainTest make_blobs(std::uint64_t seed, std::size_t features,
                     std::size_t classes, std::size_t num_train,
                     std::size_t num_test, double spread = 0.25);

}  // namespace dlion::data

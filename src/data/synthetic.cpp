#include "data/synthetic.h"

#include <cmath>
#include <vector>

namespace dlion::data {

namespace {

/// A coarse grid of Gaussian values bilinearly upsampled to (h, w). This
/// produces smooth, image-like low-frequency structure.
std::vector<float> smooth_field(common::Rng& rng, std::size_t grid,
                                std::size_t h, std::size_t w, double std) {
  std::vector<float> coarse(grid * grid);
  for (auto& v : coarse) v = static_cast<float>(rng.normal(0.0, std));
  std::vector<float> out(h * w);
  for (std::size_t y = 0; y < h; ++y) {
    const double gy = (h == 1) ? 0.0
                               : static_cast<double>(y) / (h - 1) * (grid - 1);
    const auto y0 = static_cast<std::size_t>(gy);
    const std::size_t y1 = std::min(y0 + 1, grid - 1);
    const double fy = gy - static_cast<double>(y0);
    for (std::size_t x = 0; x < w; ++x) {
      const double gx =
          (w == 1) ? 0.0 : static_cast<double>(x) / (w - 1) * (grid - 1);
      const auto x0 = static_cast<std::size_t>(gx);
      const std::size_t x1 = std::min(x0 + 1, grid - 1);
      const double fx = gx - static_cast<double>(x0);
      const double v = (1 - fy) * ((1 - fx) * coarse[y0 * grid + x0] +
                                   fx * coarse[y0 * grid + x1]) +
                       fy * ((1 - fx) * coarse[y1 * grid + x0] +
                             fx * coarse[y1 * grid + x1]);
      out[y * w + x] = static_cast<float>(v);
    }
  }
  return out;
}

Dataset generate_split(const SyntheticSpec& spec,
                       const std::vector<std::vector<float>>& prototypes,
                       std::size_t count, common::Rng& rng) {
  Dataset ds;
  ds.images = tensor::Tensor(
      tensor::Shape{count, spec.channels, spec.height, spec.width});
  ds.labels.resize(count);
  const std::size_t plane = spec.height * spec.width;
  for (std::size_t i = 0; i < count; ++i) {
    const auto cls = rng.uniform_index(spec.classes);
    std::int32_t label = static_cast<std::int32_t>(cls);
    if (spec.label_noise > 0.0 && rng.bernoulli(spec.label_noise)) {
      label = static_cast<std::int32_t>(rng.uniform_index(spec.classes));
    }
    ds.labels[i] = label;
    for (std::size_t c = 0; c < spec.channels; ++c) {
      const auto& proto = prototypes[cls * spec.channels + c];
      const auto distortion =
          smooth_field(rng, 3, spec.height, spec.width, spec.distortion_std);
      float* dst = ds.images.data() + (i * spec.channels + c) * plane;
      for (std::size_t p = 0; p < plane; ++p) {
        const double v = proto[p] + distortion[p] +
                         rng.normal(0.0, spec.noise_std);
        dst[p] = static_cast<float>(std::tanh(v));
      }
    }
  }
  return ds;
}

}  // namespace

TrainTest make_synthetic(const SyntheticSpec& spec) {
  common::Rng rng(spec.seed);
  // Class prototypes: one smooth field per (class, channel), scaled so
  // classes are distinguishable but overlapping under noise.
  std::vector<std::vector<float>> prototypes;
  prototypes.reserve(spec.classes * spec.channels);
  for (std::size_t k = 0; k < spec.classes * spec.channels; ++k) {
    prototypes.push_back(smooth_field(rng, 4, spec.height, spec.width, 1.0));
  }
  TrainTest tt;
  common::Rng train_rng = rng.fork();
  common::Rng test_rng = rng.fork();
  tt.train = generate_split(spec, prototypes, spec.num_train, train_rng);
  tt.test = generate_split(spec, prototypes, spec.num_test, test_rng);
  return tt;
}

TrainTest make_synth_cipher(std::uint64_t seed, bool paper_scale) {
  SyntheticSpec spec;
  spec.seed = seed;
  if (paper_scale) {
    spec.num_train = 60000;
    spec.num_test = 10000;
    spec.height = spec.width = 28;
  } else {
    spec.num_train = 6000;
    spec.num_test = 1000;
    spec.height = spec.width = 8;
  }
  return make_synthetic(spec);
}

TrainTest make_synth_imagenet100(std::uint64_t seed, bool paper_scale) {
  SyntheticSpec spec;
  spec.seed = seed;
  spec.channels = 3;
  // Many classes are harder to separate; keep noise moderate so training
  // makes visible progress within the simulated window.
  spec.noise_std = 1.5;
  spec.distortion_std = 0.9;
  spec.label_noise = 0.05;
  if (paper_scale) {
    spec.classes = 100;  // the paper's randomly selected 100-class subset
    spec.num_train = 120000;
    spec.num_test = 5000;
    spec.height = spec.width = 32;
  } else {
    // Bench scale trades class count and resolution for wall-clock time;
    // the simulated cost profile stays ImageNet/MobileNet-sized.
    spec.classes = 20;
    spec.num_train = 20000;
    spec.num_test = 1000;
    spec.height = spec.width = 12;
  }
  return make_synthetic(spec);
}

TrainTest make_blobs(std::uint64_t seed, std::size_t features,
                     std::size_t classes, std::size_t num_train,
                     std::size_t num_test, double spread) {
  common::Rng rng(seed);
  std::vector<std::vector<float>> centers(classes,
                                          std::vector<float>(features));
  for (auto& c : centers) {
    for (auto& v : c) v = static_cast<float>(rng.normal(0.0, 1.0));
  }
  auto gen = [&](std::size_t count, common::Rng& r) {
    Dataset ds;
    ds.images = tensor::Tensor(tensor::Shape{count, 1, 1, features});
    ds.labels.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      const auto cls = r.uniform_index(classes);
      ds.labels[i] = static_cast<std::int32_t>(cls);
      float* dst = ds.images.data() + i * features;
      for (std::size_t f = 0; f < features; ++f) {
        dst[f] = centers[cls][f] + static_cast<float>(r.normal(0.0, spread));
      }
    }
    return ds;
  };
  TrainTest tt;
  common::Rng train_rng = rng.fork();
  common::Rng test_rng = rng.fork();
  tt.train = gen(num_train, train_rng);
  tt.test = gen(num_test, test_rng);
  return tt;
}

}  // namespace dlion::data

// Softmax cross-entropy loss over integer class labels.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.h"

namespace dlion::nn {

struct LossResult {
  double loss = 0.0;              ///< mean cross-entropy over the batch
  double accuracy = 0.0;          ///< fraction of argmax-correct predictions
  tensor::Tensor grad_logits;     ///< dL/dlogits, already divided by batch
};

/// Computes mean softmax cross-entropy and its gradient w.r.t. logits.
/// `logits` is (batch, classes); `labels` holds batch class indices.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels);

/// Softmax probabilities (row-wise), numerically stabilized.
tensor::Tensor softmax(const tensor::Tensor& logits);

}  // namespace dlion::nn

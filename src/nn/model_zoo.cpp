#include "nn/model_zoo.h"

#include <memory>
#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pooling.h"

namespace dlion::nn {

namespace {
// Nominal profiles from the paper (§5.1.1): Cipher is 5 MB, MobileNet 17 MB.
// FLOPs-per-sample values are representative forward+backward costs used by
// the simulator's compute model; see sim/compute_model.h for calibration.
constexpr std::uint64_t kCipherBytes = 5'000'000;
constexpr double kCipherFlops = 30e6;
constexpr std::uint64_t kMobileNetBytes = 17'000'000;
constexpr double kMobileNetFlops = 1.7e9;
}  // namespace

BuiltModel make_cipher_cnn(common::Rng& rng) {
  BuiltModel bm;
  // 28x28x1 -> conv5x5(10) -> pool2 -> conv5x5(20) -> pool2 -> conv3x3(100)
  // -> flatten -> FC 200 -> FC 10. Matches the paper's "3 convolutional and
  // 2 fully-connected layers ... 10, 20, 100 kernels and 200 neurons".
  // ReLUs are fused into the preceding conv/dense layers (bit-identical to
  // separate layers; see Dense/Conv2D fuse_relu docs).
  bm.model
      .add(std::make_unique<Conv2D>("conv1", 1, 10, 5, 1, 2, /*fuse_relu=*/true))
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Conv2D>("conv2", 10, 20, 5, 1, 2,
                                    /*fuse_relu=*/true))
      .add(std::make_unique<MaxPool2D>(2))
      .add(std::make_unique<Conv2D>("conv3", 20, 100, 3, 1, 1,
                                    /*fuse_relu=*/true))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>("fc1", 100 * 7 * 7, 200, /*fuse_relu=*/true))
      .add(std::make_unique<Dense>("fc2", 200, 10));
  bm.model.init(rng);
  bm.profile = {"cipher", kCipherBytes, kCipherFlops, 1, 28, 28, 10};
  return bm;
}

BuiltModel make_cipher_lite(common::Rng& rng) {
  BuiltModel bm;
  bm.model.add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>("fc1", 64, 64, /*fuse_relu=*/true))
      .add(std::make_unique<Dense>("fc2", 64, 48, /*fuse_relu=*/true))
      .add(std::make_unique<Dense>("fc3", 48, 10));
  bm.model.init(rng);
  // Lite math, Cipher-scale simulated cost profile.
  bm.profile = {"cipher-lite", kCipherBytes, kCipherFlops, 1, 8, 8, 10};
  return bm;
}

namespace {
void add_separable_block(Model& model, const std::string& name,
                         std::size_t in_c, std::size_t out_c,
                         std::size_t stride) {
  // The depthwise conv keeps a standalone ReLU (no fused variant); the
  // pointwise conv fuses its activation.
  model.add(std::make_unique<DepthwiseConv2D>(name + "/dw", in_c, 3, stride, 1))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Conv2D>(name + "/pw", in_c, out_c, 1, 1, 0,
                                    /*fuse_relu=*/true));
}
}  // namespace

BuiltModel make_mobilenet_lite(common::Rng& rng, std::size_t classes) {
  BuiltModel bm;
  // Stem + 4 depthwise-separable blocks + GAP + classifier. Channel widths
  // are kept narrow so default-scale benches stay cheap in wall-clock time;
  // the simulator charges MobileNet's nominal 17 MB / ImageNet-scale FLOPs
  // regardless (see ModelProfile).
  bm.model.add(
      std::make_unique<Conv2D>("stem", 3, 12, 3, 2, 1, /*fuse_relu=*/true));
  add_separable_block(bm.model, "block1", 12, 24, 1);
  add_separable_block(bm.model, "block2", 24, 48, 2);
  add_separable_block(bm.model, "block3", 48, 48, 1);
  add_separable_block(bm.model, "block4", 48, 96, 2);
  bm.model.add(std::make_unique<GlobalAvgPool>())
      .add(std::make_unique<Dense>("classifier", 96, classes));
  bm.model.init(rng);
  bm.profile = {"mobilenet", kMobileNetBytes, kMobileNetFlops, 3, 32, 32,
                classes};
  return bm;
}

BuiltModel make_logistic_regression(common::Rng& rng, std::size_t features,
                                    std::size_t classes) {
  BuiltModel bm;
  bm.model.add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>("linear", features, classes));
  bm.model.init(rng);
  bm.profile = {"logreg",
                static_cast<std::uint64_t>(4 * features * classes),
                static_cast<double>(6 * features * classes),
                1,
                1,
                features,
                classes};
  return bm;
}

BuiltModel make_mlp(common::Rng& rng, std::size_t in, std::size_t hidden,
                    std::size_t classes) {
  BuiltModel bm;
  bm.model.add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>("fc1", in, hidden, /*fuse_relu=*/true))
      .add(std::make_unique<Dense>("fc2", hidden, hidden, /*fuse_relu=*/true))
      .add(std::make_unique<Dense>("fc3", hidden, classes));
  bm.model.init(rng);
  bm.profile = {"mlp",
                static_cast<std::uint64_t>(
                    4 * (in * hidden + hidden * hidden + hidden * classes)),
                static_cast<double>(
                    6 * (in * hidden + hidden * hidden + hidden * classes)),
                1,
                1,
                in,
                classes};
  return bm;
}

BuiltModel make_model(const std::string& name, common::Rng& rng) {
  if (name == "cipher") return make_cipher_cnn(rng);
  if (name == "cipher-lite") return make_cipher_lite(rng);
  if (name == "mobilenet") return make_mobilenet_lite(rng);
  if (name == "mobilenet-20") return make_mobilenet_lite(rng, 20);
  if (name == "logreg") return make_logistic_regression(rng, 16, 4);
  if (name == "mlp") return make_mlp(rng, 64, 64, 10);
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

}  // namespace dlion::nn

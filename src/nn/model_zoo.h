// Model zoo: the two models the paper evaluates (Cipher CNN, MobileNet) plus
// reduced "lite" variants used at default bench scale, and trivial models for
// tests.
//
// Each model carries a nominal cost profile (model bytes on the wire,
// training FLOPs per sample). The simulator charges time and network bytes
// from the *nominal* profile so experiments reproduce the paper's
// compute/communication ratios even when the lite model is the one actually
// being trained (see DESIGN.md, Substitutions).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "nn/model.h"

namespace dlion::nn {

/// Nominal cost profile of a model, used by the simulator's cost model.
struct ModelProfile {
  std::string name;
  /// Serialized model/gradient size on the wire (full exchange), bytes.
  /// Paper: Cipher = 5 MB, MobileNet = 17 MB.
  std::uint64_t nominal_bytes = 0;
  /// Forward+backward FLOPs to process one training sample.
  double nominal_flops_per_sample = 0.0;
  /// Input image geometry (channels, height, width) and class count.
  std::size_t channels = 1, height = 0, width = 0, classes = 10;
};

struct BuiltModel {
  Model model;
  ModelProfile profile;
};

/// The paper's Cipher model: 3 convolutional layers (10/20/100 kernels) and
/// 2 fully-connected layers (200 neurons, 10 classes) with ReLU and max
/// pooling, over 28x28 grayscale input. ~5 MB of parameters.
BuiltModel make_cipher_cnn(common::Rng& rng);

/// Reduced Cipher used at default bench scale: an MLP over 8x8 grayscale
/// input with the Cipher nominal cost profile, so simulated time and traffic
/// match the full model while wall-clock math stays cheap.
BuiltModel make_cipher_lite(common::Rng& rng);

/// MobileNet-style model: stem conv + depthwise-separable blocks + global
/// average pooling + classifier. Nominal profile 17 MB / ImageNet-scale
/// FLOPs. 100 classes at paper scale; bench scale uses fewer (the class
/// count of the SynthImageNet dataset it is paired with).
BuiltModel make_mobilenet_lite(common::Rng& rng, std::size_t classes = 100);

/// Logistic regression over `features` inputs (test model with a convex
/// loss; SGD provably converges, which the property tests rely on).
BuiltModel make_logistic_regression(common::Rng& rng, std::size_t features,
                                    std::size_t classes);

/// Generic 2-hidden-layer MLP (test/example model).
BuiltModel make_mlp(common::Rng& rng, std::size_t in, std::size_t hidden,
                    std::size_t classes);

/// Factory by name: "cipher", "cipher-lite", "mobilenet", "logreg", "mlp".
BuiltModel make_model(const std::string& name, common::Rng& rng);

}  // namespace dlion::nn

#include "nn/dense.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace dlion::nn {

Dense::Dense(std::string name, std::size_t in_features,
             std::size_t out_features, bool fuse_relu)
    : in_(in_features),
      out_(out_features),
      fuse_relu_(fuse_relu),
      weight_(name + "/W", tensor::Shape{in_features, out_features}),
      bias_(name + "/b", tensor::Shape{out_features}) {}

void Dense::init_weights(common::Rng& rng) {
  // He initialization: suitable for the ReLU nets in the model zoo.
  const double std = std::sqrt(2.0 / static_cast<double>(in_));
  for (auto& w : weight_.value().span()) {
    w = static_cast<float>(rng.normal(0.0, std));
  }
  bias_.value().fill(0.0f);
}

tensor::Tensor Dense::forward(const tensor::Tensor& input, bool /*train*/) {
  if (input.shape().rank() != 2 || input.shape()[1] != in_) {
    throw std::invalid_argument("Dense::forward: expected (batch, " +
                                std::to_string(in_) + "), got " +
                                input.shape().to_string());
  }
  cached_input_ = input;
  const std::size_t batch = input.shape()[0];
  tensor::Tensor out(tensor::Shape{batch, out_});
  tensor::gemm(false, false, batch, out_, in_, 1.0f, input.data(),
               weight_.value().data(), 0.0f, out.data());
  if (fuse_relu_) {
    // Fused epilogue: bias + ReLU + mask in one pass over the activations.
    float* mask = mask_.ensure(batch * out_);
    tensor::add_bias_rows_relu(out.data(), batch, out_, bias_.value().data(),
                               mask);
  } else {
    tensor::add_bias_rows(out, bias_.value());
  }
  return out;
}

tensor::Tensor Dense::backward(const tensor::Tensor& grad_output) {
  const std::size_t batch = cached_input_.shape()[0];
  if (grad_output.shape().rank() != 2 || grad_output.shape()[0] != batch ||
      grad_output.shape()[1] != out_) {
    throw std::invalid_argument("Dense::backward: bad grad shape " +
                                grad_output.shape().to_string());
  }
  const float* dy = grad_output.data();
  if (fuse_relu_) {
    // ReLU backward first: dy <- dy * mask (into reusable scratch).
    float* masked = dy_masked_.ensure(batch * out_);
    tensor::apply_mask(dy, mask_.data(), masked, batch * out_);
    dy = masked;
  }
  // dW += x^T * dy
  tensor::gemm(true, false, in_, out_, batch, 1.0f, cached_input_.data(), dy,
               1.0f, weight_.grad().data());
  // db += column sums of dy
  for (std::size_t r = 0; r < batch; ++r) {
    const float* row = dy + r * out_;
    float* __restrict db = bias_.grad().data();
    for (std::size_t c = 0; c < out_; ++c) db[c] += row[c];
  }
  // dx = dy * W^T
  tensor::Tensor grad_in(tensor::Shape{batch, in_});
  tensor::gemm(false, true, batch, in_, out_, 1.0f, dy,
               weight_.value().data(), 0.0f, grad_in.data());
  return grad_in;
}

std::vector<Variable*> Dense::variables() { return {&weight_, &bias_}; }

}  // namespace dlion::nn

#include "nn/activations.h"

#include <stdexcept>

namespace dlion::nn {

tensor::Tensor ReLU::forward(const tensor::Tensor& input, bool /*train*/) {
  tensor::Tensor out = input;
  // Reuse the mask storage across steps: activation shapes are stable
  // during training, so this allocates only on the first call (or a shape
  // change). Both branches write the mask explicitly so no stale values
  // survive the reuse.
  if (!(mask_.shape() == input.shape())) {
    mask_ = tensor::Tensor(input.shape());
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0f) {
      mask_[i] = 1.0f;
    } else {
      mask_[i] = 0.0f;
      out[i] = 0.0f;
    }
  }
  return out;
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_output) {
  if (!(grad_output.shape() == mask_.shape())) {
    throw std::invalid_argument("ReLU::backward: shape mismatch");
  }
  tensor::Tensor grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

tensor::Tensor Flatten::forward(const tensor::Tensor& input, bool /*train*/) {
  input_shape_ = input.shape();
  tensor::Tensor out = input;
  const std::size_t batch = input.shape().rank() > 0 ? input.shape()[0] : 1;
  out.reshape(tensor::Shape{batch, input.size() / batch});
  return out;
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor grad_in = grad_output;
  grad_in.reshape(input_shape_);
  return grad_in;
}

Dropout::Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("Dropout: p must be in [0, 1)");
  }
}

tensor::Tensor Dropout::forward(const tensor::Tensor& input, bool train) {
  train_ = train;
  if (!train_ || p_ == 0.0) return input;
  tensor::Tensor out = input;
  mask_ = tensor::Tensor(input.shape());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (rng_.bernoulli(p_)) {
      out[i] = 0.0f;
    } else {
      mask_[i] = keep_scale;
      out[i] *= keep_scale;
    }
  }
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_output) {
  if (!train_ || p_ == 0.0) return grad_output;
  tensor::Tensor grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

}  // namespace dlion::nn

// Model checkpointing: save/load weight snapshots to a simple binary file
// format ("DLCK"), so long training runs and examples can persist and
// resume models. The format stores per-variable shapes, so loading into a
// mismatched architecture fails loudly.
#pragma once

#include <string>

#include "nn/model.h"

namespace dlion::nn {

/// Write the model's weights to `path`. Throws std::runtime_error on I/O
/// failure.
void save_checkpoint(const Model& model, const std::string& path);

/// Load weights from `path` into the model. Throws std::runtime_error on
/// I/O failure and std::invalid_argument on architecture mismatch.
void load_checkpoint(Model& model, const std::string& path);

}  // namespace dlion::nn

// Model checkpointing: save/load weight snapshots in a simple binary
// format ("DLCK"), so long training runs and examples can persist and
// resume models. The format stores per-variable names and shapes, so
// loading into a mismatched architecture fails loudly.
//
// Two transports share the same format: files (persistence across runs)
// and in-memory byte buffers (the fault-tolerance layer's periodic crash-
// recovery snapshots, see core::Worker).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/model.h"

namespace dlion::nn {

/// Write the model's weights to `path`. Throws std::runtime_error on I/O
/// failure.
void save_checkpoint(const Model& model, const std::string& path);

/// Load weights from `path` into the model. Throws std::runtime_error on
/// I/O failure and std::invalid_argument on architecture mismatch.
void load_checkpoint(Model& model, const std::string& path);

/// Stream variants (same DLCK format).
void save_checkpoint(const Model& model, std::ostream& out);
void load_checkpoint(Model& model, std::istream& in);

/// In-memory variants: serialize the model's weights to a DLCK byte buffer
/// and restore them. Used for periodic crash-recovery snapshots.
std::vector<std::uint8_t> serialize_checkpoint(const Model& model);
void restore_checkpoint(Model& model, const std::vector<std::uint8_t>& buf);

}  // namespace dlion::nn

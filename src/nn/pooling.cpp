#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

#include "tensor/ops.h"

namespace dlion::nn {

MaxPool2D::MaxPool2D(std::size_t kernel, std::size_t stride)
    : k_(kernel), stride_(stride == 0 ? kernel : stride) {}

tensor::Tensor MaxPool2D::forward(const tensor::Tensor& input, bool /*train*/) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("MaxPool2D::forward: expected NCHW, got " +
                                input.shape().to_string());
  }
  input_shape_ = input.shape();
  const std::size_t n = input.shape()[0], c = input.shape()[1];
  const std::size_t h = input.shape()[2], w = input.shape()[3];
  const std::size_t oh = tensor::conv_out_dim(h, k_, stride_, 0);
  const std::size_t ow = tensor::conv_out_dim(w, k_, stride_, 0);
  tensor::Tensor out(tensor::Shape{n, c, oh, ow});
  argmax_.assign(out.size(), 0);
  std::size_t oidx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = input.data() + (i * c + ch) * h * w;
      const std::size_t plane_off = (i * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const std::size_t iy = oy * stride_ + ky;
            if (iy >= h) continue;
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const std::size_t ix = ox * stride_ + kx;
              if (ix >= w) continue;
              const float v = plane[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = iy * w + ix;
              }
            }
          }
          out[oidx] = best;
          argmax_[oidx] = plane_off + best_idx;
          ++oidx;
        }
      }
    }
  }
  return out;
}

tensor::Tensor MaxPool2D::backward(const tensor::Tensor& grad_output) {
  if (grad_output.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool2D::backward: size mismatch");
  }
  tensor::Tensor grad_in(input_shape_);
  for (std::size_t i = 0; i < grad_output.size(); ++i) {
    grad_in[argmax_[i]] += grad_output[i];
  }
  return grad_in;
}

tensor::Tensor GlobalAvgPool::forward(const tensor::Tensor& input,
                                      bool /*train*/) {
  if (input.shape().rank() != 4) {
    throw std::invalid_argument("GlobalAvgPool::forward: expected NCHW");
  }
  input_shape_ = input.shape();
  const std::size_t n = input.shape()[0], c = input.shape()[1];
  const std::size_t plane = input.shape()[2] * input.shape()[3];
  tensor::Tensor out(tensor::Shape{n, c});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* p = input.data() + (i * c + ch) * plane;
      float acc = 0.0f;
      for (std::size_t j = 0; j < plane; ++j) acc += p[j];
      out.at(i, ch) = acc / static_cast<float>(plane);
    }
  }
  return out;
}

tensor::Tensor GlobalAvgPool::backward(const tensor::Tensor& grad_output) {
  const std::size_t n = input_shape_[0], c = input_shape_[1];
  const std::size_t plane = input_shape_[2] * input_shape_[3];
  tensor::Tensor grad_in(input_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float g = grad_output.at(i, ch) * inv;
      float* p = grad_in.data() + (i * c + ch) * plane;
      for (std::size_t j = 0; j < plane; ++j) p[j] = g;
    }
  }
  return grad_in;
}

}  // namespace dlion::nn

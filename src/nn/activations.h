// Parameter-free activation and shape layers: ReLU, Flatten, Dropout.
#pragma once

#include "nn/layer.h"

namespace dlion::nn {

class ReLU : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  const char* kind() const override { return "ReLU"; }

 private:
  tensor::Tensor mask_;  // 1 where input > 0
};

/// Collapses any rank-N input to (batch, features).
class Flatten : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  const char* kind() const override { return "Flatten"; }

 private:
  tensor::Shape input_shape_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) at train time so
/// inference needs no rescaling.
class Dropout : public Layer {
 public:
  Dropout(double p, std::uint64_t seed);
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  const char* kind() const override { return "Dropout"; }

 private:
  double p_;
  common::Rng rng_;
  tensor::Tensor mask_;
  bool train_ = false;
};

}  // namespace dlion::nn

// Fully-connected layer: y = x W + b.
#pragma once

#include <string>

#include "nn/layer.h"

namespace dlion::nn {

class Dense : public Layer {
 public:
  /// `name` prefixes the variable names ("<name>/W", "<name>/b").
  Dense(std::string name, std::size_t in_features, std::size_t out_features);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Variable*> variables() override;
  void init_weights(common::Rng& rng) override;
  const char* kind() const override { return "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Variable weight_;  // (in, out)
  Variable bias_;    // (out)
  tensor::Tensor cached_input_;
};

}  // namespace dlion::nn

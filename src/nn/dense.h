// Fully-connected layer: y = x W + b, with an optional fused ReLU epilogue.
#pragma once

#include <string>

#include "common/scratch.h"
#include "nn/layer.h"

namespace dlion::nn {

class Dense : public Layer {
 public:
  /// `name` prefixes the variable names ("<name>/W", "<name>/b").
  /// `fuse_relu` folds the activation into the layer: forward applies
  /// bias + ReLU in one pass over the output (recording the mask), and
  /// backward applies the ReLU mask before the weight/input gradients.
  /// Bit-identical to a separate ReLU layer, but one less traversal of the
  /// activation matrix and no per-step mask allocation.
  Dense(std::string name, std::size_t in_features, std::size_t out_features,
        bool fuse_relu = false);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Variable*> variables() override;
  void init_weights(common::Rng& rng) override;
  const char* kind() const override { return fuse_relu_ ? "DenseReLU" : "Dense"; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  bool fused_relu() const { return fuse_relu_; }

 private:
  std::size_t in_;
  std::size_t out_;
  bool fuse_relu_;
  Variable weight_;  // (in, out)
  Variable bias_;    // (out)
  tensor::Tensor cached_input_;
  common::ScratchBuffer mask_;     // ReLU mask when fused (batch x out)
  common::ScratchBuffer dy_masked_;  // masked upstream grad scratch
};

}  // namespace dlion::nn

#include "nn/model.h"

#include <stdexcept>

namespace dlion::nn {

std::size_t Snapshot::num_params() const {
  std::size_t n = 0;
  for (const auto& t : values) n += t.size();
  return n;
}

Model& Model::add(LayerPtr layer) {
  for (Variable* v : layer->variables()) variables_.push_back(v);
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(common::Rng& rng) {
  for (auto& layer : layers_) layer->init_weights(rng);
}

tensor::Tensor Model::forward(const tensor::Tensor& input, bool train) {
  tensor::Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

LossResult Model::compute_gradients(const tensor::Tensor& input,
                                    std::span<const std::int32_t> labels) {
  zero_grads();
  tensor::Tensor logits = forward(input, /*train=*/true);
  LossResult res = softmax_cross_entropy(logits, labels);
  tensor::Tensor grad = res.grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return res;
}

LossResult Model::evaluate(const tensor::Tensor& input,
                           std::span<const std::int32_t> labels) {
  tensor::Tensor logits = forward(input, /*train=*/false);
  LossResult res = softmax_cross_entropy(logits, labels);
  res.grad_logits = tensor::Tensor();  // not meaningful for evaluation
  return res;
}

std::size_t Model::num_params() const {
  std::size_t n = 0;
  for (const Variable* v : variables_) n += v->size();
  return n;
}

void Model::zero_grads() {
  for (Variable* v : variables_) v->zero_grad();
}

Snapshot Model::weights() const {
  Snapshot s;
  s.values.reserve(variables_.size());
  for (const Variable* v : variables_) s.values.push_back(v->value());
  return s;
}

void Model::set_weights(const Snapshot& snapshot) {
  if (snapshot.values.size() != variables_.size()) {
    throw std::invalid_argument("Model::set_weights: variable count mismatch");
  }
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    if (!(snapshot.values[i].shape() == variables_[i]->value().shape())) {
      throw std::invalid_argument("Model::set_weights: shape mismatch at " +
                                  variables_[i]->name());
    }
    variables_[i]->value() = snapshot.values[i];
  }
}

Snapshot Model::gradients() const {
  Snapshot s;
  s.values.reserve(variables_.size());
  for (const Variable* v : variables_) s.values.push_back(v->grad());
  return s;
}

void Model::sgd_step(float lr) {
  for (Variable* v : variables_) {
    float* w = v->value().data();
    const float* g = v->grad().data();
    for (std::size_t i = 0; i < v->size(); ++i) w[i] -= lr * g[i];
  }
}

}  // namespace dlion::nn

#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace dlion::nn {

namespace {
void ensure_state(std::vector<std::vector<float>>& state, Model& model) {
  if (!state.empty()) {
    if (state.size() != model.num_variables()) {
      throw std::invalid_argument(
          "Optimizer: model changed between steps");
    }
    return;
  }
  state.resize(model.num_variables());
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    state[i].assign(model.variables()[i]->size(), 0.0f);
  }
}
}  // namespace

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be positive");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("Sgd: momentum must be in [0, 1)");
  }
}

void Sgd::step(Model& model) {
  ensure_state(velocity_, model);
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    Variable& var = *model.variables()[i];
    // Shape agreement contract: the gradient buffer must mirror the value
    // buffer exactly or the flat index walk below reads out of bounds.
    DLION_CHECK_SHAPE(var.grad().shape(), var.value().shape());
    float* w = var.value().data();
    const float* g = var.grad().data();
    float* v = velocity_[i].data();
    const float mu = static_cast<float>(momentum_);
    const float wd = static_cast<float>(weight_decay_);
    const float lr = static_cast<float>(lr_);
    for (std::size_t j = 0; j < var.size(); ++j) {
      const float grad = g[j] + wd * w[j];
      v[j] = mu * v[j] + grad;
      w[j] -= lr * v[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be positive");
  if (beta1 < 0.0 || beta1 >= 1.0 || beta2 < 0.0 || beta2 >= 1.0) {
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
  }
}

void Adam::step(Model& model) {
  ensure_state(m_, model);
  ensure_state(v_, model);
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    Variable& var = *model.variables()[i];
    DLION_CHECK_SHAPE(var.grad().shape(), var.value().shape());
    float* w = var.value().data();
    const float* g = var.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const float b1 = static_cast<float>(beta1_);
    const float b2 = static_cast<float>(beta2_);
    const float eps = static_cast<float>(eps_);
    for (std::size_t j = 0; j < var.size(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      w[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps);
    }
  }
}

}  // namespace dlion::nn

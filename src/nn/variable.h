// A named trainable weight variable with its gradient buffer.
//
// DLion transmits, selects and updates gradients at the granularity of
// individual weight variables (paper §4.2), so the variable - not the flat
// parameter vector - is the unit the whole system operates on.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace dlion::nn {

class Variable {
 public:
  Variable(std::string name, tensor::Shape shape)
      : name_(std::move(name)), value_(shape), grad_(shape) {}

  const std::string& name() const { return name_; }
  tensor::Tensor& value() { return value_; }
  const tensor::Tensor& value() const { return value_; }
  tensor::Tensor& grad() { return grad_; }
  const tensor::Tensor& grad() const { return grad_; }
  std::size_t size() const { return value_.size(); }

  void zero_grad() { grad_.fill(0.0f); }

 private:
  std::string name_;
  tensor::Tensor value_;
  tensor::Tensor grad_;
};

}  // namespace dlion::nn

// Sequential model container with named weight variables.
//
// Matches the paper's `build_model` abstraction (§4.2): a model is a list of
// named weight variables plus forward/backward machinery; everything the
// distributed layer does (gradient exchange, Max N selection, DKT weight
// merging) addresses variables by name/index.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/loss.h"

namespace dlion::nn {

/// A flat snapshot of all variable values (or gradients), aligned with
/// Model::variables() order. Used for weight exchange (DKT) and tests.
struct Snapshot {
  std::vector<tensor::Tensor> values;

  std::size_t num_params() const;
};

class Model {
 public:
  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Append a layer. Returns *this for chaining.
  Model& add(LayerPtr layer);

  /// Initialize all layer weights from the generator.
  void init(common::Rng& rng);

  /// Forward through all layers.
  tensor::Tensor forward(const tensor::Tensor& input, bool train = false);

  /// One training evaluation: zeroes grads, runs forward, computes softmax
  /// cross-entropy against labels, backpropagates into variable grads.
  LossResult compute_gradients(const tensor::Tensor& input,
                               std::span<const std::int32_t> labels);

  /// Forward-only loss/accuracy (no gradient accumulation).
  LossResult evaluate(const tensor::Tensor& input,
                      std::span<const std::int32_t> labels);

  /// All trainable variables in deterministic (layer, declaration) order.
  const std::vector<Variable*>& variables() const { return variables_; }
  std::vector<Variable*>& variables() { return variables_; }
  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_params() const;

  void zero_grads();

  Snapshot weights() const;
  void set_weights(const Snapshot& snapshot);
  Snapshot gradients() const;

  /// Plain SGD step on local gradients: w -= lr * g (used by
  /// single-machine training in tests/examples).
  void sgd_step(float lr);

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<LayerPtr> layers_;
  std::vector<Variable*> variables_;
};

}  // namespace dlion::nn

// GEMM-based 2-D convolution (NCHW) via im2col, plus the depthwise variant
// used by the MobileNet-style model in the zoo.
#pragma once

#include <string>

#include "nn/layer.h"

namespace dlion::nn {

class Conv2D : public Layer {
 public:
  Conv2D(std::string name, std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride = 1, std::size_t pad = 0);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Variable*> variables() override;
  void init_weights(common::Rng& rng) override;
  const char* kind() const override { return "Conv2D"; }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  Variable weight_;  // (out_c, in_c * k * k)
  Variable bias_;    // (out_c)
  tensor::Tensor cached_input_;
  tensor::Tensor cached_cols_;  // im2col per batch element, concatenated
};

/// Depthwise convolution: each input channel convolved with its own kernel.
class DepthwiseConv2D : public Layer {
 public:
  DepthwiseConv2D(std::string name, std::size_t channels, std::size_t kernel,
                  std::size_t stride = 1, std::size_t pad = 0);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Variable*> variables() override;
  void init_weights(common::Rng& rng) override;
  const char* kind() const override { return "DepthwiseConv2D"; }

 private:
  std::size_t c_, k_, stride_, pad_;
  Variable weight_;  // (c, k*k)
  Variable bias_;    // (c)
  tensor::Tensor cached_input_;
};

}  // namespace dlion::nn

// GEMM-based 2-D convolution (NCHW) via im2col, plus the depthwise variant
// used by the MobileNet-style model in the zoo.
#pragma once

#include <string>

#include "common/scratch.h"
#include "nn/layer.h"

namespace dlion::nn {

class Conv2D : public Layer {
 public:
  /// `fuse_relu` folds the activation into the layer: forward applies
  /// bias + ReLU in one pass over the output planes (recording the mask),
  /// and backward applies the ReLU mask before the weight/input gradients.
  /// Bit-identical to a separate ReLU layer, but one less traversal of the
  /// activations and no per-step mask allocation.
  Conv2D(std::string name, std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride = 1, std::size_t pad = 0,
         bool fuse_relu = false);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Variable*> variables() override;
  void init_weights(common::Rng& rng) override;
  const char* kind() const override {
    return fuse_relu_ ? "Conv2DReLU" : "Conv2D";
  }

  bool fused_relu() const { return fuse_relu_; }

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  bool fuse_relu_;
  Variable weight_;  // (out_c, in_c * k * k)
  Variable bias_;    // (out_c)
  tensor::Tensor cached_input_;
  common::ScratchBuffer cols_;       // im2col per batch element, concatenated
  common::ScratchBuffer dcol_;       // col-space gradient scratch (backward)
  common::ScratchBuffer mask_;       // ReLU mask when fused (n x out_c x oh*ow)
  common::ScratchBuffer dy_masked_;  // masked upstream grad scratch
};

/// Depthwise convolution: each input channel convolved with its own kernel.
class DepthwiseConv2D : public Layer {
 public:
  DepthwiseConv2D(std::string name, std::size_t channels, std::size_t kernel,
                  std::size_t stride = 1, std::size_t pad = 0);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Variable*> variables() override;
  void init_weights(common::Rng& rng) override;
  const char* kind() const override { return "DepthwiseConv2D"; }

 private:
  std::size_t c_, k_, stride_, pad_;
  Variable weight_;  // (c, k*k)
  Variable bias_;    // (c)
  tensor::Tensor cached_input_;
};

}  // namespace dlion::nn

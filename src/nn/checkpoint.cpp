#include "nn/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dlion::nn {

namespace {
constexpr char kMagic[4] = {'D', 'L', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: truncated input");
  return v;
}
}  // namespace

void save_checkpoint(const Model& model, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(model.num_variables()));
  for (const Variable* var : model.variables()) {
    const auto& shape = var->value().shape();
    write_u32(out, static_cast<std::uint32_t>(var->name().size()));
    out.write(var->name().data(),
              static_cast<std::streamsize>(var->name().size()));
    write_u32(out, static_cast<std::uint32_t>(shape.rank()));
    for (std::size_t d = 0; d < shape.rank(); ++d) {
      write_u32(out, static_cast<std::uint32_t>(shape[d]));
    }
    out.write(reinterpret_cast<const char*>(var->value().data()),
              static_cast<std::streamsize>(var->size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("checkpoint: write failed");
}

void save_checkpoint(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);
  save_checkpoint(model, out);
  if (!out) throw std::runtime_error("checkpoint: write failed on " + path);
}

void load_checkpoint(Model& model, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic");
  }
  const std::uint32_t version = read_u32(in);
  if (version != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version");
  }
  const std::uint32_t count = read_u32(in);
  if (count != model.num_variables()) {
    throw std::invalid_argument("checkpoint: variable count mismatch");
  }
  for (Variable* var : model.variables()) {
    const std::uint32_t name_len = read_u32(in);
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in || name != var->name()) {
      throw std::invalid_argument("checkpoint: variable name mismatch (" +
                                  name + " vs " + var->name() + ")");
    }
    const std::uint32_t rank = read_u32(in);
    std::vector<std::size_t> dims(rank);
    for (auto& d : dims) d = read_u32(in);
    if (!(tensor::Shape(dims) == var->value().shape())) {
      throw std::invalid_argument("checkpoint: shape mismatch at " + name);
    }
    in.read(reinterpret_cast<char*>(var->value().data()),
            static_cast<std::streamsize>(var->size() * sizeof(float)));
    if (!in) throw std::runtime_error("checkpoint: truncated tensor data");
  }
}

void load_checkpoint(Model& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  load_checkpoint(model, in);
}

std::vector<std::uint8_t> serialize_checkpoint(const Model& model) {
  std::ostringstream out(std::ios::binary);
  save_checkpoint(model, out);
  const std::string s = out.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

void restore_checkpoint(Model& model, const std::vector<std::uint8_t>& buf) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(buf.data()), buf.size()),
      std::ios::binary);
  load_checkpoint(model, in);
}

}  // namespace dlion::nn

#include "nn/conv2d.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace dlion::nn {

Conv2D::Conv2D(std::string name, std::size_t in_channels,
               std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, bool fuse_relu)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      fuse_relu_(fuse_relu),
      weight_(name + "/W",
              tensor::Shape{out_channels, in_channels * kernel * kernel}),
      bias_(name + "/b", tensor::Shape{out_channels}) {}

void Conv2D::init_weights(common::Rng& rng) {
  const double fan_in = static_cast<double>(in_c_ * k_ * k_);
  const double std = std::sqrt(2.0 / fan_in);
  for (auto& w : weight_.value().span()) {
    w = static_cast<float>(rng.normal(0.0, std));
  }
  bias_.value().fill(0.0f);
}

tensor::Tensor Conv2D::forward(const tensor::Tensor& input, bool /*train*/) {
  if (input.shape().rank() != 4 || input.shape()[1] != in_c_) {
    throw std::invalid_argument("Conv2D::forward: expected (N, " +
                                std::to_string(in_c_) + ", H, W), got " +
                                input.shape().to_string());
  }
  cached_input_ = input;
  const std::size_t n = input.shape()[0];
  const std::size_t h = input.shape()[2], w = input.shape()[3];
  const std::size_t oh = tensor::conv_out_dim(h, k_, stride_, pad_);
  const std::size_t ow = tensor::conv_out_dim(w, k_, stride_, pad_);
  const std::size_t col_rows = in_c_ * k_ * k_;
  const std::size_t col_cols = oh * ow;

  float* cols = cols_.ensure(n * col_rows * col_cols);
  tensor::Tensor out(tensor::Shape{n, out_c_, oh, ow});
  for (std::size_t i = 0; i < n; ++i) {
    float* col = cols + i * col_rows * col_cols;
    const float* img = input.data() + i * in_c_ * h * w;
    tensor::im2col(img, in_c_, h, w, k_, k_, stride_, pad_, col);
    // out_i (out_c x col_cols) = W (out_c x col_rows) * col
    tensor::gemm(false, false, out_c_, col_cols, col_rows, 1.0f,
                 weight_.value().data(), col, 0.0f,
                 out.data() + i * out_c_ * col_cols);
  }
  if (fuse_relu_) {
    // Fused epilogue: bias + ReLU + mask in one pass over the activations.
    float* mask = mask_.ensure(n * out_c_ * col_cols);
    tensor::add_bias_channels_relu(out.data(), n, out_c_, col_cols,
                                   bias_.value().data(), mask);
  } else {
    tensor::add_bias_channels(out.data(), n, out_c_, col_cols,
                              bias_.value().data());
  }
  return out;
}

tensor::Tensor Conv2D::backward(const tensor::Tensor& grad_output) {
  const std::size_t n = cached_input_.shape()[0];
  const std::size_t h = cached_input_.shape()[2];
  const std::size_t w = cached_input_.shape()[3];
  const std::size_t oh = tensor::conv_out_dim(h, k_, stride_, pad_);
  const std::size_t ow = tensor::conv_out_dim(w, k_, stride_, pad_);
  const std::size_t col_rows = in_c_ * k_ * k_;
  const std::size_t col_cols = oh * ow;
  if (grad_output.shape().rank() != 4 || grad_output.shape()[0] != n ||
      grad_output.shape()[1] != out_c_ || grad_output.shape()[2] != oh ||
      grad_output.shape()[3] != ow) {
    throw std::invalid_argument("Conv2D::backward: bad grad shape " +
                                grad_output.shape().to_string());
  }

  const float* dy = grad_output.data();
  if (fuse_relu_) {
    // ReLU backward first: dy <- dy * mask (into reusable scratch).
    const std::size_t total = n * out_c_ * col_cols;
    float* masked = dy_masked_.ensure(total);
    tensor::apply_mask(dy, mask_.data(), masked, total);
    dy = masked;
  }
  tensor::Tensor grad_in(cached_input_.shape());
  float* dcol = dcol_.ensure(col_rows * col_cols);
  for (std::size_t i = 0; i < n; ++i) {
    const float* dout = dy + i * out_c_ * col_cols;
    const float* col = cols_.data() + i * col_rows * col_cols;
    // dW += dout (out_c x col_cols) * col^T (col_cols x col_rows)
    tensor::gemm(false, true, out_c_, col_rows, col_cols, 1.0f, dout, col,
                 1.0f, weight_.grad().data());
    // dcol = W^T (col_rows x out_c) * dout
    tensor::gemm(true, false, col_rows, col_cols, out_c_, 1.0f,
                 weight_.value().data(), dout, 0.0f, dcol);
    tensor::col2im(dcol, in_c_, h, w, k_, k_, stride_, pad_,
                   grad_in.data() + i * in_c_ * h * w);
    // db += per-channel sums of dout
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* plane = dout + oc * col_cols;
      float acc = 0.0f;
      for (std::size_t p = 0; p < col_cols; ++p) acc += plane[p];
      bias_.grad()[oc] += acc;
    }
  }
  return grad_in;
}

std::vector<Variable*> Conv2D::variables() { return {&weight_, &bias_}; }

DepthwiseConv2D::DepthwiseConv2D(std::string name, std::size_t channels,
                                 std::size_t kernel, std::size_t stride,
                                 std::size_t pad)
    : c_(channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_(name + "/W", tensor::Shape{channels, kernel * kernel}),
      bias_(name + "/b", tensor::Shape{channels}) {}

void DepthwiseConv2D::init_weights(common::Rng& rng) {
  const double std = std::sqrt(2.0 / static_cast<double>(k_ * k_));
  for (auto& w : weight_.value().span()) {
    w = static_cast<float>(rng.normal(0.0, std));
  }
  bias_.value().fill(0.0f);
}

tensor::Tensor DepthwiseConv2D::forward(const tensor::Tensor& input,
                                        bool /*train*/) {
  if (input.shape().rank() != 4 || input.shape()[1] != c_) {
    throw std::invalid_argument("DepthwiseConv2D::forward: bad shape " +
                                input.shape().to_string());
  }
  cached_input_ = input;
  const std::size_t n = input.shape()[0];
  const std::size_t h = input.shape()[2], w = input.shape()[3];
  const std::size_t oh = tensor::conv_out_dim(h, k_, stride_, pad_);
  const std::size_t ow = tensor::conv_out_dim(w, k_, stride_, pad_);
  tensor::Tensor out(tensor::Shape{n, c_, oh, ow});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < c_; ++c) {
      const float* img = input.data() + (i * c_ + c) * h * w;
      const float* ker = weight_.value().data() + c * k_ * k_;
      float* dst = out.data() + (i * c_ + c) * oh * ow;
      const float b = bias_.value()[c];
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = b;
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(pad_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              acc += ker[ky * k_ + kx] *
                     img[static_cast<std::size_t>(iy) * w +
                         static_cast<std::size_t>(ix)];
            }
          }
          dst[oy * ow + ox] = acc;
        }
      }
    }
  }
  return out;
}

tensor::Tensor DepthwiseConv2D::backward(const tensor::Tensor& grad_output) {
  const std::size_t n = cached_input_.shape()[0];
  const std::size_t h = cached_input_.shape()[2];
  const std::size_t w = cached_input_.shape()[3];
  const std::size_t oh = tensor::conv_out_dim(h, k_, stride_, pad_);
  const std::size_t ow = tensor::conv_out_dim(w, k_, stride_, pad_);
  tensor::Tensor grad_in(cached_input_.shape());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < c_; ++c) {
      const float* img = cached_input_.data() + (i * c_ + c) * h * w;
      const float* dout = grad_output.data() + (i * c_ + c) * oh * ow;
      const float* ker = weight_.value().data() + c * k_ * k_;
      float* dker = weight_.grad().data() + c * k_ * k_;
      float* dimg = grad_in.data() + (i * c_ + c) * h * w;
      float dbias = 0.0f;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = dout[oy * ow + ox];
          dbias += g;
          for (std::size_t ky = 0; ky < k_; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                static_cast<std::ptrdiff_t>(pad_);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < k_; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              const std::size_t pix = static_cast<std::size_t>(iy) * w +
                                      static_cast<std::size_t>(ix);
              dker[ky * k_ + kx] += g * img[pix];
              dimg[pix] += g * ker[ky * k_ + kx];
            }
          }
        }
      }
      bias_.grad()[c] += dbias;
    }
  }
  return grad_in;
}

std::vector<Variable*> DepthwiseConv2D::variables() {
  return {&weight_, &bias_};
}

}  // namespace dlion::nn

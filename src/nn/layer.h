// Layer interface for the sequential model container.
//
// Layers own their Variables; forward caches whatever is needed for the
// matching backward call. A layer instance processes one minibatch at a
// time (forward immediately followed by backward), which is the access
// pattern of the training loop.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/variable.h"
#include "tensor/tensor.h"

namespace dlion::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `train` toggles train-only behaviour (e.g. dropout).
  virtual tensor::Tensor forward(const tensor::Tensor& input, bool train) = 0;

  /// Backward pass: consumes dL/d(output), accumulates dL/d(variables) into
  /// the layer's Variable grads, and returns dL/d(input).
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable variables (possibly empty). Pointers remain valid for the
  /// layer's lifetime.
  virtual std::vector<Variable*> variables() { return {}; }

  /// Initialize weights (no-op for parameterless layers).
  virtual void init_weights(common::Rng& /*rng*/) {}

  /// Human-readable layer name for diagnostics.
  virtual const char* kind() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace dlion::nn

#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlion::nn {

tensor::Tensor softmax(const tensor::Tensor& logits) {
  if (logits.shape().rank() != 2) {
    throw std::invalid_argument("softmax: expected (batch, classes)");
  }
  const std::size_t batch = logits.shape()[0], classes = logits.shape()[1];
  tensor::Tensor probs(logits.shape());
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = logits.data() + i * classes;
    float* out = probs.data() + i * classes;
    const float mx = *std::max_element(row, row + classes);
    float denom = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) {
      out[c] = std::exp(row[c] - mx);
      denom += out[c];
    }
    const float inv = 1.0f / denom;
    for (std::size_t c = 0; c < classes; ++c) out[c] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels) {
  if (logits.shape().rank() != 2 || logits.shape()[0] != labels.size()) {
    throw std::invalid_argument(
        "softmax_cross_entropy: logits/labels mismatch");
  }
  const std::size_t batch = logits.shape()[0], classes = logits.shape()[1];
  LossResult res;
  res.grad_logits = softmax(logits);
  double loss = 0.0;
  std::size_t correct = 0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto label = static_cast<std::size_t>(labels[i]);
    if (label >= classes) {
      throw std::out_of_range("softmax_cross_entropy: label out of range");
    }
    float* prow = res.grad_logits.data() + i * classes;
    const float p = std::max(prow[label], 1e-12f);
    loss -= std::log(p);
    const float* lrow = logits.data() + i * classes;
    const std::size_t argmax = static_cast<std::size_t>(
        std::max_element(lrow, lrow + classes) - lrow);
    if (argmax == label) ++correct;
    // dL/dlogits = (softmax - onehot) / batch
    prow[label] -= 1.0f;
    for (std::size_t c = 0; c < classes; ++c) prow[c] *= inv_batch;
  }
  res.loss = loss / static_cast<double>(batch);
  res.accuracy = static_cast<double>(correct) / static_cast<double>(batch);
  return res;
}

}  // namespace dlion::nn

// Stateful optimizers for single-machine training (tests, examples, and the
// local half of distributed updates when experimenting beyond plain SGD).
//
// The distributed systems in core/ apply Eq. 7 directly (plain SGD with
// weighted aggregation, as the paper does); these optimizers are the
// conventional alternatives a downstream user of the nn library expects.
#pragma once

#include <memory>
#include <vector>

#include "nn/model.h"

namespace dlion::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update step from the gradients currently stored in the
  /// model's variables.
  virtual void step(Model& model) = 0;
  virtual const char* name() const = 0;
};

/// SGD with optional momentum and weight decay:
///   v <- mu * v + g + wd * w ;  w <- w - lr * v
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void step(Model& model) override;
  const char* name() const override { return "sgd"; }
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;  // lazily sized per variable
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(Model& model) override;
  const char* name() const override { return "adam"; }

 private:
  double lr_, beta1_, beta2_, eps_;
  std::uint64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace dlion::nn

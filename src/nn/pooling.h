// Max pooling over NCHW tensors.
#pragma once

#include "nn/layer.h"

namespace dlion::nn {

class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(std::size_t kernel, std::size_t stride = 0);

  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  const char* kind() const override { return "MaxPool2D"; }

 private:
  std::size_t k_;
  std::size_t stride_;
  tensor::Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

/// Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPool : public Layer {
 public:
  tensor::Tensor forward(const tensor::Tensor& input, bool train) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  const char* kind() const override { return "GlobalAvgPool"; }

 private:
  tensor::Shape input_shape_;
};

}  // namespace dlion::nn

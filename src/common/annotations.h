// Clang thread-safety (capability) annotations, compiled out elsewhere.
//
// The static half of the concurrency audit (DESIGN.md "Correctness & static
// analysis"): these macros attach Clang's capability attributes to mutexes
// and the data they guard, so `clang++ -Wthread-safety` proves lock
// discipline at compile time — every access to a DLION_GUARDED_BY member
// must happen with its mutex held, acquire/release must pair, and a
// function's locking contract (DLION_REQUIRES / DLION_EXCLUDES) is checked
// at every call site. The build configuration `-DDLION_ANNOTATE=ON` turns
// the analysis into a hard gate (-Werror); see the CI `annotate` job.
//
// On GCC (the pinned build image) and on Clang without the attribute, every
// macro expands to nothing: annotations cost zero in code size, layout, and
// runtime, and never change overload resolution.
//
// Vocabulary (mirrors the Clang Thread Safety Analysis docs):
//
//   DLION_CAPABILITY(x)        the class IS a capability (our common::Mutex)
//   DLION_SCOPED_CAPABILITY    RAII class that acquires in its constructor
//                              and releases in its destructor (MutexLock)
//   DLION_GUARDED_BY(mu)       data member readable/writable only with `mu`
//   DLION_PT_GUARDED_BY(mu)    pointee (not the pointer) guarded by `mu`
//   DLION_REQUIRES(...)        caller must hold the listed capabilities
//   DLION_EXCLUDES(...)        caller must NOT hold them (deadlock guard)
//   DLION_ACQUIRE(...)         function acquires and does not release
//   DLION_RELEASE(...)         function releases a held capability
//   DLION_TRY_ACQUIRE(b, ...)  acquires iff the return value equals `b`
//   DLION_ASSERT_CAPABILITY    runtime-checked "I already hold this"
//   DLION_RETURN_CAPABILITY(x) function returns a reference to capability x
//   DLION_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (constructors of
//                              the primitives themselves, test shims)
//
// Only `std::mutex` wrapped as common::Mutex participates: libstdc++ does
// not annotate its primitives, so a bare std::mutex member is invisible to
// the analysis (and flagged by dlion-lint's `dlion-unannotated-mutex`).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define DLION_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef DLION_THREAD_ANNOTATION
#define DLION_THREAD_ANNOTATION(x)  // expands to nothing on GCC/MSVC
#endif

#define DLION_CAPABILITY(x) DLION_THREAD_ANNOTATION(capability(x))
#define DLION_SCOPED_CAPABILITY DLION_THREAD_ANNOTATION(scoped_lockable)
#define DLION_GUARDED_BY(x) DLION_THREAD_ANNOTATION(guarded_by(x))
#define DLION_PT_GUARDED_BY(x) DLION_THREAD_ANNOTATION(pt_guarded_by(x))
#define DLION_REQUIRES(...) \
  DLION_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define DLION_EXCLUDES(...) \
  DLION_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define DLION_ACQUIRE(...) \
  DLION_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DLION_RELEASE(...) \
  DLION_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DLION_TRY_ACQUIRE(...) \
  DLION_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define DLION_ASSERT_CAPABILITY(x) \
  DLION_THREAD_ANNOTATION(assert_capability(x))
#define DLION_RETURN_CAPABILITY(x) DLION_THREAD_ANNOTATION(lock_returned(x))
#define DLION_ACQUIRED_BEFORE(...) \
  DLION_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DLION_ACQUIRED_AFTER(...) \
  DLION_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define DLION_NO_THREAD_SAFETY_ANALYSIS \
  DLION_THREAD_ANNOTATION(no_thread_safety_analysis)

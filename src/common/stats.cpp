#include "common/stats.h"

#include <cmath>

namespace dlion::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  if (xs.size() != ys.size() || xs.size() < 2) return fit;
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  fit.n = xs.size();
  return fit;
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double population_stddev(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean_of(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace dlion::common

// Minimal leveled logger used across the library.
//
// Experiments are driven from bench binaries whose primary output is the
// reproduced table/figure rows, so the default level is kWarn; set
// DLION_LOG=debug|info|warn|error (env) or call set_level() to change it.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace dlion::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log level accessor. Initialized from the DLION_LOG environment
/// variable on first use.
LogLevel log_level();
void set_log_level(LogLevel level);
LogLevel parse_log_level(std::string_view name);

namespace detail {
/// Stream-style log line that flushes on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dlion::common

#define DLION_LOG(level)                                                  \
  ::dlion::common::detail::LogLine(::dlion::common::LogLevel::k##level, \
                                   __FILE__, __LINE__)

#define DLION_DEBUG DLION_LOG(Debug)
#define DLION_INFO DLION_LOG(Info)
#define DLION_WARN DLION_LOG(Warn)
#define DLION_ERROR DLION_LOG(Error)

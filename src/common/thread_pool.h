// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The simulation core is deliberately single-threaded (determinism - see
// DESIGN.md), but the numeric substrate benefits from data parallelism on
// multi-core hosts: Model::compute_gradients over a large batch, dataset
// synthesis, and repeated-experiment sweeps are all embarrassingly
// parallel. parallel_for partitions [begin, end) into contiguous chunks,
// runs them on the pool plus the calling thread, and rethrows the first
// worker exception - per the Core Guidelines (CP.21 ff.): RAII-joined
// threads, no detach, tasks not raw threads.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace dlion::common {

class ThreadPool {
 public:
  /// `threads` = 0 uses hardware_concurrency() - 1 (at least 1 worker when
  /// the hardware reports more than one core; otherwise the pool is empty
  /// and parallel_for degrades to a serial loop on the caller).
  /// `threads` = kNoWorkers requests an explicitly empty pool.
  explicit ThreadPool(std::size_t threads = 0);

  /// Constructor sentinel: an empty pool (parallel_for runs serially on the
  /// caller), as opposed to 0 = "size from the hardware".
  static constexpr std::size_t kNoWorkers = static_cast<std::size_t>(-1);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Run fn(i) for i in [begin, end), partitioned into ~grain-sized chunks
  /// across the pool and the calling thread. Blocks until every index has
  /// run. The first exception thrown by any chunk is rethrown here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Shared process-wide pool. Sized from the DLION_THREADS environment
  /// variable when set (the value is the total worker-thread count; 1 means
  /// "no pool workers, caller only"), otherwise from the hardware. The
  /// numeric kernels are bit-deterministic at any pool size (see
  /// DESIGN.md "Numeric kernels"), so this knob trades wall-clock only.
  static ThreadPool& global();

  /// Replace the global pool. `total_threads` follows the DLION_THREADS
  /// convention: 0 = hardware default, 1 = serial (no workers), n > 1 =
  /// n - 1 pool workers plus the caller. Testing hook for the kernel
  /// determinism suite; must not be called while another thread is inside
  /// parallel_for.
  static void reset_global_for_testing(std::size_t total_threads);

 private:
  void enqueue(std::function<void()> task) DLION_EXCLUDES(mutex_);
  void worker_loop() DLION_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ DLION_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ DLION_GUARDED_BY(mutex_) = false;
};

}  // namespace dlion::common

// Reusable scratch memory for the training hot path.
//
// Two building blocks, both designed so that steady-state training performs
// zero heap allocations in the numeric kernels:
//
//  * ScratchArena - a bump allocator over a list of retained blocks. Alloc
//    is a pointer increment; Scope rewinds the arena on destruction without
//    releasing memory, so the next step reuses the same cache-warm pages.
//    One arena per thread (`ScratchArena::tls()`): the GEMM driver's packing
//    buffers and gradient-selection temporaries live here, including the
//    per-task panels inside ThreadPool workers.
//
//  * ScratchBuffer - a grow-only 64-byte-aligned float buffer for state
//    that must survive between two calls (e.g. a conv layer's im2col matrix
//    cached from forward for backward). Layers own these as members, which
//    makes them per-worker automatically (each simulated worker owns its
//    model and therefore its layers).
//
// Neither type is thread-safe by itself; the thread-local accessor is the
// intended sharing model (Core Guidelines CP.2: avoid data races by
// construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace dlion::common {

/// Bump allocator with retained capacity. Allocations are 64-byte aligned
/// and valid until the matching rewind (see Scope). Blocks grow
/// geometrically and are never shrunk, so a warmed-up arena allocates
/// nothing from the heap.
class ScratchArena {
 public:
  static constexpr std::size_t kAlignment = 64;
  static constexpr std::size_t kMinBlockBytes = 1 << 16;  // 64 KiB

  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Thread-local arena. Worker threads in the global ThreadPool each see
  /// their own instance, so parallel GEMM tasks can pack panels without
  /// synchronization.
  static ScratchArena& tls() {
    thread_local ScratchArena arena;
    return arena;
  }

  /// 64-byte-aligned allocation of `bytes` bytes. Contents are
  /// uninitialized. Never returns nullptr (throws std::bad_alloc on
  /// exhaustion like operator new).
  void* alloc_bytes(std::size_t bytes) {
    if (bytes == 0) bytes = kAlignment;
    bytes = round_up(bytes);
    if (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      if (b.used + bytes <= b.size) {
        void* p = b.data.get() + b.used;
        b.used += bytes;
        return p;
      }
      // Current block exhausted: move to the next retained block that fits,
      // or fall through to grow.
      for (std::size_t i = current_ + 1; i < blocks_.size(); ++i) {
        if (blocks_[i].used == 0 && bytes <= blocks_[i].size) {
          current_ = i;
          blocks_[i].used = bytes;
          return blocks_[i].data.get();
        }
      }
    }
    return grow_and_alloc(bytes);
  }

  /// Typed allocation of `n` elements of trivially-destructible T.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    return static_cast<T*>(alloc_bytes(n * sizeof(T)));
  }

  float* alloc_floats(std::size_t n) { return alloc<float>(n); }

  /// Opaque rewind point. rewind(m) releases every allocation made after
  /// mark() returned m (memory is retained for reuse).
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };

  Mark mark() const {
    Mark m;
    m.block = current_;
    m.used = current_ < blocks_.size() ? blocks_[current_].used : 0;
    return m;
  }

  void rewind(Mark m) {
    for (std::size_t i = m.block + 1; i < blocks_.size(); ++i) {
      blocks_[i].used = 0;
    }
    if (m.block < blocks_.size()) blocks_[m.block].used = m.used;
    current_ = m.block;
  }

  /// Rewind everything (retaining capacity).
  void reset() { rewind(Mark{}); }

  /// RAII rewind: every arena allocation made while the Scope is alive is
  /// released when it dies. Scopes nest.
  class Scope {
   public:
    explicit Scope(ScratchArena& arena) : arena_(arena), mark_(arena.mark()) {}
    ~Scope() { arena_.rewind(mark_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ScratchArena& arena_;
    Mark mark_;
  };

  /// Total bytes of retained block capacity (for telemetry/tests).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes currently handed out.
  std::size_t bytes_in_use() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.used;
    return total;
  }

 private:
  struct AlignedByteDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t(kAlignment));
    }
  };

  struct Block {
    std::unique_ptr<std::byte[], AlignedByteDelete> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static std::size_t round_up(std::size_t bytes) {
    return (bytes + kAlignment - 1) & ~(kAlignment - 1);
  }

  void* grow_and_alloc(std::size_t bytes) {
    std::size_t size = kMinBlockBytes;
    if (!blocks_.empty()) size = blocks_.back().size * 2;
    if (size < bytes) size = round_up(bytes);
    Block b;
    b.data.reset(new (std::align_val_t(kAlignment)) std::byte[size]);
    b.size = size;
    b.used = bytes;
    blocks_.push_back(std::move(b));
    current_ = blocks_.size() - 1;
    return blocks_.back().data.get();
  }

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
};

/// Grow-only 64-byte-aligned float buffer. ensure(n) reallocates only when
/// n exceeds the retained capacity, so repeated same-shape calls (the
/// training-loop pattern) allocate once and then never again.
class ScratchBuffer {
 public:
  /// Returns a pointer to at least `n` floats (uninitialized beyond what
  /// the caller wrote previously; capacity is retained across calls).
  float* ensure(std::size_t n) {
    if (n > capacity_) {
      std::size_t cap = capacity_ == 0 ? 256 : capacity_;
      while (cap < n) cap *= 2;
      data_.reset(new (std::align_val_t(ScratchArena::kAlignment)) float[cap]);
      capacity_ = cap;
    }
    size_ = n;
    return data_.get();
  }

  float* data() { return data_.get(); }
  const float* data() const { return data_.get(); }
  /// Elements covered by the last ensure() call.
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

 private:
  struct AlignedDelete {
    void operator()(float* p) const {
      ::operator delete[](p, std::align_val_t(ScratchArena::kAlignment));
    }
  };
  std::unique_ptr<float[], AlignedDelete> data_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dlion::common

// Contract macros: the runtime half of the determinism audit layer.
//
// Three tiers (DESIGN.md "Correctness & static analysis"):
//
//   DLION_ASSERT(cond [, detail])       always-on, cheap invariants. Use for
//                                       checks on the order of a compare on
//                                       state that is already in a register
//                                       (index bounds on a cold path, event-
//                                       time monotonicity, non-empty pops).
//   DLION_DCHECK(cond [, detail])       debug/sanitize-only. Free in release
//                                       builds (compiled but discarded), so
//                                       it may sit on hot paths and perform
//                                       O(n) scans. Enabled whenever NDEBUG
//                                       is unset or the build is sanitized
//                                       (DLION_SANITIZE=address/thread).
//   DLION_CHECK_SHAPE(a, b)             always-on tensor-shape agreement;
//                                       failure messages include both shapes.
//
// A failed contract calls the process-wide failure handler: by default it
// logs `file:line: MACRO(expr) failed: detail` and aborts (binaries want a
// core dump at the violation, not an unwound stack). Tests install the
// throwing mode via ScopedContractThrow and assert on ContractViolation, so
// every contract is unit-testable without death tests.
//
// These macros guard *internal invariants* — states the program logically
// cannot reach. Errors a caller can trigger with bad input (malformed wire
// bytes, user-supplied config) keep their typed exceptions
// (comm::DecodeError, std::invalid_argument); contracts are not control
// flow.
#pragma once

#include <stdexcept>
#include <string>

namespace dlion::common {

/// Thrown by failed contracts when the failure mode is kThrow (tests).
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

enum class ContractFailureMode {
  kAbort,  ///< log to stderr, then std::abort() (default; binaries)
  kThrow,  ///< throw ContractViolation (tests)
};

ContractFailureMode contract_failure_mode();
void set_contract_failure_mode(ContractFailureMode mode);

/// RAII: switch contract failures to throwing for the enclosing scope.
/// Restores the previous mode on destruction. Used by tests:
///
///   common::ScopedContractThrow guard;
///   EXPECT_THROW(queue.pop(), common::ContractViolation);
class ScopedContractThrow {
 public:
  ScopedContractThrow();
  ~ScopedContractThrow();
  ScopedContractThrow(const ScopedContractThrow&) = delete;
  ScopedContractThrow& operator=(const ScopedContractThrow&) = delete;

 private:
  ContractFailureMode previous_;
};

/// Report a failed contract. Aborts or throws per the failure mode; never
/// returns normally.
[[noreturn]] void contract_fail(const char* macro, const char* file, int line,
                                const char* expr,
                                const std::string& detail = {});

/// True when DLION_DCHECK bodies are active in this build.
#if !defined(NDEBUG) || defined(DLION_SANITIZE_BUILD) || \
    defined(DLION_FORCE_DCHECKS)
inline constexpr bool kDchecksEnabled = true;
#else
inline constexpr bool kDchecksEnabled = false;
#endif

}  // namespace dlion::common

/// Always-on invariant. Optional second argument: a std::string (or
/// convertible) with extra context, evaluated only on failure.
#define DLION_ASSERT(cond, ...)                                        \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::dlion::common::contract_fail("DLION_ASSERT", __FILE__,         \
                                     __LINE__, #cond __VA_OPT__(, )    \
                                         __VA_ARGS__);                 \
    }                                                                  \
  } while (0)

/// Debug/sanitize-only invariant; the condition is compiled (names stay
/// checked) but discarded in plain release builds.
#define DLION_DCHECK(cond, ...)                                        \
  do {                                                                 \
    if constexpr (::dlion::common::kDchecksEnabled) {                  \
      if (!(cond)) [[unlikely]] {                                      \
        ::dlion::common::contract_fail("DLION_DCHECK", __FILE__,       \
                                       __LINE__, #cond __VA_OPT__(, )  \
                                           __VA_ARGS__);               \
      }                                                                \
    }                                                                  \
  } while (0)

/// Always-on shape agreement for anything with operator== and to_string()
/// (tensor::Shape). The failure message carries both shapes.
#define DLION_CHECK_SHAPE(a, b)                                        \
  do {                                                                 \
    if (!((a) == (b))) [[unlikely]] {                                  \
      ::dlion::common::contract_fail(                                  \
          "DLION_CHECK_SHAPE", __FILE__, __LINE__, #a " == " #b,       \
          (a).to_string() + " vs " + (b).to_string());                 \
    }                                                                  \
  } while (0)

#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace dlion::common {

namespace {
// Process-wide failure mode. Plain global (not thread_local): tests that
// install the throwing mode do so before spawning pool work, and the
// simulator core is single-threaded by design.
ContractFailureMode g_mode = ContractFailureMode::kAbort;

std::string format_failure(const char* macro, const char* file, int line,
                           const char* expr, const std::string& detail) {
  std::string out;
  out.reserve(128);
  out += file;
  out += ':';
  out += std::to_string(line);
  out += ": ";
  out += macro;
  out += '(';
  out += expr;
  out += ") failed";
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}
}  // namespace

ContractFailureMode contract_failure_mode() { return g_mode; }

void set_contract_failure_mode(ContractFailureMode mode) { g_mode = mode; }

ScopedContractThrow::ScopedContractThrow() : previous_(g_mode) {
  g_mode = ContractFailureMode::kThrow;
}

ScopedContractThrow::~ScopedContractThrow() { g_mode = previous_; }

void contract_fail(const char* macro, const char* file, int line,
                   const char* expr, const std::string& detail) {
  const std::string msg = format_failure(macro, file, line, expr, detail);
  if (g_mode == ContractFailureMode::kThrow) {
    throw ContractViolation(msg);
  }
  // Abort path: write straight to stderr (the logger's level gate must not
  // be able to swallow a contract violation) and die where it happened.
  std::fprintf(stderr, "[dlion] contract violation: %s\n", msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dlion::common

// Annotated mutual-exclusion primitives.
//
// Thin, zero-overhead wrappers over the standard primitives that carry the
// Clang capability attributes from common/annotations.h. libstdc++ ships
// std::mutex without annotations, so a bare std::mutex is a blind spot for
// `-Wthread-safety`; wrapping it once here lets every lock in the tree
// participate in the analysis. dlion-lint's `dlion-unannotated-mutex` rule
// enforces the convention: mutex members are declared as common::Mutex and
// the data they protect is tagged DLION_GUARDED_BY.
//
// Locking style rules (checked statically under -DDLION_ANNOTATE=ON and
// textually by dlion-lint everywhere):
//
//   * hold locks through MutexLock, never bare lock()/unlock() pairs — an
//     exception between the pair leaks the lock (`dlion-lock-no-raii`);
//   * no lambda predicates on CondVar::wait from annotated scopes: Clang
//     analyzes a lambda body as a separate unlocked function, so spell the
//     predicate as a `while (!cond) cv.wait(mu);` loop instead.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace dlion::common {

class CondVar;

/// std::mutex with the `capability` attribute: the unit of lock discipline
/// the thread-safety analysis reasons about. Constexpr-constructible, so
/// file-scope instances need no dynamic initialization.
class DLION_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DLION_ACQUIRE() { m_.lock(); }
  void unlock() DLION_RELEASE() { m_.unlock(); }
  bool try_lock() DLION_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock over a Mutex (a scoped capability: acquires on construction,
/// releases on destruction). The only sanctioned way to hold a Mutex.
class DLION_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DLION_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() DLION_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over common::Mutex. wait() takes the Mutex itself
/// (which the caller must hold — DLION_REQUIRES) rather than a lock object,
/// mirroring absl::CondVar, so the analysis sees the capability stay
/// logically held across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, block, and reacquire before returning. The
  /// caller must hold `mu` (and, as with any condition variable, re-check
  /// its predicate in a loop).
  void wait(Mutex& mu) DLION_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait and
    // release the unique_lock's ownership claim afterwards: the capability
    // is held on entry and on exit, exactly as annotated.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dlion::common

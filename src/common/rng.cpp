#include "common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace dlion::common {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation would be faster; modulo
  // bias is negligible for n << 2^64 and this is not on a hot path.
  return next() % n;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller transform.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace dlion::common

// Console table / CSV reporting used by the bench harness to print the
// reproduced rows of each paper table and figure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dlion::common {

/// A simple column-aligned text table with an optional CSV dump. Cells are
/// strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add_* calls append cells to it.
  Table& row();
  Table& cell(std::string value);
  Table& cell(double value, int precision = 3);
  Table& cell(long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<long long>(value));
  }

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with aligned columns.
  void print(std::ostream& os) const;
  /// Render as CSV (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds as e.g. "1234.5s".
std::string format_seconds(double s);
/// Format a fraction as a percentage, e.g. 0.715 -> "71.5%".
std::string format_percent(double fraction, int precision = 1);

}  // namespace dlion::common

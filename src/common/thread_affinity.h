// Debug-only single-thread ownership checker.
//
// The dynamic counterpart of the capability annotations for classes that
// are *lock-free by contract*: the tracer, trace sinks, metrics registry,
// payload arena, and fabric are all documented "driven from the simulation
// thread" and deliberately carry no mutex (DESIGN.md "Correctness & static
// analysis"). That contract used to live only in comments; ThreadAffinity
// makes it checkable. An owning class embeds one and calls
// DLION_AFFINITY_DCHECK(affinity_) at its mutating entry points:
//
//   * the first checked call binds the affinity to the calling thread,
//   * every later call DLION_DCHECKs that it is the same thread.
//
// Like DLION_DCHECK itself, the check is active in debug and sanitizer
// builds and compiles to nothing in plain release builds, so hot paths
// (tracer record, metrics bump, arena acquire) pay zero in the measured
// configurations. Under TSan the check complements race detection: TSan
// needs two racing accesses to fire, ThreadAffinity flags the *first*
// off-thread call even if it happens to be data-race-free.
//
// The binding is sticky for the object's lifetime; an object that must
// legitimately migrate between phases (none today) would reset() between
// them, with the reset itself serialized by the caller.
#pragma once

#include <atomic>
#include <thread>

#include "common/check.h"

namespace dlion::common {

class ThreadAffinity {
 public:
  ThreadAffinity() = default;
  // Copy/move never transfers the binding: a copied-from object starts
  // unbound on whichever thread first touches it.
  ThreadAffinity(const ThreadAffinity&) {}
  ThreadAffinity& operator=(const ThreadAffinity&) { return *this; }

  /// True when the calling thread owns (or just became the owner of) this
  /// affinity. Binds on first call. Thread-safe: concurrent first calls
  /// race on the CAS and exactly one binds; the loser returns false.
  bool check() const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id bound = owner_.load(std::memory_order_relaxed);
    if (bound == std::thread::id{}) {
      // Acquire/release so the winner's binding is visible to the loser's
      // failure report rather than reading a torn default.
      if (owner_.compare_exchange_strong(  // dlion-lint: allow(dlion-atomic-rmw-order)
              bound, self, std::memory_order_acq_rel)) {
        return true;
      }
    }
    return bound == self;
  }

  /// Forget the binding (caller serializes against all users).
  void reset() { owner_.store(std::thread::id{}, std::memory_order_relaxed); }

  bool bound() const {
    return owner_.load(std::memory_order_relaxed) != std::thread::id{};
  }

 private:
  mutable std::atomic<std::thread::id> owner_{std::thread::id{}};
};

}  // namespace dlion::common

/// Assert (debug/sanitize builds) that the calling thread owns `affinity`.
#define DLION_AFFINITY_DCHECK(affinity)                                   \
  DLION_DCHECK((affinity).check(),                                        \
               "off-thread access to a single-thread-affine object (see " \
               "common/thread_affinity.h)")

// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the repository (data synthesis, minibatch
// sampling, weight initialization, resource jitter) draws from an Rng seeded
// from the experiment seed, so a run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace dlion::common {

/// SplitMix64 — used to expand a single 64-bit seed into a full state.
/// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 256-bit state.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6c696f6eULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator (for per-worker streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dlion::common

// Key/value configuration with typed getters and a tiny CLI parser.
//
// Bench binaries accept "--key=value" flags (e.g. --scale=paper --seed=7) and
// fall back to DLION_<KEY> environment variables, so experiments can be
// re-run at different scales without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace dlion::common {

class Config {
 public:
  Config() = default;

  /// Parse "--key=value" and "--flag" arguments. Non-flag arguments are
  /// ignored. Later flags override earlier ones.
  static Config from_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);
  bool contains(std::string_view key) const;

  std::string get_string(std::string_view key, std::string fallback) const;
  long long get_int(std::string_view key, long long fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;

  /// Looks up the key in the config, then in the environment as
  /// DLION_<KEY-upper-cased> (with '-' mapped to '_').
  std::optional<std::string> lookup(std::string_view key) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace dlion::common

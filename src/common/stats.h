// Small statistics toolkit: summary statistics with confidence intervals,
// simple ordinary-least-squares linear regression (used by the LBS
// controller's RCP estimation, §3.2 of the paper), and an EWMA smoother
// (used by the network resource monitor).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dlion::common {

/// Streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator). 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Half-width of the 95% confidence interval on the mean assuming
  /// normality (1.96 * stderr). 0 if fewer than 2 samples.
  double ci95_halfwidth() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of ordinary least squares y = intercept + slope * x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;          ///< coefficient of determination
  std::size_t n = 0;        ///< number of points

  double predict(double x) const { return intercept + slope * x; }
};

/// Fit y = a + b x by OLS. Requires xs.size() == ys.size() >= 2 and
/// non-constant xs; otherwise returns a fit with n == 0.
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Exponentially weighted moving average. alpha in (0, 1]; alpha = 1 keeps
/// only the latest observation.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void add(double x);
  bool empty() const { return !initialized_; }
  double value() const { return value_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Population standard deviation of a vector (n denominator); 0 if empty.
double population_stddev(std::span<const double> xs);
double mean_of(std::span<const double> xs);

}  // namespace dlion::common

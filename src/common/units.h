// Unit helpers. Simulated time is a plain double in seconds; bandwidths are
// expressed in megabits per second as in the paper's Tables 2 and 3. These
// helpers keep conversions explicit at call sites.
#pragma once

#include <cstdint>

namespace dlion::common {

/// Simulated time, seconds.
using SimTime = double;

/// Bytes transferred over the simulated network.
using Bytes = std::uint64_t;

constexpr double kBitsPerByte = 8.0;

/// Seconds to transfer `bytes` over a link of `mbps` megabits/second.
constexpr double transfer_seconds(Bytes bytes, double mbps) {
  if (mbps <= 0.0) return 1e18;  // effectively unreachable link
  return static_cast<double>(bytes) * kBitsPerByte / (mbps * 1e6);
}

constexpr Bytes kib(std::uint64_t n) { return n * 1024ULL; }
constexpr Bytes mib(std::uint64_t n) { return n * 1024ULL * 1024ULL; }

/// Megabytes (10^6) — the paper quotes model sizes in MB.
constexpr Bytes mb(std::uint64_t n) { return n * 1000ULL * 1000ULL; }

}  // namespace dlion::common

#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace dlion::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return cell(ss.str());
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << v << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& r : rows_) print_row(r);
}

std::string format_seconds(double s) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(1) << s << "s";
  return ss.str();
}

std::string format_percent(double fraction, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return ss.str();
}

}  // namespace dlion::common

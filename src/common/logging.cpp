#include "common/logging.h"

#include <atomic>
#include <cstdlib>

namespace dlion::common {

namespace {
std::atomic<int> g_level{-1};  // -1 = not yet initialized

LogLevel init_from_env() {
  const char* env = std::getenv("DLION_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  return parse_log_level(env);
}
}  // namespace

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return LogLevel::kWarn;
}

LogLevel log_level() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = static_cast<int>(init_from_env());
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= log_level()) {
  if (enabled_) {
    std::string_view path(file);
    const auto slash = path.find_last_of('/');
    if (slash != std::string_view::npos) path.remove_prefix(slash + 1);
    stream_ << "[" << level_name(level) << " " << path << ":" << line << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << '\n';
    std::cerr << stream_.str();
  }
}

}  // namespace detail
}  // namespace dlion::common

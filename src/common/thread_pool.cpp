#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace dlion::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == kNoWorkers) {
    threads = 0;
  } else if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n = end - begin;
  // Serial fast path: no workers, or too little work to amortize dispatch.
  if (workers_.empty() || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t parties = workers_.size() + 1;  // pool + caller
  const std::size_t chunk =
      std::max(grain, (n + parties - 1) / parties);
  struct Shared {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> remaining;
    std::mutex m;
    std::condition_variable done;
    std::exception_ptr error;
    std::mutex error_m;
  } shared;
  shared.next.store(begin);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  shared.remaining.store(num_chunks);

  auto run_chunk = [&shared, &fn, end, chunk] {
    const std::size_t start =
        shared.next.fetch_add(chunk, std::memory_order_relaxed);
    if (start < end) {
      const std::size_t stop = std::min(end, start + chunk);
      try {
        for (std::size_t i = start; i < stop; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.error_m);
        if (!shared.error) shared.error = std::current_exception();
      }
    }
    if (shared.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(shared.m);
      shared.done.notify_one();
    }
  };

  // The caller executes one chunk itself; the rest go to the pool.
  for (std::size_t c = 1; c < num_chunks; ++c) enqueue(run_chunk);
  run_chunk();
  {
    std::unique_lock<std::mutex> lock(shared.m);
    shared.done.wait(lock, [&shared] {
      return shared.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (shared.error) std::rethrow_exception(shared.error);
}

namespace {
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

// Maps the DLION_THREADS convention (total threads including the caller)
// onto a ThreadPool constructor argument: 0/unset = hardware default,
// 1 = explicitly empty pool, n > 1 = n - 1 workers.
std::size_t ctor_arg_from_total(long total) {
  if (total <= 0) return 0;  // hardware default
  if (total == 1) return ThreadPool::kNoWorkers;
  return static_cast<std::size_t>(total - 1);
}

std::size_t ctor_arg_from_env() {
  const char* env = std::getenv("DLION_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 0 && v <= 1024) {
      return ctor_arg_from_total(v);
    }
  }
  return 0;  // hardware default
}
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& pool = global_slot();
  if (!pool) pool = std::make_unique<ThreadPool>(ctor_arg_from_env());
  return *pool;
}

void ThreadPool::reset_global_for_testing(std::size_t total_threads) {
  std::lock_guard<std::mutex> lock(global_mutex());
  global_slot() = std::make_unique<ThreadPool>(
      ctor_arg_from_total(static_cast<long>(total_threads)));
}

}  // namespace dlion::common

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace dlion::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n = end - begin;
  // Serial fast path: no workers, or too little work to amortize dispatch.
  if (workers_.empty() || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t parties = workers_.size() + 1;  // pool + caller
  const std::size_t chunk =
      std::max(grain, (n + parties - 1) / parties);
  struct Shared {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> remaining;
    std::mutex m;
    std::condition_variable done;
    std::exception_ptr error;
    std::mutex error_m;
  } shared;
  shared.next.store(begin);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  shared.remaining.store(num_chunks);

  auto run_chunk = [&shared, &fn, end, chunk] {
    const std::size_t start =
        shared.next.fetch_add(chunk, std::memory_order_relaxed);
    if (start < end) {
      const std::size_t stop = std::min(end, start + chunk);
      try {
        for (std::size_t i = start; i < stop; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.error_m);
        if (!shared.error) shared.error = std::current_exception();
      }
    }
    if (shared.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(shared.m);
      shared.done.notify_one();
    }
  };

  // The caller executes one chunk itself; the rest go to the pool.
  for (std::size_t c = 1; c < num_chunks; ++c) enqueue(run_chunk);
  run_chunk();
  {
    std::unique_lock<std::mutex> lock(shared.m);
    shared.done.wait(lock, [&shared] {
      return shared.remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (shared.error) std::rethrow_exception(shared.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace dlion::common

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/annotations.h"
#include "common/mutex.h"

namespace dlion::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == kNoWorkers) {
    threads = 0;
  } else if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? hw - 1 : 0;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Spelled as a loop, not a lambda predicate: Clang's thread-safety
      // analysis treats a lambda body as a separate (unlocked) function,
      // so guarded members must be read inline where the lock is visible.
      while (!stop_ && tasks_.empty()) cv_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n = end - begin;
  // Serial fast path: no workers, or too little work to amortize dispatch.
  if (workers_.empty() || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t parties = workers_.size() + 1;  // pool + caller
  const std::size_t chunk =
      std::max(grain, (n + parties - 1) / parties);
  struct Shared {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> remaining;
    // Wait-only mutex: the guarded condition is `remaining == 0`, an
    // atomic read, so there is no non-atomic state to DLION_GUARDED_BY.
    Mutex m;  // dlion-lint: allow(dlion-unannotated-mutex)
    CondVar done;
    Mutex error_m;
    std::exception_ptr error DLION_GUARDED_BY(error_m);
  } shared;
  shared.next.store(begin);
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  shared.remaining.store(num_chunks);

  auto run_chunk = [&shared, &fn, end, chunk] {
    const std::size_t start =
        shared.next.fetch_add(chunk, std::memory_order_relaxed);
    if (start < end) {
      const std::size_t stop = std::min(end, start + chunk);
      try {
        for (std::size_t i = start; i < stop; ++i) fn(i);
      } catch (...) {
        MutexLock lock(shared.error_m);
        if (!shared.error) shared.error = std::current_exception();
      }
    }
    // acq_rel, not relaxed: the release half publishes this chunk's writes
    // (fn side effects, a captured shared.error) to whichever party observes
    // the count hit zero via the paired acquire load below; the acquire half
    // makes the last decrementer see every earlier chunk's writes before it
    // signals completion.
    if (shared.remaining.fetch_sub(  // dlion-lint: allow(dlion-atomic-rmw-order)
            1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(shared.m);
      shared.done.notify_one();
    }
  };

  // The caller executes one chunk itself; the rest go to the pool.
  for (std::size_t c = 1; c < num_chunks; ++c) enqueue(run_chunk);
  run_chunk();
  {
    MutexLock lock(shared.m);
    while (shared.remaining.load(std::memory_order_acquire) != 0) {
      shared.done.wait(shared.m);
    }
  }
  std::exception_ptr error;
  {
    MutexLock lock(shared.error_m);
    error = shared.error;
  }
  if (error) std::rethrow_exception(error);
}

namespace {
// File-scope (not function-local static) so the pointer can carry a
// DLION_GUARDED_BY the analysis enforces at every access. Both are
// constinit-safe; destruction order within this TU is the reverse of
// declaration, so the pool dies before its mutex.
constinit Mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool DLION_GUARDED_BY(g_global_mutex);

// Maps the DLION_THREADS convention (total threads including the caller)
// onto a ThreadPool constructor argument: 0/unset = hardware default,
// 1 = explicitly empty pool, n > 1 = n - 1 workers.
std::size_t ctor_arg_from_total(long total) {
  if (total <= 0) return 0;  // hardware default
  if (total == 1) return ThreadPool::kNoWorkers;
  return static_cast<std::size_t>(total - 1);
}

std::size_t ctor_arg_from_env() {
  const char* env = std::getenv("DLION_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 0 && v <= 1024) {
      return ctor_arg_from_total(v);
    }
  }
  return 0;  // hardware default
}
}  // namespace

ThreadPool& ThreadPool::global() {
  MutexLock lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(ctor_arg_from_env());
  }
  return *g_global_pool;
}

void ThreadPool::reset_global_for_testing(std::size_t total_threads) {
  MutexLock lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(
      ctor_arg_from_total(static_cast<long>(total_threads)));
}

}  // namespace dlion::common

#include "common/config.h"

#include <cstdlib>

namespace dlion::common {

Config Config::from_args(int argc, const char* const* argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      cfg.set(std::string(arg), "true");
    } else {
      cfg.set(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    }
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const {
  return lookup(key).has_value();
}

std::optional<std::string> Config::lookup(std::string_view key) const {
  if (auto it = values_.find(key); it != values_.end()) return it->second;
  std::string env_key = "DLION_";
  for (char c : key) {
    env_key.push_back(c == '-' ? '_'
                               : static_cast<char>(std::toupper(
                                     static_cast<unsigned char>(c))));
  }
  if (const char* env = std::getenv(env_key.c_str()); env != nullptr) {
    return std::string(env);
  }
  return std::nullopt;
}

std::string Config::get_string(std::string_view key,
                               std::string fallback) const {
  if (auto v = lookup(key)) return *v;
  return fallback;
}

long long Config::get_int(std::string_view key, long long fallback) const {
  if (auto v = lookup(key)) {
    try {
      return std::stoll(*v);
    } catch (const std::exception&) {  // invalid_argument / out_of_range
      return fallback;
    }
  }
  return fallback;
}

double Config::get_double(std::string_view key, double fallback) const {
  if (auto v = lookup(key)) {
    try {
      return std::stod(*v);
    } catch (const std::exception&) {  // invalid_argument / out_of_range
      return fallback;
    }
  }
  return fallback;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  if (auto v = lookup(key)) {
    return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
  }
  return fallback;
}

}  // namespace dlion::common

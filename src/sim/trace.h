// Metric traces: time series recorded during a simulation, used to produce
// figure series (accuracy-vs-time curves, LBS traces, gradient-size traces).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/units.h"

namespace dlion::sim {

struct TracePoint {
  common::SimTime time;
  double value;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  /// Append a sample. Times must be non-decreasing (simulation clocks are
  /// monotone); lookups binary-search the time axis under that invariant.
  void record(common::SimTime t, double v) {
    points_.push_back({t, v});
    // NaN-ignoring running max (NaN only while no real value seen yet):
    // keeps time_to_reach's "skip NaN samples" semantics binary-searchable.
    const double prev =
        prefix_max_.empty() ? std::nan("") : prefix_max_.back();
    double cur = prev;
    if (std::isnan(prev)) {
      cur = v;
    } else if (!std::isnan(v)) {
      cur = std::max(prev, v);
    }
    prefix_max_.push_back(cur);
  }
  const std::vector<TracePoint>& points() const { return points_; }
  const std::string& name() const { return name_; }
  bool empty() const { return points_.empty(); }

  /// Last recorded value (NaN if empty).
  double last() const;
  /// Maximum value (NaN if empty).
  double max() const;
  /// Value at the last point with time <= t (NaN if none). O(log n).
  double value_at(common::SimTime t) const;
  /// Earliest time at which the trace reaches `threshold` (+inf if never).
  /// O(log n) via the running prefix-max index.
  common::SimTime time_to_reach(double threshold) const;

 private:
  std::string name_;
  std::vector<TracePoint> points_;
  /// prefix_max_[i] = max(points_[0..i].value): monotone, so the first
  /// crossing of a threshold can be binary-searched.
  std::vector<double> prefix_max_;
};

}  // namespace dlion::sim

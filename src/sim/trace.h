// Metric traces: time series recorded during a simulation, used to produce
// figure series (accuracy-vs-time curves, LBS traces, gradient-size traces).
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/units.h"

namespace dlion::sim {

struct TracePoint {
  common::SimTime time;
  double value;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::string name) : name_(std::move(name)) {}

  void record(common::SimTime t, double v) { points_.push_back({t, v}); }
  const std::vector<TracePoint>& points() const { return points_; }
  const std::string& name() const { return name_; }
  bool empty() const { return points_.empty(); }

  /// Last recorded value (NaN if empty).
  double last() const;
  /// Maximum value (NaN if empty).
  double max() const;
  /// Value at the last point with time <= t (NaN if none).
  double value_at(common::SimTime t) const;
  /// Earliest time at which the trace reaches `threshold` (+inf if never).
  common::SimTime time_to_reach(double threshold) const;

 private:
  std::string name_;
  std::vector<TracePoint> points_;
};

}  // namespace dlion::sim

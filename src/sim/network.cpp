#include "sim/network.h"

#include <cmath>

#include "common/check.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/track_names.h"
#include "obs/watchdog.h"

namespace dlion::sim {

namespace {
constexpr double kDefaultLanMbps = 1000.0;  // paper: 1 Gbps cluster links
constexpr double kDefaultLatency = 0.0002;  // 0.2 ms LAN RTT/2
}  // namespace

Network::Network(Engine& engine, std::size_t n_workers)
    : engine_(&engine),
      n_(n_workers),
      active_(n_workers),
      egress_(n_workers, Schedule(kDefaultLanMbps)),
      link_(n_workers, std::vector<Schedule>(n_workers,
                                             Schedule(kDefaultLanMbps))),
      latency_(n_workers, std::vector<double>(n_workers, kDefaultLatency)),
      queue_(n_workers, std::vector<std::deque<Pending>>(n_workers)),
      busy_(n_workers, std::vector<bool>(n_workers, false)),
      backlog_(n_workers, 0),
      stats_(n_workers) {}

void Network::set_egress(std::size_t worker, Schedule mbps) {
  egress_.at(worker) = std::move(mbps);
}

void Network::set_link(std::size_t from, std::size_t to, Schedule mbps) {
  link_.at(from).at(to) = std::move(mbps);
}

void Network::set_latency(std::size_t from, std::size_t to, double seconds) {
  latency_.at(from).at(to) = seconds;
}

void Network::set_all_latency(double seconds) {
  for (auto& row : latency_) {
    std::fill(row.begin(), row.end(), seconds);
  }
}

void Network::set_obs(obs::Observability* o) {
  obs_ = o;
  obs_handles_.clear();
  obs_link_tracks_.clear();
  obs_tx_seconds_ = nullptr;
  if (o == nullptr) return;
  obs_handles_.resize(n_);
  obs_link_tracks_.assign(n_, std::vector<obs::TrackId>(n_, 0));
  obs::MetricsRegistry& m = o->metrics();
  for (std::size_t w = 0; w < n_; ++w) {
    const obs::Labels labels{{"worker", obs::id_str(w)}};
    obs_handles_[w].messages_sent = &m.counter("sim.net.messages_sent", labels);
    obs_handles_[w].bytes_sent = &m.counter("sim.net.bytes_sent", labels);
    obs_handles_[w].messages_dropped =
        &m.counter("sim.net.messages_dropped", labels);
    obs_handles_[w].bytes_dropped = &m.counter("sim.net.bytes_dropped", labels);
  }
  obs_tx_seconds_ = &m.histogram("sim.net.tx_seconds", {},
                                 obs::Histogram::default_time_bounds());
}

obs::TrackId Network::link_track(std::size_t from, std::size_t to) {
  obs::TrackId& id = obs_link_tracks_[from][to];
  if (id == 0) {
    id = obs_->tracer().track("network", obs::link_track(from, to));
  }
  return id;
}

void Network::record_drop(std::size_t from, std::size_t to,
                          common::Bytes bytes, const char* reason) {
  stats_[from].messages_dropped += 1;
  stats_[from].bytes_dropped += bytes;
  if (obs::on(obs_)) {
    obs_handles_[from].messages_dropped->inc();
    obs_handles_[from].bytes_dropped->inc(static_cast<double>(bytes));
    obs_->tracer().instant(link_track(from, to), reason, engine_->now(),
                           {{"bytes", static_cast<double>(bytes)}});
    if (obs::Watchdog* wd = obs_->watchdog()) wd->on_drop(engine_->now());
  }
}

void Network::set_active_workers(std::size_t active) {
  if (active == 0 || active > n_) {
    throw std::out_of_range("Network::set_active_workers");
  }
  active_ = active;
}

double Network::available_mbps(std::size_t from, std::size_t to) const {
  const common::SimTime t = engine_->now();
  // Fair share across the sender's *active* peers: with 4 live workers in a
  // 64-slot elastic cluster a sender splits its uplink 3 ways, not 63.
  const double peers = static_cast<double>(active_ > 1 ? active_ - 1 : 1);
  return std::min(egress_.at(from).at(t) / peers,
                  link_.at(from).at(to).at(t));
}

double Network::egress_mbps(std::size_t from) const {
  return egress_.at(from).at(engine_->now());
}

double Network::link_mbps(std::size_t from, std::size_t to) const {
  return link_.at(from).at(to).at(engine_->now());
}

common::Bytes Network::backlog_bytes(std::size_t from) const {
  return backlog_.at(from);
}

void Network::send(std::size_t from, std::size_t to, common::Bytes bytes,
                   std::function<void()> on_delivered, std::uint64_t flow) {
  if (from >= n_ || to >= n_) throw std::out_of_range("Network::send");
  if (from == to) {
    // Local delivery is immediate (intra-worker queues are in-memory);
    // a crashed worker cannot enqueue to itself.
    if (faults_ != nullptr && faults_->worker_down(from, engine_->now())) {
      record_drop(from, to, bytes, "drop_crashed");
      return;
    }
    engine_->after(0.0, std::move(on_delivered));
    return;
  }
  // Fault injection at enqueue time: a crashed endpoint, a blacked-out
  // link, or a loss draw drops the message before it consumes bandwidth.
  if (faults_ != nullptr) {
    const common::SimTime t = engine_->now();
    if (!faults_->link_usable(from, to, t) ||
        faults_->should_drop(from, to, t)) {
      record_drop(from, to, bytes, "drop_fault");
      return;  // on_delivered is never invoked for dropped transfers
    }
  }
  backlog_[from] += bytes;
  queue_[from][to].push_back(Pending{bytes, std::move(on_delivered), flow});
  if (!busy_[from][to]) start_next(from, to);
}

void Network::start_next(std::size_t from, std::size_t to) {
  DLION_DCHECK(from < n_ && to < n_ && from != to,
               "link endpoints out of range");
  auto& q = queue_[from][to];
  if (q.empty()) {
    busy_[from][to] = false;
    return;
  }
  busy_[from][to] = true;
  Pending msg = std::move(q.front());
  q.pop_front();
  // Backlog accounting contract: every queued transfer was charged to the
  // sender at enqueue and is released exactly once at transmission end.
  DLION_DCHECK(backlog_[from] >= msg.bytes,
               "uplink backlog underflow: releasing more bytes than queued");
  const double mbps = available_mbps(from, to);
  const double tx = common::transfer_seconds(msg.bytes, mbps);
  DLION_DCHECK(tx >= 0.0 && std::isfinite(tx),
               "non-finite transmission time");
  const double latency = latency_[from][to];
  stats_[from].bytes_sent += msg.bytes;
  stats_[from].messages_sent += 1;
  const common::Bytes bytes = msg.bytes;
  if (obs::on(obs_)) {
    // The transfer's duration is fixed at transmission start (rates are
    // sampled once), so the span can be recorded up front.
    obs_handles_[from].messages_sent->inc();
    obs_handles_[from].bytes_sent->inc(static_cast<double>(bytes));
    obs_tx_seconds_->observe(tx);
    const obs::TrackId track = link_track(from, to);
    obs_->tracer().complete(track, "tx", engine_->now(), engine_->now() + tx,
                            {{"bytes", static_cast<double>(bytes)},
                             {"mbps", mbps}});
    if (msg.flow != 0 && obs_->causal()) {
      // Flow step at the tx span's start: links the sender's flow start to
      // this link transmission (and from here to the delivery point).
      obs_->tracer().flow(track, obs::Tracer::FlowPhase::kStep, "flow",
                          engine_->now(), msg.flow);
    }
  }
  // Deliver after transmission + propagation; free the link after
  // transmission only.
  engine_->after(tx, [this, from, to, bytes, latency,
                      deliver = std::move(msg.on_delivered)]() mutable {
    backlog_[from] -= bytes;
    // Messages in flight when a crash window or blackout opens are lost at
    // transmission end (the wire went dark mid-transfer). The loss draw is
    // not repeated here: probabilistic loss applies once, at enqueue.
    if (faults_ != nullptr && !faults_->link_usable(from, to, engine_->now())) {
      record_drop(from, to, bytes, "drop_in_flight");
    } else {
      engine_->after(latency, std::move(deliver));
    }
    start_next(from, to);
  });
}

NetworkStats Network::total_stats() const {
  NetworkStats total;
  for (const auto& s : stats_) {
    total.bytes_sent += s.bytes_sent;
    total.messages_sent += s.messages_sent;
    total.messages_dropped += s.messages_dropped;
    total.bytes_dropped += s.bytes_dropped;
  }
  return total;
}

}  // namespace dlion::sim

#include "sim/trace.h"

#include <algorithm>
#include <cmath>

namespace dlion::sim {

double Trace::last() const {
  return points_.empty() ? std::nan("") : points_.back().value;
}

double Trace::max() const {
  if (points_.empty()) return std::nan("");
  double m = points_.front().value;
  for (const auto& p : points_) m = std::max(m, p.value);
  return m;
}

double Trace::value_at(common::SimTime t) const {
  double v = std::nan("");
  for (const auto& p : points_) {
    if (p.time > t) break;
    v = p.value;
  }
  return v;
}

common::SimTime Trace::time_to_reach(double threshold) const {
  for (const auto& p : points_) {
    if (p.value >= threshold) return p.time;
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace dlion::sim

#include "sim/trace.h"

#include <algorithm>
#include <cmath>

namespace dlion::sim {

double Trace::last() const {
  return points_.empty() ? std::nan("") : points_.back().value;
}

double Trace::max() const {
  if (points_.empty()) return std::nan("");
  double m = points_.front().value;
  for (const auto& p : points_) m = std::max(m, p.value);
  return m;
}

double Trace::value_at(common::SimTime t) const {
  // Binary search for the first point with time > t; the answer is the
  // point just before it (NaN when t precedes the first sample). With
  // duplicate times this lands on the *last* duplicate <= t, matching the
  // old linear scan.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](common::SimTime lhs, const TracePoint& p) { return lhs < p.time; });
  if (it == points_.begin()) return std::nan("");
  return std::prev(it)->value;
}

common::SimTime Trace::time_to_reach(double threshold) const {
  // The NaN-ignoring prefix-max series is non-decreasing once a real value
  // appears, so the first index whose running max reaches `threshold` —
  // which is exactly the first *point* with value >= threshold — is
  // binary-searchable. NaN entries never satisfy >=, matching the old
  // scan's behaviour.
  const auto it = std::partition_point(
      prefix_max_.begin(), prefix_max_.end(),
      [threshold](double running_max) { return !(running_max >= threshold); });
  if (it == prefix_max_.end()) {
    return std::numeric_limits<double>::infinity();
  }
  return points_[static_cast<std::size_t>(it - prefix_max_.begin())].time;
}

}  // namespace dlion::sim

#include "sim/fault_injector.h"

#include <algorithm>
#include <stdexcept>

namespace dlion::sim {

namespace {

bool in_window(common::SimTime t, common::SimTime start, common::SimTime end) {
  return t >= start && t < end;
}

void check_window(common::SimTime start, common::SimTime end,
                  const char* what) {
  if (!(start >= 0.0) || !(end > start)) {
    throw std::invalid_argument(std::string(what) +
                                ": window must satisfy 0 <= start < end");
  }
}

}  // namespace

FaultSchedule& FaultSchedule::crash(std::size_t worker, common::SimTime start,
                                    common::SimTime end) {
  check_window(start, end, "FaultSchedule::crash");
  crashes.push_back({worker, start, end});
  return *this;
}

FaultSchedule& FaultSchedule::blackout(std::size_t from, std::size_t to,
                                       common::SimTime start,
                                       common::SimTime end) {
  check_window(start, end, "FaultSchedule::blackout");
  if (from == to) {
    throw std::invalid_argument("FaultSchedule::blackout: self link");
  }
  blackouts.push_back({from, to, start, end});
  return *this;
}

FaultSchedule& FaultSchedule::partition(const std::vector<std::size_t>& group_a,
                                        const std::vector<std::size_t>& group_b,
                                        common::SimTime start,
                                        common::SimTime end) {
  check_window(start, end, "FaultSchedule::partition");
  for (std::size_t a : group_a) {   // validate before mutating: a failed
    for (std::size_t b : group_b) {  // builder must leave no partial state
      if (a == b) {
        throw std::invalid_argument(
            "FaultSchedule::partition: groups overlap");
      }
    }
  }
  for (std::size_t a : group_a) {
    for (std::size_t b : group_b) {
      blackouts.push_back({a, b, start, end});
      blackouts.push_back({b, a, start, end});
    }
  }
  return *this;
}

FaultSchedule& FaultSchedule::lossy(std::size_t from, std::size_t to,
                                    double probability, common::SimTime start,
                                    common::SimTime end) {
  check_window(start, end, "FaultSchedule::lossy");
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument(
        "FaultSchedule::lossy: probability must be in [0, 1]");
  }
  if (from == to) {
    throw std::invalid_argument("FaultSchedule::lossy: self link");
  }
  losses.push_back({from, to, probability, start, end});
  return *this;
}

namespace {
void check_event_time(common::SimTime t, const char* what) {
  if (!(t >= 0.0)) {
    throw std::invalid_argument(std::string(what) + ": time must be >= 0");
  }
}
}  // namespace

MembershipSchedule& MembershipSchedule::join(std::size_t worker,
                                             common::SimTime time,
                                             std::size_t machine) {
  check_event_time(time, "MembershipSchedule::join");
  events.push_back({worker, time, /*join=*/true, machine});
  return *this;
}

MembershipSchedule& MembershipSchedule::leave(std::size_t worker,
                                              common::SimTime time) {
  check_event_time(time, "MembershipSchedule::leave");
  events.push_back({worker, time, /*join=*/false,
                    MembershipEvent::kSameMachine});
  return *this;
}

MembershipSchedule& MembershipSchedule::flash_crowd(std::size_t first,
                                                    std::size_t count,
                                                    common::SimTime start,
                                                    double stagger_s) {
  check_event_time(start, "MembershipSchedule::flash_crowd");
  for (std::size_t k = 0; k < count; ++k) {
    join(first + k, start + static_cast<double>(k) * stagger_s);
  }
  return *this;
}

MembershipSchedule& MembershipSchedule::scale_in(std::size_t first,
                                                 std::size_t count,
                                                 common::SimTime start,
                                                 double stagger_s) {
  check_event_time(start, "MembershipSchedule::scale_in");
  for (std::size_t k = 0; k < count; ++k) {
    leave(first + count - 1 - k, start + static_cast<double>(k) * stagger_s);
  }
  return *this;
}

std::vector<MembershipEvent> MembershipSchedule::sorted_events() const {
  std::vector<MembershipEvent> out = events;
  // Stable: simultaneous events replay in insertion order, so a schedule is
  // a total order and the controller's epoch sequence is reproducible.
  std::stable_sort(out.begin(), out.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.time < b.time;
                   });
  return out;
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : schedule_(std::move(schedule)), rng_(schedule_.seed) {}

bool FaultInjector::worker_down(std::size_t worker, common::SimTime t) const {
  for (const auto& c : schedule_.crashes) {
    if (c.worker == worker && in_window(t, c.start, c.end)) return true;
  }
  return false;
}

bool FaultInjector::link_blacked_out(std::size_t from, std::size_t to,
                                     common::SimTime t) const {
  for (const auto& b : schedule_.blackouts) {
    if (b.from == from && b.to == to && in_window(t, b.start, b.end)) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::link_usable(std::size_t from, std::size_t to,
                                common::SimTime t) const {
  return !worker_down(from, t) && !worker_down(to, t) &&
         !link_blacked_out(from, to, t);
}

double FaultInjector::loss_probability(std::size_t from, std::size_t to,
                                       common::SimTime t) const {
  // Independent rules compose: P(survive) = prod(1 - p_i).
  double survive = 1.0;
  for (const auto& l : schedule_.losses) {
    if (l.from == from && l.to == to && in_window(t, l.start, l.end)) {
      survive *= 1.0 - l.probability;
    }
  }
  return 1.0 - survive;
}

bool FaultInjector::should_drop(std::size_t from, std::size_t to,
                                common::SimTime t) {
  const double p = loss_probability(from, to, t);
  if (p <= 0.0) return false;
  const bool drop = rng_.bernoulli(p);
  if (drop) ++loss_drops_;
  return drop;
}

}  // namespace dlion::sim

// Piecewise-constant time-varying resource values.
//
// Every heterogeneity/dynamism knob in the paper's Table 3 (CPU cores per
// worker, per-worker bandwidth, the Dynamic SYS A/B phase changes) is a
// schedule: a value that holds until the next breakpoint.
#pragma once

#include <initializer_list>
#include <vector>

#include "common/units.h"

namespace dlion::sim {

class Schedule {
 public:
  /// Constant forever.
  explicit Schedule(double value) : points_{{0.0, value}} {}

  /// Breakpoints (time, value); times must be ascending and start at 0.
  Schedule(std::initializer_list<std::pair<common::SimTime, double>> points);
  explicit Schedule(std::vector<std::pair<common::SimTime, double>> points);

  double at(common::SimTime t) const;

  /// Earliest breakpoint strictly after `t`, or +inf if none.
  common::SimTime next_change_after(common::SimTime t) const;

  bool is_constant() const { return points_.size() == 1; }
  const std::vector<std::pair<common::SimTime, double>>& points() const {
    return points_;
  }

  /// Shift all breakpoints by `offset` (the value before the first shifted
  /// breakpoint is the original t=0 value). Used to compose phase sequences.
  Schedule shifted(common::SimTime offset) const;

 private:
  void validate() const;
  std::vector<std::pair<common::SimTime, double>> points_;
};

/// Concatenate phases: each (schedule, duration) pair plays in order; the
/// last phase's final value holds forever. Used for Dynamic SYS A/B.
Schedule concat_phases(
    const std::vector<std::pair<Schedule, common::SimTime>>& phases);

}  // namespace dlion::sim

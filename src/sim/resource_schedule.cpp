#include "sim/resource_schedule.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace dlion::sim {

Schedule::Schedule(
    std::initializer_list<std::pair<common::SimTime, double>> points)
    : points_(points) {
  validate();
}

Schedule::Schedule(std::vector<std::pair<common::SimTime, double>> points)
    : points_(std::move(points)) {
  validate();
}

void Schedule::validate() const {
  if (points_.empty() || points_.front().first != 0.0) {
    throw std::invalid_argument("Schedule: must start at t=0");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first <= points_[i - 1].first) {
      throw std::invalid_argument("Schedule: breakpoints must be ascending");
    }
  }
}

double Schedule::at(common::SimTime t) const {
  // Last breakpoint with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](common::SimTime v, const auto& p) { return v < p.first; });
  if (it == points_.begin()) return points_.front().second;
  return std::prev(it)->second;
}

common::SimTime Schedule::next_change_after(common::SimTime t) const {
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](common::SimTime v, const auto& p) { return v < p.first; });
  if (it == points_.end()) return std::numeric_limits<double>::infinity();
  return it->first;
}

Schedule Schedule::shifted(common::SimTime offset) const {
  std::vector<std::pair<common::SimTime, double>> pts;
  pts.reserve(points_.size() + 1);
  pts.emplace_back(0.0, points_.front().second);
  for (const auto& [t, v] : points_) {
    const common::SimTime shifted_t = t + offset;
    if (shifted_t <= 0.0) {
      pts.front().second = v;
    } else {
      pts.emplace_back(shifted_t, v);
    }
  }
  return Schedule(std::move(pts));
}

Schedule concat_phases(
    const std::vector<std::pair<Schedule, common::SimTime>>& phases) {
  if (phases.empty()) throw std::invalid_argument("concat_phases: empty");
  std::vector<std::pair<common::SimTime, double>> pts;
  common::SimTime offset = 0.0;
  for (const auto& [sched, duration] : phases) {
    for (const auto& [t, v] : sched.points()) {
      if (t >= duration) break;
      const common::SimTime at = offset + t;
      if (!pts.empty() && pts.back().first == at) {
        pts.back().second = v;
      } else {
        pts.emplace_back(at, v);
      }
    }
    offset += duration;
  }
  return Schedule(std::move(pts));
}

}  // namespace dlion::sim

// Time-ordered event queue for the discrete-event engine.
//
// Ties on time are broken by insertion sequence number, which makes every
// simulation fully deterministic (same seed -> same event interleaving).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/units.h"

namespace dlion::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`. Returns an id usable with cancel().
  EventId push(common::SimTime t, EventFn fn);

  /// Cancel a pending event. Cancelling an id that already ran (or was
  /// already cancelled) is a no-op. Returns true if something was removed.
  bool cancel(EventId id);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Time of the earliest pending event; only valid if !empty().
  common::SimTime next_time() const { return events_.begin()->first.first; }

  struct Popped {
    common::SimTime time;
    EventFn fn;
  };
  /// Pop and return the earliest event. Only valid if !empty().
  Popped pop();

 private:
  using Key = std::pair<common::SimTime, EventId>;
  std::map<Key, EventFn> events_;
  std::unordered_map<EventId, common::SimTime> alive_;
  EventId next_id_ = 0;
};

}  // namespace dlion::sim

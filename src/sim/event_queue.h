// Time-ordered event queue for the discrete-event engine.
//
// Ties on time are broken by insertion sequence number, which makes every
// simulation fully deterministic (same seed -> same event interleaving).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/units.h"

namespace dlion::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`. Returns an id usable with cancel().
  EventId push(common::SimTime t, EventFn fn);

  /// Cancel a pending event. Cancelling an id that already ran (or was
  /// already cancelled) is a no-op. Returns true if something was removed.
  bool cancel(EventId id);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Time of the earliest pending event; only valid if !empty().
  common::SimTime next_time() const;

  struct Popped {
    common::SimTime time;
    EventFn fn;
  };
  /// Pop and return the earliest event. Only valid if !empty().
  Popped pop();

 private:
  using Key = std::pair<common::SimTime, EventId>;
  std::map<Key, EventFn> events_;
  // Cancellation index only - never iterated, so its unordered layout can
  // not leak into event ordering (dlion-lint enforces the "never iterated"
  // half; the stable tie-break contract in pop() enforces the rest).
  std::unordered_map<EventId, common::SimTime> alive_;
  EventId next_id_ = 0;
  /// Monotonic pop clock backing the stable tie-break contract: pop() must
  /// never return an event earlier than one it already returned.
  common::SimTime last_popped_ = 0.0;
  EventId last_popped_id_ = 0;
  bool popped_any_ = false;
};

}  // namespace dlion::sim

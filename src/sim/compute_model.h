// Compute cost model: maps (model profile, local batch size, available
// capacity at time t) to simulated iteration time.
//
// This replaces the paper's physical heterogeneity emulation (`stress` on a
// 24-core box, p2.xlarge vs p2.8xlarge instances). Capacity is expressed in
// "units" (CPU cores or GPUs); each unit sustains a calibrated FLOP rate.
// Iteration compute time = overhead + LBS * flops_per_sample /
// (units(t) * flops_per_unit). Calibration constants are chosen so that the
// paper's setups land in the paper's regimes: Cipher/24-core LAN iterations
// take ~0.2-0.5 s and a full 5 MB gradient exchange is comparable, while
// MobileNet on GPUs is strongly network-bound (§5.2.2).
#pragma once

#include "common/rng.h"
#include "nn/model_zoo.h"
#include "sim/resource_schedule.h"

namespace dlion::sim {

/// Per-unit sustained training throughput, FLOP/s.
constexpr double kCpuCoreFlops = 1.0e8;   ///< one 2016-era CPU core under TF
constexpr double kGpuUnitFlops = 1.0e11;  ///< one K80 GPU (p2.xlarge has 1)

struct ComputeSpec {
  Schedule units = Schedule(1.0);       ///< capacity units over time
  double flops_per_unit = kCpuCoreFlops;
  double iteration_overhead_s = 0.25;   ///< fixed per-iteration cost
  double jitter_frac = 0.0;             ///< +/- uniform noise on durations
};

/// One worker's compute resource.
class ComputeResource {
 public:
  ComputeResource(ComputeSpec spec, const nn::ModelProfile& profile,
                  std::uint64_t seed);

  /// Simulated seconds to compute gradients over `lbs` samples at time `t`.
  double iteration_seconds(std::size_t lbs, common::SimTime t);

  /// Capacity units currently available (for traces/tests).
  double units_at(common::SimTime t) const { return spec_.units.at(t); }

  /// Deterministic (jitter-free) iteration time; used by controllers that
  /// model the relationship between LBS and time.
  double nominal_iteration_seconds(std::size_t lbs, common::SimTime t) const;

  const ComputeSpec& spec() const { return spec_; }

 private:
  ComputeSpec spec_;
  double flops_per_sample_;
  common::Rng rng_;
};

}  // namespace dlion::sim

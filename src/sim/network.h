// Simulated network connecting n workers.
//
// Replaces the paper's LAN/WAN fabric and its `tc`-based shaping. Bandwidth
// is modelled two ways, matching the paper's two emulation styles:
//  - per-worker egress shaping (Table 3's per-worker Mbps values), and
//  - an explicit per-directed-link matrix (Table 2's Amazon region matrix).
//
// Transfers to different peers proceed in parallel (as parallel TCP streams
// do under tc shaping); transfers to the same peer queue FIFO on that link.
// A worker fanning out to its n-1 peers shares its shaped egress fairly, so
// the effective rate of link i->j is
//   min(egress_i(t) / (n-1), link_matrix[i][j](t)).
// A system that floods all peers with full gradients therefore saturates
// its uplink - the congestion behaviour the paper's techniques react to.
// Transfer duration is computed from the rate at transmission start;
// latency is added after transmission and does not occupy the link.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "obs/obs.h"
#include "sim/engine.h"
#include "sim/fault_injector.h"
#include "sim/resource_schedule.h"

namespace dlion::sim {

struct NetworkStats {
  common::Bytes bytes_sent = 0;
  std::uint64_t messages_sent = 0;
  /// Messages/bytes dropped by injected faults (crashes, blackouts, loss),
  /// attributed to the sender. Dropped transfers never deliver.
  std::uint64_t messages_dropped = 0;
  common::Bytes bytes_dropped = 0;
};

class Network {
 public:
  Network(Engine& engine, std::size_t n_workers);

  std::size_t size() const { return n_; }
  Engine& engine() { return *engine_; }

  /// Per-worker egress shaping (Mbps). Default: unshaped (1 Gbps LAN).
  void set_egress(std::size_t worker, Schedule mbps);
  /// Explicit directed-link bandwidth (Mbps); overrides the default.
  void set_link(std::size_t from, std::size_t to, Schedule mbps);
  /// One-way propagation latency for a directed link (seconds).
  void set_latency(std::size_t from, std::size_t to, double seconds);
  /// Set every link's latency.
  void set_all_latency(double seconds);

  /// Effective rate of i->j right now, Mbps: the fair egress share capped
  /// by the link matrix (what the paper's network resource monitor reports
  /// to the partial gradient generation module).
  double available_mbps(std::size_t from, std::size_t to) const;

  /// Number of workers currently participating in training, used as the
  /// egress fair-share divisor (a sender fans out to active-1 peers, not to
  /// every capacity slot). Defaults to the construction size, so networks
  /// that never call this behave exactly as before; the elastic-membership
  /// controller updates it on every roster change.
  void set_active_workers(std::size_t active);
  std::size_t active_workers() const { return active_; }

  /// Current egress shaping of a worker (Mbps) and raw link rate.
  double egress_mbps(std::size_t from) const;
  double link_mbps(std::size_t from, std::size_t to) const;

  /// Bytes queued (or in flight) across all of a sender's links.
  common::Bytes backlog_bytes(std::size_t from) const;

  /// Attach a fault injector (non-owning; may be nullptr to detach). When
  /// set, sends on unusable links and loss-draw casualties are dropped:
  /// their `on_delivered` is never invoked and the drop is counted in the
  /// sender's NetworkStats. Messages already in flight when a fault window
  /// opens are dropped at transmission end.
  void set_fault_injector(FaultInjector* injector) { faults_ = injector; }
  const FaultInjector* fault_injector() const { return faults_; }

  /// Enqueue a message of `bytes` on the i->j link; `on_delivered` runs at
  /// the receiver when the transfer (plus latency) completes. `flow` is an
  /// optional causal-flow id (comm::make_flow_id): when non-zero and an
  /// enabled observer is attached, the transmission's tx span is linked
  /// into the flow with a Chrome flow step so viewers draw send → transfer
  /// → deliver arrows. Purely observational — 0 and non-zero flows follow
  /// identical delivery paths.
  void send(std::size_t from, std::size_t to, common::Bytes bytes,
            std::function<void()> on_delivered, std::uint64_t flow = 0);

  const NetworkStats& stats(std::size_t from) const { return stats_[from]; }
  NetworkStats total_stats() const;

  /// Attach an observer (non-owning; nullptr detaches). The NetworkStats
  /// counters are mirrored into the registry (`sim.net.*{worker=i}`),
  /// transfer durations feed the `sim.net.tx_seconds` histogram, and each
  /// link transmission becomes a span on a "network / link i->j" track
  /// (fault drops become instants). Recording is passive: it never changes
  /// rates, ordering, or delivery.
  void set_obs(obs::Observability* o);

 private:
  struct Pending {
    common::Bytes bytes;
    std::function<void()> on_delivered;
    std::uint64_t flow = 0;  ///< causal-flow id (0 = unlinked)
  };

  /// Cached per-worker registry handles (resolved once in set_obs).
  struct ObsHandles {
    obs::Counter* messages_sent = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* messages_dropped = nullptr;
    obs::Counter* bytes_dropped = nullptr;
  };

  void start_next(std::size_t from, std::size_t to);
  /// Lazily created "network / link i->j" tracer track.
  obs::TrackId link_track(std::size_t from, std::size_t to);
  void record_drop(std::size_t from, std::size_t to, common::Bytes bytes,
                   const char* reason);

  Engine* engine_;
  std::size_t n_;
  std::size_t active_;  ///< egress fair-share divisor basis (default n_)
  std::vector<Schedule> egress_;
  std::vector<std::vector<Schedule>> link_;     // [from][to]
  std::vector<std::vector<double>> latency_;    // [from][to]
  std::vector<std::vector<std::deque<Pending>>> queue_;  // per-link FIFO
  std::vector<std::vector<bool>> busy_;         // link currently transmitting
  std::vector<common::Bytes> backlog_;          // queued + in-flight bytes
  std::vector<NetworkStats> stats_;
  FaultInjector* faults_ = nullptr;             // non-owning, optional

  obs::Observability* obs_ = nullptr;           // non-owning, optional
  std::vector<ObsHandles> obs_handles_;         // per worker
  obs::Histogram* obs_tx_seconds_ = nullptr;
  std::vector<std::vector<obs::TrackId>> obs_link_tracks_;  // lazy, 0=unset
};

}  // namespace dlion::sim

// The discrete-event simulation engine: a virtual clock plus the event
// queue. All distributed-training "threads" from the paper's Fig. 10 are
// expressed as events scheduled on one engine, which makes runs
// deterministic and decouples simulated time (the x-axis of every figure)
// from wall-clock time.
#pragma once

#include <cstdint>

#include "obs/obs.h"
#include "sim/event_queue.h"

namespace dlion::sim {

class Engine {
 public:
  common::SimTime now() const { return now_; }

  /// Schedule at an absolute time (must be >= now()).
  EventId at(common::SimTime t, EventFn fn);
  /// Schedule after a relative delay (delay >= 0).
  EventId after(common::SimTime delay, EventFn fn);
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run events until the queue is empty or the clock would pass `t_end`.
  /// The clock is left at min(t_end, time of last executed event); events
  /// scheduled beyond t_end remain pending.
  void run_until(common::SimTime t_end);

  /// Run until the queue drains completely.
  void run();

  /// Ask the running loop to stop after the current event. Pending events
  /// stay queued; a later run()/run_until() resumes them. Used by the
  /// watchdog's opt-in abort policy (WatchdogConfig::abort_on_fire) — the
  /// only sanctioned way observability feeds back into a run, and only when
  /// the caller explicitly asked for it.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t events_pending() const { return queue_.size(); }
  /// High-water mark of the pending-event queue (the simulator's own
  /// backlog — the profiling signal for ROADMAP item 1's scale push).
  std::size_t peak_events_pending() const { return peak_pending_; }

  /// Attach an observer (non-owning; nullptr detaches). Event dispatch is
  /// counted in the registry (`sim.events_executed`); the event-queue
  /// depth and its high-water mark are exported as gauges
  /// (`sim.queue.depth`, `sim.queue.peak_depth`), and — when the
  /// registry's RollupConfig enables windowing — dispatch rates land in a
  /// `sim.events_executed_windowed` series. Recording never schedules
  /// events or perturbs ordering.
  void set_obs(obs::Observability* o);
  obs::Observability* observability() { return obs_; }

 private:
  void note_executed();

  EventQueue queue_;
  common::SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  bool stop_requested_ = false;
  obs::Observability* obs_ = nullptr;   // non-owning, optional
  obs::Counter* obs_events_ = nullptr;  // cached registry handles
  obs::Gauge* obs_depth_ = nullptr;
  obs::Gauge* obs_peak_depth_ = nullptr;
  obs::Windowed* obs_events_windowed_ = nullptr;
};

}  // namespace dlion::sim

#include "sim/event_queue.h"

#include <cassert>

namespace dlion::sim {

EventId EventQueue::push(common::SimTime t, EventFn fn) {
  const EventId id = next_id_++;
  events_.emplace(Key{t, id}, std::move(fn));
  alive_.emplace(id, t);
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = alive_.find(id);
  if (it == alive_.end()) return false;
  events_.erase(Key{it->second, id});
  alive_.erase(it);
  return true;
}

EventQueue::Popped EventQueue::pop() {
  assert(!events_.empty());
  auto it = events_.begin();
  Popped popped{it->first.first, std::move(it->second)};
  alive_.erase(it->first.second);
  events_.erase(it);
  return popped;
}

}  // namespace dlion::sim

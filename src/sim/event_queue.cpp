#include "sim/event_queue.h"

#include <string>

#include "common/check.h"

namespace dlion::sim {

EventId EventQueue::push(common::SimTime t, EventFn fn) {
  const EventId id = next_id_++;
  events_.emplace(Key{t, id}, std::move(fn));
  alive_.emplace(id, t);
  DLION_DCHECK(alive_.size() == events_.size(),
               "cancellation index out of sync with event map");
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = alive_.find(id);
  if (it == alive_.end()) return false;
  events_.erase(Key{it->second, id});
  alive_.erase(it);
  DLION_DCHECK(alive_.size() == events_.size(),
               "cancellation index out of sync with event map");
  return true;
}

common::SimTime EventQueue::next_time() const {
  DLION_ASSERT(!events_.empty(), "next_time() on an empty queue");
  return events_.begin()->first.first;
}

EventQueue::Popped EventQueue::pop() {
  DLION_ASSERT(!events_.empty(), "pop() on an empty queue");
  auto it = events_.begin();
  // Stable tie-break ordering contract: events leave the queue in
  // nondecreasing (time, insertion-id) order, so two runs that push the
  // same events always execute them identically. A violation means either
  // the key ordering broke or someone scheduled into the popped past.
  DLION_DCHECK(!popped_any_ || it->first.first > last_popped_ ||
                   (it->first.first == last_popped_ &&
                    it->first.second > last_popped_id_),
               "pop order regressed: t=" + std::to_string(it->first.first) +
                   " id=" + std::to_string(it->first.second) + " after t=" +
                   std::to_string(last_popped_) + " id=" +
                   std::to_string(last_popped_id_));
  last_popped_ = it->first.first;
  last_popped_id_ = it->first.second;
  popped_any_ = true;
  Popped popped{it->first.first, std::move(it->second)};
  alive_.erase(it->first.second);
  events_.erase(it);
  return popped;
}

}  // namespace dlion::sim

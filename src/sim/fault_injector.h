// Deterministic fault injection for the simulated micro-cloud.
//
// Micro-clouds are built from transient, unreliable resources; the paper's
// motivating scenarios (co-located jobs, flaky WAN links, preemptible VMs)
// include outright failures, not just capacity changes. A FaultSchedule is a
// declarative list of faults:
//   - worker crash/recover windows (the worker is down in [start, end)),
//   - directed-link blackouts (messages on i->j are dropped in the window;
//     a partition is a set of blackouts covering every cross-group link),
//   - per-link message-loss probability windows (lossy links).
// The FaultInjector evaluates the schedule against the simulation clock and
// draws loss decisions from a seeded RNG, so every failure behaviour is
// bit-for-bit reproducible from the schedule + seed. An empty schedule
// injects nothing and consumes no randomness.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace dlion::sim {

/// Worker `worker` is down (crashed) for t in [start, end).
struct CrashWindow {
  std::size_t worker = 0;
  common::SimTime start = 0.0;
  common::SimTime end = 0.0;
};

/// Directed link `from -> to` drops every message for t in [start, end).
struct LinkBlackout {
  std::size_t from = 0;
  std::size_t to = 0;
  common::SimTime start = 0.0;
  common::SimTime end = 0.0;
};

/// Directed link `from -> to` loses each message independently with
/// `probability` for t in [start, end).
struct LossRule {
  std::size_t from = 0;
  std::size_t to = 0;
  double probability = 0.0;
  common::SimTime start = 0.0;
  common::SimTime end = 0.0;
};

struct FaultSchedule {
  std::vector<CrashWindow> crashes;
  std::vector<LinkBlackout> blackouts;
  std::vector<LossRule> losses;
  /// Seed for the loss-draw stream (independent of the experiment seed so a
  /// schedule reproduces identically across workloads).
  std::uint64_t seed = 0x4fa017u;

  bool empty() const {
    return crashes.empty() && blackouts.empty() && losses.empty();
  }

  /// Builder helpers (all return *this for chaining).
  FaultSchedule& crash(std::size_t worker, common::SimTime start,
                       common::SimTime end);
  FaultSchedule& blackout(std::size_t from, std::size_t to,
                          common::SimTime start, common::SimTime end);
  /// Blackout both directions of every link between `group_a` and `group_b`.
  FaultSchedule& partition(const std::vector<std::size_t>& group_a,
                           const std::vector<std::size_t>& group_b,
                           common::SimTime start, common::SimTime end);
  FaultSchedule& lossy(std::size_t from, std::size_t to, double probability,
                       common::SimTime start, common::SimTime end);
};

/// One elastic-membership change: worker `worker` joins (spins up and
/// bootstraps) or leaves (gracefully departs) the roster at `time`. When
/// `machine` is set (!= kSameMachine) the logical worker is bound to that
/// machine-pool slot on join — the VirtualFlow-style logical→physical remap.
struct MembershipEvent {
  std::size_t worker = 0;
  common::SimTime time = 0.0;
  bool join = true;
  /// Machine-pool index to bind the logical worker to (joins only).
  std::size_t machine = kSameMachine;

  static constexpr std::size_t kSameMachine = static_cast<std::size_t>(-1);
};

/// Declarative churn schedule for elastic membership, the roster-change
/// sibling of FaultSchedule: a crash is an involuntary failure the
/// fault-tolerance layer defends against, a membership event is a
/// *deliberate* roster change executed through the join/leave protocol
/// (roster epochs, multi-peer bootstrap). Events are replayed by the
/// MembershipController in (time, insertion) order, so a schedule is
/// bit-for-bit reproducible. Kept separate from FaultSchedule on purpose:
/// membership churn neither attaches a fault injector nor auto-enables the
/// fault-tolerance layer.
struct MembershipSchedule {
  std::vector<MembershipEvent> events;

  bool empty() const { return events.empty(); }

  /// Builder helpers (all return *this for chaining).
  MembershipSchedule& join(std::size_t worker, common::SimTime time,
                           std::size_t machine = MembershipEvent::kSameMachine);
  MembershipSchedule& leave(std::size_t worker, common::SimTime time);
  /// Flash crowd: workers [first, first+count) join one every `stagger_s`
  /// starting at `start`.
  MembershipSchedule& flash_crowd(std::size_t first, std::size_t count,
                                  common::SimTime start, double stagger_s);
  /// Scale-in: workers [first, first+count) leave (highest id first), one
  /// every `stagger_s` starting at `start`.
  MembershipSchedule& scale_in(std::size_t first, std::size_t count,
                               common::SimTime start, double stagger_s);
  /// Events sorted by (time, insertion order) — the deterministic replay
  /// order the MembershipController executes.
  std::vector<MembershipEvent> sorted_events() const;
};

/// Evaluates a FaultSchedule against the simulation clock. Pure queries
/// (worker_down / link_blacked_out / loss_probability) are stateless; the
/// drop decision `should_drop` consumes the seeded RNG stream only when a
/// loss rule is active, so schedules without loss rules stay RNG-free.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  const FaultSchedule& schedule() const { return schedule_; }

  /// True if `worker` is inside any of its crash windows at time `t`.
  bool worker_down(std::size_t worker, common::SimTime t) const;

  /// True if the directed link is inside a blackout window at time `t`.
  bool link_blacked_out(std::size_t from, std::size_t to,
                        common::SimTime t) const;

  /// Whether a message may traverse `from -> to` at time `t`: both
  /// endpoints up and no blackout in effect. (Loss is probabilistic and
  /// handled separately by should_drop.)
  bool link_usable(std::size_t from, std::size_t to, common::SimTime t) const;

  /// Message-loss probability in effect on the link at time `t` (the
  /// complement-product of all active loss rules; 0 if none).
  double loss_probability(std::size_t from, std::size_t to,
                          common::SimTime t) const;

  /// Deterministic per-message loss draw. Consumes one RNG value iff a loss
  /// rule is active on the link at `t`.
  bool should_drop(std::size_t from, std::size_t to, common::SimTime t);

  /// Messages dropped by loss draws so far (blackout/crash drops are
  /// counted by the network, which also sees the usability checks).
  std::uint64_t loss_drops() const { return loss_drops_; }

 private:
  FaultSchedule schedule_;
  common::Rng rng_;
  std::uint64_t loss_drops_ = 0;
};

}  // namespace dlion::sim

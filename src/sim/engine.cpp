#include "sim/engine.h"

#include <stdexcept>

namespace dlion::sim {

EventId Engine::at(common::SimTime t, EventFn fn) {
  if (t < now_) {
    throw std::invalid_argument("Engine::at: time in the past");
  }
  return queue_.push(t, std::move(fn));
}

EventId Engine::after(common::SimTime delay, EventFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("Engine::after: negative delay");
  }
  return queue_.push(now_ + delay, std::move(fn));
}

void Engine::run_until(common::SimTime t_end) {
  while (!queue_.empty() && queue_.next_time() <= t_end) {
    auto [time, fn] = queue_.pop();
    now_ = time;
    ++executed_;
    fn();
  }
  if (now_ < t_end) now_ = t_end;
}

void Engine::run() {
  while (!queue_.empty()) {
    auto [time, fn] = queue_.pop();
    now_ = time;
    ++executed_;
    fn();
  }
}

}  // namespace dlion::sim

#include "sim/engine.h"

#include <stdexcept>
#include <string>

#include "common/check.h"

namespace dlion::sim {

EventId Engine::at(common::SimTime t, EventFn fn) {
  if (t < now_) {
    throw std::invalid_argument("Engine::at: time in the past");
  }
  EventId id = queue_.push(t, std::move(fn));
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
  return id;
}

EventId Engine::after(common::SimTime delay, EventFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("Engine::after: negative delay");
  }
  EventId id = queue_.push(now_ + delay, std::move(fn));
  if (queue_.size() > peak_pending_) peak_pending_ = queue_.size();
  return id;
}

void Engine::set_obs(obs::Observability* o) {
  obs_ = o;
  obs_events_ = nullptr;
  obs_depth_ = nullptr;
  obs_peak_depth_ = nullptr;
  obs_events_windowed_ = nullptr;
  if (o == nullptr) return;
  obs::MetricsRegistry& m = o->metrics();
  obs_events_ = &m.counter("sim.events_executed");
  obs_depth_ = &m.gauge("sim.queue.depth");
  obs_peak_depth_ = &m.gauge("sim.queue.peak_depth");
  if (m.rollup().window_s > 0.0) {
    obs_events_windowed_ = &m.windowed("sim.events_executed_windowed");
  }
}

void Engine::note_executed() {
  ++executed_;
  if (obs::on(obs_)) {
    obs_events_->inc();
    obs_depth_->set(static_cast<double>(queue_.size()));
    obs_peak_depth_->set(static_cast<double>(peak_pending_));
    if (obs_events_windowed_ != nullptr) {
      obs_events_windowed_->observe(now_, 1.0);
    }
  }
}

void Engine::run_until(common::SimTime t_end) {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty() && queue_.next_time() <= t_end) {
    auto [time, fn] = queue_.pop();
    // Event-time monotonicity: the virtual clock never runs backwards.
    // at()/after() reject past times at the API edge; this catches any
    // internal path that would still manage to regress the clock.
    DLION_ASSERT(time >= now_, "clock would regress from t=" +
                                   std::to_string(now_) + " to t=" +
                                   std::to_string(time));
    now_ = time;
    note_executed();
    fn();
  }
  // A requested stop freezes the clock at the aborting event so callers
  // (and the watchdog's finalize) see when the run actually ended.
  if (!stop_requested_ && now_ < t_end) now_ = t_end;
}

void Engine::run() {
  stop_requested_ = false;
  while (!stop_requested_ && !queue_.empty()) {
    auto [time, fn] = queue_.pop();
    DLION_ASSERT(time >= now_, "clock would regress from t=" +
                                   std::to_string(now_) + " to t=" +
                                   std::to_string(time));
    now_ = time;
    note_executed();
    fn();
  }
}

}  // namespace dlion::sim

#include "sim/compute_model.h"

#include <algorithm>
#include <stdexcept>

namespace dlion::sim {

ComputeResource::ComputeResource(ComputeSpec spec,
                                 const nn::ModelProfile& profile,
                                 std::uint64_t seed)
    : spec_(std::move(spec)),
      flops_per_sample_(profile.nominal_flops_per_sample),
      rng_(seed) {
  if (flops_per_sample_ <= 0.0 || spec_.flops_per_unit <= 0.0) {
    throw std::invalid_argument("ComputeResource: non-positive rates");
  }
}

double ComputeResource::nominal_iteration_seconds(std::size_t lbs,
                                                  common::SimTime t) const {
  const double units = std::max(spec_.units.at(t), 1e-9);
  return spec_.iteration_overhead_s +
         static_cast<double>(lbs) * flops_per_sample_ /
             (units * spec_.flops_per_unit);
}

double ComputeResource::iteration_seconds(std::size_t lbs, common::SimTime t) {
  double s = nominal_iteration_seconds(lbs, t);
  if (spec_.jitter_frac > 0.0) {
    s *= 1.0 + rng_.uniform(-spec_.jitter_frac, spec_.jitter_frac);
  }
  return s;
}

}  // namespace dlion::sim

// Emulated micro-cloud environments: the paper's Table 3 (all eleven
// environments) and Table 2 (the measured Amazon 6-region WAN bandwidth
// matrix).
//
// Compute values are CPU cores per worker (CPU cluster) or GPU units
// (p2.xlarge = 1, p2.8xlarge = 8). Network values are per-worker egress
// Mbps, exactly as listed in Table 3; "LAN" means unshaped 1 Gbps.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/compute_model.h"
#include "sim/fault_injector.h"
#include "sim/network.h"

namespace dlion::exp {

struct Environment {
  std::string name;
  std::vector<sim::ComputeSpec> compute;
  std::function<void(sim::Network&)> network_setup;  ///< may be empty (LAN)
  bool gpu = false;  ///< uses GPU-calibrated compute (Homo C, Hetero SYS C)
  /// Deterministic fault schedule (empty for all Table 3 environments;
  /// non-empty in the churn environments below).
  sim::FaultSchedule faults;
  /// Scripted elastic-membership schedule (empty for every static
  /// environment). When non-empty, `compute.size()` is the slot *capacity*
  /// and `initial_workers` slots are live at t=0.
  sim::MembershipSchedule membership;
  /// Members at t=0 for elastic environments (0 = all slots live).
  std::size_t initial_workers = 0;

  bool elastic() const {
    return !membership.empty() ||
           (initial_workers > 0 && initial_workers < compute.size());
  }
};

/// Number of workers in every paper environment.
constexpr std::size_t kWorkers = 6;

/// Build a Table 3 environment by name: "Homo A", "Homo B", "Homo C",
/// "Hetero CPU A", "Hetero CPU B", "Hetero NET A", "Hetero NET B",
/// "Hetero SYS A", "Hetero SYS B", "Hetero SYS C",
/// "Dynamic SYS A", "Dynamic SYS B".
/// `phase_s` sets the per-phase duration of the dynamic environments
/// (paper: 500 s; default scales of benches pass smaller values).
Environment make_environment(const std::string& name, double phase_s = 500.0);

/// All Table 3 environment names, in the table's order.
std::vector<std::string> environment_names();

/// Table 2: measured bandwidth (Mbps) between six Amazon regions
/// (V, O, I, M, S1, S2). row = source, col = destination; diagonal is LAN.
const std::vector<std::vector<double>>& wan_bandwidth_matrix();
const std::vector<std::string>& wan_region_names();

/// An environment whose 6 workers sit in the six Amazon regions with the
/// Table 2 matrix as per-link bandwidth (used by the §3 exploratory
/// studies' "emulated 6-worker cluster").
Environment make_wan_matrix_environment();

/// Churn scenario knobs for make_churn_environment. All times are simulated
/// seconds from the start of the run.
struct ChurnSpec {
  /// Staggered worker crashes: the k-th crashed worker (counting from the
  /// highest worker id downward) is down for
  ///   [crash_start_s + k * stagger_s, crash_start_s + k * stagger_s +
  ///    downtime_s).
  std::size_t crashed_workers = 2;
  double crash_start_s = 60.0;
  double downtime_s = 60.0;
  double stagger_s = 30.0;
  /// Optional network partition splitting workers {0..2} from {3..5}
  /// (both directions of every cross-group link black out). Disabled when
  /// partition_end_s <= partition_start_s.
  double partition_start_s = 0.0;
  double partition_end_s = 0.0;
  /// Optional symmetric per-message loss probability on every link.
  double loss_probability = 0.0;
  double loss_start_s = 0.0;
  double loss_end_s = 0.0;
};

/// A Table 3 environment plus a deterministic churn fault schedule
/// (crashes, optional partition, optional lossy links). The micro-cloud
/// failure scenarios the paper motivates but does not evaluate.
Environment make_churn_environment(const std::string& base,
                                   const ChurnSpec& churn,
                                   double phase_s = 500.0);

/// Elastic-membership scenario family (DESIGN.md, "Elastic membership").
/// All three run the join/leave protocol with multi-peer bootstrap:
///   "flash-crowd" — 4 live slots of a 64-slot capacity; 60 joiners arrive
///     one every phase_s/80 s from 0.3*phase_s, then the roster scales back
///     in to 8 members starting at 2*phase_s (highest ids leave first).
///   "diurnal"     — 12-slot capacity, 6 live; slots 6..11 join through the
///     "day" (from 0.25*phase_s), leave at "night" (from 1.25*phase_s), and
///     rejoin the next "day" (from 2.25*phase_s) — capacity waves.
///   "scale-in"    — 8 live slots; 4 leave one-by-one from phase_s on,
///     exercising GBS/LBS renormalization without an accuracy cliff.
/// `phase_s` scales every event time (same knob as the dynamic
/// environments); schedules are deterministic functions of it.
Environment make_elastic_environment(const std::string& kind,
                                     double phase_s = 100.0);

/// The elastic scenario names, in documentation order.
std::vector<std::string> elastic_environment_names();

/// Homogeneous N-worker hierarchical micro-cloud topology for scale runs
/// (ROADMAP item 1; the paper stops at 6 nodes, the architecture doesn't):
/// workers are grouped into micro-clouds of `group_size`; links inside a
/// cloud run at LAN speed, links between clouds are capped at `inter_mbps`.
/// Used by bench/obs_overhead's --workers section and the obs-scale-smoke
/// CI job (256 workers, full observability, bounded trace memory).
Environment make_scale_environment(std::size_t n_workers,
                                   std::size_t group_size = 8,
                                   double inter_mbps = 200.0,
                                   double cores = 8.0);

/// Per-worker compute spec helpers.
sim::ComputeSpec cpu_cores(double cores);
sim::ComputeSpec cpu_cores(sim::Schedule cores);
sim::ComputeSpec gpu_units(double units);

}  // namespace dlion::exp

// Experiment runner shared by every bench binary: builds a Cluster for a
// (system, environment, workload) triple, runs it, and extracts the
// paper's metrics (§5.1.3): accuracy for a given training time, training
// time to a target accuracy, and converged accuracy. Repeated runs
// aggregate mean and 95% confidence interval like the paper's
// "average of three runs" protocol.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/stats.h"
#include "core/cluster.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "obs/telemetry.h"
#include "obs/watchdog.h"
#include "systems/registry.h"

namespace dlion::exp {

/// Scale knobs resolved from --scale=bench|paper (plus individual flags).
struct Scale {
  bool paper = false;
  double duration_s = 300.0;       ///< CPU-cluster figure window (paper: 1500)
  double gpu_duration_s = 300.0;   ///< GPU-cluster window (paper: 7200)
  double dynamic_phase_s = 100.0;  ///< dynamic env phase (paper: 500)
  std::size_t repeats = 1;         ///< runs averaged per cell (paper: 3)
  std::uint64_t seed = 42;
  /// Accuracy-measurement period in iterations (paper: 20). Bench scale
  /// uses 5 because simulated iterations are fewer per window.
  std::uint64_t eval_period_iters = 5;
  /// DKT period in iterations (paper: 100). Bench-scale windows hold far
  /// fewer iterations, so the period shrinks proportionally.
  std::uint64_t dkt_period_iters = 25;

  static Scale from_config(const common::Config& cfg);
};

/// Workload: dataset + model + tuned learning rate.
struct Workload {
  data::TrainTest data;
  std::string model;
  double learning_rate;
};

/// "cpu" = SynthCipher + Cipher model (lite unless paper scale);
/// "gpu" = SynthImageNet100 + MobileNet.
Workload make_workload(const std::string& kind, const Scale& scale);

struct RunSpec {
  std::string system = "dlion";      ///< systems::make_system name
  std::string environment = "Homo A";
  double duration_s = 300.0;
  double dynamic_phase_s = 100.0;
  std::uint64_t seed = 42;
  std::uint64_t eval_period_iters = 5;
  std::uint64_t dkt_period_iters = 25;
  /// Additional option tweaks applied after the system's configure().
  std::function<void(core::WorkerOptions&)> extra_configure;
  /// Environment override (used instead of `environment` when set).
  std::optional<Environment> env_override;
  /// Replaces the system's partial-gradient strategy factory (e.g. Max N
  /// sweeps at specific N values).
  std::function<core::StrategyPtr(std::size_t)> strategy_override;
  /// Extra faults appended to the environment's own schedule (if any).
  sim::FaultSchedule faults;
  /// Auto-enable the workers' fault-tolerance layer when the combined fault
  /// schedule is non-empty (set false for the undefended baseline).
  bool auto_fault_tolerance = true;
  /// Observer wired through the whole stack for this run (non-owning; must
  /// outlive run_experiment). Leave nullptr for an uninstrumented run; set
  /// `collect_telemetry` instead to get a RunTelemetry summary without
  /// keeping the raw registry/tracer around.
  obs::Observability* obs = nullptr;
  /// When true and `obs` is unset, run_experiment attaches a run-local
  /// observer and fills RunResult::telemetry from it.
  bool collect_telemetry = false;
  /// Compute the critical-path attribution after the run and store its
  /// headline in RunResult::telemetry.critical_path (a run-local observer
  /// is attached if neither `obs` nor `collect_telemetry` provided one).
  bool collect_critical_path = false;
  /// Online watchdog policy: when set, run_experiment attaches an
  /// obs::Watchdog for the run (detector events land in
  /// RunResult::telemetry.watchdog_*). With `abort_on_fire` the first
  /// fired detector stops the engine — the run result then reflects the
  /// aborted state.
  std::optional<obs::WatchdogConfig> watchdog;
  /// Elastic membership override: used verbatim when set. When unset and
  /// the (resolved) environment is elastic — make_elastic_environment, or
  /// any Environment with a membership schedule — an ElasticSpec is built
  /// from the environment's schedule and initial_workers.
  std::optional<core::ElasticSpec> elastic;
  /// Serving tier: inference replicas co-simulated with the training run
  /// and refreshed online from it. Disabled (nullopt, the default) keeps
  /// the run bit-identical to a training-only experiment.
  std::optional<serve::ServingSpec> serving;
};

struct RunResult {
  std::string system;
  std::string environment;
  double final_accuracy = 0.0;      ///< cluster mean at the end of the run
  double best_accuracy = 0.0;       ///< max of the cluster-mean curve
  double accuracy_stddev = 0.0;     ///< across workers at the end (Fig. 17)
  double time_to_70 = 0.0;          ///< +inf if not reached
  std::uint64_t total_iterations = 0;
  common::Bytes total_bytes = 0;
  sim::Trace mean_curve;
  // Fault / degradation accounting (all zero for fault-free runs).
  std::uint64_t messages_dropped = 0;   ///< network drops (crash/blackout/loss)
  std::uint64_t dead_letters = 0;       ///< messages to detached workers
  std::uint64_t reliable_retries = 0;   ///< control-plane retransmissions
  std::uint64_t worker_recoveries = 0;  ///< completed crash->recover cycles
  /// Where simulated time and bytes went (populated when the run had an
  /// observer attached via RunSpec::obs or RunSpec::collect_telemetry;
  /// `telemetry.collected` is false otherwise).
  obs::RunTelemetry telemetry;
  // Elastic membership accounting (all zero / empty for static rosters).
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t roster_epoch = 0;        ///< final roster epoch
  std::size_t final_members = 0;         ///< live members at the end
  double join_latency_mean_s = 0.0;      ///< join event -> bootstrap done
  double join_latency_max_s = 0.0;
  std::size_t min_bootstrap_donors = 0;  ///< over completed joins (>= 2 goal)
  std::uint64_t bootstrap_bytes = 0;     ///< total charged bootstrap traffic
  std::uint64_t stale_epoch_rejected = 0;
  std::uint64_t dead_letter_evictions = 0;
  std::vector<core::JoinRecord> join_log;
  /// Serving-tier stats (engaged only when RunSpec::serving was set).
  std::optional<serve::ServingStats> serving;
};

/// Run one simulation.
RunResult run_experiment(const RunSpec& spec, const Workload& workload);

/// Repeat with different seeds; returns per-metric mean and 95% CI.
struct Aggregate {
  std::string system;
  std::string environment;
  common::RunningStats final_accuracy;
  common::RunningStats best_accuracy;
  common::RunningStats accuracy_stddev;
  common::RunningStats time_to_70;
  std::vector<RunResult> runs;
};
Aggregate run_repeated(RunSpec spec, const Workload& workload,
                       std::size_t repeats);

/// Convenience: time the cluster-mean curve takes to reach `threshold`.
double time_to_accuracy(const RunResult& result, double threshold);

}  // namespace dlion::exp

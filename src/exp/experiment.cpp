#include "exp/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "obs/critical_path.h"

namespace dlion::exp {

Scale Scale::from_config(const common::Config& cfg) {
  Scale s;
  s.paper = cfg.get_string("scale", "bench") == "paper";
  if (s.paper) {
    s.duration_s = 1500.0;      // §5.2.1: Cipher trained for 1500 s
    s.gpu_duration_s = 7200.0;  // §5.2.2: MobileNet trained for 2 h
    s.dynamic_phase_s = 500.0;  // §5.1.5
    s.repeats = 3;              // §5.1.4: average of three runs
    s.eval_period_iters = 20;   // §5.1.3
    s.dkt_period_iters = 100;   // §5.1.4
  }
  s.eval_period_iters = static_cast<std::uint64_t>(cfg.get_int(
      "eval-period", static_cast<long long>(s.eval_period_iters)));
  s.dkt_period_iters = static_cast<std::uint64_t>(cfg.get_int(
      "dkt-period", static_cast<long long>(s.dkt_period_iters)));
  s.duration_s = cfg.get_double("duration", s.duration_s);
  s.gpu_duration_s = cfg.get_double("gpu-duration", s.gpu_duration_s);
  s.dynamic_phase_s = cfg.get_double("phase", s.dynamic_phase_s);
  s.repeats = static_cast<std::size_t>(cfg.get_int(
      "repeats", static_cast<long long>(s.repeats)));
  s.seed = static_cast<std::uint64_t>(cfg.get_int(
      "seed", static_cast<long long>(s.seed)));
  return s;
}

Workload make_workload(const std::string& kind, const Scale& scale) {
  Workload w;
  if (kind == "cpu") {
    w.data = data::make_synth_cipher(scale.seed, scale.paper);
    w.model = scale.paper ? "cipher" : "cipher-lite";
    w.learning_rate = 0.12;
  } else if (kind == "gpu") {
    w.data = data::make_synth_imagenet100(scale.seed, scale.paper);
    w.model = scale.paper ? "mobilenet" : "mobilenet-20";
    w.learning_rate = 0.12;
  } else {
    throw std::invalid_argument("make_workload: unknown kind '" + kind + "'");
  }
  return w;
}

RunResult run_experiment(const RunSpec& spec, const Workload& workload) {
  const Environment env =
      spec.env_override
          ? *spec.env_override
          : make_environment(spec.environment, spec.dynamic_phase_s);
  const systems::SystemSpec system = systems::make_system(spec.system);

  core::ClusterSpec cluster_spec;
  cluster_spec.model = workload.model;
  cluster_spec.seed = spec.seed;
  cluster_spec.compute = env.compute;
  cluster_spec.network_setup = env.network_setup;
  cluster_spec.duration_s = spec.duration_s;
  cluster_spec.strategy_factory = spec.strategy_override
                                      ? spec.strategy_override
                                      : system.strategy_factory;

  // Fault schedule: the environment's churn plus any per-run extras.
  sim::FaultSchedule faults = env.faults;
  faults.crashes.insert(faults.crashes.end(), spec.faults.crashes.begin(),
                        spec.faults.crashes.end());
  faults.blackouts.insert(faults.blackouts.end(),
                          spec.faults.blackouts.begin(),
                          spec.faults.blackouts.end());
  faults.losses.insert(faults.losses.end(), spec.faults.losses.begin(),
                       spec.faults.losses.end());
  if (!spec.faults.empty()) faults.seed = spec.faults.seed;
  cluster_spec.faults = std::move(faults);
  cluster_spec.auto_fault_tolerance = spec.auto_fault_tolerance;

  // Elastic membership: the per-run override wins; otherwise an elastic
  // environment supplies its schedule + initial roster size.
  if (spec.elastic.has_value()) {
    cluster_spec.elastic = spec.elastic;
  } else if (env.elastic()) {
    core::ElasticSpec elastic;
    elastic.initial_workers = env.initial_workers;
    elastic.membership.schedule = env.membership;
    cluster_spec.elastic = std::move(elastic);
  }
  cluster_spec.serving = spec.serving;

  // Observability: prefer the caller's observer; otherwise, when telemetry
  // was requested, attach a run-local one whose summary survives in
  // RunResult::telemetry.
  std::unique_ptr<obs::Observability> local_obs;
  obs::Observability* run_obs = spec.obs;
  if (run_obs == nullptr &&
      (spec.collect_telemetry || spec.collect_critical_path ||
       spec.watchdog.has_value())) {
    local_obs = std::make_unique<obs::Observability>();
    run_obs = local_obs.get();
  }
  cluster_spec.obs = run_obs;

  core::WorkerOptions options;
  options.learning_rate = workload.learning_rate;
  options.eval_period_iters = spec.eval_period_iters;
  system.configure(options);
  options.dkt.period_iters = spec.dkt_period_iters;
  if (spec.extra_configure) spec.extra_configure(options);
  cluster_spec.worker_options = options;

  core::Cluster cluster(cluster_spec, workload.data.train,
                        workload.data.test);

  // Watchdog policy: fed from record sites during the run; abort (opt-in)
  // stops the engine after the offending event.
  std::unique_ptr<obs::Watchdog> watchdog;
  if (spec.watchdog.has_value() && run_obs != nullptr) {
    watchdog = std::make_unique<obs::Watchdog>(*spec.watchdog,
                                               cluster.size());
    watchdog->set_tracer(&run_obs->tracer());
    watchdog->set_abort_hook(
        [&cluster] { cluster.engine().request_stop(); });
    run_obs->set_watchdog(watchdog.get());
  }

  cluster.run();
  if (watchdog != nullptr) watchdog->finalize(cluster.engine().now());

  RunResult result;
  result.system = spec.system;
  result.environment = env.name;
  result.mean_curve = cluster.mean_accuracy_trace();
  result.final_accuracy = result.mean_curve.last();
  if (std::isnan(result.final_accuracy)) result.final_accuracy = 0.0;
  result.best_accuracy = result.mean_curve.max();
  if (std::isnan(result.best_accuracy)) result.best_accuracy = 0.0;
  result.accuracy_stddev = cluster.accuracy_stddev();
  result.time_to_70 = result.mean_curve.time_to_reach(0.70);
  result.total_iterations = cluster.total_iterations();
  result.total_bytes = cluster.total_bytes_sent();
  result.messages_dropped = cluster.network().total_stats().messages_dropped;
  result.dead_letters = cluster.fabric().dead_letters();
  result.reliable_retries = cluster.fabric().reliable_retries();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    result.worker_recoveries += cluster.worker(i).recover_count();
  }
  result.stale_epoch_rejected = cluster.fabric().stale_epoch_rejected();
  result.dead_letter_evictions = cluster.fabric().dead_letter_evictions();
  if (const core::MembershipController* mc = cluster.membership()) {
    core::ElasticStats stats = mc->stats();
    result.joins = stats.joins;
    result.leaves = stats.leaves;
    result.roster_epoch = stats.epoch;
    result.final_members = stats.final_members;
    double latency_sum = 0.0;
    std::size_t completed = 0;
    for (const core::JoinRecord& rec : stats.join_log) {
      result.bootstrap_bytes += rec.bootstrap_bytes;
      if (rec.completed < 0.0) continue;
      const double latency = rec.completed - rec.requested;
      latency_sum += latency;
      result.join_latency_max_s = std::max(result.join_latency_max_s, latency);
      result.min_bootstrap_donors =
          completed == 0 ? rec.donors
                         : std::min(result.min_bootstrap_donors, rec.donors);
      ++completed;
    }
    if (completed > 0) {
      result.join_latency_mean_s =
          latency_sum / static_cast<double>(completed);
    }
    result.join_log = std::move(stats.join_log);
  }
  if (const serve::ServingTier* tier = cluster.serving()) {
    result.serving = tier->stats();
  }
  if (run_obs != nullptr) {
    result.telemetry = obs::summarize(*run_obs);
    if (spec.collect_critical_path) {
      result.telemetry.critical_path =
          obs::summary_of(obs::compute_critical_path(run_obs->tracer()));
    }
    // The watchdog dies with this call; never leave a caller-owned
    // observer pointing at it.
    run_obs->set_watchdog(nullptr);
  }
  return result;
}

Aggregate run_repeated(RunSpec spec, const Workload& workload,
                       std::size_t repeats) {
  Aggregate agg;
  agg.system = spec.system;
  agg.environment = spec.env_override ? spec.env_override->name
                                      : spec.environment;
  const std::uint64_t base_seed = spec.seed;
  for (std::size_t r = 0; r < std::max<std::size_t>(repeats, 1); ++r) {
    spec.seed = base_seed + 1000 * r;
    RunResult run = run_experiment(spec, workload);
    agg.final_accuracy.add(run.final_accuracy);
    agg.best_accuracy.add(run.best_accuracy);
    agg.accuracy_stddev.add(run.accuracy_stddev);
    if (std::isfinite(run.time_to_70)) agg.time_to_70.add(run.time_to_70);
    agg.runs.push_back(std::move(run));
  }
  return agg;
}

double time_to_accuracy(const RunResult& result, double threshold) {
  return result.mean_curve.time_to_reach(threshold);
}

}  // namespace dlion::exp

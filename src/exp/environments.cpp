#include "exp/environments.h"

#include <stdexcept>

namespace dlion::exp {

namespace {

std::vector<sim::ComputeSpec> cores_vec(std::vector<double> cores) {
  std::vector<sim::ComputeSpec> out;
  out.reserve(cores.size());
  for (double c : cores) out.push_back(cpu_cores(c));
  return out;
}

std::function<void(sim::Network&)> egress_setup(std::vector<double> mbps) {
  return [mbps = std::move(mbps)](sim::Network& net) {
    for (std::size_t i = 0; i < mbps.size(); ++i) {
      net.set_egress(i, sim::Schedule(mbps[i]));
    }
  };
}

// Three-phase schedule used by the dynamic environments.
sim::Schedule phased(double v1, double v2, double v3, double phase_s) {
  return sim::Schedule{{0.0, v1}, {phase_s, v2}, {2 * phase_s, v3}};
}

}  // namespace

sim::ComputeSpec cpu_cores(double cores) {
  return cpu_cores(sim::Schedule(cores));
}

sim::ComputeSpec cpu_cores(sim::Schedule cores) {
  sim::ComputeSpec spec;
  spec.units = std::move(cores);
  spec.flops_per_unit = sim::kCpuCoreFlops;
  return spec;
}

sim::ComputeSpec gpu_units(double units) {
  sim::ComputeSpec spec;
  spec.units = sim::Schedule(units);
  spec.flops_per_unit = sim::kGpuUnitFlops;
  // GPU training loops have much lower per-iteration framework overhead
  // than the CPU path; this keeps the GPU cluster network-bound (§5.2.2).
  spec.iteration_overhead_s = 0.05;
  return spec;
}

Environment make_environment(const std::string& name, double phase_s) {
  Environment env;
  env.name = name;
  if (name == "Homo A") {
    env.compute = cores_vec({24, 24, 24, 24, 24, 24});
  } else if (name == "Homo B") {
    env.compute = cores_vec({24, 24, 24, 24, 24, 24});
    env.network_setup = egress_setup({50, 50, 50, 50, 50, 50});
  } else if (name == "Homo C") {
    env.compute = {gpu_units(1), gpu_units(1), gpu_units(1),
                   gpu_units(1), gpu_units(1), gpu_units(1)};
    env.gpu = true;
  } else if (name == "Hetero CPU A") {
    env.compute = cores_vec({24, 24, 12, 12, 6, 6});
  } else if (name == "Hetero CPU B") {
    env.compute = cores_vec({24, 24, 24, 24, 24, 4});
  } else if (name == "Hetero NET A") {
    env.compute = cores_vec({24, 24, 24, 24, 24, 24});
    env.network_setup = egress_setup({50, 50, 35, 35, 20, 20});
  } else if (name == "Hetero NET B") {
    // Referenced by Fig. 17; the reverse assignment of Hetero NET A.
    env.compute = cores_vec({24, 24, 24, 24, 24, 24});
    env.network_setup = egress_setup({20, 20, 35, 35, 50, 50});
  } else if (name == "Hetero SYS A") {
    env.compute = cores_vec({24, 24, 12, 12, 6, 6});
    env.network_setup = egress_setup({50, 50, 35, 35, 20, 20});
  } else if (name == "Hetero SYS B") {
    env.compute = cores_vec({24, 24, 12, 12, 6, 6});
    env.network_setup = egress_setup({20, 20, 35, 35, 50, 50});
  } else if (name == "Hetero SYS C") {
    env.compute = {gpu_units(8), gpu_units(8), gpu_units(1),
                   gpu_units(1), gpu_units(1), gpu_units(1)};
    env.network_setup = egress_setup({190, 190, 140, 140, 100, 100});
    env.gpu = true;
  } else if (name == "Dynamic SYS A") {
    // Homo B -> Hetero SYS A -> Hetero SYS B, phase_s seconds each.
    const std::vector<double> het_cores = {24, 24, 12, 12, 6, 6};
    const std::vector<double> bw_a = {50, 50, 35, 35, 20, 20};
    const std::vector<double> bw_b = {20, 20, 35, 35, 50, 50};
    for (std::size_t i = 0; i < kWorkers; ++i) {
      env.compute.push_back(
          cpu_cores(phased(24, het_cores[i], het_cores[i], phase_s)));
    }
    env.network_setup = [=](sim::Network& net) {
      for (std::size_t i = 0; i < kWorkers; ++i) {
        net.set_egress(i, phased(50, bw_a[i], bw_b[i], phase_s));
      }
    };
  } else if (name == "Dynamic SYS B") {
    // Hetero SYS B -> Hetero SYS A -> Homo B.
    const std::vector<double> het_cores = {24, 24, 12, 12, 6, 6};
    const std::vector<double> bw_a = {50, 50, 35, 35, 20, 20};
    const std::vector<double> bw_b = {20, 20, 35, 35, 50, 50};
    for (std::size_t i = 0; i < kWorkers; ++i) {
      env.compute.push_back(
          cpu_cores(phased(het_cores[i], het_cores[i], 24, phase_s)));
    }
    env.network_setup = [=](sim::Network& net) {
      for (std::size_t i = 0; i < kWorkers; ++i) {
        net.set_egress(i, phased(bw_b[i], bw_a[i], 50, phase_s));
      }
    };
  } else {
    throw std::invalid_argument("make_environment: unknown environment '" +
                                name + "'");
  }
  return env;
}

std::vector<std::string> environment_names() {
  return {"Homo A",       "Homo B",       "Homo C",       "Hetero CPU A",
          "Hetero CPU B", "Hetero NET A", "Hetero NET B", "Hetero SYS A",
          "Hetero SYS B", "Hetero SYS C", "Dynamic SYS A", "Dynamic SYS B"};
}

const std::vector<std::string>& wan_region_names() {
  static const std::vector<std::string> names = {
      "Virginia", "Oregon", "Ireland", "Mumbai", "Seoul", "Sydney"};
  return names;
}

const std::vector<std::vector<double>>& wan_bandwidth_matrix() {
  // Table 2, Mbps; row = source, column = destination. Diagonal entries
  // (intra-region) are LAN speed.
  static const std::vector<std::vector<double>> matrix = {
      {1000, 190, 181, 53, 58, 56},   // Virginia
      {187, 1000, 91, 41, 93, 84},    // Oregon
      {171, 92, 1000, 73, 30, 41},    // Ireland
      {53, 41, 73, 1000, 85, 79},     // Mumbai
      {58, 88, 40, 85, 1000, 79},     // Seoul
      {56, 84, 36, 79, 72, 1000},     // Sydney
  };
  return matrix;
}

Environment make_churn_environment(const std::string& base,
                                   const ChurnSpec& churn, double phase_s) {
  Environment env = make_environment(base, phase_s);
  env.name = base + " +churn";
  const std::size_t n = env.compute.size();
  // Crash the highest-id workers first: in the heterogeneous environments
  // those are the weakest machines, the most plausible preemption victims.
  const std::size_t crashed = std::min(churn.crashed_workers, n);
  for (std::size_t k = 0; k < crashed; ++k) {
    const std::size_t worker = n - 1 - k;
    const double start =
        churn.crash_start_s + static_cast<double>(k) * churn.stagger_s;
    env.faults.crash(worker, start, start + churn.downtime_s);
  }
  if (churn.partition_end_s > churn.partition_start_s && n >= 2) {
    std::vector<std::size_t> group_a, group_b;
    for (std::size_t i = 0; i < n; ++i) {
      (i < n / 2 ? group_a : group_b).push_back(i);
    }
    env.faults.partition(group_a, group_b, churn.partition_start_s,
                         churn.partition_end_s);
  }
  if (churn.loss_probability > 0.0 && churn.loss_end_s > churn.loss_start_s) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        env.faults.lossy(i, j, churn.loss_probability, churn.loss_start_s,
                         churn.loss_end_s);
      }
    }
  }
  return env;
}

Environment make_elastic_environment(const std::string& kind,
                                     double phase_s) {
  Environment env;
  env.name = kind;
  if (kind == "flash-crowd") {
    // 4 -> 64 scale-out, then scale-in to 8. Slots are modest machines: the
    // point is roster churn, not per-worker horsepower.
    env.compute = std::vector<sim::ComputeSpec>(64, cpu_cores(12));
    env.initial_workers = 4;
    const double stagger = phase_s / 80.0;
    env.membership.flash_crowd(4, 60, 0.3 * phase_s, stagger);
    env.membership.scale_in(8, 56, 2.0 * phase_s, stagger);
  } else if (kind == "diurnal") {
    // Capacity waves: slots 6..11 join through the "day", leave at "night",
    // and rejoin the next day.
    env.compute = std::vector<sim::ComputeSpec>(12, cpu_cores(24));
    env.initial_workers = 6;
    const double stagger = phase_s / 12.0;
    env.membership.flash_crowd(6, 6, 0.25 * phase_s, stagger);
    env.membership.scale_in(6, 6, 1.25 * phase_s, stagger);
    env.membership.flash_crowd(6, 6, 2.25 * phase_s, stagger);
  } else if (kind == "scale-in") {
    // Graceful 8 -> 4 departure; the survivors' GBS/LBS renormalize on
    // every leave, so the cluster keeps converging without a cliff.
    env.compute = std::vector<sim::ComputeSpec>(8, cpu_cores(24));
    env.initial_workers = 8;
    env.membership.scale_in(4, 4, phase_s, phase_s / 8.0);
  } else {
    throw std::invalid_argument(
        "make_elastic_environment: unknown scenario '" + kind + "'");
  }
  return env;
}

std::vector<std::string> elastic_environment_names() {
  return {"flash-crowd", "diurnal", "scale-in"};
}

Environment make_scale_environment(std::size_t n_workers,
                                   std::size_t group_size, double inter_mbps,
                                   double cores) {
  if (n_workers == 0) {
    throw std::invalid_argument("make_scale_environment: n_workers == 0");
  }
  if (group_size == 0) group_size = n_workers;
  Environment env;
  env.name = "Scale N=" + std::to_string(n_workers) +
             " G=" + std::to_string(group_size);
  env.compute = std::vector<sim::ComputeSpec>(n_workers, cpu_cores(cores));
  env.network_setup = [n_workers, group_size, inter_mbps](sim::Network& net) {
    for (std::size_t i = 0; i < n_workers; ++i) {
      for (std::size_t j = 0; j < n_workers; ++j) {
        if (i == j || i / group_size == j / group_size) continue;
        net.set_link(i, j, sim::Schedule(inter_mbps));
        net.set_latency(i, j, 0.02);  // inter-cloud WAN RTT/2 ~ 20 ms
      }
    }
  };
  return env;
}

Environment make_wan_matrix_environment() {
  Environment env;
  env.name = "WAN Table2";
  env.compute = cores_vec({24, 24, 24, 24, 24, 24});
  env.network_setup = [](sim::Network& net) {
    const auto& m = wan_bandwidth_matrix();
    for (std::size_t i = 0; i < kWorkers; ++i) {
      for (std::size_t j = 0; j < kWorkers; ++j) {
        if (i == j) continue;
        net.set_link(i, j, sim::Schedule(m[i][j]));
        net.set_latency(i, j, 0.04);  // intercontinental RTT/2 ~ 40 ms
      }
    }
  };
  return env;
}

}  // namespace dlion::exp

// Figure-data export: write accuracy curves and traces to CSV files so
// plots can be regenerated outside the terminal tables. Benches write into
// the directory given by --csv-dir (no-op when unset).
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/trace.h"

namespace dlion::exp {

/// Write one trace as "time,value" rows. Creates/truncates the file.
/// Throws std::runtime_error on I/O failure.
void write_trace_csv(const sim::Trace& trace, const std::string& path);

/// Write several named curves side by side on a shared time axis (union of
/// all sample times; each column holds the trace's last value at or before
/// that time, empty before its first sample).
void write_curves_csv(const std::vector<std::string>& names,
                      const std::vector<const sim::Trace*>& traces,
                      const std::string& path);

/// Convenience: "<dir>/<stem>.csv" for a RunResult's mean accuracy curve.
void export_run_curve(const RunResult& result, const std::string& dir,
                      const std::string& stem);

/// Write a metrics snapshot as JSON ({"metrics":[...]}).
void write_metrics_json(const obs::MetricsRegistry& registry,
                        const std::string& path);

/// Write a metrics snapshot as CSV (one row per series).
void write_metrics_csv(const obs::MetricsRegistry& registry,
                       const std::string& path);

/// Write a tracer's events as Chrome trace-event JSON (load in Perfetto or
/// chrome://tracing).
void write_chrome_trace(const obs::Tracer& tracer, const std::string& path);

/// Write a RunTelemetry summary as JSON.
void write_telemetry_json(const obs::RunTelemetry& telemetry,
                          const std::string& path);

/// Write a critical-path report as JSON (categories, per-lane attribution,
/// epochs, segments).
void write_critical_path_json(const obs::CriticalPathReport& report,
                              const std::string& path);

/// Write the report's human-readable attribution table as plain text.
void write_critical_path_table(const obs::CriticalPathReport& report,
                               const std::string& path);

}  // namespace dlion::exp

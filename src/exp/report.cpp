#include "exp/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace dlion::exp {

void write_trace_csv(const sim::Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_trace_csv: cannot open " + path);
  out << "time," << (trace.name().empty() ? "value" : trace.name()) << "\n";
  for (const auto& p : trace.points()) {
    out << p.time << "," << p.value << "\n";
  }
  if (!out) throw std::runtime_error("write_trace_csv: write failed");
}

void write_curves_csv(const std::vector<std::string>& names,
                      const std::vector<const sim::Trace*>& traces,
                      const std::string& path) {
  if (names.size() != traces.size()) {
    throw std::invalid_argument("write_curves_csv: name/trace mismatch");
  }
  std::vector<double> times;
  for (const sim::Trace* t : traces) {
    for (const auto& p : t->points()) times.push_back(p.time);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_curves_csv: cannot open " + path);
  out << "time";
  for (const auto& n : names) out << "," << n;
  out << "\n";
  for (double t : times) {
    out << t;
    for (const sim::Trace* trace : traces) {
      const double v = trace->value_at(t);
      out << ",";
      if (!std::isnan(v)) out << v;
    }
    out << "\n";
  }
  if (!out) throw std::runtime_error("write_curves_csv: write failed");
}

void export_run_curve(const RunResult& result, const std::string& dir,
                      const std::string& stem) {
  write_trace_csv(result.mean_curve, dir + "/" + stem + ".csv");
}

namespace {
void write_string_file(const std::string& what, const std::string& body,
                       const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error(what + ": cannot open " + path);
  out << body;
  if (!out) throw std::runtime_error(what + ": write failed");
}
}  // namespace

void write_metrics_json(const obs::MetricsRegistry& registry,
                        const std::string& path) {
  write_string_file("write_metrics_json", registry.to_json(), path);
}

void write_metrics_csv(const obs::MetricsRegistry& registry,
                       const std::string& path) {
  write_string_file("write_metrics_csv", registry.to_csv(), path);
}

void write_chrome_trace(const obs::Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_chrome_trace: cannot open " + path);
  tracer.write_chrome_json(out);
  if (!out) throw std::runtime_error("write_chrome_trace: write failed");
}

void write_telemetry_json(const obs::RunTelemetry& telemetry,
                          const std::string& path) {
  write_string_file("write_telemetry_json", telemetry.to_json(), path);
}

void write_critical_path_json(const obs::CriticalPathReport& report,
                              const std::string& path) {
  write_string_file("write_critical_path_json", report.to_json(), path);
}

void write_critical_path_table(const obs::CriticalPathReport& report,
                               const std::string& path) {
  write_string_file("write_critical_path_table", report.attribution_table(),
                    path);
}

}  // namespace dlion::exp

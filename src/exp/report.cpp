#include "exp/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace dlion::exp {

void write_trace_csv(const sim::Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_trace_csv: cannot open " + path);
  out << "time," << (trace.name().empty() ? "value" : trace.name()) << "\n";
  for (const auto& p : trace.points()) {
    out << p.time << "," << p.value << "\n";
  }
  if (!out) throw std::runtime_error("write_trace_csv: write failed");
}

void write_curves_csv(const std::vector<std::string>& names,
                      const std::vector<const sim::Trace*>& traces,
                      const std::string& path) {
  if (names.size() != traces.size()) {
    throw std::invalid_argument("write_curves_csv: name/trace mismatch");
  }
  std::vector<double> times;
  for (const sim::Trace* t : traces) {
    for (const auto& p : t->points()) times.push_back(p.time);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_curves_csv: cannot open " + path);
  out << "time";
  for (const auto& n : names) out << "," << n;
  out << "\n";
  for (double t : times) {
    out << t;
    for (const sim::Trace* trace : traces) {
      const double v = trace->value_at(t);
      out << ",";
      if (!std::isnan(v)) out << v;
    }
    out << "\n";
  }
  if (!out) throw std::runtime_error("write_curves_csv: write failed");
}

void export_run_curve(const RunResult& result, const std::string& dir,
                      const std::string& stem) {
  write_trace_csv(result.mean_curve, dir + "/" + stem + ".csv");
}

}  // namespace dlion::exp

#include "core/lbs_controller.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace dlion::core {

double estimate_rcp(std::span<const double> batch_sizes,
                    std::span<const double> iteration_seconds,
                    double unit_time_s) {
  const common::LinearFit fit = common::linear_fit(batch_sizes,
                                                   iteration_seconds);
  if (fit.n == 0 || fit.slope <= 0.0) return 1.0;
  const double rcp = (unit_time_s - fit.intercept) / fit.slope;
  return std::max(1.0, rcp);
}

std::vector<std::size_t> allocate_lbs(std::size_t gbs,
                                      std::span<const double> rcps,
                                      std::size_t min_lbs) {
  if (rcps.empty()) throw std::invalid_argument("allocate_lbs: no workers");
  if (min_lbs == 0) min_lbs = 1;
  const std::size_t n = rcps.size();
  double total_rcp = 0.0;
  for (double r : rcps) {
    if (r <= 0.0) throw std::invalid_argument("allocate_lbs: RCP <= 0");
    total_rcp += r;
  }
  if (gbs < n * min_lbs) {
    // Degenerate: not enough batch to give everyone the minimum; give the
    // minimum to as many of the strongest workers as possible.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return rcps[a] > rcps[b]; });
    std::vector<std::size_t> out(n, 0);
    std::size_t remaining = gbs;
    for (std::size_t i : order) {
      const std::size_t take = std::min<std::size_t>(min_lbs, remaining);
      out[i] = take;
      remaining -= take;
      if (remaining == 0) break;
    }
    return out;
  }

  // Eq. 5 proportional shares with largest-remainder rounding (exact when
  // the shares divide evenly), then a floor-repair pass that tops weak
  // workers up to min_lbs by taking from the largest allocations.
  std::vector<std::size_t> out(n, 0);
  std::vector<std::pair<double, std::size_t>> remainders;  // (frac, worker)
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double exact = static_cast<double>(gbs) * rcps[i] / total_rcp;
    const auto whole = static_cast<std::size_t>(std::floor(exact));
    out[i] = whole;
    assigned += whole;
    remainders.emplace_back(exact - std::floor(exact), i);
  }
  // Largest remainder method; deterministic tie-break on worker index.
  std::sort(remainders.begin(), remainders.end(), [](const auto& a,
                                                     const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::size_t leftover = gbs - assigned;
  for (std::size_t i = 0; i < remainders.size() && leftover > 0; ++i) {
    out[remainders[i].second] += 1;
    --leftover;
  }
  // Floor repair: guaranteed feasible because gbs >= n * min_lbs here.
  for (std::size_t i = 0; i < n; ++i) {
    while (out[i] < min_lbs) {
      const std::size_t donor = static_cast<std::size_t>(
          std::max_element(out.begin(), out.end()) - out.begin());
      if (out[donor] <= min_lbs) break;
      --out[donor];
      ++out[i];
    }
  }
  return out;
}

std::vector<std::size_t> allocate_lbs_live(std::size_t gbs,
                                           std::span<const double> rcps,
                                           const std::vector<bool>& live,
                                           std::size_t min_lbs) {
  if (live.size() != rcps.size()) {
    throw std::invalid_argument("allocate_lbs_live: live mask size mismatch");
  }
  // Gather the live slots, allocate over them, scatter back: the gathered
  // order is ascending slot id, so the result is independent of how the
  // roster reached its current shape.
  std::vector<std::size_t> slots;
  std::vector<double> live_rcps;
  for (std::size_t i = 0; i < rcps.size(); ++i) {
    if (live[i]) {
      slots.push_back(i);
      live_rcps.push_back(rcps[i]);
    }
  }
  if (slots.empty()) {
    throw std::invalid_argument("allocate_lbs_live: no live workers");
  }
  const std::vector<std::size_t> packed =
      allocate_lbs(gbs, live_rcps, min_lbs);
  std::vector<std::size_t> out(rcps.size(), 0);
  for (std::size_t i = 0; i < slots.size(); ++i) out[slots[i]] = packed[i];
  return out;
}

}  // namespace dlion::core

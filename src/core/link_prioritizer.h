// Per-link prioritized gradient exchange (§3.3): DLion's own
// PartialGradientStrategy combining the data quality assurance module
// (Max N selection) with the transmission speed assurance module (per-link
// automatic choice of the largest N that fits the link).
//
// The per-iteration byte budget of link i->j is BW_net_j / Iter_com_i: the
// bytes the link can absorb during one of the sender's iterations. The
// strategy picks the largest N whose Max N selection fits that budget,
// implemented as a top-k selection with k derived from the budget (these
// coincide: the k-th largest magnitude is exactly the Max N threshold). A
// configurable floor `min_n` (paper: 0.85) guarantees a minimum data
// quality even on starved links.
#pragma once

#include "core/strategy.h"
#include "sim/trace.h"

namespace dlion::core {

struct LinkPrioritizerConfig {
  /// Lower bound on N (paper evaluation: 0.85).
  double min_n = 0.85;
  /// If false, transmission speed assurance is disabled and `fixed_n` is
  /// used on every link (used for the Max N-only experiments, Fig. 16).
  bool adaptive = true;
  double fixed_n = 10.0;
  /// Fraction of the link budget usable for gradient payload (headroom for
  /// headers/control traffic).
  double budget_fraction = 0.9;
};

class LinkPrioritizer : public PartialGradientStrategy {
 public:
  explicit LinkPrioritizer(LinkPrioritizerConfig config);

  std::vector<comm::VariableGrad> generate(const nn::Model& model,
                                           const LinkContext& ctx) override;
  const char* name() const override { return "dlion-perlink"; }

  /// Equivalent N chosen for the most recent generate() call (for traces).
  double last_n() const { return last_n_; }
  /// Entries selected in the most recent generate() call.
  std::size_t last_entries() const { return last_entries_; }

 private:
  LinkPrioritizerConfig config_;
  double last_n_ = 100.0;
  std::size_t last_entries_ = 0;
  /// Magnitude workspace reused across generate() calls.
  std::vector<float> mags_;
};

}  // namespace dlion::core

#include "core/autoscaler.h"

#include <algorithm>

namespace dlion::core {

const char* scale_decision_name(ScaleDecision d) {
  switch (d) {
    case ScaleDecision::kHold: return "hold";
    case ScaleDecision::kScaleOut: return "scale_out";
    case ScaleDecision::kScaleIn: return "scale_in";
  }
  return "unknown";
}

ScaleDecision Autoscaler::decide(const AutoscalerSignals& s) const {
  if (!config_.enabled || s.members == 0 || s.capacity == 0) {
    return ScaleDecision::kHold;
  }
  const std::size_t max_members =
      config_.max_members == 0 ? s.capacity
                               : std::min(config_.max_members, s.capacity);

  // Network-bound first: adding workers to a saturated fabric only makes
  // the all-to-all exchange worse, so the scale-in check dominates.
  const bool network_bound =
      s.max_backlog_bytes >
          config_.backlog_per_worker_bytes ||
      s.dead_letter_delta > config_.dead_letter_delta;
  if (network_bound && s.members > config_.min_members) {
    return ScaleDecision::kScaleIn;
  }

  // Compute-bound: the slowest worker dominates the mean (straggler), or
  // nothing has finished for stall_after_s (the watchdog-verdict mirror).
  const bool straggling =
      s.mean_interval_s > 0.0 &&
      s.max_interval_s > config_.straggler_ratio * s.mean_interval_s;
  const bool stalled = s.seconds_since_progress > config_.stall_after_s;
  if ((straggling || stalled) && s.members < max_members) {
    return ScaleDecision::kScaleOut;
  }
  return ScaleDecision::kHold;
}

}  // namespace dlion::core

// Global batch size controller (§3.2).
//
// Automatically grows the global batch size in two phases, driven by the
// paper's two empirical findings (Fig. 5): growing GBS rapidly in the first
// epochs hurts final accuracy, while growth after the early phase is safe.
//
//   warm-up : GBS_{t+1} = GBS_t + C_warmup, stop above 1% of the dataset
//   speed-up: GBS_{t+1} = GBS_t * C_speedup, stop above 10% of the dataset
//
// The controller is deterministic in (tick index, config), so every worker
// runs its own copy and they all agree on the current GBS without any
// coordination - a requirement of the decentralized design.
#pragma once

#include <cstddef>

namespace dlion::core {

struct GbsConfig {
  std::size_t initial_gbs = 192;        ///< paper: 6 workers x LBS 32
  std::size_t dataset_size = 60000;
  std::size_t c_warmup = 64;            ///< arithmetic increment
  double c_speedup = 2.0;               ///< geometric factor
  /// Number of controller ticks spent in the warm-up phase. The worker
  /// ticks the controller once per *epoch* of training progress (Fig. 5's
  /// findings are epoch-indexed), so this is a number of epochs.
  std::size_t warmup_ticks = 4;
  /// Warm-up cap: fraction of the dataset (paper: 1%).
  double warmup_cap_frac = 0.01;
  /// Speed-up cap: fraction of the dataset (paper: 10%, after [40]).
  double speedup_cap_frac = 0.10;
  bool enabled = true;
};

class GbsController {
 public:
  explicit GbsController(GbsConfig config);

  /// Advance one controller tick; returns the (possibly unchanged) GBS.
  std::size_t tick();

  /// Replay ticks until the counter reaches `ticks` (no-op when already
  /// there or past). Because the schedule is a pure function of the tick
  /// index, a joiner that fast-forwards to a donor's tick count lands on
  /// exactly the donor's GBS — the decentralized-agreement property extends
  /// to workers that were not present from the start.
  std::size_t fast_forward(std::size_t ticks);

  std::size_t gbs() const { return gbs_; }
  std::size_t ticks() const { return ticks_; }
  bool in_warmup() const { return ticks_ < config_.warmup_ticks; }
  bool saturated() const;
  const GbsConfig& config() const { return config_; }

 private:
  GbsConfig config_;
  std::size_t gbs_;
  std::size_t ticks_ = 0;
};

}  // namespace dlion::core

// Cluster assembly: builds the simulated micro-cloud (engine, network,
// fabric) and n DLion workers over sharded training data, runs the
// experiment for a simulated duration, and exposes the workers' traces.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/membership.h"
#include "core/worker.h"
#include "data/synthetic.h"
#include "serve/serving.h"
#include "sim/fault_injector.h"

namespace dlion::core {

/// Elastic-membership configuration for a cluster (DESIGN.md, "Elastic
/// membership"). `compute.size()` becomes the slot *capacity*; only the
/// first `initial_workers` slots start as members, the rest sit dormant
/// until a scripted membership event or the autoscaler activates them.
struct ElasticSpec {
  /// Slots that are members at t=0 (0 = all of them).
  std::size_t initial_workers = 0;
  /// Donors each joiner splits its bootstrap download across.
  std::size_t bootstrap_fanout = 2;
  /// Scripted joins/leaves + autoscaler policy + machine pool.
  MembershipConfig membership;
};

struct ClusterSpec {
  /// Model zoo name ("cipher-lite", "cipher", "mobilenet", ...).
  std::string model = "cipher-lite";
  std::uint64_t seed = 42;
  /// Per-worker compute resources; size determines the worker count.
  std::vector<sim::ComputeSpec> compute;
  /// Applies the environment's bandwidth/latency schedules to the network
  /// (egress shaping, link matrix). Called once during construction.
  std::function<void(sim::Network&)> network_setup;
  /// Base worker options (copied per worker).
  WorkerOptions worker_options;
  /// Creates each worker's partial-gradient strategy.
  std::function<StrategyPtr(std::size_t worker)> strategy_factory;
  /// Simulated training duration (seconds).
  double duration_s = 300.0;
  /// Deterministic fault schedule (worker crashes, link blackouts /
  /// partitions, lossy links). Empty (the default) attaches no injector and
  /// leaves every event trace bit-identical to a fault-free build.
  sim::FaultSchedule faults;
  /// Auto-enable the workers' fault-tolerance layer whenever `faults` is
  /// non-empty. Set false to study an undefended system under churn (the
  /// bench's "no-FT" baseline); explicit worker_options.fault_tolerance
  /// settings always win.
  bool auto_fault_tolerance = true;
  /// Observer wired through engine, network, fabric, and every worker
  /// (non-owning; must outlive the cluster). nullptr (the default) records
  /// nothing and leaves the run's hot paths untouched beyond a pointer
  /// check per potential record site.
  obs::Observability* obs = nullptr;
  /// Elastic membership: dormant slots, scripted churn, autoscaling.
  /// Disabled (nullopt, the default) leaves every run bit-identical to the
  /// pre-elastic cluster.
  std::optional<ElasticSpec> elastic;
  /// Serving tier: inference replicas on extra fabric slots, refreshed
  /// online from the freshest training worker (DESIGN.md "Serving tier").
  /// Disabled (nullopt, the default) leaves every run bit-identical to a
  /// training-only cluster. Mutually exclusive with `elastic`.
  std::optional<serve::ServingSpec> serving;
};

class Cluster {
 public:
  Cluster(const ClusterSpec& spec, const data::Dataset& train,
          const data::Dataset& test);

  /// Run the simulation to completion (duration_s of simulated time).
  void run();
  /// Run up to an intermediate simulated time (can be called repeatedly in
  /// increasing order; run() finishes the remainder).
  void run_until(common::SimTime t);

  std::size_t size() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }
  const Worker& worker(std::size_t i) const { return *workers_.at(i); }
  sim::Engine& engine() { return engine_; }
  sim::Network& network() { return *network_; }
  comm::Fabric& fabric() { return *fabric_; }
  /// The attached fault injector, or nullptr when the schedule is empty.
  sim::FaultInjector* fault_injector() { return faults_.get(); }
  /// The membership controller, or nullptr when elastic is disabled.
  MembershipController* membership() { return membership_.get(); }
  const MembershipController* membership() const { return membership_.get(); }
  /// The serving tier, or nullptr when serving is disabled. Stats are
  /// finalized once the run reaches its full duration.
  serve::ServingTier* serving() { return serving_.get(); }
  const serve::ServingTier* serving() const { return serving_.get(); }
  double duration() const { return spec_duration_; }

  /// Ratio nominal-model-bytes / trained-model-bytes charged by the fabric.
  double byte_scale() const;

  /// Mean of workers' latest measured accuracies.
  double mean_accuracy() const;
  /// Population standard deviation of workers' latest accuracies (Fig. 17).
  double accuracy_stddev() const;
  /// Cluster-mean accuracy as a time series (merged across workers).
  sim::Trace mean_accuracy_trace() const;
  /// Earliest simulated time the cluster-mean accuracy reaches `threshold`
  /// (+inf if never).
  double time_to_accuracy(double threshold) const;
  /// Total bytes all workers pushed into the network.
  common::Bytes total_bytes_sent() const;
  /// Total iterations across all workers.
  std::uint64_t total_iterations() const;

 private:
  double spec_duration_;
  bool started_ = false;
  bool elastic_ = false;
  sim::Engine engine_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<sim::FaultInjector> faults_;
  std::unique_ptr<comm::Fabric> fabric_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<MembershipController> membership_;
  std::unique_ptr<serve::ServingTier> serving_;
  bool serving_finalized_ = false;
};

}  // namespace dlion::core

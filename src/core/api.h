// Public facade of the DLion library.
//
// Mirrors the prototype's API surface (§4.2):
//   build_model                 -> nn::make_model / nn::make_*      (model zoo)
//   generate_partial_gradients  -> core::PartialGradientStrategy    (plugin)
//   send_data / enqueue         -> comm::Fabric::send / broadcast
//   synch_training              -> core::SyncPolicy + can_start_iteration
//
// A downstream user typically:
//   1. builds a ClusterSpec (model, per-worker compute, network setup,
//      WorkerOptions, strategy factory),
//   2. constructs a core::Cluster over a data::TrainTest,
//   3. calls run() and reads traces/metrics.
// See examples/quickstart.cpp for the canonical walk-through and
// systems/registry.h for turn-key configurations of DLion and the four
// comparison systems.
#pragma once

#include "core/cluster.h"
#include "core/dkt.h"
#include "core/gbs_controller.h"
#include "core/gradient_select.h"
#include "core/lbs_controller.h"
#include "core/link_prioritizer.h"
#include "core/strategy.h"
#include "core/sync_strategy.h"
#include "core/weighted_update.h"
#include "core/worker.h"

#include "core/gradient_select.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/ops.h"

namespace dlion::core {

namespace {
void check_n(double n) {
  if (!(n > 0.0) || n > 100.0) {
    throw std::invalid_argument("Max N: N must be in (0, 100]");
  }
}

comm::VariableGrad dense_grad(std::span<const float> grad,
                              std::uint32_t var_index) {
  comm::VariableGrad v;
  v.var_index = var_index;
  v.dense_size = static_cast<std::uint32_t>(grad.size());
  v.values.assign(grad.begin(), grad.end());
  return v;
}
}  // namespace

double max_n_threshold(double n, float max_abs) {
  check_n(n);
  return (1.0 - n / 100.0) * static_cast<double>(max_abs);
}

comm::VariableGrad select_max_n(std::span<const float> grad,
                                std::uint32_t var_index, double n) {
  check_n(n);
  if (n == 100.0) return dense_grad(grad, var_index);
  const float mx = tensor::max_abs(grad);
  const double thr = max_n_threshold(n, mx);
  comm::VariableGrad v;
  v.var_index = var_index;
  v.dense_size = static_cast<std::uint32_t>(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (std::fabs(grad[i]) >= thr) {
      v.indices.push_back(static_cast<std::uint32_t>(i));
      v.values.push_back(grad[i]);
    }
  }
  return v;
}

std::size_t count_max_n(std::span<const float> grad, double n) {
  check_n(n);
  if (n == 100.0) return grad.size();
  const float mx = tensor::max_abs(grad);
  const double thr = max_n_threshold(n, mx);
  std::size_t count = 0;
  for (float g : grad) {
    if (std::fabs(g) >= thr) ++count;
  }
  return count;
}

comm::VariableGrad select_top_k(std::span<const float> grad,
                                std::uint32_t var_index, std::size_t k) {
  if (k >= grad.size()) return dense_grad(grad, var_index);
  comm::VariableGrad v;
  v.var_index = var_index;
  v.dense_size = static_cast<std::uint32_t>(grad.size());
  if (k == 0) return v;
  // Partial sort of indices by |g| descending, index ascending on ties.
  std::vector<std::uint32_t> idx(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    idx[i] = static_cast<std::uint32_t>(i);
  }
  auto cmp = [&](std::uint32_t a, std::uint32_t b) {
    const float fa = std::fabs(grad[a]), fb = std::fabs(grad[b]);
    if (fa != fb) return fa > fb;
    return a < b;
  };
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), cmp);
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  v.indices = std::move(idx);
  v.values.reserve(k);
  for (std::uint32_t i : v.indices) v.values.push_back(grad[i]);
  return v;
}

double equivalent_n(std::span<const float> grad, std::size_t k) {
  if (grad.empty() || k >= grad.size()) return 100.0;
  if (k == 0) return 0.0;
  const float mx = tensor::max_abs(grad);
  if (mx == 0.0f) return 100.0;
  // k-th largest magnitude is the effective threshold.
  std::vector<float> mags(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) mags[i] = std::fabs(grad[i]);
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   mags.end(), std::greater<>());
  const double thr = mags[k - 1];
  return (1.0 - thr / static_cast<double>(mx)) * 100.0;
}

}  // namespace dlion::core

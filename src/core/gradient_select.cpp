#include "core/gradient_select.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/ops.h"

namespace dlion::core {

namespace {
void check_n(double n) {
  if (!(n > 0.0) || n > 100.0) {
    throw std::invalid_argument("Max N: N must be in (0, 100]");
  }
}

/// Thread-local (indices, values) staging vectors shared by all selectors.
/// Selection runs here, then the result is packed into payload storage in
/// one production write - steady-state selection touches the heap only
/// until the workspace capacity has warmed up.
struct SelectWorkspace {
  std::vector<std::uint32_t> idx;
  std::vector<float> vals;

  static SelectWorkspace& tls() {
    thread_local SelectWorkspace ws;
    return ws;
  }
};

/// Pack the staged selection into `v`: through the caller's writer (arena
/// block) when one is given, into a standalone exact-size block otherwise.
void emit_selection(comm::VariableGrad& v,
                    std::span<const std::uint32_t> idx,
                    std::span<const float> vals, comm::PayloadWriter* writer) {
  if (writer != nullptr) {
    v.indices = writer->copy(idx);
    v.values = writer->copy(vals);
  } else {
    v.indices = comm::make_payload(idx);
    v.values = comm::make_payload(vals);
  }
}

comm::VariableGrad dense_grad_impl(std::span<const float> grad,
                                   std::uint32_t var_index,
                                   comm::PayloadWriter* writer) {
  comm::VariableGrad v;
  v.var_index = var_index;
  v.dense_size = static_cast<std::uint32_t>(grad.size());
  v.values = writer != nullptr ? writer->copy(grad) : comm::make_payload(grad);
  return v;
}

/// Drop candidate (index, value) pairs whose magnitude fell below `thr`
/// after the running max rose. Order-preserving in-place filter.
void compact_candidates(std::vector<std::uint32_t>& idx,
                        std::vector<float>& vals, double thr) {
  std::size_t kept = 0;
  for (std::size_t j = 0; j < vals.size(); ++j) {
    if (static_cast<double>(std::fabs(vals[j])) >= thr) {
      idx[kept] = idx[j];
      vals[kept] = vals[j];
      ++kept;
    }
  }
  idx.resize(kept);
  vals.resize(kept);
}
}  // namespace

double max_n_threshold(double n, float max_abs) {
  check_n(n);
  return (1.0 - n / 100.0) * static_cast<double>(max_abs);
}

namespace {
comm::VariableGrad select_max_n_impl(std::span<const float> grad,
                                     std::uint32_t var_index, double n,
                                     comm::PayloadWriter* writer) {
  check_n(n);
  if (n == 100.0) return dense_grad_impl(grad, var_index, writer);
  comm::VariableGrad v;
  v.var_index = var_index;
  v.dense_size = static_cast<std::uint32_t>(grad.size());
  if (grad.empty()) return v;

  // Single fused pass: track the running max-abs and collect candidates
  // against the threshold it implies so far. The threshold only grows as
  // the max grows, so the candidate set is always a superset of the final
  // selection; stale candidates are pruned lazily (when the buffer doubles
  // past its last compaction) and once more at the end against the final
  // threshold. This selects exactly the entries the two-pass version did -
  // same threshold arithmetic, same index order - in one traversal.
  const double keep = 1.0 - n / 100.0;
  float running_max = 0.0f;
  double thr = 0.0;
  SelectWorkspace& ws = SelectWorkspace::tls();
  auto& idx = ws.idx;
  auto& vals = ws.vals;
  idx.clear();
  vals.clear();
  std::size_t compact_limit = 256;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float g = grad[i];
    const float mag = std::fabs(g);
    if (mag > running_max) {
      running_max = mag;
      thr = keep * static_cast<double>(running_max);
    }
    if (static_cast<double>(mag) >= thr) {
      idx.push_back(static_cast<std::uint32_t>(i));
      vals.push_back(g);
      if (idx.size() >= compact_limit) {
        compact_candidates(idx, vals, thr);
        compact_limit = std::max<std::size_t>(256, idx.size() * 2);
      }
    }
  }
  compact_candidates(idx, vals, thr);
  emit_selection(v, idx, vals, writer);
  return v;
}
}  // namespace

comm::VariableGrad select_max_n(std::span<const float> grad,
                                std::uint32_t var_index, double n) {
  return select_max_n_impl(grad, var_index, n, nullptr);
}

comm::VariableGrad select_max_n(std::span<const float> grad,
                                std::uint32_t var_index, double n,
                                comm::PayloadWriter& writer) {
  return select_max_n_impl(grad, var_index, n, &writer);
}

comm::VariableGrad dense_grad(std::span<const float> grad,
                              std::uint32_t var_index) {
  return dense_grad_impl(grad, var_index, nullptr);
}

comm::VariableGrad dense_grad(std::span<const float> grad,
                              std::uint32_t var_index,
                              comm::PayloadWriter& writer) {
  return dense_grad_impl(grad, var_index, &writer);
}

std::size_t count_max_n(std::span<const float> grad, double n) {
  check_n(n);
  if (n == 100.0) return grad.size();
  const float mx = tensor::max_abs(grad);
  const double thr = max_n_threshold(n, mx);
  // Branchless comparison loop: vectorizes cleanly (compare + widen + add).
  std::size_t count = 0;
  const float* __restrict p = grad.data();
  const std::size_t size = grad.size();
  for (std::size_t i = 0; i < size; ++i) {
    count += static_cast<double>(std::fabs(p[i])) >= thr ? 1u : 0u;
  }
  return count;
}

float magnitudes(std::span<const float> grad, std::vector<float>& mags) {
  mags.resize(grad.size());
  const float* __restrict src = grad.data();
  float* __restrict dst = mags.data();
  float mx = 0.0f;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    const float m = std::fabs(src[i]);
    dst[i] = m;
    mx = m > mx ? m : mx;
  }
  return mx;
}

std::size_t count_max_n_mags(std::span<const float> mags, float max_abs,
                             double n) {
  check_n(n);
  if (n == 100.0) return mags.size();
  const double thr = max_n_threshold(n, max_abs);
  std::size_t count = 0;
  const float* __restrict p = mags.data();
  const std::size_t size = mags.size();
  for (std::size_t i = 0; i < size; ++i) {
    count += static_cast<double>(p[i]) >= thr ? 1u : 0u;
  }
  return count;
}

namespace {
comm::VariableGrad select_top_k_mags_impl(std::span<const float> grad,
                                          std::span<const float> mags,
                                          std::uint32_t var_index,
                                          std::size_t k, float* kth_mag,
                                          comm::PayloadWriter* writer) {
  if (k >= grad.size()) return dense_grad_impl(grad, var_index, writer);
  comm::VariableGrad v;
  v.var_index = var_index;
  v.dense_size = static_cast<std::uint32_t>(grad.size());
  if (k == 0) return v;
  // Partial sort of indices by |g| descending, index ascending on ties.
  // The comparator reads the precomputed magnitudes: nth_element invokes it
  // O(n log n) times in the worst case, so hoisting fabs out of it matters.
  SelectWorkspace& ws = SelectWorkspace::tls();
  auto& idx = ws.idx;
  idx.resize(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    idx[i] = static_cast<std::uint32_t>(i);
  }
  const float* m = mags.data();
  auto cmp = [m](std::uint32_t a, std::uint32_t b) {
    const float fa = m[a], fb = m[b];
    if (fa != fb) return fa > fb;
    return a < b;
  };
  std::nth_element(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                   idx.end(), cmp);
  idx.resize(k);
  if (kth_mag != nullptr) {
    // The selected set holds the top-k magnitude multiset, so its minimum
    // is exactly the k-th largest magnitude (the effective threshold).
    float mn = m[idx[0]];
    for (std::uint32_t i : idx) mn = m[i] < mn ? m[i] : mn;
    *kth_mag = mn;
  }
  std::sort(idx.begin(), idx.end());
  auto& vals = ws.vals;
  vals.resize(k);
  for (std::size_t i = 0; i < k; ++i) vals[i] = grad[idx[i]];
  emit_selection(v, idx, vals, writer);
  return v;
}
}  // namespace

comm::VariableGrad select_top_k_mags(std::span<const float> grad,
                                     std::span<const float> mags,
                                     std::uint32_t var_index, std::size_t k,
                                     float* kth_mag) {
  return select_top_k_mags_impl(grad, mags, var_index, k, kth_mag, nullptr);
}

comm::VariableGrad select_top_k_mags(std::span<const float> grad,
                                     std::span<const float> mags,
                                     std::uint32_t var_index, std::size_t k,
                                     comm::PayloadWriter& writer,
                                     float* kth_mag) {
  return select_top_k_mags_impl(grad, mags, var_index, k, kth_mag, &writer);
}

comm::VariableGrad select_top_k(std::span<const float> grad,
                                std::uint32_t var_index, std::size_t k) {
  if (k >= grad.size()) return dense_grad(grad, var_index);
  std::vector<float> mags;
  magnitudes(grad, mags);
  return select_top_k_mags(grad, mags, var_index, k);
}

comm::VariableGrad select_top_k(std::span<const float> grad,
                                std::uint32_t var_index, std::size_t k,
                                comm::PayloadWriter& writer) {
  if (k >= grad.size()) return dense_grad(grad, var_index, writer);
  std::vector<float> mags;
  magnitudes(grad, mags);
  return select_top_k_mags(grad, mags, var_index, k, writer);
}

double equivalent_n_from_threshold(float max_abs, float kth_mag) {
  return (1.0 - static_cast<double>(kth_mag) / static_cast<double>(max_abs)) *
         100.0;
}

double equivalent_n(std::span<const float> grad, std::size_t k) {
  if (grad.empty() || k >= grad.size()) return 100.0;
  if (k == 0) return 0.0;
  std::vector<float> mags;
  const float mx = magnitudes(grad, mags);
  if (mx == 0.0f) return 100.0;
  // k-th largest magnitude is the effective threshold.
  std::nth_element(mags.begin(),
                   mags.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   mags.end(), std::greater<>());
  return equivalent_n_from_threshold(mx, mags[k - 1]);
}

}  // namespace dlion::core

// Weighted model update (§3.2, Eq. 7).
//
//   w_{t+1}^k = w_t^k - eta * (1/n) * sum_j db_j^k * g_t^j
//
// where db_j^k = LBS_j / LBS_k compensates for the different sample sizes
// workers computed their gradients over. With equal LBS everywhere the
// weight is 1 and Eq. 7 reduces to the standard distributed update (Eq. 4) -
// a property the tests assert.
//
// Under elastic membership, n and the LBS/GBS split are defined over the
// *live roster*: every join/leave renormalizes the LBS allocation so that
// sum(LBS_live) == GBS (dormant slots hold zero batch), and the n in the
// update is the live worker count. The weights below take those live-set
// values as inputs; they never look at the roster themselves.
#pragma once

#include "comm/message.h"
#include "nn/model.h"

namespace dlion::core {

/// Dynamic batching weight db_j^k for a receiver with LBS `lbs_self`
/// applying gradients computed over `lbs_sender` samples (Eq. 7 literal).
double dynamic_batching_weight(std::size_t lbs_sender, std::size_t lbs_self,
                               bool enabled = true);

/// Normalized dynamic batching weight: db_j = n * LBS_j / GBS. Same
/// *direction* as Eq. 7 (both weight gradients proportionally to the sample
/// count they were computed over: n*LBS_j/GBS = (LBS_j/LBS_k) * (n*LBS_k /
/// GBS)), but the receiver-dependent factor n*LBS_k/GBS is divided out so
/// the sum of weights is n at every worker - i.e. every replica takes the
/// same-magnitude step. The literal Eq. 7 makes small-LBS workers take
/// GBS/(n*LBS_k)-times larger steps, which destabilizes them when the LBS
/// spread is large; the paper does not discuss this regime. DLion defaults
/// to the normalized form; the literal form is available via
/// WorkerOptions::db_normalized = false.
double normalized_batching_weight(std::size_t lbs_sender, std::size_t gbs,
                                  std::size_t n_workers, bool enabled = true);

/// Apply one worker's (possibly sparse) gradient contribution to the local
/// model: w -= eta/n * db * g for every transmitted entry.
void apply_gradient_update(nn::Model& model, const comm::GradientUpdate& update,
                           double eta, std::size_t n_workers, double db);

/// Apply the local model's own freshly computed gradients:
/// w -= eta/n * db * g (db = 1 under literal Eq. 7; n*LBS_k/GBS when
/// normalized weights are in use).
void apply_own_gradients(nn::Model& model, double eta, std::size_t n_workers,
                         double db = 1.0);

/// Overwrite the model's weights from a received snapshot payload (one part
/// per variable, model order) - the payload-view counterpart of
/// nn::Model::set_weights, reading the wire views directly so adopting a
/// peer's weights (catch-up, bootstrap) never builds an intermediate
/// Snapshot.
void assign_weights(nn::Model& model, const comm::WeightPayload& weights);

}  // namespace dlion::core

#include "core/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlion::core {

Cluster::Cluster(const ClusterSpec& spec, const data::Dataset& train,
                 const data::Dataset& test)
    : spec_duration_(spec.duration_s) {
  const std::size_t n = spec.compute.size();
  if (n == 0) throw std::invalid_argument("Cluster: no workers");
  if (!spec.strategy_factory) {
    throw std::invalid_argument("Cluster: missing strategy factory");
  }
  if (spec.serving.has_value() && spec.elastic.has_value()) {
    // Serving replicas ride on extra fabric slots outside the worker
    // roster; the elastic controller assumes the roster spans the whole
    // fabric, so the two layers cannot share a cluster yet.
    throw std::invalid_argument("Cluster: serving and elastic are exclusive");
  }

  // Serving replicas occupy slots [n, n + extra) in the same network and
  // fabric; set_active_workers keeps the egress fair-share divisor at the
  // worker count, so training traffic shapes exactly as without serving.
  const std::size_t extra = spec.serving ? spec.serving->replicas : 0;
  network_ = std::make_unique<sim::Network>(engine_, n + extra);
  if (extra > 0) network_->set_active_workers(n);
  if (spec.network_setup) spec.network_setup(*network_);
  if (spec.obs != nullptr) {
    engine_.set_obs(spec.obs);
    network_->set_obs(spec.obs);
    spec.obs->metrics().gauge("cluster.workers").set(static_cast<double>(n));
  }

  // Fault injection: attach only for non-empty schedules, so fault-free
  // runs execute exactly the code they always did (byte-identical traces).
  if (!spec.faults.empty()) {
    faults_ = std::make_unique<sim::FaultInjector>(spec.faults);
    network_->set_fault_injector(faults_.get());
  }

  // All workers start from identical weights (decentralized training with a
  // common initialization), so one seed builds every replica; samplers and
  // compute jitter fork per worker.
  common::Rng init_rng(spec.seed);
  nn::BuiltModel reference = nn::make_model(spec.model, init_rng);
  const double actual_bytes =
      static_cast<double>(reference.model.num_params()) * sizeof(float);
  const double byte_scale =
      actual_bytes > 0.0
          ? static_cast<double>(reference.profile.nominal_bytes) / actual_bytes
          : 1.0;
  fabric_ = std::make_unique<comm::Fabric>(*network_, byte_scale);
  if (spec.obs != nullptr) fabric_->set_obs(spec.obs);

  // Elastic membership: compute.size() is the slot *capacity*; only the
  // first initial_workers slots start live, the rest dormant.
  elastic_ = spec.elastic.has_value();
  std::vector<bool> initial_members(n, true);
  if (elastic_) {
    const std::size_t live = spec.elastic->initial_workers == 0
                                 ? n
                                 : std::min(spec.elastic->initial_workers, n);
    if (live == 0) throw std::invalid_argument("Cluster: empty roster");
    for (std::size_t i = live; i < n; ++i) initial_members[i] = false;
  }

  common::Rng seeder(spec.seed ^ 0x5eedULL);
  for (std::size_t i = 0; i < n; ++i) {
    common::Rng model_rng(spec.seed);  // identical init on every worker
    nn::BuiltModel built = nn::make_model(spec.model, model_rng);
    WorkerOptions options = spec.worker_options;
    options.gbs.dataset_size = train.size();
    if (faults_ != nullptr && spec.auto_fault_tolerance) {
      options.fault_tolerance.enabled = true;
    }
    if (elastic_) {
      options.elastic.enabled = true;
      options.elastic.bootstrap_fanout = spec.elastic->bootstrap_fanout;
      options.elastic.start_dormant = !initial_members[i];
      options.elastic.initial_members = initial_members;
    } else if (extra > 0) {
      // Serving slots must never receive worker broadcasts. A static
      // roster of exactly the worker slots rides the elastic layer's
      // roster-targeted broadcast; with no membership events this is
      // bit-identical to the legacy all-worker broadcast (PR 6 noop-elastic
      // identity), just over a fabric with extra non-member slots.
      std::vector<bool> worker_slots(n + extra, false);
      for (std::size_t j = 0; j < n; ++j) worker_slots[j] = true;
      options.elastic.enabled = true;
      options.elastic.initial_members = std::move(worker_slots);
    }
    workers_.push_back(std::make_unique<Worker>(
        i, engine_, *fabric_,
        sim::ComputeResource(spec.compute[i], built.profile,
                             seeder.next()),
        std::move(built), data::shard(train, n, i), &test,
        spec.strategy_factory(i), std::move(options), seeder.next()));
    if (spec.obs != nullptr) workers_.back()->set_obs(spec.obs);
  }

  if (elastic_) {
    std::vector<Worker*> raw;
    raw.reserve(workers_.size());
    for (auto& w : workers_) raw.push_back(w.get());
    membership_ = std::make_unique<MembershipController>(
        engine_, *fabric_, std::move(raw), spec.elastic->membership,
        initial_members, spec_duration_, spec.seed);
  }

  // Crash windows drive the workers directly: the worker object crashes
  // (detaches, loses post-checkpoint state) at window start and runs its
  // recovery protocol at window end.
  if (faults_ != nullptr) {
    for (const auto& cw : spec.faults.crashes) {
      if (cw.worker >= workers_.size()) continue;
      Worker* w = workers_[cw.worker].get();
      engine_.at(cw.start, [w] { w->crash(); });
      engine_.at(cw.end, [w] { w->recover(); });
    }
  }

  if (extra > 0) {
    // Refresh source: the freshest live worker (most iterations, lowest id
    // on ties) donates its weight snapshot each publish round.
    std::vector<Worker*> raw;
    raw.reserve(workers_.size());
    for (auto& w : workers_) raw.push_back(w.get());
    auto publish_source =
        [raw = std::move(raw)]() -> std::optional<serve::PublishSource> {
      Worker* best = nullptr;
      for (Worker* w : raw) {
        if (w->crashed() || w->dormant()) continue;
        if (best == nullptr || w->iterations() > best->iterations()) best = w;
      }
      if (best == nullptr) return std::nullopt;
      serve::PublishSource source;
      source.slot = best->id();
      source.iteration = best->iterations();
      source.weights = best->model().weights();
      return source;
    };
    serving_ = std::make_unique<serve::ServingTier>(
        engine_, *fabric_, *spec.serving, spec.model, spec.compute, &test,
        spec.seed, /*first_slot=*/n, std::move(publish_source), spec.obs);
  }
}

double Cluster::byte_scale() const { return fabric_->byte_scale(); }

void Cluster::run_until(common::SimTime t) {
  if (!started_) {
    started_ = true;
    // Dormant slots do not start training; a membership event starts them
    // through Worker::join.
    for (auto& w : workers_) {
      if (!w->dormant()) w->start(spec_duration_);
    }
    if (membership_ != nullptr) membership_->start();
    if (serving_ != nullptr) serving_->start(spec_duration_);
  }
  engine_.run_until(std::min(t, spec_duration_));
  if (serving_ != nullptr && !serving_finalized_ && t >= spec_duration_) {
    serving_finalized_ = true;
    serving_->finalize(spec_duration_);
  }
}

void Cluster::run() { run_until(spec_duration_); }

double Cluster::mean_accuracy() const {
  // Elastic runs average over workers that ever trained (slots that stayed
  // dormant would otherwise drag the cluster mean toward zero); legacy runs
  // keep the all-worker denominator bit-identically.
  double s = 0.0;
  std::size_t counted = 0;
  for (const auto& w : workers_) {
    if (elastic_ && w->accuracy_trace().points().empty()) continue;
    const double a = w->accuracy_trace().last();
    s += std::isnan(a) ? 0.0 : a;
    ++counted;
  }
  if (counted == 0) return 0.0;
  return s / static_cast<double>(counted);
}

double Cluster::accuracy_stddev() const {
  std::vector<double> accs;
  accs.reserve(workers_.size());
  for (const auto& w : workers_) {
    if (elastic_ && w->accuracy_trace().points().empty()) continue;
    const double a = w->accuracy_trace().last();
    accs.push_back(std::isnan(a) ? 0.0 : a);
  }
  return common::population_stddev(accs);
}

sim::Trace Cluster::mean_accuracy_trace() const {
  // Merge the per-worker eval points: at each recorded time, the cluster
  // accuracy is the mean of every worker's latest value at that time.
  std::vector<common::SimTime> times;
  for (const auto& w : workers_) {
    for (const auto& p : w->accuracy_trace().points()) {
      times.push_back(p.time);
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  sim::Trace merged("mean_accuracy");
  for (const common::SimTime t : times) {
    double s = 0.0;
    std::size_t counted = 0;
    for (const auto& w : workers_) {
      // Elastic runs: a worker enters the mean only once it has evaluated
      // at least once by time t (its trace has a point at or before t), so
      // the cluster curve has no artificial cliff at each join.
      if (elastic_ && std::isnan(w->accuracy_trace().value_at(t))) continue;
      const double a = w->accuracy_trace().value_at(t);
      s += std::isnan(a) ? 0.0 : a;
      ++counted;
    }
    if (counted == 0) counted = workers_.size();
    merged.record(t, s / static_cast<double>(counted));
  }
  return merged;
}

double Cluster::time_to_accuracy(double threshold) const {
  return mean_accuracy_trace().time_to_reach(threshold);
}

common::Bytes Cluster::total_bytes_sent() const {
  return network_->total_stats().bytes_sent;
}

std::uint64_t Cluster::total_iterations() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->iterations();
  return total;
}

}  // namespace dlion::core

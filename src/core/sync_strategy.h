// Training synchronization strategies (§4.2, the `synch_training` API).
//
// One parameterization covers the paper's three mechanisms:
//   synchronous        : staleness_bound = 0, backup_workers = 0
//   bounded synchronous: staleness_bound = s, backup_workers = b (Hop)
//   asynchronous       : async = true (Ako)
//
// A worker may start iteration t when, among its n-1 peers, at least
// (n-1 - backup_workers) have delivered a gradient update for iteration
// >= t - 1 - staleness_bound. Backup workers model Hop's technique of
// ignoring the b slowest workers; the staleness bound keeps any worker from
// running unboundedly ahead.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace dlion::core {

struct SyncPolicy {
  bool async = false;
  std::uint64_t staleness_bound = 0;
  std::size_t backup_workers = 0;

  static SyncPolicy synchronous() { return {false, 0, 0}; }
  static SyncPolicy asynchronous() { return {true, 0, 0}; }
  static SyncPolicy bounded(std::uint64_t staleness, std::size_t backup) {
    return {false, staleness, backup};
  }

  std::string to_string() const;
};

/// Decide whether the worker may start iteration `next_iter` given the
/// latest iteration number received from each peer (self entry ignored).
/// `peer_latest[j]` is the highest iteration j has delivered a gradient
/// update for, or -1 if none yet.
bool can_start_iteration(const SyncPolicy& policy, std::uint64_t next_iter,
                         std::span<const std::int64_t> peer_latest,
                         std::size_t self);

/// Liveness-aware variant: peers flagged in `suspected` (crash-suspected by
/// the heartbeat failure detector) are excluded from the wait-set entirely -
/// they neither count toward the required quorum nor can satisfy it. This is
/// what keeps synchronous and bounded-staleness training from deadlocking on
/// a dead peer: with every peer suspected the worker trains solo. An empty
/// or all-false `suspected` span reproduces the basic overload exactly.
bool can_start_iteration(const SyncPolicy& policy, std::uint64_t next_iter,
                         std::span<const std::int64_t> peer_latest,
                         std::size_t self, const std::vector<bool>& suspected);

}  // namespace dlion::core

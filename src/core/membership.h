// Membership controller: drives deterministic join/leave over a cluster of
// worker slots (DESIGN.md, "Elastic membership").
//
// The controller owns the authoritative roster epoch. Every membership
// change — scripted (MembershipSchedule) or autoscaler-driven — bumps the
// epoch exactly once, flips one slot's member bit, and hands the new
// (epoch, bitmap) to the affected worker, which announces it to the
// cluster. Because changes are simulation events with fixed times and the
// epoch is a plain counter, the entire churn history replays bit-
// identically at any thread count.
//
// VirtualFlow-style indirection: each slot is a *logical* worker; a join
// event may carry a machine index into the controller's machine pool, in
// which case the logical worker is rebound onto that machine's compute
// resource before it starts training.
#pragma once

#include <cstdint>
#include <vector>

#include "core/autoscaler.h"
#include "core/worker.h"
#include "sim/fault_injector.h"

namespace dlion::core {

/// One completed (or in-flight) join, for BENCH_elastic.json.
struct JoinRecord {
  std::size_t worker = 0;
  common::SimTime requested = 0.0;
  common::SimTime completed = -1.0;  ///< bootstrap done; -1 = still pending
  std::size_t donors = 0;            ///< distinct bootstrap donors (>= 2 goal)
  std::uint64_t bootstrap_bytes = 0;
};

struct ElasticStats {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t epoch = 0;
  std::size_t final_members = 0;
  std::uint64_t scale_out_decisions = 0;
  std::uint64_t scale_in_decisions = 0;
  std::vector<JoinRecord> join_log;
};

struct MembershipConfig {
  /// Scripted membership changes (merged with autoscaler decisions).
  sim::MembershipSchedule schedule;
  /// Signal-driven scaling policy (disabled by default).
  AutoscalerConfig autoscaler;
  double autoscaler_period_s = 10.0;
  /// Machine pool for VirtualFlow-style logical->machine rebinding.
  std::vector<sim::ComputeSpec> machines;
};

class MembershipController {
 public:
  /// `workers` are non-owning; the cluster keeps them alive. `initial`
  /// must match the workers' construction-time roster.
  MembershipController(sim::Engine& engine, comm::Fabric& fabric,
                       std::vector<Worker*> workers, MembershipConfig config,
                       std::vector<bool> initial, common::SimTime duration,
                       std::uint64_t seed);

  /// Schedule the scripted events and the autoscaler tick. Call once,
  /// before the engine runs.
  void start();

  std::uint64_t epoch() const { return epoch_; }
  const std::vector<bool>& members() const { return members_; }
  std::size_t member_count() const;

  /// Activate slot `w` now (join). No-op when already a member. `machine`
  /// indexes the machine pool; kSameMachine keeps the slot's compute.
  void activate(std::size_t w,
                std::size_t machine = sim::MembershipEvent::kSameMachine);
  /// Deactivate slot `w` now (leave). Refuses to drop the last member.
  void deactivate(std::size_t w);

  /// Stats snapshot (join completion data pulled from the workers).
  ElasticStats stats() const;

 private:
  void autoscaler_tick();

  sim::Engine* engine_;
  comm::Fabric* fabric_;
  std::vector<Worker*> workers_;
  MembershipConfig config_;
  std::vector<bool> members_;
  std::uint64_t epoch_ = 0;
  common::SimTime duration_;
  std::uint64_t seed_;
  Autoscaler autoscaler_;
  std::uint64_t last_dead_letters_ = 0;
  ElasticStats stats_;
};

}  // namespace dlion::core

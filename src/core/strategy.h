// The plugin interface behind the paper's `generate_partial_gradients` API
// (§4.2). Each distributed DL system - DLion itself and the four comparison
// systems of Table 1 - is a PartialGradientStrategy: given the freshly
// computed local gradients and a per-link context, produce the partial
// gradients to ship to that peer.
#pragma once

#include <memory>
#include <vector>

#include "comm/message.h"
#include "nn/model.h"

namespace dlion::core {

/// Everything a strategy may consult when generating a link's partials.
struct LinkContext {
  std::size_t self = 0;      ///< sender worker id
  std::size_t peer = 0;      ///< receiver worker id
  std::uint64_t iteration = 0;
  /// Available bandwidth of the link self->peer right now, Mbps (the
  /// network resource monitor's reading; BW_net_j in §3.3).
  double available_mbps = 0.0;
  /// Sender's current iteration rate, iterations/second (Iter_com_i).
  double iterations_per_sec = 1.0;
  /// Ratio of nominal wire bytes to actual value bytes (cost-model scale;
  /// see comm::Fabric). Strategies translating byte budgets into entry
  /// counts must divide by this.
  double byte_scale = 1.0;
  /// Learning rate and worker count: what a transmitted gradient entry g
  /// does to the receiver's weight is -(eta/n) * db * g, which strategies
  /// judging *update* significance (Gaia) need.
  double learning_rate = 0.0;
  std::size_t n_workers = 1;
  /// Arena the generated payloads should be packed into (one production
  /// write through a PayloadWriter; see comm/payload.h). Null means "no
  /// arena in reach" - strategies then fall back to standalone exact-size
  /// blocks, producing identical entries either way.
  comm::PayloadArena* arena = nullptr;
};

class PartialGradientStrategy {
 public:
  virtual ~PartialGradientStrategy() = default;

  /// Called once per iteration, before any per-link generation, with the
  /// model holding the fresh local gradients. Strategies with cross-link
  /// state (accumulators, partitions) update it here.
  virtual void begin_iteration(const nn::Model& model,
                               std::uint64_t iteration) {
    (void)model;
    (void)iteration;
  }

  /// Produce the partial gradients to send to `ctx.peer` this iteration.
  /// An empty vector means "send a header-only update" (the peer still
  /// learns the sender's iteration for synchronization purposes).
  virtual std::vector<comm::VariableGrad> generate(const nn::Model& model,
                                                   const LinkContext& ctx) = 0;

  virtual const char* name() const = 0;

 protected:
  /// Arena to pack generated payloads into: the context's when the caller
  /// provided one (the worker's data-plane arena), else a strategy-owned
  /// fallback so strategies driven directly (tests, benches) still produce
  /// arena-backed views.
  comm::PayloadArena& payload_arena(const LinkContext& ctx) {
    return ctx.arena != nullptr ? *ctx.arena : fallback_arena_;
  }

 private:
  comm::PayloadArena fallback_arena_;
};

using StrategyPtr = std::unique_ptr<PartialGradientStrategy>;

}  // namespace dlion::core

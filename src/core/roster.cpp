#include "core/roster.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"

namespace dlion::core {

RosterView::RosterView(std::size_t capacity, const std::vector<bool>& members,
                       std::uint64_t epoch)
    : members_(members), epoch_(epoch) {
  if (members.size() != capacity) {
    throw std::invalid_argument("RosterView: member bitmap size != capacity");
  }
  member_count_ = static_cast<std::size_t>(
      std::count(members_.begin(), members_.end(), true));
}

bool RosterView::adopt(std::uint64_t epoch, const std::vector<bool>& members) {
  if (epoch <= epoch_) return false;
  DLION_ASSERT(members.size() == members_.size() || members_.empty(),
               "RosterView::adopt: capacity mismatch");
  members_ = members;
  member_count_ = static_cast<std::size_t>(
      std::count(members_.begin(), members_.end(), true));
  epoch_ = epoch;
  return true;
}

std::vector<std::size_t> RosterView::member_ids() const {
  std::vector<std::size_t> ids;
  ids.reserve(member_count_);
  for (std::size_t w = 0; w < members_.size(); ++w) {
    if (members_[w]) ids.push_back(w);
  }
  return ids;
}

std::vector<BootstrapRange> plan_bootstrap(
    std::size_t num_vars, const std::vector<std::size_t>& donors,
    std::size_t fanout) {
  if (donors.empty()) {
    throw std::invalid_argument("plan_bootstrap: no donors");
  }
  if (num_vars == 0) return {};
  // Never more donors than variables (a range must be non-empty), never
  // more than requested or available.
  const std::size_t k =
      std::min({fanout == 0 ? std::size_t{1} : fanout, donors.size(),
                num_vars});
  std::vector<BootstrapRange> ranges;
  ranges.reserve(k);
  // Contiguous split with the remainder spread over the first ranges:
  // sizes differ by at most one, assignment is donor-order deterministic.
  const std::size_t base = num_vars / k;
  const std::size_t extra = num_vars % k;
  std::uint32_t first = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t count = base + (i < extra ? 1 : 0);
    ranges.push_back(BootstrapRange{donors[i], first,
                                    static_cast<std::uint32_t>(count)});
    first += static_cast<std::uint32_t>(count);
  }
  DLION_ASSERT(first == num_vars, "plan_bootstrap: ranges must cover model");
  return ranges;
}

}  // namespace dlion::core

// Local batch size controller (§3.2).
//
// Estimates each worker's relative compute power (RCP) - the maximum local
// batch size the worker can process in one unit time - by fitting a linear
// regression of measured iteration times against batch sizes, instead of
// collecting hardware specs. Workers share RCPs and each derives its LBS
// from Eq. 5:  LBS_i = GBS * RCP_i / sum_j RCP_j.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/stats.h"

namespace dlion::core {

struct LbsConfig {
  /// Unit time used to define RCP (seconds).
  double unit_time_s = 1.0;
  /// Batch sizes probed when profiling.
  std::vector<std::size_t> probe_sizes = {8, 16, 32, 64};
  /// Smallest LBS ever assigned to a worker.
  std::size_t min_lbs = 1;
};

/// Relative compute power from (batch size, iteration seconds) samples.
/// Fits time = a + b * lbs and returns the largest LBS processable within
/// `unit_time_s` (at least 1). Returns 1 if the fit is degenerate.
double estimate_rcp(std::span<const double> batch_sizes,
                    std::span<const double> iteration_seconds,
                    double unit_time_s);

/// Eq. 5 allocation with largest-remainder rounding: the returned vector
/// sums exactly to `gbs` and every entry is >= min_lbs (when gbs allows).
std::vector<std::size_t> allocate_lbs(std::size_t gbs,
                                      std::span<const double> rcps,
                                      std::size_t min_lbs = 1);

/// Membership-aware Eq. 5: allocates `gbs` over the workers flagged live,
/// leaving every other slot at 0. The live entries sum exactly to `gbs`
/// and each is >= min_lbs when gbs allows; dormant slots never receive
/// batch and their (stale) RCP entries are ignored entirely, so a roster
/// change renormalizes the GBS over exactly the current live set.
std::vector<std::size_t> allocate_lbs_live(std::size_t gbs,
                                           std::span<const double> rcps,
                                           const std::vector<bool>& live,
                                           std::size_t min_lbs = 1);

}  // namespace dlion::core

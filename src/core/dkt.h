// Direct knowledge transfer (§3.4).
//
// Workers periodically share the average of their last `l` loss values;
// whoever currently has the best (smallest) loss is asked for its weights,
// and receivers merge them into the local model with
//   w_local <- w_local - lambda * (w_local - w_best).
//
// The module tracks the loss window and the peer loss table, and answers the
// three design questions the paper explores empirically (Fig. 9):
// when-to-send (period), whom-to-send (Best2All / Best2Worst / None), and
// how-to-merge (lambda).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "comm/payload.h"
#include "nn/model.h"

namespace dlion::core {

enum class DktMode {
  kNone,        ///< direct knowledge transfer disabled
  kBest2All,    ///< every worker pulls from the best (paper's choice)
  kBest2Worst,  ///< only the worst worker pulls from the best
};

struct DktConfig {
  DktMode mode = DktMode::kBest2All;
  /// Exchange period in iterations (paper evaluation: 100).
  std::uint64_t period_iters = 100;
  /// Loss window length l.
  std::size_t loss_window = 10;
  /// Merge ratio lambda (paper evaluation: 0.75).
  double lambda = 0.75;
  /// If set, DKT only runs during the first `early_only_iters` iterations
  /// (the "frequent exchange early in learning" variant of Fig. 9a).
  std::optional<std::uint64_t> early_only_iters;
  /// Peer loss reports older than this many (receiver-local) iterations are
  /// ignored by best/worst selection, so a silent (crashed or partitioned)
  /// peer stops being "best" forever. 0 disables expiry (seed behaviour);
  /// the fault-tolerance layer enables it.
  std::uint64_t peer_loss_expiry_iters = 0;
};

class DktModule {
 public:
  DktModule(DktConfig config, std::size_t self, std::size_t n_workers);

  const DktConfig& config() const { return config_; }

  /// Record a local training loss sample.
  void record_loss(double loss);
  /// Average of the last l local losses (+inf until any loss recorded).
  double avg_loss() const;

  /// Record a peer's reported average loss. `local_iteration` is the
  /// *receiver's* current iteration, used as the freshness stamp for
  /// peer_loss_expiry_iters (receiver-local stamps give one coherent clock
  /// even when peers' own iteration counts diverge under heterogeneity).
  void record_peer_loss(std::size_t peer, double avg_loss,
                        std::uint64_t local_iteration);

  /// True when iteration `iter` is a DKT boundary for this worker.
  bool is_boundary(std::uint64_t iter) const;

  /// Worker with the smallest known average loss (self included). When
  /// `now_iter` is provided and expiry is configured, reports staler than
  /// peer_loss_expiry_iters are skipped; workers flagged in `excluded`
  /// (e.g. suspected dead, or a peer whose pull just timed out) are skipped
  /// too. Falls back to self if nobody qualifies.
  std::size_t best_worker(std::optional<std::uint64_t> now_iter = std::nullopt,
                          const std::vector<bool>& excluded = {}) const;
  /// Worker with the largest known average loss (self included).
  std::size_t worst_worker(
      std::optional<std::uint64_t> now_iter = std::nullopt,
      const std::vector<bool>& excluded = {}) const;

  /// Whether this worker should request the best weights at a boundary.
  bool should_request(std::uint64_t iter) const;

  /// Merge the best weights into `model`: w -= lambda * (w - w_best).
  void merge(nn::Model& model, const nn::Snapshot& best_weights) const;
  /// Same merge, reading the best weights directly from a received
  /// snapshot's payload views - no intermediate weight copy.
  void merge(nn::Model& model, const comm::WeightPayload& best_weights) const;

 private:
  /// True when entry `i` may participate in best/worst selection at
  /// (optional) local iteration `now_iter`.
  bool usable(std::size_t i, std::optional<std::uint64_t> now_iter,
              const std::vector<bool>& excluded) const;

  DktConfig config_;
  std::size_t self_;
  std::deque<double> window_;
  std::vector<double> peer_loss_;        // +inf until first report
  std::vector<std::int64_t> peer_stamp_; // local iter of last report; -1 none
};

}  // namespace dlion::core

// A DLion worker: the event-driven embodiment of the paper's Fig. 10.
//
// The main training workflow computes gradients over the current LBS,
// generates per-link partial gradients, and periodically updates batch
// sizes. The modules the prototype runs as separate threads - model update,
// model synchronization (DKT), network resource monitor - become message
// handlers and periodic events on the simulation engine, preserving the
// paper's module boundaries while keeping runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "comm/fabric.h"
#include "common/stats.h"
#include "core/dkt.h"
#include "obs/obs.h"
#include "core/gbs_controller.h"
#include "core/lbs_controller.h"
#include "core/roster.h"
#include "core/strategy.h"
#include "core/sync_strategy.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "sim/compute_model.h"
#include "sim/trace.h"

namespace dlion::core {

/// Fault-tolerance / graceful-degradation layer (DESIGN.md §4).
///
/// When enabled the worker broadcasts periodic heartbeats, suspects peers it
/// has not heard from within `suspicion_timeout_s`, excludes suspected peers
/// from synchronization wait-sets and weighted-update renormalization, takes
/// periodic in-memory DLCK checkpoints for crash recovery, and sends DKT
/// weight pulls over the reliable (ack + retry) control channel with
/// fallback to the next-best peer on timeout.
///
/// Disabled (the default) the worker's event sequence is bit-identical to a
/// build without this layer: no heartbeats, no checkpoints, no retries, and
/// every liveness structure stays in its all-live state.
struct FaultToleranceOptions {
  bool enabled = false;
  /// Heartbeat broadcast + suspicion sweep period.
  double heartbeat_period_s = 2.0;
  /// A peer unheard-from for longer than this is suspected crashed.
  double suspicion_timeout_s = 6.0;
  /// Period of in-memory crash-recovery checkpoints (DLCK buffers).
  double checkpoint_period_s = 20.0;
  /// Retry policy for reliable control-plane sends (DKT weight pulls and
  /// post-recovery catch-up requests).
  comm::RetryPolicy control_retry;
};

/// Elastic-membership layer (DESIGN.md, "Elastic membership").
///
/// When enabled the worker keeps a RosterView (epoch + member bitmap over
/// the cluster's fixed slot capacity), addresses every broadcast to the
/// current roster only, excludes non-members from synchronization wait-sets
/// and batch-share renormalization, and — when joining mid-run — bootstraps
/// its weights from >= 2 live peers via disjoint variable-range chunks
/// before training its first iteration.
///
/// Disabled (the default) the roster is the all-member view at epoch 0 and
/// every code path reduces bit-identically to the non-elastic worker.
struct ElasticOptions {
  bool enabled = false;
  /// Donors a joiner splits its bootstrap download across (>= 2 whenever
  /// the roster allows).
  std::size_t bootstrap_fanout = 2;
  /// Construct dormant: not attached to the fabric, not training, waiting
  /// for a MembershipController join() call.
  bool start_dormant = false;
  /// Roster at construction time (epoch 0). Empty = every slot a member.
  std::vector<bool> initial_members;
};

struct WorkerOptions {
  double learning_rate = 0.05;
  /// Weighted dynamic batching (§3.2): GBS + LBS controllers. When false,
  /// every worker uses `fixed_lbs` (the traditional even split).
  bool dynamic_batching = true;
  /// Weighted model update (Eq. 7 db weights). When false, db = 1.
  bool weighted_update = true;
  /// Use the normalized batching weights n*LBS_j/GBS instead of the literal
  /// Eq. 7 LBS_j/LBS_k (same direction, receiver-independent magnitude; see
  /// weighted_update.h).
  bool db_normalized = true;
  std::size_t fixed_lbs = 32;
  GbsConfig gbs;
  LbsConfig lbs;
  DktConfig dkt;
  SyncPolicy sync = SyncPolicy::bounded(5, 0);
  /// Batch size update module tick period (profiling + GBS controller).
  double batch_update_period_s = 20.0;
  /// Evaluate model accuracy every this many iterations (paper: 20).
  std::uint64_t eval_period_iters = 20;
  /// Test samples used per evaluation (subset keeps wall time bounded).
  std::size_t eval_subset = 512;
  std::uint64_t max_iterations = UINT64_MAX;
  /// Optional externally-scripted GBS (used by the Fig. 5 study); when set
  /// it replaces the GBS controller. Called at every batch tick.
  std::function<std::size_t(std::uint64_t iteration, double now)> gbs_schedule;
  /// Fault-tolerance layer; disabled by default (see FaultToleranceOptions).
  FaultToleranceOptions fault_tolerance;
  /// Elastic-membership layer; disabled by default (see ElasticOptions).
  ElasticOptions elastic;
};

class Worker {
 public:
  Worker(std::size_t id, sim::Engine& engine, comm::Fabric& fabric,
         sim::ComputeResource compute, nn::BuiltModel built,
         data::Dataset shard, const data::Dataset* test_set,
         StrategyPtr strategy, WorkerOptions options, std::uint64_t seed);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Begin training; the worker stops starting iterations at `until`.
  void start(common::SimTime until);

  std::size_t id() const { return id_; }
  std::uint64_t iterations() const { return iteration_; }
  std::size_t current_lbs() const { return current_lbs_; }
  std::size_t current_gbs() const;
  /// The global batch size in effect: the controller's GBS under dynamic
  /// batching, n * fixed_lbs otherwise.
  std::size_t effective_gbs() const;
  double current_rcp() const { return rcp_table_[id_]; }

  const sim::Trace& accuracy_trace() const { return accuracy_trace_; }
  const sim::Trace& loss_trace() const { return loss_trace_; }
  const sim::Trace& lbs_trace() const { return lbs_trace_; }
  const sim::Trace& gbs_trace() const { return gbs_trace_; }
  /// Partial-gradient entries sent to each peer, one trace per peer id.
  const sim::Trace& entries_trace(std::size_t peer) const {
    return entries_traces_.at(peer);
  }
  /// Equivalent Max N values chosen per send (only meaningful for DLion).
  const sim::Trace& chosen_n_trace() const { return chosen_n_trace_; }

  nn::Model& model() { return built_.model; }
  const nn::ModelProfile& profile() const { return built_.profile; }
  PartialGradientStrategy& strategy() { return *strategy_; }
  const WorkerOptions& options() const { return options_; }

  /// Evaluate accuracy on the held-out subset right now (also recorded on
  /// the accuracy trace when called internally).
  double evaluate_accuracy();

  /// Attach an observer (non-owning; nullptr detaches). Call before
  /// start(). The worker records its training phases as spans on a
  /// "workers / worker i" track (compute, stall, dkt_pull), instants
  /// (send, eval, dkt_boundary, checkpoint, crash, recover), counter
  /// charts (lbs, gbs, staleness), and registry series (core.iterations,
  /// core.compute_seconds, core.stall_seconds, core.staleness_iters,
  /// core.grad_entries, core.grad_bytes, ...). Recording never changes the
  /// training schedule (DESIGN.md determinism contract).
  void set_obs(obs::Observability* o);

  // --- Fault-tolerance layer (DESIGN.md §4) ---

  /// Crash this worker now: detach from the fabric (messages to it dead-
  /// letter), cancel all scheduled activity, freeze training state.
  void crash();
  /// Recover from a crash: restore the last in-memory checkpoint, reattach
  /// to the fabric, re-announce RCP + liveness, pull fresh state from a live
  /// peer (catch-up), and resume training.
  void recover();
  bool crashed() const { return crashed_; }
  /// Workers not currently suspected crashed, self included. Equals the
  /// fabric size whenever fault tolerance is disabled.
  std::size_t live_worker_count() const;
  const std::vector<bool>& suspected_peers() const { return suspected_; }
  std::uint64_t crash_count() const { return crash_count_; }
  std::uint64_t recover_count() const { return recover_count_; }
  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  /// DKT / catch-up weight pulls re-targeted after an unacked request.
  std::uint64_t pull_fallbacks() const { return pull_fallbacks_; }

  // --- Elastic membership (DESIGN.md, "Elastic membership") ---

  /// Join the cluster at roster `epoch` with the given member bitmap
  /// (called by the MembershipController; requires elastic.enabled). The
  /// joiner announces the roster to every member first — per-link FIFO
  /// delivery guarantees receivers admit it before any of its other
  /// traffic — then requests disjoint weight-range chunks from >= 2 live
  /// donors and starts training once the snapshot is reassembled.
  void join(std::uint64_t epoch, const std::vector<bool>& members,
            common::SimTime until);
  /// Leave the cluster: broadcast the shrunken roster at `epoch` to the
  /// remaining members, then detach and go dormant.
  void leave(std::uint64_t epoch, const std::vector<bool>& members);
  /// VirtualFlow-style indirection: swap the compute resource this logical
  /// worker runs on (the logical->machine mapping can change mid-run).
  void rebind_compute(sim::ComputeResource compute);
  bool dormant() const { return dormant_; }
  /// Still reassembling the multi-peer bootstrap snapshot.
  bool bootstrapping() const { return bootstrapping_; }
  const RosterView& roster() const { return roster_; }
  /// Distinct donors that contributed bootstrap chunks (>= 2 on any roster
  /// with two live peers).
  std::size_t bootstrap_donor_count() const { return bootstrap_donor_count_; }
  /// Network bytes charged for received bootstrap chunks.
  std::uint64_t bootstrap_bytes() const { return bootstrap_bytes_; }
  /// Simulated time the last bootstrap completed (-1 = never).
  common::SimTime bootstrap_complete_time() const {
    return bootstrap_complete_time_;
  }
  /// Messages rejected because the sender is not in the current roster.
  std::uint64_t nonmember_rejected() const { return nonmember_rejected_; }
  /// EWMA of the full iteration cycle time (autoscaler straggler signal).
  double iteration_interval() const { return iter_interval_.value(); }
  /// Last iteration-finish time (-1 = none yet; autoscaler stall signal).
  common::SimTime last_finish_time() const { return last_finish_; }

 private:
  /// Cached observability handles (resolved once in set_obs). Histograms
  /// are label-free (shared across workers); counters carry {worker=i}.
  struct ObsHandles {
    obs::Counter* iterations = nullptr;
    obs::Counter* dkt_boundaries = nullptr;
    obs::Counter* dkt_pulls = nullptr;
    obs::Counter* crashes = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Histogram* compute_s = nullptr;
    obs::Histogram* stall_s = nullptr;
    obs::Histogram* staleness = nullptr;
    obs::Histogram* grad_entries = nullptr;
    obs::Histogram* grad_bytes = nullptr;
  };

  void on_message(std::size_t from, comm::MessagePtr msg);
  void try_start_iteration();
  void finish_iteration(std::size_t lbs, double compute_seconds);
  void batch_tick();
  void profile_rcp(bool broadcast_if_changed);
  void recompute_lbs();
  void run_dkt_boundary();

  const FaultToleranceOptions& ft() const { return options_.fault_tolerance; }
  /// Schedule the periodic modules (batch tick; plus heartbeat + checkpoint
  /// ticks when fault tolerance is enabled) under the current incarnation.
  void schedule_ticks();
  void heartbeat_tick();
  void checkpoint_tick();
  void take_checkpoint();
  /// Reliable weight pull with next-best fallback: request weights from the
  /// best non-excluded worker; on ack timeout exclude it and retry with the
  /// next best. `catch_up` pulls adopt iteration state too (post-recovery).
  void send_weight_pull(std::vector<bool> excluded, std::size_t attempts_left,
                        bool catch_up);
  void request_catch_up();

  /// Stage the values of variables [first_var, first_var + var_count) into
  /// the data-plane arena as one payload part per variable (one production
  /// write; every message carrying the result shares the same blocks).
  comm::WeightPayload stage_weights(std::size_t first_var,
                                    std::size_t var_count);
  /// Roster-targeted broadcast when elastic membership is on; the legacy
  /// everyone-but-self broadcast otherwise.
  void broadcast_msg(const comm::Message& msg);
  /// Adopt a (strictly newer) roster: stamp outgoing traffic with the new
  /// epoch, refresh the merged exclusion mask, give newly added members an
  /// optimistic liveness/staleness baseline, renormalize LBS, and re-check
  /// a pending synchronization wait.
  void apply_roster(std::uint64_t epoch, const std::vector<bool>& members);
  void begin_bootstrap();
  /// Reliable chunk request with next-donor fallback (mirrors
  /// send_weight_pull's retry shape).
  void send_bootstrap_request(BootstrapRange range, std::vector<bool> excluded,
                              std::size_t attempts_left);
  void finish_bootstrap();

  std::size_t id_;
  sim::Engine* engine_;
  comm::Fabric* fabric_;
  sim::ComputeResource compute_;
  nn::BuiltModel built_;
  data::Dataset shard_;
  const data::Dataset* test_set_;
  StrategyPtr strategy_;
  WorkerOptions options_;
  data::MinibatchSampler sampler_;
  data::Batch eval_batch_;
  /// Data-plane payload arena: everything this worker ships on the data
  /// lane (gradient selections, weight snapshots, bootstrap chunks) is
  /// staged here; in-flight messages pin their blocks, recycled blocks are
  /// reused once delivery drops the last view (comm/payload.h).
  comm::PayloadArena arena_;

  GbsController gbs_ctrl_;
  DktModule dkt_;
  std::vector<double> rcp_table_;
  std::vector<std::int64_t> peer_latest_;

  std::uint64_t iteration_ = 0;
  /// Cluster-level epoch progress estimate: sum over own iterations of
  /// GBS/dataset_size (each iteration, the cluster as a whole consumes
  /// about one GBS worth of samples). Drives GBS controller ticks.
  double epoch_progress_ = 0.0;
  double epochs_ticked_ = 0.0;
  std::size_t current_lbs_;
  std::size_t scheduled_gbs_;  // from gbs_schedule override, if any
  bool running_ = false;
  bool waiting_ = false;
  common::SimTime end_time_ = 0.0;
  common::Ewma compute_rate_;    // EWMA of iteration compute seconds
  common::Ewma iter_interval_;   // EWMA of full iteration cycle seconds
  common::SimTime last_finish_ = -1.0;

  // Fault-tolerance state. All of it stays in its initial "everything live"
  // configuration when ft().enabled is false, so the training path reads it
  // without branching on the flag.
  bool crashed_ = false;
  bool catching_up_ = false;
  /// Bumped on crash(); scheduled lambdas capture the incarnation they were
  /// created under and become no-ops when it no longer matches.
  std::uint64_t incarnation_ = 0;
  std::vector<common::SimTime> last_heard_;  // per peer; self unused
  std::vector<bool> suspected_;              // per peer; self always false
  std::vector<std::uint8_t> checkpoint_buf_;  // DLCK bytes, crash restore
  std::uint64_t checkpoint_iteration_ = 0;
  bool checkpoint_valid_ = false;
  std::uint64_t crash_count_ = 0;
  std::uint64_t recover_count_ = 0;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t pull_fallbacks_ = 0;

  // Elastic-membership state. With the layer disabled, roster_ is the
  // all-member epoch-0 view and excluded_ mirrors suspected_ exactly, so
  // the shared training paths below behave bit-identically to the
  // pre-elastic worker.
  RosterView roster_;
  /// Merged synchronization exclusion mask: suspected_[j] || !member(j).
  /// Maintained incrementally (never rebuilt on the iteration hot path).
  std::vector<bool> excluded_;
  bool dormant_ = false;
  bool bootstrapping_ = false;
  /// Roster epoch when this bootstrap began: chunks from this tenure carry
  /// epoch >= this, chunks from a superseded join attempt carry less.
  std::uint64_t bootstrap_epoch_ = 0;
  /// Per-variable assembly of the incoming snapshot: views into the
  /// received chunks' payload blocks (pinned until the bootstrap finishes).
  std::vector<comm::Payload<float>> bootstrap_values_;
  std::vector<bool> bootstrap_have_;
  std::size_t bootstrap_received_ = 0;
  std::uint64_t bootstrap_iteration_ = 0;
  std::size_t bootstrap_gbs_ticks_ = 0;
  std::vector<bool> bootstrap_donor_seen_;
  std::size_t bootstrap_donor_count_ = 0;
  std::uint64_t bootstrap_bytes_ = 0;
  common::SimTime bootstrap_complete_time_ = -1.0;
  std::uint64_t nonmember_rejected_ = 0;

  sim::Trace accuracy_trace_;
  sim::Trace loss_trace_;
  sim::Trace lbs_trace_;
  sim::Trace gbs_trace_;
  sim::Trace chosen_n_trace_;
  std::vector<sim::Trace> entries_traces_;

  // Observability (all inert unless an observer is attached and enabled).
  obs::Observability* obs_ = nullptr;  // non-owning, optional
  obs::TrackId obs_track_ = 0;         // "workers / worker i"
  ObsHandles obs_h_;
  common::SimTime stall_start_ = -1.0;  // open sync-wait span, -1 = none
  common::SimTime pull_start_ = -1.0;   // open DKT weight-pull span
};

}  // namespace dlion::core

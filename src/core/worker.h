// A DLion worker: the event-driven embodiment of the paper's Fig. 10.
//
// The main training workflow computes gradients over the current LBS,
// generates per-link partial gradients, and periodically updates batch
// sizes. The modules the prototype runs as separate threads - model update,
// model synchronization (DKT), network resource monitor - become message
// handlers and periodic events on the simulation engine, preserving the
// paper's module boundaries while keeping runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "comm/fabric.h"
#include "common/stats.h"
#include "core/dkt.h"
#include "core/gbs_controller.h"
#include "core/lbs_controller.h"
#include "core/strategy.h"
#include "core/sync_strategy.h"
#include "data/dataset.h"
#include "nn/model_zoo.h"
#include "sim/compute_model.h"
#include "sim/trace.h"

namespace dlion::core {

struct WorkerOptions {
  double learning_rate = 0.05;
  /// Weighted dynamic batching (§3.2): GBS + LBS controllers. When false,
  /// every worker uses `fixed_lbs` (the traditional even split).
  bool dynamic_batching = true;
  /// Weighted model update (Eq. 7 db weights). When false, db = 1.
  bool weighted_update = true;
  /// Use the normalized batching weights n*LBS_j/GBS instead of the literal
  /// Eq. 7 LBS_j/LBS_k (same direction, receiver-independent magnitude; see
  /// weighted_update.h).
  bool db_normalized = true;
  std::size_t fixed_lbs = 32;
  GbsConfig gbs;
  LbsConfig lbs;
  DktConfig dkt;
  SyncPolicy sync = SyncPolicy::bounded(5, 0);
  /// Batch size update module tick period (profiling + GBS controller).
  double batch_update_period_s = 20.0;
  /// Evaluate model accuracy every this many iterations (paper: 20).
  std::uint64_t eval_period_iters = 20;
  /// Test samples used per evaluation (subset keeps wall time bounded).
  std::size_t eval_subset = 512;
  std::uint64_t max_iterations = UINT64_MAX;
  /// Optional externally-scripted GBS (used by the Fig. 5 study); when set
  /// it replaces the GBS controller. Called at every batch tick.
  std::function<std::size_t(std::uint64_t iteration, double now)> gbs_schedule;
};

class Worker {
 public:
  Worker(std::size_t id, sim::Engine& engine, comm::Fabric& fabric,
         sim::ComputeResource compute, nn::BuiltModel built,
         data::Dataset shard, const data::Dataset* test_set,
         StrategyPtr strategy, WorkerOptions options, std::uint64_t seed);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Begin training; the worker stops starting iterations at `until`.
  void start(common::SimTime until);

  std::size_t id() const { return id_; }
  std::uint64_t iterations() const { return iteration_; }
  std::size_t current_lbs() const { return current_lbs_; }
  std::size_t current_gbs() const;
  /// The global batch size in effect: the controller's GBS under dynamic
  /// batching, n * fixed_lbs otherwise.
  std::size_t effective_gbs() const;
  double current_rcp() const { return rcp_table_[id_]; }

  const sim::Trace& accuracy_trace() const { return accuracy_trace_; }
  const sim::Trace& loss_trace() const { return loss_trace_; }
  const sim::Trace& lbs_trace() const { return lbs_trace_; }
  const sim::Trace& gbs_trace() const { return gbs_trace_; }
  /// Partial-gradient entries sent to each peer, one trace per peer id.
  const sim::Trace& entries_trace(std::size_t peer) const {
    return entries_traces_.at(peer);
  }
  /// Equivalent Max N values chosen per send (only meaningful for DLion).
  const sim::Trace& chosen_n_trace() const { return chosen_n_trace_; }

  nn::Model& model() { return built_.model; }
  const nn::ModelProfile& profile() const { return built_.profile; }
  PartialGradientStrategy& strategy() { return *strategy_; }
  const WorkerOptions& options() const { return options_; }

  /// Evaluate accuracy on the held-out subset right now (also recorded on
  /// the accuracy trace when called internally).
  double evaluate_accuracy();

 private:
  void on_message(std::size_t from, comm::MessagePtr msg);
  void try_start_iteration();
  void finish_iteration(std::size_t lbs, double compute_seconds);
  void batch_tick();
  void profile_rcp(bool broadcast_if_changed);
  void recompute_lbs();
  void run_dkt_boundary();

  std::size_t id_;
  sim::Engine* engine_;
  comm::Fabric* fabric_;
  sim::ComputeResource compute_;
  nn::BuiltModel built_;
  data::Dataset shard_;
  const data::Dataset* test_set_;
  StrategyPtr strategy_;
  WorkerOptions options_;
  data::MinibatchSampler sampler_;
  data::Batch eval_batch_;

  GbsController gbs_ctrl_;
  DktModule dkt_;
  std::vector<double> rcp_table_;
  std::vector<std::int64_t> peer_latest_;

  std::uint64_t iteration_ = 0;
  /// Cluster-level epoch progress estimate: sum over own iterations of
  /// GBS/dataset_size (each iteration, the cluster as a whole consumes
  /// about one GBS worth of samples). Drives GBS controller ticks.
  double epoch_progress_ = 0.0;
  double epochs_ticked_ = 0.0;
  std::size_t current_lbs_;
  std::size_t scheduled_gbs_;  // from gbs_schedule override, if any
  bool running_ = false;
  bool waiting_ = false;
  common::SimTime end_time_ = 0.0;
  common::Ewma compute_rate_;    // EWMA of iteration compute seconds
  common::Ewma iter_interval_;   // EWMA of full iteration cycle seconds
  common::SimTime last_finish_ = -1.0;

  sim::Trace accuracy_trace_;
  sim::Trace loss_trace_;
  sim::Trace lbs_trace_;
  sim::Trace gbs_trace_;
  sim::Trace chosen_n_trace_;
  std::vector<sim::Trace> entries_traces_;
};

}  // namespace dlion::core

// Max N gradient selection (§3.3, data quality assurance module).
//
// Max N keeps the entries of a gradient vector whose absolute value is
// within N% of the vector's maximum absolute value, i.e. |g| >=
// (1 - N/100) * max|g|. N = 100 keeps everything (dense exchange); small N
// keeps only the statistically most significant sliver. The paper's text
// ("greater than or equal to N% of the maximum") reads ambiguously, but its
// two anchors fix the semantics: N=1 sends only values within 1% of the max,
// N=100 sends whole gradients - hence the (1 - N/100) threshold.
//
// Selection is applied per weight variable because "each weight variable has
// their own value distribution and convergence speed".
#pragma once

#include <span>
#include <vector>

#include "comm/message.h"
#include "comm/payload.h"

namespace dlion::core {

/// Threshold implied by Max N for a vector whose max-abs is `max_abs`.
double max_n_threshold(double n, float max_abs);

// Every selector below exists in two forms. The writer form packs the
// selected (indices, values) arrays into the caller's PayloadWriter - the
// strategies' hot path, one production write into an arena block, zero heap
// allocations once the thread-local selection workspace is warm. The
// writer-less form packs into a standalone exact-size block instead
// (tests / callers without an arena); both produce identical entries - the
// selection runs in a shared workspace and the output cannot depend on
// where its bytes land.

// ---------------------------------------------------------------------------
// Fused magnitude workspace.
//
// A link generation needs several statistics of the same gradient vector
// (its Max N floor, its top-k set, the equivalent N of that set). The naive
// composition scans the gradient 4-5x, recomputing |g| each time. The
// *_mags variants below share one magnitude pass: call magnitudes() once
// per variable (reusing the caller's vector across variables so steady-state
// link generation allocates nothing), then feed the result to the others.
// ---------------------------------------------------------------------------

/// Fill `mags[i] = |grad[i]|` (resizing as needed) and return max|grad|.
/// Single fused pass over the gradient.
float magnitudes(std::span<const float> grad, std::vector<float>& mags);

/// count_max_n on precomputed magnitudes (no rescan of the gradient).
std::size_t count_max_n_mags(std::span<const float> mags, float max_abs,
                             double n);

/// select_top_k on precomputed magnitudes. When k is in (0, grad.size()),
/// also reports the k-th largest magnitude - the effective selection
/// threshold - via `kth_mag`, letting callers derive equivalent_n without
/// a second partial sort.
comm::VariableGrad select_top_k_mags(std::span<const float> grad,
                                     std::span<const float> mags,
                                     std::uint32_t var_index, std::size_t k,
                                     float* kth_mag = nullptr);
comm::VariableGrad select_top_k_mags(std::span<const float> grad,
                                     std::span<const float> mags,
                                     std::uint32_t var_index, std::size_t k,
                                     comm::PayloadWriter& writer,
                                     float* kth_mag = nullptr);

/// equivalent_n given a precomputed effective threshold (the k-th largest
/// magnitude) and max-abs. Matches equivalent_n() bit-for-bit.
double equivalent_n_from_threshold(float max_abs, float kth_mag);

/// Select entries of `grad` with |g| >= (1 - n/100) * max|g|. n in (0, 100].
/// n == 100 returns a dense VariableGrad.
comm::VariableGrad select_max_n(std::span<const float> grad,
                                std::uint32_t var_index, double n);
comm::VariableGrad select_max_n(std::span<const float> grad,
                                std::uint32_t var_index, double n,
                                comm::PayloadWriter& writer);

/// Select the k largest-magnitude entries (ties broken by lower index).
/// k >= grad.size() returns a dense VariableGrad.
comm::VariableGrad select_top_k(std::span<const float> grad,
                                std::uint32_t var_index, std::size_t k);
comm::VariableGrad select_top_k(std::span<const float> grad,
                                std::uint32_t var_index, std::size_t k,
                                comm::PayloadWriter& writer);

/// Dense VariableGrad over all of `grad` (what Max N = 100 selects).
comm::VariableGrad dense_grad(std::span<const float> grad,
                              std::uint32_t var_index);
comm::VariableGrad dense_grad(std::span<const float> grad,
                              std::uint32_t var_index,
                              comm::PayloadWriter& writer);

/// Number of entries Max N would select, without materializing them.
std::size_t count_max_n(std::span<const float> grad, double n);

/// The N value whose Max N threshold equals selecting the top-k entries of
/// `grad` (for reporting the "equivalent N" of a size-driven selection).
double equivalent_n(std::span<const float> grad, std::size_t k);

}  // namespace dlion::core

// Roster view and bootstrap planning for elastic membership (DESIGN.md,
// "Elastic membership").
//
// A RosterView is each worker's local copy of the cluster roster: a
// monotone epoch plus a membership bitmap over the fixed capacity of
// worker slots. Roster changes propagate via RosterUpdate broadcasts and
// are adopted iff strictly newer, so every worker converges on the
// controller's roster regardless of message interleaving — and because
// adoption depends only on the epoch comparison, the converged state is
// deterministic under replay.
//
// plan_bootstrap splits a joiner's weight download into contiguous,
// disjoint variable ranges across >= 2 live donors (multi-peer bootstrap
// weight transfer): no single peer pays the whole model's egress, and the
// reassembled snapshot is bit-identical to any single donor's weights
// under BSP-consistent rosters (under ASP the chunks may straddle donor
// iterations; the joiner then catches up via the checkpoint path).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dlion::core {

/// A worker's local view of the cluster roster.
class RosterView {
 public:
  RosterView() = default;
  /// All-member roster at epoch 0 over `capacity` slots (the legacy,
  /// non-elastic shape: every slot is always a member).
  explicit RosterView(std::size_t capacity)
      : members_(capacity, true), member_count_(capacity) {}
  RosterView(std::size_t capacity, const std::vector<bool>& members,
             std::uint64_t epoch);

  std::uint64_t epoch() const { return epoch_; }
  std::size_t capacity() const { return members_.size(); }
  std::size_t member_count() const { return member_count_; }
  bool is_member(std::size_t worker) const { return members_.at(worker); }
  const std::vector<bool>& members() const { return members_; }

  /// Adopt `members` at `epoch` iff strictly newer than the current view.
  /// Returns whether the view changed. Equal epochs are ignored (the first
  /// copy won; duplicates carry identical content by construction).
  bool adopt(std::uint64_t epoch, const std::vector<bool>& members);

  /// Member slot ids in ascending order.
  std::vector<std::size_t> member_ids() const;

 private:
  std::vector<bool> members_;
  std::size_t member_count_ = 0;
  std::uint64_t epoch_ = 0;
};

/// One contiguous slice of the model a bootstrap donor serves.
struct BootstrapRange {
  std::size_t donor = 0;      ///< worker slot serving this range
  std::uint32_t first_var = 0;
  std::uint32_t var_count = 0;
};

/// Split `num_vars` model variables into contiguous disjoint ranges over
/// `donors` (ascending slot ids, deterministic order). Uses up to `fanout`
/// donors — at least 2 whenever 2+ are available and there are 2+
/// variables to split; a single-variable model or single-donor roster
/// degenerates to one range. Ranges cover [0, num_vars) exactly.
std::vector<BootstrapRange> plan_bootstrap(std::size_t num_vars,
                                           const std::vector<std::size_t>& donors,
                                           std::size_t fanout);

}  // namespace dlion::core

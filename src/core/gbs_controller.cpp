#include "core/gbs_controller.h"

#include <cmath>
#include <stdexcept>

namespace dlion::core {

GbsController::GbsController(GbsConfig config)
    : config_(config), gbs_(config.initial_gbs) {
  if (config_.initial_gbs == 0 || config_.dataset_size == 0) {
    throw std::invalid_argument("GbsController: zero sizes");
  }
  if (config_.c_speedup <= 1.0) {
    throw std::invalid_argument("GbsController: c_speedup must exceed 1");
  }
}

bool GbsController::saturated() const {
  const double speedup_cap =
      config_.speedup_cap_frac * static_cast<double>(config_.dataset_size);
  return static_cast<double>(gbs_) > speedup_cap;
}

std::size_t GbsController::tick() {
  if (!config_.enabled) {
    ++ticks_;
    return gbs_;
  }
  const double warmup_cap =
      config_.warmup_cap_frac * static_cast<double>(config_.dataset_size);
  const double speedup_cap =
      config_.speedup_cap_frac * static_cast<double>(config_.dataset_size);
  if (in_warmup()) {
    // Arithmetic progression, stop once above the 1% cap.
    if (static_cast<double>(gbs_) <= warmup_cap) {
      gbs_ += config_.c_warmup;
    }
  } else {
    // Geometric progression, stop once above the 10% cap.
    if (static_cast<double>(gbs_) <= speedup_cap) {
      gbs_ = static_cast<std::size_t>(
          std::llround(static_cast<double>(gbs_) * config_.c_speedup));
    }
  }
  ++ticks_;
  return gbs_;
}

std::size_t GbsController::fast_forward(std::size_t ticks) {
  while (ticks_ < ticks) tick();
  return gbs_;
}

}  // namespace dlion::core

#include "core/link_prioritizer.h"

#include <algorithm>
#include <cmath>

#include "core/gradient_select.h"

namespace dlion::core {

LinkPrioritizer::LinkPrioritizer(LinkPrioritizerConfig config)
    : config_(config) {}

std::vector<comm::VariableGrad> LinkPrioritizer::generate(
    const nn::Model& model, const LinkContext& ctx) {
  const auto& vars = model.variables();
  comm::PayloadWriter writer(payload_arena(ctx));
  std::vector<comm::VariableGrad> out;
  out.reserve(vars.size());

  if (!config_.adaptive) {
    // Data quality assurance only: fixed Max N on every link.
    for (std::size_t v = 0; v < vars.size(); ++v) {
      out.push_back(select_max_n(vars[v]->grad().span(),
                                 static_cast<std::uint32_t>(v),
                                 config_.fixed_n, writer));
    }
    last_n_ = config_.fixed_n;
    last_entries_ = 0;
    for (const auto& vg : out) last_entries_ += vg.num_entries();
    return out;
  }

  // Transmission speed assurance: per-iteration byte budget of this link is
  // BW_net_j / Iter_com_i (§3.3).
  const double budget_bytes = config_.budget_fraction *
                              (ctx.available_mbps * 1e6 / 8.0) /
                              std::max(ctx.iterations_per_sec, 1e-9);
  // A sparse entry costs (index + value) = 8 bytes, scaled to nominal size.
  const double entry_bytes = 8.0 * std::max(ctx.byte_scale, 1e-12);
  const double entries_budget = std::max(0.0, budget_bytes / entry_bytes);

  const std::size_t total_params = model.num_params();
  double weighted_n = 0.0;
  std::size_t total_entries = 0;
  // Magnitude buffer reused across variables *and* calls: one scan per
  // gradient, no steady-state allocation.
  std::vector<float>& mags = mags_;
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const auto grad = vars[v]->grad().span();
    // The budget is split across weight variables proportionally to size;
    // Max N is applied per variable (§3.3).
    const double share = total_params == 0
                             ? 0.0
                             : entries_budget * static_cast<double>(grad.size()) /
                                   static_cast<double>(total_params);
    const auto k_budget = static_cast<std::size_t>(std::floor(share));
    // One magnitude pass feeds the quality floor, the top-k selection, and
    // the equivalent-N report (the naive composition rescanned the gradient
    // for each).
    const float mx = magnitudes(grad, mags);
    // Quality floor: never select less than Max N at min_n would.
    const std::size_t k_floor = count_max_n_mags(mags, mx, config_.min_n);
    const std::size_t k = std::max<std::size_t>(
        std::max(k_budget, k_floor), grad.empty() ? 0 : 1);
    float kth_mag = 0.0f;
    comm::VariableGrad vg =
        select_top_k_mags(grad, mags, static_cast<std::uint32_t>(v), k,
                          writer, &kth_mag);
    // equivalent_n(grad, min(k, size)) without the second partial sort:
    // the selection already exposes its effective threshold.
    double eq_n;
    if (grad.empty() || k >= grad.size() || mx == 0.0f) {
      eq_n = 100.0;
    } else if (k == 0) {
      eq_n = 0.0;
    } else {
      eq_n = equivalent_n_from_threshold(mx, kth_mag);
    }
    weighted_n += eq_n * static_cast<double>(grad.size());
    total_entries += vg.num_entries();
    out.push_back(std::move(vg));
  }
  last_n_ = total_params == 0 ? 100.0
                              : weighted_n / static_cast<double>(total_params);
  last_entries_ = total_entries;
  return out;
}

}  // namespace dlion::core

#include "core/dkt.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace dlion::core {

DktModule::DktModule(DktConfig config, std::size_t self, std::size_t n_workers)
    : config_(config),
      self_(self),
      peer_loss_(n_workers, std::numeric_limits<double>::infinity()),
      peer_stamp_(n_workers, -1) {
  if (self >= n_workers) throw std::invalid_argument("DktModule: bad self id");
  if (config_.period_iters == 0) {
    throw std::invalid_argument("DktModule: zero period");
  }
  if (config_.lambda < 0.0 || config_.lambda > 1.0) {
    throw std::invalid_argument("DktModule: lambda must be in [0, 1]");
  }
}

void DktModule::record_loss(double loss) {
  window_.push_back(loss);
  while (window_.size() > config_.loss_window) window_.pop_front();
  peer_loss_[self_] = avg_loss();
}

double DktModule::avg_loss() const {
  if (window_.empty()) return std::numeric_limits<double>::infinity();
  double s = 0.0;
  for (double v : window_) s += v;
  return s / static_cast<double>(window_.size());
}

void DktModule::record_peer_loss(std::size_t peer, double loss,
                                 std::uint64_t local_iteration) {
  peer_loss_.at(peer) = loss;
  peer_stamp_.at(peer) = static_cast<std::int64_t>(local_iteration);
}

bool DktModule::usable(std::size_t i, std::optional<std::uint64_t> now_iter,
                       const std::vector<bool>& excluded) const {
  if (i < excluded.size() && excluded[i]) return false;
  if (i == self_) return true;  // own window is always fresh
  if (config_.peer_loss_expiry_iters == 0 || !now_iter) return true;
  if (peer_stamp_[i] < 0) return true;  // +inf loss never wins anyway
  const auto age = static_cast<std::int64_t>(*now_iter) - peer_stamp_[i];
  return age <= static_cast<std::int64_t>(config_.peer_loss_expiry_iters);
}

bool DktModule::is_boundary(std::uint64_t iter) const {
  if (config_.mode == DktMode::kNone || iter == 0) return false;
  if (config_.early_only_iters && iter > *config_.early_only_iters) {
    return false;
  }
  return iter % config_.period_iters == 0;
}

std::size_t DktModule::best_worker(std::optional<std::uint64_t> now_iter,
                                   const std::vector<bool>& excluded) const {
  std::size_t best = self_;
  double best_loss = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < peer_loss_.size(); ++i) {
    if (!usable(i, now_iter, excluded)) continue;
    if (peer_loss_[i] < best_loss) {
      best_loss = peer_loss_[i];
      best = i;
    }
  }
  return best;
}

std::size_t DktModule::worst_worker(std::optional<std::uint64_t> now_iter,
                                    const std::vector<bool>& excluded) const {
  // Workers that never reported (+inf) are not "worst" in a meaningful
  // sense; prefer the largest finite loss, falling back to index 0.
  std::size_t worst = 0;
  double worst_loss = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < peer_loss_.size(); ++i) {
    if (!usable(i, now_iter, excluded)) continue;
    const double l = peer_loss_[i];
    if (std::isfinite(l) && l > worst_loss) {
      worst_loss = l;
      worst = i;
    }
  }
  return worst;
}

bool DktModule::should_request(std::uint64_t iter) const {
  if (!is_boundary(iter)) return false;
  const std::size_t best = best_worker(iter);
  if (best == self_) return false;  // already have the best weights
  switch (config_.mode) {
    case DktMode::kNone:
      return false;
    case DktMode::kBest2All:
      return true;
    case DktMode::kBest2Worst:
      return worst_worker(iter) == self_;
  }
  return false;
}

void DktModule::merge(nn::Model& model, const nn::Snapshot& best) const {
  auto& vars = model.variables();
  if (best.values.size() != vars.size()) {
    throw std::invalid_argument("DktModule::merge: variable count mismatch");
  }
  const float lambda = static_cast<float>(config_.lambda);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    float* w = vars[v]->value().data();
    const tensor::Tensor& b = best.values[v];
    if (b.size() != vars[v]->size()) {
      throw std::invalid_argument("DktModule::merge: size mismatch at " +
                                  vars[v]->name());
    }
    const float* wb = b.data();
    for (std::size_t i = 0; i < b.size(); ++i) {
      w[i] -= lambda * (w[i] - wb[i]);
    }
  }
}

void DktModule::merge(nn::Model& model,
                      const comm::WeightPayload& best) const {
  auto& vars = model.variables();
  if (best.parts.size() != vars.size()) {
    throw std::invalid_argument("DktModule::merge: variable count mismatch");
  }
  const float lambda = static_cast<float>(config_.lambda);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    float* w = vars[v]->value().data();
    const comm::Payload<float>& b = best.parts[v];
    if (b.size() != vars[v]->size()) {
      throw std::invalid_argument("DktModule::merge: size mismatch at " +
                                  vars[v]->name());
    }
    const float* wb = b.data();
    for (std::size_t i = 0; i < b.size(); ++i) {
      w[i] -= lambda * (w[i] - wb[i]);
    }
  }
}

}  // namespace dlion::core

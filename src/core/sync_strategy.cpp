#include "core/sync_strategy.h"

#include <algorithm>

namespace dlion::core {

std::string SyncPolicy::to_string() const {
  if (async) return "async";
  if (staleness_bound == 0 && backup_workers == 0) return "sync";
  return "bounded(s=" + std::to_string(staleness_bound) +
         ",b=" + std::to_string(backup_workers) + ")";
}

bool can_start_iteration(const SyncPolicy& policy, std::uint64_t next_iter,
                         std::span<const std::int64_t> peer_latest,
                         std::size_t self) {
  return can_start_iteration(policy, next_iter, peer_latest, self, {});
}

bool can_start_iteration(const SyncPolicy& policy, std::uint64_t next_iter,
                         std::span<const std::int64_t> peer_latest,
                         std::size_t self, const std::vector<bool>& suspected) {
  if (policy.async) return true;
  if (next_iter == 0) return true;  // first iteration never waits
  const auto required_iter =
      static_cast<std::int64_t>(next_iter) - 1 -
      static_cast<std::int64_t>(policy.staleness_bound);
  if (required_iter < 0) return true;
  std::size_t fresh_peers = 0;
  std::size_t n_peers = 0;
  for (std::size_t j = 0; j < peer_latest.size(); ++j) {
    if (j == self) continue;
    if (j < suspected.size() && suspected[j]) continue;  // not waited for
    ++n_peers;
    if (peer_latest[j] >= required_iter) ++fresh_peers;
  }
  const std::size_t required_peers =
      n_peers - std::min(policy.backup_workers, n_peers);
  return fresh_peers >= required_peers;
}

}  // namespace dlion::core

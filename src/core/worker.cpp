#include "core/worker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "core/link_prioritizer.h"
#include "core/weighted_update.h"
#include "nn/checkpoint.h"
#include "obs/watchdog.h"

namespace dlion::core {

namespace {
constexpr double kRcpChangeThreshold = 0.05;  // re-broadcast if >5% change
/// RCP substituted for suspected peers when renormalizing LBS allocation:
/// allocate_lbs rejects non-positive compute powers, so "dead" is modeled as
/// vanishingly small instead of zero.
constexpr double kDeadRcp = 1e-12;

/// When fault tolerance is enabled but the caller left DKT peer-loss expiry
/// at its disabled default, age reports out after a few DKT periods so a
/// silent (crashed or partitioned) peer cannot stay "best" forever.
DktConfig with_ft_expiry(DktConfig cfg, const FaultToleranceOptions& ft) {
  if (ft.enabled && cfg.peer_loss_expiry_iters == 0) {
    cfg.peer_loss_expiry_iters = 3 * cfg.period_iters;
  }
  return cfg;
}
}  // namespace

Worker::Worker(std::size_t id, sim::Engine& engine, comm::Fabric& fabric,
               sim::ComputeResource compute, nn::BuiltModel built,
               data::Dataset shard, const data::Dataset* test_set,
               StrategyPtr strategy, WorkerOptions options, std::uint64_t seed)
    : id_(id),
      engine_(&engine),
      fabric_(&fabric),
      compute_(std::move(compute)),
      built_(std::move(built)),
      shard_(std::move(shard)),
      test_set_(test_set),
      strategy_(std::move(strategy)),
      options_(std::move(options)),
      sampler_(shard_, seed),
      gbs_ctrl_(options_.gbs),
      dkt_(with_ft_expiry(options_.dkt, options_.fault_tolerance), id,
           fabric.size()),
      rcp_table_(fabric.size(), 1.0),
      peer_latest_(fabric.size(), -1),
      current_lbs_(options_.fixed_lbs),
      scheduled_gbs_(options_.gbs.initial_gbs),
      compute_rate_(0.3),
      iter_interval_(0.3),
      accuracy_trace_("accuracy"),
      loss_trace_("loss"),
      lbs_trace_("lbs"),
      gbs_trace_("gbs"),
      chosen_n_trace_("chosen_n"),
      entries_traces_(fabric.size()),
      last_heard_(fabric.size(), 0.0),
      suspected_(fabric.size(), false) {
  // Fixed evaluation subset: deterministic, shared across the run.
  if (test_set_ != nullptr && test_set_->size() > 0) {
    const std::size_t n = std::min(options_.eval_subset, test_set_->size());
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    eval_batch_ = data::gather(*test_set_, idx);
  }
  fabric_->attach(id_, [this](std::size_t from, comm::MessagePtr msg) {
    on_message(from, std::move(msg));
  });
}

void Worker::set_obs(obs::Observability* o) {
  obs_ = o;
  obs_track_ = 0;
  obs_h_ = ObsHandles{};
  if (o == nullptr) return;
  obs_track_ = o->tracer().track("workers", "worker " + std::to_string(id_));
  obs::MetricsRegistry& m = o->metrics();
  const obs::Labels labels{{"worker", std::to_string(id_)}};
  obs_h_.iterations = &m.counter("core.iterations", labels);
  obs_h_.dkt_boundaries = &m.counter("core.dkt_boundaries", labels);
  obs_h_.dkt_pulls = &m.counter("core.dkt_pulls", labels);
  obs_h_.crashes = &m.counter("core.crashes", labels);
  obs_h_.recoveries = &m.counter("core.recoveries", labels);
  obs_h_.compute_s = &m.histogram("core.compute_seconds", {},
                                  obs::Histogram::default_time_bounds());
  obs_h_.stall_s = &m.histogram("core.stall_seconds", {},
                                obs::Histogram::default_time_bounds());
  obs_h_.staleness = &m.histogram(
      "core.staleness_iters", {},
      {0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 7.5, 10.5, 15.5, 20.5, 50.5, 100.5});
  obs_h_.grad_entries = &m.histogram("core.grad_entries", {},
                                     obs::Histogram::default_size_bounds());
  obs_h_.grad_bytes = &m.histogram("core.grad_bytes", {},
                                   obs::Histogram::default_size_bounds());
}

std::size_t Worker::current_gbs() const {
  if (options_.gbs_schedule) return scheduled_gbs_;
  return gbs_ctrl_.gbs();
}

std::size_t Worker::live_worker_count() const {
  std::size_t live = 0;
  for (std::size_t j = 0; j < suspected_.size(); ++j) {
    if (j == id_ || !suspected_[j]) ++live;
  }
  return live;
}

std::size_t Worker::effective_gbs() const {
  if (options_.dynamic_batching || options_.gbs_schedule) {
    return std::max<std::size_t>(1, current_gbs());
  }
  return std::max<std::size_t>(1, options_.fixed_lbs * live_worker_count());
}

void Worker::start(common::SimTime until) {
  end_time_ = until;
  std::fill(last_heard_.begin(), last_heard_.end(), engine_->now());
  if (options_.dynamic_batching || options_.gbs_schedule) {
    profile_rcp(/*broadcast_if_changed=*/false);
    fabric_->broadcast(id_, comm::RcpReport{static_cast<std::uint32_t>(id_),
                                            rcp_table_[id_]});
    recompute_lbs();
  } else {
    current_lbs_ = options_.fixed_lbs;
    lbs_trace_.record(engine_->now(), static_cast<double>(current_lbs_));
    if (obs::on(obs_)) {
      obs_->tracer().counter(obs_track_, "lbs", engine_->now(),
                             static_cast<double>(current_lbs_));
    }
  }
  gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
  if (obs::on(obs_)) {
    obs_->tracer().counter(obs_track_, "gbs", engine_->now(),
                           static_cast<double>(current_gbs()));
  }
  // Batch size update module: periodic profiling + GBS controller ticks
  // (plus the fault-tolerance heartbeat/checkpoint modules when enabled).
  schedule_ticks();
  try_start_iteration();
}

void Worker::schedule_ticks() {
  const std::uint64_t inc = incarnation_;
  engine_->after(options_.batch_update_period_s, [this, inc] {
    if (inc == incarnation_) batch_tick();
  });
  if (ft().enabled) {
    engine_->after(ft().heartbeat_period_s, [this, inc] {
      if (inc == incarnation_) heartbeat_tick();
    });
    engine_->after(ft().checkpoint_period_s, [this, inc] {
      if (inc == incarnation_) checkpoint_tick();
    });
  }
}

void Worker::batch_tick() {
  // Periodic LBS-controller work only: re-profile the (possibly changed)
  // compute capacity and re-derive LBS. GBS controller ticks are driven by
  // epoch progress in finish_iteration(), not by wall time.
  if (engine_->now() >= end_time_) return;
  if (options_.gbs_schedule) {
    scheduled_gbs_ = options_.gbs_schedule(iteration_, engine_->now());
    profile_rcp(/*broadcast_if_changed=*/true);
    recompute_lbs();
  } else if (options_.dynamic_batching) {
    profile_rcp(/*broadcast_if_changed=*/true);
    recompute_lbs();
  }
  gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
  if (obs::on(obs_)) {
    obs_->tracer().counter(obs_track_, "gbs", engine_->now(),
                           static_cast<double>(current_gbs()));
  }
  const std::uint64_t inc = incarnation_;
  engine_->after(options_.batch_update_period_s, [this, inc] {
    if (inc == incarnation_) batch_tick();
  });
}

void Worker::heartbeat_tick() {
  if (engine_->now() >= end_time_) return;
  fabric_->broadcast(id_, comm::Heartbeat{static_cast<std::uint32_t>(id_),
                                          iteration_});
  // Suspicion sweep: a peer unheard-from past the timeout is excluded from
  // wait-sets, renormalization, and weight-pull targeting until it speaks
  // again (on_message clears suspicion on any received message).
  const common::SimTime now = engine_->now();
  bool changed = false;
  for (std::size_t j = 0; j < suspected_.size(); ++j) {
    if (j == id_) continue;
    const bool sus = (now - last_heard_[j]) > ft().suspicion_timeout_s;
    if (sus != suspected_[j]) {
      suspected_[j] = sus;
      changed = true;
    }
  }
  if (changed) {
    // Degrade gracefully: reallocate batch shares across live workers and
    // re-check the (possibly shrunken) synchronization wait-set.
    if (options_.dynamic_batching || options_.gbs_schedule) recompute_lbs();
    if (waiting_) {
      const std::uint64_t inc0 = incarnation_;
      engine_->after(0.0, [this, inc0] {
        if (inc0 == incarnation_) try_start_iteration();
      });
    }
  }
  const std::uint64_t inc = incarnation_;
  engine_->after(ft().heartbeat_period_s, [this, inc] {
    if (inc == incarnation_) heartbeat_tick();
  });
}

void Worker::checkpoint_tick() {
  if (engine_->now() >= end_time_) return;
  take_checkpoint();
  const std::uint64_t inc = incarnation_;
  engine_->after(ft().checkpoint_period_s, [this, inc] {
    if (inc == incarnation_) checkpoint_tick();
  });
}

void Worker::take_checkpoint() {
  checkpoint_buf_ = nn::serialize_checkpoint(built_.model);
  checkpoint_iteration_ = iteration_;
  checkpoint_valid_ = true;
  ++checkpoints_taken_;
  if (obs::on(obs_)) {
    obs_->tracer().instant(
        obs_track_, "checkpoint", engine_->now(),
        {{"iteration", static_cast<double>(iteration_)},
         {"bytes", static_cast<double>(checkpoint_buf_.size())}});
  }
}

void Worker::crash() {
  if (crashed_) return;
  crashed_ = true;
  if (obs::on(obs_)) {
    obs_h_.crashes->inc();
    obs_->tracer().instant(obs_track_, "crash", engine_->now(),
                           {{"iteration", static_cast<double>(iteration_)}});
    stall_start_ = -1.0;  // a crash voids any open stall/pull span
    pull_start_ = -1.0;
  }
  ++crash_count_;
  ++incarnation_;  // cancels every lambda scheduled by the old incarnation
  running_ = false;
  waiting_ = false;
  catching_up_ = false;
  fabric_->detach(id_);  // in-flight messages to this worker dead-letter
}

void Worker::recover() {
  if (!crashed_) return;
  crashed_ = false;
  ++recover_count_;
  if (obs::on(obs_)) {
    obs_h_.recoveries->inc();
    obs_->tracer().instant(
        obs_track_, "recover", engine_->now(),
        {{"checkpoint_iteration",
          static_cast<double>(checkpoint_iteration_)}});
  }
  fabric_->attach(id_, [this](std::size_t from, comm::MessagePtr msg) {
    on_message(from, std::move(msg));
  });
  // Restore the last pre-crash snapshot; training state between the
  // checkpoint and the crash is lost (that is the point of catch-up below).
  if (checkpoint_valid_) {
    nn::restore_checkpoint(built_.model, checkpoint_buf_);
    iteration_ = checkpoint_iteration_;
  }
  compute_rate_.reset();
  iter_interval_.reset();
  last_finish_ = -1.0;
  // Grace period: give every peer a fresh liveness stamp so the recovering
  // worker does not instantly suspect the whole cluster.
  std::fill(last_heard_.begin(), last_heard_.end(), engine_->now());
  std::fill(suspected_.begin(), suspected_.end(), false);
  // Re-announce compute power and liveness to peers.
  if (options_.dynamic_batching || options_.gbs_schedule) {
    profile_rcp(/*broadcast_if_changed=*/false);
    fabric_->broadcast(id_, comm::RcpReport{static_cast<std::uint32_t>(id_),
                                            rcp_table_[id_]});
    recompute_lbs();
  }
  if (ft().enabled) {
    fabric_->broadcast(id_, comm::Heartbeat{static_cast<std::uint32_t>(id_),
                                            iteration_});
  }
  schedule_ticks();
  request_catch_up();
  try_start_iteration();
}

void Worker::request_catch_up() {
  if (!ft().enabled) return;
  // Pull fresh weights + iteration state from a live peer; until the
  // snapshot arrives the worker trains from its (stale) checkpoint.
  catching_up_ = true;
  send_weight_pull(suspected_, fabric_->size(), /*catch_up=*/true);
}

void Worker::profile_rcp(bool broadcast_if_changed) {
  // The LBS controller measures iteration time at several probe batch sizes
  // and fits time = a + b*LBS (§3.2). Probes read the compute model's
  // nominal timing - the simulated analogue of running short timing probes.
  std::vector<double> xs, ys;
  xs.reserve(options_.lbs.probe_sizes.size());
  ys.reserve(options_.lbs.probe_sizes.size());
  for (std::size_t lbs : options_.lbs.probe_sizes) {
    xs.push_back(static_cast<double>(lbs));
    ys.push_back(compute_.nominal_iteration_seconds(lbs, engine_->now()));
  }
  const double rcp = estimate_rcp(xs, ys, options_.lbs.unit_time_s);
  const double old = rcp_table_[id_];
  rcp_table_[id_] = rcp;
  if (broadcast_if_changed &&
      std::fabs(rcp - old) > kRcpChangeThreshold * std::max(old, 1.0)) {
    fabric_->broadcast(id_, comm::RcpReport{static_cast<std::uint32_t>(id_),
                                            rcp});
  }
}

void Worker::recompute_lbs() {
  // Suspected peers contribute (effectively) zero compute power, so their
  // batch share is redistributed across live workers. With no suspicion the
  // table is used verbatim - identical to the non-fault-tolerant path.
  std::vector<double> rcp = rcp_table_;
  for (std::size_t j = 0; j < rcp.size(); ++j) {
    if (j != id_ && suspected_[j]) rcp[j] = kDeadRcp;
  }
  const auto allocation = allocate_lbs(current_gbs(), rcp, options_.lbs.min_lbs);
  DLION_ASSERT(allocation.size() == rcp.size(),
               "LBS allocation lost a worker");
  const std::size_t lbs = std::max<std::size_t>(1, allocation[id_]);
  // LBS bounds contract (Eq. 5): a worker's share never exceeds the global
  // batch it was carved from.
  DLION_ASSERT(lbs <= std::max<std::size_t>(1, current_gbs()),
               "LBS " + std::to_string(lbs) + " exceeds GBS " +
                   std::to_string(current_gbs()));
  if (lbs != current_lbs_) {
    current_lbs_ = lbs;
  }
  lbs_trace_.record(engine_->now(), static_cast<double>(current_lbs_));
  if (obs::on(obs_)) {
    obs_->tracer().counter(obs_track_, "lbs", engine_->now(),
                           static_cast<double>(current_lbs_));
  }
}

void Worker::try_start_iteration() {
  if (crashed_ || running_ || engine_->now() >= end_time_ ||
      iteration_ >= options_.max_iterations) {
    return;
  }
  // Wait-set ⊆ live-set contract: the worker itself is always live (a
  // crashed worker never reaches this point — crash() clears running state
  // and detaches), so the synchronization wait-set below, which excludes
  // every suspected peer, can never contain a dead participant or demand a
  // wait on ourselves.
  DLION_DCHECK(!crashed_ && !suspected_[id_],
               "wait-set would include a dead participant");
  DLION_DCHECK(live_worker_count() >= 1, "live-set lost the worker itself");
  // Suspected peers are excluded from the wait-set entirely, so a crashed
  // peer cannot deadlock synchronous or bounded-staleness training.
  if (!can_start_iteration(options_.sync, iteration_, peer_latest_, id_,
                           suspected_)) {
    waiting_ = true;
    // Open (or keep open) the sync-stall span for this gap.
    if (obs::on(obs_) && stall_start_ < 0.0) stall_start_ = engine_->now();
    return;
  }
  waiting_ = false;
  running_ = true;
  if (obs::on(obs_)) {
    if (stall_start_ >= 0.0) {
      const double stalled = engine_->now() - stall_start_;
      obs_->tracer().complete(obs_track_, "stall", stall_start_,
                              engine_->now());
      obs_h_.stall_s->observe(stalled);
      stall_start_ = -1.0;
    }
    // Staleness at iteration start: how far this worker has run ahead of
    // the slowest live peer's last received gradient (§3.3's bounded-
    // staleness clock). Negative values mean peers are ahead of us.
    std::int64_t min_peer = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j = 0; j < peer_latest_.size(); ++j) {
      if (j == id_ || suspected_[j]) continue;
      min_peer = std::min(min_peer, peer_latest_[j]);
    }
    if (min_peer != std::numeric_limits<std::int64_t>::max()) {
      const double staleness =
          static_cast<double>(static_cast<std::int64_t>(iteration_) -
                              min_peer);
      obs_h_.staleness->observe(staleness);
      obs_->tracer().counter(obs_track_, "staleness", engine_->now(),
                             staleness);
      if (obs::Watchdog* wd = obs_->watchdog()) {
        wd->on_staleness(id_, engine_->now(), staleness);
      }
    }
  }
  const std::size_t lbs = current_lbs_;
  // Real gradient math on the local shard; simulated time charged below.
  const data::Batch batch = sampler_.next(lbs);
  const nn::LossResult res =
      built_.model.compute_gradients(batch.images, batch.labels);
  dkt_.record_loss(res.loss);
  loss_trace_.record(engine_->now(), res.loss);
  if (obs::on(obs_)) {
    if (obs::Watchdog* wd = obs_->watchdog()) {
      wd->on_loss(id_, engine_->now(), res.loss);
    }
  }
  const double dt = compute_.iteration_seconds(lbs, engine_->now());
  compute_rate_.add(dt);
  const std::uint64_t inc = incarnation_;
  engine_->after(dt, [this, inc, lbs, dt] {
    if (inc == incarnation_) finish_iteration(lbs, dt);
  });
}

void Worker::finish_iteration(std::size_t lbs, double compute_seconds) {
  if (obs::on(obs_)) {
    // The gradient-compute phase ran from the iteration's start until now.
    obs_->tracer().complete(obs_track_, "compute",
                            engine_->now() - compute_seconds, engine_->now(),
                            {{"iteration", static_cast<double>(iteration_)},
                             {"lbs", static_cast<double>(lbs)}});
    obs_h_.compute_s->observe(compute_seconds);
    obs_h_.iterations->inc();
    if (obs::Watchdog* wd = obs_->watchdog()) {
      wd->on_iteration(id_, engine_->now());
    }
  }
  // Apply own gradients (Eq. 7's j = k term: db = 1 literal, n*LBS_k/GBS
  // normalized). Averaging runs over *live* workers so updates keep their
  // magnitude when peers die (n = fabric size when nothing is suspected).
  const std::size_t n_live = live_worker_count();
  // GBS bounds contract: the effective global batch always covers this
  // worker's own contribution and never exceeds what the live cluster can
  // actually supply in fixed-LBS mode.
  DLION_ASSERT(n_live >= 1 && n_live <= fabric_->size());
  DLION_DCHECK(effective_gbs() >= 1, "effective GBS collapsed to zero");
  double own_db = 1.0;
  if (options_.weighted_update && options_.db_normalized) {
    own_db = normalized_batching_weight(lbs, effective_gbs(), n_live);
  }
  apply_own_gradients(built_.model, options_.learning_rate, n_live, own_db);

  // Iter_com_i (§3.3) is the worker's achieved iteration rate - the full
  // cycle including synchronization waits, not just gradient compute - so
  // the per-link byte budget self-regulates under congestion.
  const double interval = last_finish_ < 0.0
                              ? compute_seconds
                              : engine_->now() - last_finish_;
  last_finish_ = engine_->now();
  iter_interval_.add(std::max(interval, 1e-9));

  // Partial gradients generation module: per-link selection + send.
  // Suspected peers get nothing (their link budget is reclaimed); they
  // re-enter the loop as soon as a message from them clears suspicion.
  strategy_->begin_iteration(built_.model, iteration_);
  const double iters_per_sec = 1.0 / std::max(iter_interval_.value(), 1e-9);
  double sent_entries = 0.0;
  double sent_bytes = 0.0;
  double sent_peers = 0.0;
  for (std::size_t peer = 0; peer < fabric_->size(); ++peer) {
    if (peer == id_) continue;
    if (suspected_[peer]) continue;
    LinkContext ctx;
    ctx.self = id_;
    ctx.peer = peer;
    ctx.iteration = iteration_;
    // The network monitor reports the link's effective rate: the fair share
    // of the sender's shaped uplink across its n-1 peers, capped by the
    // explicit link matrix entry (WAN paths).
    ctx.available_mbps = fabric_->network().available_mbps(id_, peer);
    ctx.iterations_per_sec = iters_per_sec;
    ctx.byte_scale = fabric_->byte_scale();
    ctx.learning_rate = options_.learning_rate;
    ctx.n_workers = n_live;
    comm::GradientUpdate update;
    update.from = static_cast<std::uint32_t>(id_);
    update.iteration = iteration_;
    update.lbs = static_cast<std::uint32_t>(lbs);
    update.vars = strategy_->generate(built_.model, ctx);
    entries_traces_[peer].record(engine_->now(),
                                 static_cast<double>(update.num_entries()));
    if (auto* lp = dynamic_cast<LinkPrioritizer*>(strategy_.get())) {
      chosen_n_trace_.record(engine_->now(), lp->last_n());
    }
    if (obs::on(obs_)) {
      // Per-link gradient size (the quantity Fig. 8 studies). Charged
      // bytes are recomputed here only when observing.
      const double entries = static_cast<double>(update.num_entries());
      const double bytes =
          static_cast<double>(fabric_->charged_bytes(update));
      obs_h_.grad_entries->observe(entries);
      obs_h_.grad_bytes->observe(bytes);
      sent_entries += entries;
      sent_bytes += bytes;
      sent_peers += 1.0;
    }
    fabric_->send(id_, peer, std::move(update));
  }
  if (obs::on(obs_) && sent_peers > 0.0) {
    obs_->tracer().instant(obs_track_, "send", engine_->now(),
                           {{"peers", sent_peers},
                            {"entries", sent_entries},
                            {"bytes", sent_bytes}});
  }

  ++iteration_;

  // GBS controller (§3.2): one tick per epoch of estimated cluster-wide
  // training progress. Every iteration consumes about one GBS of samples
  // across the cluster.
  if (options_.dynamic_batching && !options_.gbs_schedule &&
      options_.gbs.dataset_size > 0) {
    epoch_progress_ += static_cast<double>(effective_gbs()) /
                       static_cast<double>(options_.gbs.dataset_size);
    if (epoch_progress_ >= epochs_ticked_ + 1.0) {
      epochs_ticked_ += 1.0;
      gbs_ctrl_.tick();
      profile_rcp(/*broadcast_if_changed=*/false);
      recompute_lbs();
      gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
      if (obs::on(obs_)) {
        obs_->tracer().counter(obs_track_, "gbs", engine_->now(),
                               static_cast<double>(current_gbs()));
      }
    }
  }

  // Model accuracy measured every eval_period iterations (§5.1.3).
  if (test_set_ != nullptr && iteration_ % options_.eval_period_iters == 0) {
    evaluate_accuracy();
  }

  // Model synchronization module (§3.4).
  if (dkt_.is_boundary(iteration_)) run_dkt_boundary();

  running_ = false;
  const std::uint64_t inc = incarnation_;
  engine_->after(0.0, [this, inc] {
    if (inc == incarnation_) try_start_iteration();
  });
}

void Worker::run_dkt_boundary() {
  if (obs::on(obs_)) {
    obs_h_.dkt_boundaries->inc();
    obs_->tracer().instant(obs_track_, "dkt_boundary", engine_->now(),
                           {{"iteration", static_cast<double>(iteration_)},
                            {"avg_loss", dkt_.avg_loss()}});
  }
  fabric_->broadcast(
      id_, comm::LossReport{static_cast<std::uint32_t>(id_), iteration_,
                            dkt_.avg_loss()});
  if (!dkt_.should_request(iteration_)) return;
  if (ft().enabled) {
    // Reliable pull with next-best fallback: an unacked request (crashed or
    // partitioned best worker) falls through to the next-best candidate.
    send_weight_pull(suspected_, fabric_->size(), /*catch_up=*/false);
  } else {
    const std::size_t best = dkt_.best_worker(iteration_);
    if (obs::on(obs_)) {
      obs_h_.dkt_pulls->inc();
      if (pull_start_ < 0.0) pull_start_ = engine_->now();
    }
    fabric_->send(id_, best,
                  comm::DktRequest{static_cast<std::uint32_t>(id_),
                                   iteration_});
  }
}

void Worker::send_weight_pull(std::vector<bool> excluded,
                              std::size_t attempts_left, bool catch_up) {
  if (excluded.size() < fabric_->size()) {
    excluded.resize(fabric_->size(), false);
  }
  excluded[id_] = true;  // never pull from ourselves
  if (attempts_left == 0) {
    if (catch_up) catching_up_ = false;
    return;
  }
  std::size_t target = dkt_.best_worker(iteration_, excluded);
  if (target == id_) {
    // DKT knows no usable better peer. A DKT boundary simply skips the
    // exchange; a catch-up pull takes any live peer (anyone's state is
    // fresher than our checkpoint).
    if (!catch_up) return;
    target = fabric_->size();
    for (std::size_t j = 0; j < fabric_->size(); ++j) {
      if (!excluded[j]) {
        target = j;
        break;
      }
    }
    if (target == fabric_->size()) {
      catching_up_ = false;  // nobody reachable; keep training from snapshot
      return;
    }
  }
  if (obs::on(obs_)) {
    obs_h_.dkt_pulls->inc();
    if (pull_start_ < 0.0) pull_start_ = engine_->now();
  }
  const std::uint64_t inc = incarnation_;
  fabric_->send_reliable(
      id_, target,
      comm::DktRequest{static_cast<std::uint32_t>(id_), iteration_},
      ft().control_retry,
      [this, inc, excluded = std::move(excluded), attempts_left, catch_up,
       target](bool acked) mutable {
        if (inc != incarnation_) return;
        if (acked) return;  // the WeightSnapshot reply is on its way
        ++pull_fallbacks_;
        excluded[target] = true;
        send_weight_pull(std::move(excluded), attempts_left - 1, catch_up);
      });
}

double Worker::evaluate_accuracy() {
  if (eval_batch_.size() == 0) return 0.0;
  const nn::LossResult res =
      built_.model.evaluate(eval_batch_.images, eval_batch_.labels);
  accuracy_trace_.record(engine_->now(), res.accuracy);
  if (obs::on(obs_)) {
    obs_->tracer().instant(obs_track_, "eval", engine_->now(),
                           {{"accuracy", res.accuracy}});
  }
  return res.accuracy;
}

void Worker::on_message(std::size_t from, comm::MessagePtr msg) {
  DLION_DCHECK(from < fabric_->size() && from != id_,
               "message from impossible sender " + std::to_string(from));
  // Any message is proof of life: refresh the liveness stamp and clear
  // suspicion (a no-op whenever fault tolerance is disabled).
  if (from < last_heard_.size()) {
    last_heard_[from] = engine_->now();
    suspected_[from] = false;
  }
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, comm::GradientUpdate>) {
          peer_latest_[from] =
              std::max(peer_latest_[from],
                       static_cast<std::int64_t>(m.iteration));
          const std::size_t n_live = live_worker_count();
          const double db =
              options_.db_normalized
                  ? normalized_batching_weight(std::max<std::size_t>(1, m.lbs),
                                               effective_gbs(), n_live,
                                               options_.weighted_update)
                  : dynamic_batching_weight(std::max<std::size_t>(1, m.lbs),
                                            std::max<std::size_t>(
                                                1, current_lbs_),
                                            options_.weighted_update);
          apply_gradient_update(built_.model, m, options_.learning_rate,
                                n_live, db);
          if (obs::on(obs_) && obs_->causal()) {
            // Zero-duration "apply" span at delivery time: the destination
            // slice for the fabric's flow-end recorded just before this
            // handler ran (same track, same timestamp), and the node the
            // critical-path analyzer charges the incoming transfer to.
            // Deliberately arg-free: this is the hottest causal record site
            // and an args vector would heap-allocate per delivery.
            obs_->tracer().complete(obs_track_, "apply", engine_->now(),
                                    engine_->now());
          }
          if (waiting_) {
            const std::uint64_t inc = incarnation_;
            engine_->after(0.0, [this, inc] {
              if (inc == incarnation_) try_start_iteration();
            });
          }
        } else if constexpr (std::is_same_v<T, comm::LossReport>) {
          // Stamped with the *receiver's* iteration: one coherent freshness
          // clock even when peers' own iteration counts diverge.
          dkt_.record_peer_loss(from, m.avg_loss, iteration_);
        } else if constexpr (std::is_same_v<T, comm::DktRequest>) {
          comm::WeightSnapshot snap;
          snap.from = static_cast<std::uint32_t>(id_);
          snap.iteration = iteration_;
          snap.loss = dkt_.avg_loss();
          snap.weights = built_.model.weights();
          if (ft().enabled) {
            fabric_->send_reliable(id_, from, std::move(snap),
                                   ft().control_retry);
          } else {
            fabric_->send(id_, from, std::move(snap));
          }
        } else if constexpr (std::is_same_v<T, comm::WeightSnapshot>) {
          if (obs::on(obs_) && pull_start_ >= 0.0) {
            // Close the DKT weight-pull phase opened when the (first)
            // request of this exchange went out.
            obs_->tracer().complete(obs_track_, "dkt_pull", pull_start_,
                                    engine_->now(),
                                    {{"from", static_cast<double>(from)}});
            pull_start_ = -1.0;
          }
          if (catching_up_) {
            // Post-recovery catch-up: adopt the peer's weights and jump to
            // its iteration so peers' staleness bounds see us as current.
            built_.model.set_weights(m.weights);
            iteration_ = std::max(iteration_, m.iteration);
            catching_up_ = false;
            take_checkpoint();  // fresh restore point post-rejoin
            if (waiting_) {
              const std::uint64_t inc = incarnation_;
              engine_->after(0.0, [this, inc] {
                if (inc == incarnation_) try_start_iteration();
              });
            }
          } else {
            dkt_.merge(built_.model, m.weights);
          }
        } else if constexpr (std::is_same_v<T, comm::RcpReport>) {
          rcp_table_[from] = m.rcp;
          if (options_.dynamic_batching || options_.gbs_schedule) {
            recompute_lbs();
          }
        } else if constexpr (std::is_same_v<T, comm::Heartbeat>) {
          // Liveness handled above; the beacon carries no training payload.
        }
      },
      *msg);
}

}  // namespace dlion::core

#include "core/worker.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/link_prioritizer.h"
#include "core/weighted_update.h"

namespace dlion::core {

namespace {
constexpr double kRcpChangeThreshold = 0.05;  // re-broadcast if >5% change
}

Worker::Worker(std::size_t id, sim::Engine& engine, comm::Fabric& fabric,
               sim::ComputeResource compute, nn::BuiltModel built,
               data::Dataset shard, const data::Dataset* test_set,
               StrategyPtr strategy, WorkerOptions options, std::uint64_t seed)
    : id_(id),
      engine_(&engine),
      fabric_(&fabric),
      compute_(std::move(compute)),
      built_(std::move(built)),
      shard_(std::move(shard)),
      test_set_(test_set),
      strategy_(std::move(strategy)),
      options_(std::move(options)),
      sampler_(shard_, seed),
      gbs_ctrl_(options_.gbs),
      dkt_(options_.dkt, id, fabric.size()),
      rcp_table_(fabric.size(), 1.0),
      peer_latest_(fabric.size(), -1),
      current_lbs_(options_.fixed_lbs),
      scheduled_gbs_(options_.gbs.initial_gbs),
      compute_rate_(0.3),
      iter_interval_(0.3),
      accuracy_trace_("accuracy"),
      loss_trace_("loss"),
      lbs_trace_("lbs"),
      gbs_trace_("gbs"),
      chosen_n_trace_("chosen_n"),
      entries_traces_(fabric.size()) {
  // Fixed evaluation subset: deterministic, shared across the run.
  if (test_set_ != nullptr && test_set_->size() > 0) {
    const std::size_t n = std::min(options_.eval_subset, test_set_->size());
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    eval_batch_ = data::gather(*test_set_, idx);
  }
  fabric_->attach(id_, [this](std::size_t from, comm::MessagePtr msg) {
    on_message(from, std::move(msg));
  });
}

std::size_t Worker::current_gbs() const {
  if (options_.gbs_schedule) return scheduled_gbs_;
  return gbs_ctrl_.gbs();
}

std::size_t Worker::effective_gbs() const {
  if (options_.dynamic_batching || options_.gbs_schedule) {
    return std::max<std::size_t>(1, current_gbs());
  }
  return std::max<std::size_t>(1, options_.fixed_lbs * fabric_->size());
}

void Worker::start(common::SimTime until) {
  end_time_ = until;
  if (options_.dynamic_batching || options_.gbs_schedule) {
    profile_rcp(/*broadcast_if_changed=*/false);
    fabric_->broadcast(id_, comm::RcpReport{static_cast<std::uint32_t>(id_),
                                            rcp_table_[id_]});
    recompute_lbs();
  } else {
    current_lbs_ = options_.fixed_lbs;
    lbs_trace_.record(engine_->now(), static_cast<double>(current_lbs_));
  }
  gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
  // Batch size update module: periodic profiling + GBS controller ticks.
  engine_->after(options_.batch_update_period_s, [this] { batch_tick(); });
  try_start_iteration();
}

void Worker::batch_tick() {
  // Periodic LBS-controller work only: re-profile the (possibly changed)
  // compute capacity and re-derive LBS. GBS controller ticks are driven by
  // epoch progress in finish_iteration(), not by wall time.
  if (engine_->now() >= end_time_) return;
  if (options_.gbs_schedule) {
    scheduled_gbs_ = options_.gbs_schedule(iteration_, engine_->now());
    profile_rcp(/*broadcast_if_changed=*/true);
    recompute_lbs();
  } else if (options_.dynamic_batching) {
    profile_rcp(/*broadcast_if_changed=*/true);
    recompute_lbs();
  }
  gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
  engine_->after(options_.batch_update_period_s, [this] { batch_tick(); });
}

void Worker::profile_rcp(bool broadcast_if_changed) {
  // The LBS controller measures iteration time at several probe batch sizes
  // and fits time = a + b*LBS (§3.2). Probes read the compute model's
  // nominal timing - the simulated analogue of running short timing probes.
  std::vector<double> xs, ys;
  xs.reserve(options_.lbs.probe_sizes.size());
  ys.reserve(options_.lbs.probe_sizes.size());
  for (std::size_t lbs : options_.lbs.probe_sizes) {
    xs.push_back(static_cast<double>(lbs));
    ys.push_back(compute_.nominal_iteration_seconds(lbs, engine_->now()));
  }
  const double rcp = estimate_rcp(xs, ys, options_.lbs.unit_time_s);
  const double old = rcp_table_[id_];
  rcp_table_[id_] = rcp;
  if (broadcast_if_changed &&
      std::fabs(rcp - old) > kRcpChangeThreshold * std::max(old, 1.0)) {
    fabric_->broadcast(id_, comm::RcpReport{static_cast<std::uint32_t>(id_),
                                            rcp});
  }
}

void Worker::recompute_lbs() {
  const auto allocation =
      allocate_lbs(current_gbs(), rcp_table_, options_.lbs.min_lbs);
  const std::size_t lbs = std::max<std::size_t>(1, allocation[id_]);
  if (lbs != current_lbs_) {
    current_lbs_ = lbs;
  }
  lbs_trace_.record(engine_->now(), static_cast<double>(current_lbs_));
}

void Worker::try_start_iteration() {
  if (running_ || engine_->now() >= end_time_ ||
      iteration_ >= options_.max_iterations) {
    return;
  }
  if (!can_start_iteration(options_.sync, iteration_, peer_latest_, id_)) {
    waiting_ = true;
    return;
  }
  waiting_ = false;
  running_ = true;
  const std::size_t lbs = current_lbs_;
  // Real gradient math on the local shard; simulated time charged below.
  const data::Batch batch = sampler_.next(lbs);
  const nn::LossResult res =
      built_.model.compute_gradients(batch.images, batch.labels);
  dkt_.record_loss(res.loss);
  loss_trace_.record(engine_->now(), res.loss);
  const double dt = compute_.iteration_seconds(lbs, engine_->now());
  compute_rate_.add(dt);
  engine_->after(dt, [this, lbs, dt] { finish_iteration(lbs, dt); });
}

void Worker::finish_iteration(std::size_t lbs, double compute_seconds) {
  // Apply own gradients (Eq. 7's j = k term: db = 1 literal, n*LBS_k/GBS
  // normalized).
  double own_db = 1.0;
  if (options_.weighted_update && options_.db_normalized) {
    own_db = normalized_batching_weight(lbs, effective_gbs(), fabric_->size());
  }
  apply_own_gradients(built_.model, options_.learning_rate, fabric_->size(),
                      own_db);

  // Iter_com_i (§3.3) is the worker's achieved iteration rate - the full
  // cycle including synchronization waits, not just gradient compute - so
  // the per-link byte budget self-regulates under congestion.
  const double interval = last_finish_ < 0.0
                              ? compute_seconds
                              : engine_->now() - last_finish_;
  last_finish_ = engine_->now();
  iter_interval_.add(std::max(interval, 1e-9));

  // Partial gradients generation module: per-link selection + send.
  strategy_->begin_iteration(built_.model, iteration_);
  const double iters_per_sec = 1.0 / std::max(iter_interval_.value(), 1e-9);
  for (std::size_t peer = 0; peer < fabric_->size(); ++peer) {
    if (peer == id_) continue;
    LinkContext ctx;
    ctx.self = id_;
    ctx.peer = peer;
    ctx.iteration = iteration_;
    // The network monitor reports the link's effective rate: the fair share
    // of the sender's shaped uplink across its n-1 peers, capped by the
    // explicit link matrix entry (WAN paths).
    ctx.available_mbps = fabric_->network().available_mbps(id_, peer);
    ctx.iterations_per_sec = iters_per_sec;
    ctx.byte_scale = fabric_->byte_scale();
    ctx.learning_rate = options_.learning_rate;
    ctx.n_workers = fabric_->size();
    comm::GradientUpdate update;
    update.from = static_cast<std::uint32_t>(id_);
    update.iteration = iteration_;
    update.lbs = static_cast<std::uint32_t>(lbs);
    update.vars = strategy_->generate(built_.model, ctx);
    entries_traces_[peer].record(engine_->now(),
                                 static_cast<double>(update.num_entries()));
    if (auto* lp = dynamic_cast<LinkPrioritizer*>(strategy_.get())) {
      chosen_n_trace_.record(engine_->now(), lp->last_n());
    }
    fabric_->send(id_, peer, std::move(update));
  }

  ++iteration_;

  // GBS controller (§3.2): one tick per epoch of estimated cluster-wide
  // training progress. Every iteration consumes about one GBS of samples
  // across the cluster.
  if (options_.dynamic_batching && !options_.gbs_schedule &&
      options_.gbs.dataset_size > 0) {
    epoch_progress_ += static_cast<double>(effective_gbs()) /
                       static_cast<double>(options_.gbs.dataset_size);
    if (epoch_progress_ >= epochs_ticked_ + 1.0) {
      epochs_ticked_ += 1.0;
      gbs_ctrl_.tick();
      profile_rcp(/*broadcast_if_changed=*/false);
      recompute_lbs();
      gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
    }
  }

  // Model accuracy measured every eval_period iterations (§5.1.3).
  if (test_set_ != nullptr && iteration_ % options_.eval_period_iters == 0) {
    evaluate_accuracy();
  }

  // Model synchronization module (§3.4).
  if (dkt_.is_boundary(iteration_)) run_dkt_boundary();

  running_ = false;
  engine_->after(0.0, [this] { try_start_iteration(); });
}

void Worker::run_dkt_boundary() {
  fabric_->broadcast(
      id_, comm::LossReport{static_cast<std::uint32_t>(id_), iteration_,
                            dkt_.avg_loss()});
  if (dkt_.should_request(iteration_)) {
    const std::size_t best = dkt_.best_worker();
    fabric_->send(id_, best,
                  comm::DktRequest{static_cast<std::uint32_t>(id_),
                                   iteration_});
  }
}

double Worker::evaluate_accuracy() {
  if (eval_batch_.size() == 0) return 0.0;
  const nn::LossResult res =
      built_.model.evaluate(eval_batch_.images, eval_batch_.labels);
  accuracy_trace_.record(engine_->now(), res.accuracy);
  return res.accuracy;
}

void Worker::on_message(std::size_t from, comm::MessagePtr msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, comm::GradientUpdate>) {
          peer_latest_[from] =
              std::max(peer_latest_[from],
                       static_cast<std::int64_t>(m.iteration));
          const double db =
              options_.db_normalized
                  ? normalized_batching_weight(std::max<std::size_t>(1, m.lbs),
                                               effective_gbs(),
                                               fabric_->size(),
                                               options_.weighted_update)
                  : dynamic_batching_weight(std::max<std::size_t>(1, m.lbs),
                                            std::max<std::size_t>(
                                                1, current_lbs_),
                                            options_.weighted_update);
          apply_gradient_update(built_.model, m, options_.learning_rate,
                                fabric_->size(), db);
          if (waiting_) {
            engine_->after(0.0, [this] { try_start_iteration(); });
          }
        } else if constexpr (std::is_same_v<T, comm::LossReport>) {
          dkt_.record_peer_loss(from, m.avg_loss, m.iteration);
        } else if constexpr (std::is_same_v<T, comm::DktRequest>) {
          comm::WeightSnapshot snap;
          snap.from = static_cast<std::uint32_t>(id_);
          snap.iteration = iteration_;
          snap.loss = dkt_.avg_loss();
          snap.weights = built_.model.weights();
          fabric_->send(id_, from, std::move(snap));
        } else if constexpr (std::is_same_v<T, comm::WeightSnapshot>) {
          dkt_.merge(built_.model, m.weights);
        } else if constexpr (std::is_same_v<T, comm::RcpReport>) {
          rcp_table_[from] = m.rcp;
          if (options_.dynamic_batching || options_.gbs_schedule) {
            recompute_lbs();
          }
        }
      },
      *msg);
}

}  // namespace dlion::core

#include "core/worker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "core/link_prioritizer.h"
#include "core/weighted_update.h"
#include "nn/checkpoint.h"
#include "obs/track_names.h"
#include "obs/watchdog.h"

namespace dlion::core {

namespace {
constexpr double kRcpChangeThreshold = 0.05;  // re-broadcast if >5% change
/// RCP substituted for suspected peers when renormalizing LBS allocation:
/// allocate_lbs rejects non-positive compute powers, so "dead" is modeled as
/// vanishingly small instead of zero.
constexpr double kDeadRcp = 1e-12;

/// When fault tolerance is enabled but the caller left DKT peer-loss expiry
/// at its disabled default, age reports out after a few DKT periods so a
/// silent (crashed or partitioned) peer cannot stay "best" forever.
DktConfig with_ft_expiry(DktConfig cfg, const FaultToleranceOptions& ft) {
  if (ft.enabled && cfg.peer_loss_expiry_iters == 0) {
    cfg.peer_loss_expiry_iters = 3 * cfg.period_iters;
  }
  return cfg;
}
}  // namespace

Worker::Worker(std::size_t id, sim::Engine& engine, comm::Fabric& fabric,
               sim::ComputeResource compute, nn::BuiltModel built,
               data::Dataset shard, const data::Dataset* test_set,
               StrategyPtr strategy, WorkerOptions options, std::uint64_t seed)
    : id_(id),
      engine_(&engine),
      fabric_(&fabric),
      compute_(std::move(compute)),
      built_(std::move(built)),
      shard_(std::move(shard)),
      test_set_(test_set),
      strategy_(std::move(strategy)),
      options_(std::move(options)),
      sampler_(shard_, seed),
      gbs_ctrl_(options_.gbs),
      dkt_(with_ft_expiry(options_.dkt, options_.fault_tolerance), id,
           fabric.size()),
      rcp_table_(fabric.size(), 1.0),
      peer_latest_(fabric.size(), -1),
      current_lbs_(options_.fixed_lbs),
      scheduled_gbs_(options_.gbs.initial_gbs),
      compute_rate_(0.3),
      iter_interval_(0.3),
      accuracy_trace_("accuracy"),
      loss_trace_("loss"),
      lbs_trace_("lbs"),
      gbs_trace_("gbs"),
      chosen_n_trace_("chosen_n"),
      entries_traces_(fabric.size()),
      last_heard_(fabric.size(), 0.0),
      suspected_(fabric.size(), false) {
  // Fixed evaluation subset: deterministic, shared across the run.
  if (test_set_ != nullptr && test_set_->size() > 0) {
    const std::size_t n = std::min(options_.eval_subset, test_set_->size());
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    eval_batch_ = data::gather(*test_set_, idx);
  }
  // Roster (all-member at epoch 0 unless the elastic layer narrows it) and
  // the merged exclusion mask derived from it.
  if (options_.elastic.enabled && !options_.elastic.initial_members.empty()) {
    roster_ = RosterView(fabric.size(), options_.elastic.initial_members, 0);
  } else {
    roster_ = RosterView(fabric.size());
  }
  excluded_.assign(fabric.size(), false);
  for (std::size_t j = 0; j < fabric.size(); ++j) {
    excluded_[j] = !roster_.is_member(j);
  }
  dormant_ = options_.elastic.enabled && options_.elastic.start_dormant;
  if (!dormant_) {
    fabric_->attach(id_, [this](std::size_t from, comm::MessagePtr msg) {
      on_message(from, std::move(msg));
    });
  }
}

void Worker::set_obs(obs::Observability* o) {
  obs_ = o;
  obs_track_ = 0;
  obs_h_ = ObsHandles{};
  if (o == nullptr) return;
  obs_track_ = o->tracer().track("workers", obs::worker_track(id_));
  obs::MetricsRegistry& m = o->metrics();
  const obs::Labels labels{{"worker", obs::id_str(id_)}};
  obs_h_.iterations = &m.counter("core.iterations", labels);
  obs_h_.dkt_boundaries = &m.counter("core.dkt_boundaries", labels);
  obs_h_.dkt_pulls = &m.counter("core.dkt_pulls", labels);
  obs_h_.crashes = &m.counter("core.crashes", labels);
  obs_h_.recoveries = &m.counter("core.recoveries", labels);
  obs_h_.compute_s = &m.histogram("core.compute_seconds", {},
                                  obs::Histogram::default_time_bounds());
  obs_h_.stall_s = &m.histogram("core.stall_seconds", {},
                                obs::Histogram::default_time_bounds());
  obs_h_.staleness = &m.histogram(
      "core.staleness_iters", {},
      {0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 7.5, 10.5, 15.5, 20.5, 50.5, 100.5});
  obs_h_.grad_entries = &m.histogram("core.grad_entries", {},
                                     obs::Histogram::default_size_bounds());
  obs_h_.grad_bytes = &m.histogram("core.grad_bytes", {},
                                   obs::Histogram::default_size_bounds());
}

std::size_t Worker::current_gbs() const {
  if (options_.gbs_schedule) return scheduled_gbs_;
  return gbs_ctrl_.gbs();
}

std::size_t Worker::live_worker_count() const {
  // excluded_ merges suspicion with roster membership; with elastic
  // membership off it equals suspected_, so this is the legacy count.
  std::size_t live = 0;
  for (std::size_t j = 0; j < excluded_.size(); ++j) {
    if (j == id_ || !excluded_[j]) ++live;
  }
  return live;
}

std::size_t Worker::effective_gbs() const {
  if (options_.dynamic_batching || options_.gbs_schedule) {
    return std::max<std::size_t>(1, current_gbs());
  }
  return std::max<std::size_t>(1, options_.fixed_lbs * live_worker_count());
}

void Worker::start(common::SimTime until) {
  end_time_ = until;
  std::fill(last_heard_.begin(), last_heard_.end(), engine_->now());
  if (options_.dynamic_batching || options_.gbs_schedule) {
    profile_rcp(/*broadcast_if_changed=*/false);
    broadcast_msg(comm::RcpReport{static_cast<std::uint32_t>(id_),
                                  rcp_table_[id_]});
    recompute_lbs();
  } else {
    current_lbs_ = options_.fixed_lbs;
    lbs_trace_.record(engine_->now(), static_cast<double>(current_lbs_));
    if (obs::on(obs_)) {
      obs_->tracer().counter(obs_track_, "lbs", engine_->now(),
                             static_cast<double>(current_lbs_));
    }
  }
  gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
  if (obs::on(obs_)) {
    obs_->tracer().counter(obs_track_, "gbs", engine_->now(),
                           static_cast<double>(current_gbs()));
  }
  // Batch size update module: periodic profiling + GBS controller ticks
  // (plus the fault-tolerance heartbeat/checkpoint modules when enabled).
  schedule_ticks();
  try_start_iteration();
}

void Worker::schedule_ticks() {
  const std::uint64_t inc = incarnation_;
  engine_->after(options_.batch_update_period_s, [this, inc] {
    if (inc == incarnation_) batch_tick();
  });
  if (ft().enabled) {
    engine_->after(ft().heartbeat_period_s, [this, inc] {
      if (inc == incarnation_) heartbeat_tick();
    });
    engine_->after(ft().checkpoint_period_s, [this, inc] {
      if (inc == incarnation_) checkpoint_tick();
    });
  }
}

void Worker::batch_tick() {
  // Periodic LBS-controller work only: re-profile the (possibly changed)
  // compute capacity and re-derive LBS. GBS controller ticks are driven by
  // epoch progress in finish_iteration(), not by wall time.
  if (engine_->now() >= end_time_) return;
  if (options_.gbs_schedule) {
    scheduled_gbs_ = options_.gbs_schedule(iteration_, engine_->now());
    profile_rcp(/*broadcast_if_changed=*/true);
    recompute_lbs();
  } else if (options_.dynamic_batching) {
    profile_rcp(/*broadcast_if_changed=*/true);
    recompute_lbs();
  }
  gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
  if (obs::on(obs_)) {
    obs_->tracer().counter(obs_track_, "gbs", engine_->now(),
                           static_cast<double>(current_gbs()));
  }
  const std::uint64_t inc = incarnation_;
  engine_->after(options_.batch_update_period_s, [this, inc] {
    if (inc == incarnation_) batch_tick();
  });
}

void Worker::heartbeat_tick() {
  if (engine_->now() >= end_time_) return;
  broadcast_msg(comm::Heartbeat{static_cast<std::uint32_t>(id_), iteration_});
  // Suspicion sweep: a peer unheard-from past the timeout is excluded from
  // wait-sets, renormalization, and weight-pull targeting until it speaks
  // again (on_message clears suspicion on any received message). Dormant
  // non-members are already excluded and never swept.
  const common::SimTime now = engine_->now();
  bool changed = false;
  for (std::size_t j = 0; j < suspected_.size(); ++j) {
    if (j == id_ || !roster_.is_member(j)) continue;
    const bool sus = (now - last_heard_[j]) > ft().suspicion_timeout_s;
    if (sus != suspected_[j]) {
      suspected_[j] = sus;
      excluded_[j] = sus;
      changed = true;
    }
  }
  if (changed) {
    // Degrade gracefully: reallocate batch shares across live workers and
    // re-check the (possibly shrunken) synchronization wait-set.
    if (options_.dynamic_batching || options_.gbs_schedule) recompute_lbs();
    if (waiting_) {
      const std::uint64_t inc0 = incarnation_;
      engine_->after(0.0, [this, inc0] {
        if (inc0 == incarnation_) try_start_iteration();
      });
    }
  }
  const std::uint64_t inc = incarnation_;
  engine_->after(ft().heartbeat_period_s, [this, inc] {
    if (inc == incarnation_) heartbeat_tick();
  });
}

void Worker::checkpoint_tick() {
  if (engine_->now() >= end_time_) return;
  take_checkpoint();
  const std::uint64_t inc = incarnation_;
  engine_->after(ft().checkpoint_period_s, [this, inc] {
    if (inc == incarnation_) checkpoint_tick();
  });
}

void Worker::take_checkpoint() {
  checkpoint_buf_ = nn::serialize_checkpoint(built_.model);
  checkpoint_iteration_ = iteration_;
  checkpoint_valid_ = true;
  ++checkpoints_taken_;
  if (obs::on(obs_)) {
    obs_->tracer().instant(
        obs_track_, "checkpoint", engine_->now(),
        {{"iteration", static_cast<double>(iteration_)},
         {"bytes", static_cast<double>(checkpoint_buf_.size())}});
  }
}

void Worker::crash() {
  if (crashed_) return;
  crashed_ = true;
  if (obs::on(obs_)) {
    obs_h_.crashes->inc();
    obs_->tracer().instant(obs_track_, "crash", engine_->now(),
                           {{"iteration", static_cast<double>(iteration_)}});
    stall_start_ = -1.0;  // a crash voids any open stall/pull span
    pull_start_ = -1.0;
  }
  ++crash_count_;
  ++incarnation_;  // cancels every lambda scheduled by the old incarnation
  running_ = false;
  waiting_ = false;
  catching_up_ = false;
  fabric_->detach(id_);  // in-flight messages to this worker dead-letter
}

void Worker::recover() {
  if (!crashed_) return;
  crashed_ = false;
  ++recover_count_;
  if (obs::on(obs_)) {
    obs_h_.recoveries->inc();
    obs_->tracer().instant(
        obs_track_, "recover", engine_->now(),
        {{"checkpoint_iteration",
          static_cast<double>(checkpoint_iteration_)}});
  }
  fabric_->attach(id_, [this](std::size_t from, comm::MessagePtr msg) {
    on_message(from, std::move(msg));
  });
  // Restore the last pre-crash snapshot; training state between the
  // checkpoint and the crash is lost (that is the point of catch-up below).
  if (checkpoint_valid_) {
    nn::restore_checkpoint(built_.model, checkpoint_buf_);
    iteration_ = checkpoint_iteration_;
  }
  compute_rate_.reset();
  iter_interval_.reset();
  last_finish_ = -1.0;
  // Grace period: give every peer a fresh liveness stamp so the recovering
  // worker does not instantly suspect the whole cluster.
  std::fill(last_heard_.begin(), last_heard_.end(), engine_->now());
  std::fill(suspected_.begin(), suspected_.end(), false);
  for (std::size_t j = 0; j < excluded_.size(); ++j) {
    excluded_[j] = !roster_.is_member(j);
  }
  // Re-announce compute power and liveness to peers.
  if (options_.dynamic_batching || options_.gbs_schedule) {
    profile_rcp(/*broadcast_if_changed=*/false);
    broadcast_msg(comm::RcpReport{static_cast<std::uint32_t>(id_),
                                  rcp_table_[id_]});
    recompute_lbs();
  }
  if (ft().enabled) {
    broadcast_msg(comm::Heartbeat{static_cast<std::uint32_t>(id_),
                                  iteration_});
  }
  schedule_ticks();
  request_catch_up();
  try_start_iteration();
}

void Worker::request_catch_up() {
  if (!ft().enabled) return;
  // Pull fresh weights + iteration state from a live peer; until the
  // snapshot arrives the worker trains from its (stale) checkpoint. The
  // wait-set is recomputed from the *current* roster (merged suspicion +
  // membership mask), not the boot-time peer list: a peer that left after
  // this worker crashed is never targeted, and attempts are bounded by the
  // number of workers actually live right now.
  catching_up_ = true;
  send_weight_pull(excluded_, live_worker_count(), /*catch_up=*/true);
}

void Worker::profile_rcp(bool broadcast_if_changed) {
  // The LBS controller measures iteration time at several probe batch sizes
  // and fits time = a + b*LBS (§3.2). Probes read the compute model's
  // nominal timing - the simulated analogue of running short timing probes.
  std::vector<double> xs, ys;
  xs.reserve(options_.lbs.probe_sizes.size());
  ys.reserve(options_.lbs.probe_sizes.size());
  for (std::size_t lbs : options_.lbs.probe_sizes) {
    xs.push_back(static_cast<double>(lbs));
    ys.push_back(compute_.nominal_iteration_seconds(lbs, engine_->now()));
  }
  const double rcp = estimate_rcp(xs, ys, options_.lbs.unit_time_s);
  const double old = rcp_table_[id_];
  rcp_table_[id_] = rcp;
  if (broadcast_if_changed &&
      std::fabs(rcp - old) > kRcpChangeThreshold * std::max(old, 1.0)) {
    broadcast_msg(comm::RcpReport{static_cast<std::uint32_t>(id_), rcp});
  }
}

void Worker::recompute_lbs() {
  std::vector<std::size_t> allocation;
  if (options_.elastic.enabled) {
    // Membership-aware Eq. 5: the GBS renormalizes over exactly the live
    // roster — dormant slots get zero batch (not the min-LBS floor the
    // kDeadRcp path below would hand them), so a 4->64 scale-out spreads
    // the same GBS across 64 live shares and a scale-in concentrates it.
    std::vector<bool> live(excluded_.size());
    for (std::size_t j = 0; j < excluded_.size(); ++j) {
      live[j] = (j == id_) || !excluded_[j];
    }
    allocation =
        allocate_lbs_live(current_gbs(), rcp_table_, live, options_.lbs.min_lbs);
  } else {
    // Suspected peers contribute (effectively) zero compute power, so their
    // batch share is redistributed across live workers. With no suspicion
    // the table is used verbatim - identical to the non-fault-tolerant path.
    std::vector<double> rcp = rcp_table_;
    for (std::size_t j = 0; j < rcp.size(); ++j) {
      if (j != id_ && suspected_[j]) rcp[j] = kDeadRcp;
    }
    allocation = allocate_lbs(current_gbs(), rcp, options_.lbs.min_lbs);
  }
  DLION_ASSERT(allocation.size() == rcp_table_.size(),
               "LBS allocation lost a worker");
  const std::size_t lbs = std::max<std::size_t>(1, allocation[id_]);
  // LBS bounds contract (Eq. 5): a worker's share never exceeds the global
  // batch it was carved from.
  DLION_ASSERT(lbs <= std::max<std::size_t>(1, current_gbs()),
               "LBS " + std::to_string(lbs) + " exceeds GBS " +
                   std::to_string(current_gbs()));
  if (lbs != current_lbs_) {
    current_lbs_ = lbs;
  }
  lbs_trace_.record(engine_->now(), static_cast<double>(current_lbs_));
  if (obs::on(obs_)) {
    obs_->tracer().counter(obs_track_, "lbs", engine_->now(),
                           static_cast<double>(current_lbs_));
  }
}

void Worker::try_start_iteration() {
  if (crashed_ || dormant_ || bootstrapping_ || running_ ||
      engine_->now() >= end_time_ || iteration_ >= options_.max_iterations) {
    return;
  }
  // Wait-set ⊆ live-set contract: the worker itself is always live (a
  // crashed worker never reaches this point — crash() clears running state
  // and detaches), so the synchronization wait-set below, which excludes
  // every suspected or non-member peer, can never contain a dead
  // participant or demand a wait on ourselves.
  DLION_DCHECK(!crashed_ && !excluded_[id_],
               "wait-set would include a dead participant");
  DLION_DCHECK(live_worker_count() >= 1, "live-set lost the worker itself");
  // Suspected and non-member peers are excluded from the wait-set entirely,
  // so a crashed or departed peer cannot deadlock synchronous or bounded-
  // staleness training.
  if (!can_start_iteration(options_.sync, iteration_, peer_latest_, id_,
                           excluded_)) {
    waiting_ = true;
    // Open (or keep open) the sync-stall span for this gap.
    if (obs::on(obs_) && stall_start_ < 0.0) stall_start_ = engine_->now();
    return;
  }
  waiting_ = false;
  running_ = true;
  if (obs::on(obs_)) {
    if (stall_start_ >= 0.0) {
      const double stalled = engine_->now() - stall_start_;
      obs_->tracer().complete(obs_track_, "stall", stall_start_,
                              engine_->now());
      obs_h_.stall_s->observe(stalled);
      stall_start_ = -1.0;
    }
    // Staleness at iteration start: how far this worker has run ahead of
    // the slowest live peer's last received gradient (§3.3's bounded-
    // staleness clock). Negative values mean peers are ahead of us.
    std::int64_t min_peer = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j = 0; j < peer_latest_.size(); ++j) {
      if (j == id_ || excluded_[j]) continue;
      min_peer = std::min(min_peer, peer_latest_[j]);
    }
    if (min_peer != std::numeric_limits<std::int64_t>::max()) {
      const double staleness =
          static_cast<double>(static_cast<std::int64_t>(iteration_) -
                              min_peer);
      obs_h_.staleness->observe(staleness);
      obs_->tracer().counter(obs_track_, "staleness", engine_->now(),
                             staleness);
      if (obs::Watchdog* wd = obs_->watchdog()) {
        wd->on_staleness(id_, engine_->now(), staleness);
      }
    }
  }
  const std::size_t lbs = current_lbs_;
  // Real gradient math on the local shard; simulated time charged below.
  const data::Batch batch = sampler_.next(lbs);
  const nn::LossResult res =
      built_.model.compute_gradients(batch.images, batch.labels);
  dkt_.record_loss(res.loss);
  loss_trace_.record(engine_->now(), res.loss);
  if (obs::on(obs_)) {
    if (obs::Watchdog* wd = obs_->watchdog()) {
      wd->on_loss(id_, engine_->now(), res.loss);
    }
  }
  const double dt = compute_.iteration_seconds(lbs, engine_->now());
  compute_rate_.add(dt);
  const std::uint64_t inc = incarnation_;
  engine_->after(dt, [this, inc, lbs, dt] {
    if (inc == incarnation_) finish_iteration(lbs, dt);
  });
}

void Worker::finish_iteration(std::size_t lbs, double compute_seconds) {
  if (obs::on(obs_)) {
    // The gradient-compute phase ran from the iteration's start until now.
    obs_->tracer().complete(obs_track_, "compute",
                            engine_->now() - compute_seconds, engine_->now(),
                            {{"iteration", static_cast<double>(iteration_)},
                             {"lbs", static_cast<double>(lbs)}});
    obs_h_.compute_s->observe(compute_seconds);
    obs_h_.iterations->inc();
    if (obs::Watchdog* wd = obs_->watchdog()) {
      wd->on_iteration(id_, engine_->now());
    }
  }
  // Apply own gradients (Eq. 7's j = k term: db = 1 literal, n*LBS_k/GBS
  // normalized). Averaging runs over *live* workers so updates keep their
  // magnitude when peers die (n = fabric size when nothing is suspected).
  const std::size_t n_live = live_worker_count();
  // GBS bounds contract: the effective global batch always covers this
  // worker's own contribution and never exceeds what the live cluster can
  // actually supply in fixed-LBS mode.
  DLION_ASSERT(n_live >= 1 && n_live <= fabric_->size());
  DLION_DCHECK(effective_gbs() >= 1, "effective GBS collapsed to zero");
  double own_db = 1.0;
  if (options_.weighted_update && options_.db_normalized) {
    own_db = normalized_batching_weight(lbs, effective_gbs(), n_live);
  }
  apply_own_gradients(built_.model, options_.learning_rate, n_live, own_db);

  // Iter_com_i (§3.3) is the worker's achieved iteration rate - the full
  // cycle including synchronization waits, not just gradient compute - so
  // the per-link byte budget self-regulates under congestion.
  const double interval = last_finish_ < 0.0
                              ? compute_seconds
                              : engine_->now() - last_finish_;
  last_finish_ = engine_->now();
  iter_interval_.add(std::max(interval, 1e-9));

  // Partial gradients generation module: per-link selection + send.
  // Suspected peers get nothing (their link budget is reclaimed); they
  // re-enter the loop as soon as a message from them clears suspicion.
  strategy_->begin_iteration(built_.model, iteration_);
  const double iters_per_sec = 1.0 / std::max(iter_interval_.value(), 1e-9);
  double sent_entries = 0.0;
  double sent_bytes = 0.0;
  double sent_peers = 0.0;
  for (std::size_t peer = 0; peer < fabric_->size(); ++peer) {
    if (peer == id_) continue;
    if (excluded_[peer]) continue;
    LinkContext ctx;
    ctx.self = id_;
    ctx.peer = peer;
    ctx.iteration = iteration_;
    // The network monitor reports the link's effective rate: the fair share
    // of the sender's shaped uplink across its n-1 peers, capped by the
    // explicit link matrix entry (WAN paths).
    ctx.available_mbps = fabric_->network().available_mbps(id_, peer);
    ctx.iterations_per_sec = iters_per_sec;
    ctx.byte_scale = fabric_->byte_scale();
    ctx.learning_rate = options_.learning_rate;
    ctx.n_workers = n_live;
    ctx.arena = &arena_;
    comm::GradientUpdate update;
    update.from = static_cast<std::uint32_t>(id_);
    update.iteration = iteration_;
    update.lbs = static_cast<std::uint32_t>(lbs);
    update.vars = strategy_->generate(built_.model, ctx);
    entries_traces_[peer].record(engine_->now(),
                                 static_cast<double>(update.num_entries()));
    if (auto* lp = dynamic_cast<LinkPrioritizer*>(strategy_.get())) {
      chosen_n_trace_.record(engine_->now(), lp->last_n());
    }
    if (obs::on(obs_)) {
      // Per-link gradient size (the quantity Fig. 8 studies). Charged
      // bytes are recomputed here only when observing.
      const double entries = static_cast<double>(update.num_entries());
      const double bytes =
          static_cast<double>(fabric_->charged_bytes(update));
      obs_h_.grad_entries->observe(entries);
      obs_h_.grad_bytes->observe(bytes);
      sent_entries += entries;
      sent_bytes += bytes;
      sent_peers += 1.0;
    }
    fabric_->send(id_, peer, std::move(update));
  }
  if (obs::on(obs_) && sent_peers > 0.0) {
    obs_->tracer().instant(obs_track_, "send", engine_->now(),
                           {{"peers", sent_peers},
                            {"entries", sent_entries},
                            {"bytes", sent_bytes}});
  }

  ++iteration_;

  // GBS controller (§3.2): one tick per epoch of estimated cluster-wide
  // training progress. Every iteration consumes about one GBS of samples
  // across the cluster.
  if (options_.dynamic_batching && !options_.gbs_schedule &&
      options_.gbs.dataset_size > 0) {
    epoch_progress_ += static_cast<double>(effective_gbs()) /
                       static_cast<double>(options_.gbs.dataset_size);
    if (epoch_progress_ >= epochs_ticked_ + 1.0) {
      epochs_ticked_ += 1.0;
      gbs_ctrl_.tick();
      profile_rcp(/*broadcast_if_changed=*/false);
      recompute_lbs();
      gbs_trace_.record(engine_->now(), static_cast<double>(current_gbs()));
      if (obs::on(obs_)) {
        obs_->tracer().counter(obs_track_, "gbs", engine_->now(),
                               static_cast<double>(current_gbs()));
      }
    }
  }

  // Model accuracy measured every eval_period iterations (§5.1.3).
  if (test_set_ != nullptr && iteration_ % options_.eval_period_iters == 0) {
    evaluate_accuracy();
  }

  // Model synchronization module (§3.4).
  if (dkt_.is_boundary(iteration_)) run_dkt_boundary();

  running_ = false;
  const std::uint64_t inc = incarnation_;
  engine_->after(0.0, [this, inc] {
    if (inc == incarnation_) try_start_iteration();
  });
}

void Worker::run_dkt_boundary() {
  if (obs::on(obs_)) {
    obs_h_.dkt_boundaries->inc();
    obs_->tracer().instant(obs_track_, "dkt_boundary", engine_->now(),
                           {{"iteration", static_cast<double>(iteration_)},
                            {"avg_loss", dkt_.avg_loss()}});
  }
  broadcast_msg(comm::LossReport{static_cast<std::uint32_t>(id_), iteration_,
                                 dkt_.avg_loss()});
  if (!dkt_.should_request(iteration_)) return;
  if (ft().enabled) {
    // Reliable pull with next-best fallback: an unacked request (crashed or
    // partitioned best worker) falls through to the next-best candidate.
    // The merged exclusion mask keeps departed members out of the chain.
    send_weight_pull(excluded_, live_worker_count(), /*catch_up=*/false);
  } else {
    std::size_t best;
    if (options_.elastic.enabled) {
      best = dkt_.best_worker(iteration_, excluded_);
      if (best == id_) return;  // no usable member to pull from
    } else {
      best = dkt_.best_worker(iteration_);
    }
    if (obs::on(obs_)) {
      obs_h_.dkt_pulls->inc();
      if (pull_start_ < 0.0) pull_start_ = engine_->now();
    }
    fabric_->send(id_, best,
                  comm::DktRequest{static_cast<std::uint32_t>(id_),
                                   iteration_});
  }
}

void Worker::send_weight_pull(std::vector<bool> excluded,
                              std::size_t attempts_left, bool catch_up) {
  if (excluded.size() < fabric_->size()) {
    excluded.resize(fabric_->size(), false);
  }
  excluded[id_] = true;  // never pull from ourselves
  if (attempts_left == 0) {
    if (catch_up) catching_up_ = false;
    return;
  }
  std::size_t target = dkt_.best_worker(iteration_, excluded);
  if (target == id_) {
    // DKT knows no usable better peer. A DKT boundary simply skips the
    // exchange; a catch-up pull takes any live peer (anyone's state is
    // fresher than our checkpoint).
    if (!catch_up) return;
    target = fabric_->size();
    for (std::size_t j = 0; j < fabric_->size(); ++j) {
      if (!excluded[j]) {
        target = j;
        break;
      }
    }
    if (target == fabric_->size()) {
      catching_up_ = false;  // nobody reachable; keep training from snapshot
      return;
    }
  }
  if (obs::on(obs_)) {
    obs_h_.dkt_pulls->inc();
    if (pull_start_ < 0.0) pull_start_ = engine_->now();
  }
  const std::uint64_t inc = incarnation_;
  fabric_->send_reliable(
      id_, target,
      comm::DktRequest{static_cast<std::uint32_t>(id_), iteration_},
      ft().control_retry,
      [this, inc, excluded = std::move(excluded), attempts_left, catch_up,
       target](bool acked) mutable {
        if (inc != incarnation_) return;
        if (acked) return;  // the WeightSnapshot reply is on its way
        ++pull_fallbacks_;
        excluded[target] = true;
        send_weight_pull(std::move(excluded), attempts_left - 1, catch_up);
      });
}

double Worker::evaluate_accuracy() {
  if (eval_batch_.size() == 0) return 0.0;
  const nn::LossResult res =
      built_.model.evaluate(eval_batch_.images, eval_batch_.labels);
  accuracy_trace_.record(engine_->now(), res.accuracy);
  if (obs::on(obs_)) {
    obs_->tracer().instant(obs_track_, "eval", engine_->now(),
                           {{"accuracy", res.accuracy}});
  }
  return res.accuracy;
}

void Worker::on_message(std::size_t from, comm::MessagePtr msg) {
  DLION_DCHECK(from < fabric_->size() && from != id_,
               "message from impossible sender " + std::to_string(from));
  if (dormant_) return;  // defensive: dormant workers are detached
  // Membership gate (second line of defense behind the fabric's epoch
  // floor): traffic from a non-member is rejected — except RosterUpdate,
  // which may be the sender's own join announcement.
  const bool is_roster_update =
      std::holds_alternative<comm::RosterUpdate>(*msg);
  if (options_.elastic.enabled && !is_roster_update &&
      !roster_.is_member(from)) {
    ++nonmember_rejected_;
    return;
  }
  // Any message is proof of life: refresh the liveness stamp and clear
  // suspicion (a no-op whenever fault tolerance is disabled). The merged
  // exclusion bit clears only for members (a RosterUpdate from a joiner
  // clears it inside apply_roster once the roster is adopted).
  if (from < last_heard_.size()) {
    last_heard_[from] = engine_->now();
    suspected_[from] = false;
    if (roster_.is_member(from)) excluded_[from] = false;
  }
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, comm::GradientUpdate>) {
          peer_latest_[from] =
              std::max(peer_latest_[from],
                       static_cast<std::int64_t>(m.iteration));
          const std::size_t n_live = live_worker_count();
          const double db =
              options_.db_normalized
                  ? normalized_batching_weight(std::max<std::size_t>(1, m.lbs),
                                               effective_gbs(), n_live,
                                               options_.weighted_update)
                  : dynamic_batching_weight(std::max<std::size_t>(1, m.lbs),
                                            std::max<std::size_t>(
                                                1, current_lbs_),
                                            options_.weighted_update);
          apply_gradient_update(built_.model, m, options_.learning_rate,
                                n_live, db);
          if (obs::on(obs_) && obs_->causal()) {
            // Zero-duration "apply" span at delivery time: the destination
            // slice for the fabric's flow-end recorded just before this
            // handler ran (same track, same timestamp), and the node the
            // critical-path analyzer charges the incoming transfer to.
            // Deliberately arg-free: this is the hottest causal record site
            // and an args vector would heap-allocate per delivery.
            obs_->tracer().complete(obs_track_, "apply", engine_->now(),
                                    engine_->now());
          }
          if (waiting_) {
            const std::uint64_t inc = incarnation_;
            engine_->after(0.0, [this, inc] {
              if (inc == incarnation_) try_start_iteration();
            });
          }
        } else if constexpr (std::is_same_v<T, comm::LossReport>) {
          // Stamped with the *receiver's* iteration: one coherent freshness
          // clock even when peers' own iteration counts diverge.
          dkt_.record_peer_loss(from, m.avg_loss, iteration_);
        } else if constexpr (std::is_same_v<T, comm::DktRequest>) {
          comm::WeightSnapshot snap;
          snap.from = static_cast<std::uint32_t>(id_);
          snap.iteration = iteration_;
          snap.loss = dkt_.avg_loss();
          snap.weights = stage_weights(0, built_.model.num_variables());
          if (ft().enabled) {
            fabric_->send_reliable(id_, from, std::move(snap),
                                   ft().control_retry);
          } else {
            fabric_->send(id_, from, std::move(snap));
          }
        } else if constexpr (std::is_same_v<T, comm::WeightSnapshot>) {
          if (obs::on(obs_) && pull_start_ >= 0.0) {
            // Close the DKT weight-pull phase opened when the (first)
            // request of this exchange went out.
            obs_->tracer().complete(obs_track_, "dkt_pull", pull_start_,
                                    engine_->now(),
                                    {{"from", static_cast<double>(from)}});
            pull_start_ = -1.0;
          }
          if (catching_up_) {
            // Post-recovery catch-up: adopt the peer's weights and jump to
            // its iteration so peers' staleness bounds see us as current.
            assign_weights(built_.model, m.weights);
            iteration_ = std::max(iteration_, m.iteration);
            catching_up_ = false;
            take_checkpoint();  // fresh restore point post-rejoin
            if (waiting_) {
              const std::uint64_t inc = incarnation_;
              engine_->after(0.0, [this, inc] {
                if (inc == incarnation_) try_start_iteration();
              });
            }
          } else {
            dkt_.merge(built_.model, m.weights);
          }
        } else if constexpr (std::is_same_v<T, comm::RcpReport>) {
          rcp_table_[from] = m.rcp;
          if (options_.dynamic_batching || options_.gbs_schedule) {
            recompute_lbs();
          }
        } else if constexpr (std::is_same_v<T, comm::Heartbeat>) {
          // Liveness handled above; the beacon carries no training payload.
        } else if constexpr (std::is_same_v<T, comm::RosterUpdate>) {
          DLION_DCHECK(m.capacity == fabric_->size(),
                       "RosterUpdate capacity mismatch");
          apply_roster(m.epoch,
                       comm::unpack_members(m.member_words, m.capacity));
        } else if constexpr (std::is_same_v<T, comm::BootstrapRequest>) {
          // Serve our slice of the model to a joiner. The epoch may lag our
          // roster (other members joined while the request was in flight);
          // a chunk for a genuinely superseded join attempt dies at the
          // joiner's transport epoch floor, not here. Requests from the
          // future would mean a broken epoch authority.
          if (m.epoch <= roster_.epoch() &&
              static_cast<std::size_t>(m.first_var) + m.var_count <=
                  built_.model.num_variables()) {
            comm::BootstrapChunk chunk;
            chunk.from = static_cast<std::uint32_t>(id_);
            chunk.epoch = m.epoch;
            chunk.first_var = m.first_var;
            chunk.iteration = iteration_;
            chunk.gbs_ticks = gbs_ctrl_.ticks();
            chunk.loss = dkt_.avg_loss();
            // Only the requested slice is staged - serving a chunk never
            // snapshots (or copies) the rest of the model.
            chunk.weights = stage_weights(m.first_var, m.var_count);
            if (ft().enabled) {
              fabric_->send_reliable(id_, from, std::move(chunk),
                                     ft().control_retry);
            } else {
              fabric_->send(id_, from, std::move(chunk));
            }
          }
        } else if constexpr (std::is_same_v<T, comm::BootstrapChunk>) {
          // Accept chunks from this bootstrap tenure (epoch >= the epoch we
          // joined at) even if the roster advanced while they were in
          // flight; chunks addressed to a previous tenure of this slot
          // carry an older epoch and are rejected.
          if (bootstrapping_ && m.epoch >= bootstrap_epoch_ &&
              static_cast<std::size_t>(m.first_var) +
                      m.weights.parts.size() <=
                  bootstrap_values_.size()) {
            for (std::size_t i = 0; i < m.weights.parts.size(); ++i) {
              const std::size_t v = m.first_var + i;
              if (bootstrap_have_[v]) continue;  // duplicate range
              // View into the chunk's payload block (incref, no copy);
              // the block stays pinned until finish_bootstrap applies it.
              bootstrap_values_[v] = m.weights.parts[i];
              bootstrap_have_[v] = true;
              ++bootstrap_received_;
            }
            if (!bootstrap_donor_seen_[from]) {
              bootstrap_donor_seen_[from] = true;
              ++bootstrap_donor_count_;
            }
            bootstrap_iteration_ = std::max(bootstrap_iteration_, m.iteration);
            bootstrap_gbs_ticks_ =
                std::max(bootstrap_gbs_ticks_,
                         static_cast<std::size_t>(m.gbs_ticks));
            bootstrap_bytes_ += static_cast<std::uint64_t>(
                fabric_->charged_bytes(*msg));
            if (bootstrap_received_ == bootstrap_values_.size()) {
              finish_bootstrap();
            }
          }
        }
      },
      *msg);
}

comm::WeightPayload Worker::stage_weights(std::size_t first_var,
                                          std::size_t var_count) {
  const auto& vars = built_.model.variables();
  DLION_ASSERT(first_var + var_count <= vars.size(),
               "stage_weights: variable range out of bounds");
  // Size the writer's block hint to the whole slice so the parts land in
  // one block whenever the arena can serve it.
  std::size_t total_bytes = 0;
  for (std::size_t v = first_var; v < first_var + var_count; ++v) {
    total_bytes += vars[v]->size() * sizeof(float);
  }
  comm::PayloadWriter writer(
      arena_, std::max(total_bytes, comm::PayloadArena::kMinBlockBytes));
  comm::WeightPayload out;
  out.parts.reserve(var_count);
  for (std::size_t v = first_var; v < first_var + var_count; ++v) {
    const tensor::Tensor& t = vars[v]->value();
    out.parts.push_back(
        writer.copy(std::span<const float>(t.data(), t.size())));
  }
  return out;
}

// --- Elastic membership (DESIGN.md, "Elastic membership") ---

void Worker::broadcast_msg(const comm::Message& msg) {
  if (options_.elastic.enabled) {
    fabric_->broadcast(id_, msg, roster_.members());
  } else {
    fabric_->broadcast(id_, msg);
  }
}

void Worker::apply_roster(std::uint64_t epoch,
                          const std::vector<bool>& members) {
  const std::vector<bool> prev = roster_.members();
  if (!roster_.adopt(epoch, members)) return;
  // Every member re-stamps its outgoing traffic at every roster change, so
  // a joiner's epoch floor never rejects current traffic from legitimate
  // members.
  fabric_->set_epoch(id_, epoch);
  for (std::size_t j = 0; j < members.size(); ++j) {
    if (j == id_) {
      excluded_[j] = false;
      continue;
    }
    if (members[j] && !prev[j]) {
      // Newly joined member: fresh liveness stamp and an optimistic
      // staleness baseline — it catches up to about our iteration via
      // bootstrap before sending its first gradient, so bounded-staleness
      // training must not stall on its (empty) history.
      last_heard_[j] = engine_->now();
      suspected_[j] = false;
      peer_latest_[j] = std::max(peer_latest_[j],
                                 static_cast<std::int64_t>(iteration_));
    }
    excluded_[j] = !members[j] || suspected_[j];
  }
  if (obs::on(obs_)) {
    obs_->tracer().instant(
        obs_track_, "roster", engine_->now(),
        {{"epoch", static_cast<double>(epoch)},
         {"members", static_cast<double>(roster_.member_count())}});
  }
  // GBS/LBS renormalization over the new live set (Eq. 5 across members).
  if (!dormant_ && (options_.dynamic_batching || options_.gbs_schedule)) {
    recompute_lbs();
  }
  if (waiting_) {
    const std::uint64_t inc = incarnation_;
    engine_->after(0.0, [this, inc] {
      if (inc == incarnation_) try_start_iteration();
    });
  }
}

void Worker::join(std::uint64_t epoch, const std::vector<bool>& members,
                  common::SimTime until) {
  DLION_ASSERT(options_.elastic.enabled,
               "Worker::join requires the elastic membership layer");
  if (!dormant_) return;
  dormant_ = false;
  crashed_ = false;
  running_ = false;
  waiting_ = false;
  catching_up_ = false;
  end_time_ = until;
  ++incarnation_;  // a previous tenure's scheduled lambdas become no-ops
  fabric_->attach(id_, [this](std::size_t from, comm::MessagePtr msg) {
    on_message(from, std::move(msg));
  });
  // Raising the floor to the join epoch makes in-flight traffic addressed
  // to this slot's previous tenure undeliverable — deterministically.
  fabric_->set_epoch_floor(id_, epoch);
  std::fill(last_heard_.begin(), last_heard_.end(), engine_->now());
  std::fill(suspected_.begin(), suspected_.end(), false);
  apply_roster(epoch, members);
  if (obs::on(obs_)) {
    obs_->tracer().instant(obs_track_, "join", engine_->now(),
                           {{"epoch", static_cast<double>(epoch)}});
  }
  // Announce the roster FIRST: per-link FIFO delivery guarantees every
  // member admits us before any of our subsequent traffic arrives.
  comm::RosterUpdate ru;
  ru.from = static_cast<std::uint32_t>(id_);
  ru.epoch = epoch;
  ru.capacity = static_cast<std::uint32_t>(fabric_->size());
  ru.member_words = comm::pack_members(members);
  broadcast_msg(ru);
  if (options_.dynamic_batching || options_.gbs_schedule) {
    profile_rcp(/*broadcast_if_changed=*/false);
    broadcast_msg(comm::RcpReport{static_cast<std::uint32_t>(id_),
                                  rcp_table_[id_]});
    recompute_lbs();
  } else {
    current_lbs_ = options_.fixed_lbs;
    lbs_trace_.record(engine_->now(), static_cast<double>(current_lbs_));
  }
  if (ft().enabled) {
    broadcast_msg(comm::Heartbeat{static_cast<std::uint32_t>(id_),
                                  iteration_});
  }
  schedule_ticks();
  begin_bootstrap();
  if (!bootstrapping_) try_start_iteration();
}

void Worker::leave(std::uint64_t epoch, const std::vector<bool>& members) {
  DLION_ASSERT(options_.elastic.enabled,
               "Worker::leave requires the elastic membership layer");
  if (dormant_) return;
  // Adopt + stamp the shrunken roster, then say goodbye to the remaining
  // members (the farewell carries the new epoch, so nobody's floor rejects
  // it).
  apply_roster(epoch, members);
  comm::RosterUpdate ru;
  ru.from = static_cast<std::uint32_t>(id_);
  ru.epoch = epoch;
  ru.capacity = static_cast<std::uint32_t>(fabric_->size());
  ru.member_words = comm::pack_members(members);
  broadcast_msg(ru);
  if (obs::on(obs_)) {
    obs_->tracer().instant(obs_track_, "leave", engine_->now(),
                           {{"epoch", static_cast<double>(epoch)}});
    stall_start_ = -1.0;
    pull_start_ = -1.0;
  }
  ++incarnation_;
  running_ = false;
  waiting_ = false;
  catching_up_ = false;
  bootstrapping_ = false;
  fabric_->detach(id_);
  dormant_ = true;
}

void Worker::rebind_compute(sim::ComputeResource compute) {
  compute_ = std::move(compute);
  // The RCP estimate and iteration-time EWMA described the old machine.
  compute_rate_.reset();
  if (obs::on(obs_)) {
    obs_->tracer().instant(obs_track_, "rebind_compute", engine_->now());
  }
}

void Worker::begin_bootstrap() {
  bootstrapping_ = false;
  std::vector<std::size_t> donors;
  for (std::size_t j : roster_.member_ids()) {
    if (j != id_) donors.push_back(j);
  }
  const std::size_t nvars = built_.model.num_variables();
  if (donors.empty() || nvars == 0) return;  // first member: nothing to copy
  bootstrapping_ = true;
  bootstrap_epoch_ = roster_.epoch();
  bootstrap_values_.assign(nvars, comm::Payload<float>{});
  bootstrap_have_.assign(nvars, false);
  bootstrap_received_ = 0;
  bootstrap_iteration_ = 0;
  bootstrap_gbs_ticks_ = 0;
  bootstrap_donor_seen_.assign(fabric_->size(), false);
  bootstrap_donor_count_ = 0;
  bootstrap_bytes_ = 0;
  bootstrap_complete_time_ = -1.0;
  const std::vector<BootstrapRange> ranges =
      plan_bootstrap(nvars, donors, options_.elastic.bootstrap_fanout);
  if (obs::on(obs_)) {
    obs_->tracer().instant(obs_track_, "bootstrap_begin", engine_->now(),
                           {{"ranges", static_cast<double>(ranges.size())}});
  }
  for (const BootstrapRange& r : ranges) {
    send_bootstrap_request(r, excluded_, live_worker_count());
  }
}

void Worker::send_bootstrap_request(BootstrapRange range,
                                    std::vector<bool> excluded,
                                    std::size_t attempts_left) {
  if (!bootstrapping_ || attempts_left == 0) return;
  excluded[id_] = true;  // never download from ourselves
  std::size_t donor = range.donor;
  if (donor >= excluded.size() || excluded[donor] ||
      !roster_.is_member(donor)) {
    // Planned donor unusable (failed earlier attempt, or left the roster):
    // fall through to the lowest-id live member.
    donor = excluded.size();
    for (std::size_t j = 0; j < excluded.size(); ++j) {
      if (!excluded[j] && roster_.is_member(j)) {
        donor = j;
        break;
      }
    }
    if (donor == excluded.size()) return;  // nobody left to serve this range
    range.donor = donor;
  }
  comm::BootstrapRequest req;
  req.from = static_cast<std::uint32_t>(id_);
  req.epoch = roster_.epoch();
  req.first_var = range.first_var;
  req.var_count = range.var_count;
  if (ft().enabled) {
    const std::uint64_t inc = incarnation_;
    fabric_->send_reliable(
        id_, donor, req, ft().control_retry,
        [this, inc, range, excluded = std::move(excluded), attempts_left,
         donor](bool acked) mutable {
          if (inc != incarnation_ || acked) return;
          excluded[donor] = true;
          send_bootstrap_request(range, std::move(excluded),
                                 attempts_left - 1);
        });
  } else {
    fabric_->send(id_, donor, req);
  }
}

void Worker::finish_bootstrap() {
  // Apply the assembled snapshot straight from the chunks' payload views;
  // clearing the assembly afterwards drops the pins, releasing the blocks.
  comm::WeightPayload snap;
  snap.parts = std::move(bootstrap_values_);
  assign_weights(built_.model, snap);
  bootstrap_values_.clear();
  bootstrap_have_.clear();
  iteration_ = std::max(iteration_, bootstrap_iteration_);
  // Replay the deterministic GBS schedule to the donors' tick count: the
  // joiner lands on exactly the cluster's current GBS without any further
  // coordination (the §3.2 agreement property extended to late joiners).
  gbs_ctrl_.fast_forward(bootstrap_gbs_ticks_);
  epochs_ticked_ = static_cast<double>(gbs_ctrl_.ticks());
  epoch_progress_ = epochs_ticked_;
  // Optimistic staleness baseline at the adopted iteration (mirrors what
  // apply_roster granted us on the receiving side).
  for (std::size_t j = 0; j < peer_latest_.size(); ++j) {
    if (j == id_ || excluded_[j]) continue;
    peer_latest_[j] = std::max(peer_latest_[j],
                               static_cast<std::int64_t>(iteration_));
  }
  bootstrapping_ = false;
  bootstrap_complete_time_ = engine_->now();
  if (options_.dynamic_batching || options_.gbs_schedule) recompute_lbs();
  if (ft().enabled) take_checkpoint();
  if (obs::on(obs_)) {
    obs_->tracer().instant(
        obs_track_, "bootstrap_done", engine_->now(),
        {{"donors", static_cast<double>(bootstrap_donor_count_)},
         {"bytes", static_cast<double>(bootstrap_bytes_)},
         {"iteration", static_cast<double>(iteration_)}});
  }
  try_start_iteration();
}

}  // namespace dlion::core

// Autoscaler policy for elastic membership (DESIGN.md).
//
// A pure decision function over signals the core already computes: the
// per-worker iteration-interval EWMAs behind the watchdog's stall verdicts,
// the network's queued-byte backlog behind the critical-path bottleneck
// attribution, and the fabric's dead-letter tally. Reading core-state
// mirrors — never the obs subsystem — keeps the decision identical whether
// or not an observer is attached, which the obs-on/off determinism
// contract requires.
//
// The policy is deliberately conservative (hysteresis via consecutive-
// verdict counting happens in the MembershipController that feeds it):
//   scale OUT  when the cluster is compute-bound (high straggler share or
//              no recent progress) and capacity remains;
//   scale IN   when the network is the bottleneck (backlog per worker
//              above threshold, or dead letters accumulating) — fewer
//              senders shrink all-to-all traffic quadratically;
//   hold       otherwise.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dlion::core {

struct AutoscalerConfig {
  bool enabled = false;
  /// Fraction of the mean iteration interval above which the slowest
  /// worker counts as a straggler (mirrors the critical-path attribution
  /// threshold).
  double straggler_ratio = 1.5;
  /// Seconds without any worker finishing an iteration before the policy
  /// reads the run as stalled (mirrors the watchdog's no-progress verdict).
  double stall_after_s = 30.0;
  /// Per-worker queued-byte backlog (bytes) above which the network is
  /// considered the bottleneck.
  double backlog_per_worker_bytes = 4.0 * 1024 * 1024;
  /// Dead letters accumulated since the previous decision above which the
  /// fabric is considered unhealthy (scale in to shed load).
  std::uint64_t dead_letter_delta = 8;
  /// Never scale below / above these member counts.
  std::size_t min_members = 2;
  std::size_t max_members = 0;  ///< 0 = capacity
};

/// Signals sampled by the MembershipController at each policy tick. All
/// fields come from deterministic core state (see file comment).
struct AutoscalerSignals {
  std::size_t members = 0;          ///< current live member count
  std::size_t capacity = 0;         ///< total worker slots
  double mean_interval_s = 0.0;     ///< mean per-iteration interval (EWMA)
  double max_interval_s = 0.0;      ///< slowest worker's interval (EWMA)
  double max_backlog_bytes = 0.0;   ///< largest per-link queued backlog
  std::uint64_t dead_letter_delta = 0;  ///< fabric dead letters since last tick
  double seconds_since_progress = 0.0;  ///< now - latest iteration finish
};

enum class ScaleDecision : std::uint8_t { kHold = 0, kScaleOut = 1, kScaleIn = 2 };
const char* scale_decision_name(ScaleDecision d);

class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerConfig config) : config_(config) {}

  /// Pure, deterministic policy: same signals, same decision.
  ScaleDecision decide(const AutoscalerSignals& s) const;

  const AutoscalerConfig& config() const { return config_; }

 private:
  AutoscalerConfig config_;
};

}  // namespace dlion::core

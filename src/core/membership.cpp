#include "core/membership.h"

#include <algorithm>
#include <stdexcept>

#include "common/check.h"

namespace dlion::core {

MembershipController::MembershipController(
    sim::Engine& engine, comm::Fabric& fabric, std::vector<Worker*> workers,
    MembershipConfig config, std::vector<bool> initial,
    common::SimTime duration, std::uint64_t seed)
    : engine_(&engine),
      fabric_(&fabric),
      workers_(std::move(workers)),
      config_(std::move(config)),
      members_(std::move(initial)),
      duration_(duration),
      seed_(seed),
      autoscaler_(config_.autoscaler) {
  if (members_.size() != workers_.size()) {
    throw std::invalid_argument(
        "MembershipController: roster size != worker count");
  }
  if (member_count() == 0) {
    throw std::invalid_argument("MembershipController: empty initial roster");
  }
  fabric_->network().set_active_workers(member_count());
}

std::size_t MembershipController::member_count() const {
  return static_cast<std::size_t>(
      std::count(members_.begin(), members_.end(), true));
}

void MembershipController::start() {
  for (const sim::MembershipEvent& ev : config_.schedule.sorted_events()) {
    if (ev.join) {
      engine_->at(ev.time, [this, ev] { activate(ev.worker, ev.machine); });
    } else {
      engine_->at(ev.time, [this, ev] { deactivate(ev.worker); });
    }
  }
  if (config_.autoscaler.enabled) {
    engine_->after(config_.autoscaler_period_s, [this] { autoscaler_tick(); });
  }
}

void MembershipController::activate(std::size_t w, std::size_t machine) {
  if (w >= workers_.size() || members_[w]) return;
  Worker* worker = workers_[w];
  if (!worker->dormant()) return;  // slot busy (should not happen)
  ++epoch_;
  members_[w] = true;
  // VirtualFlow-style indirection: rebind the logical worker onto the
  // requested machine's compute resource before it starts training.
  if (machine != sim::MembershipEvent::kSameMachine &&
      machine < config_.machines.size()) {
    worker->rebind_compute(sim::ComputeResource(
        config_.machines[machine], worker->profile(),
        seed_ ^ (0x9e3779b97f4a7c15ULL + w * 1315423911ULL + machine)));
  }
  ++stats_.joins;
  // Re-join of a slot that was a member before: freeze the previous
  // tenure's record now, before Worker::join resets the bootstrap state
  // it is filled from.
  for (auto it = stats_.join_log.rbegin(); it != stats_.join_log.rend();
       ++it) {
    if (it->worker != w) continue;
    it->completed = worker->bootstrap_complete_time();
    it->donors = worker->bootstrap_donor_count();
    it->bootstrap_bytes = worker->bootstrap_bytes();
    break;
  }
  JoinRecord rec;
  rec.worker = w;
  rec.requested = engine_->now();
  stats_.join_log.push_back(rec);
  worker->join(epoch_, members_, duration_);
  // The egress fair-share divisor tracks the live roster: n-1 peers of the
  // *current* membership, not of the slot capacity.
  fabric_->network().set_active_workers(member_count());
}

void MembershipController::deactivate(std::size_t w) {
  if (w >= workers_.size() || !members_[w]) return;
  if (member_count() <= 1) return;  // never drop the last member
  ++epoch_;
  members_[w] = false;
  ++stats_.leaves;
  workers_[w]->leave(epoch_, members_);
  fabric_->network().set_active_workers(member_count());
}

void MembershipController::autoscaler_tick() {
  if (engine_->now() >= duration_) return;
  AutoscalerSignals sig;
  sig.members = member_count();
  sig.capacity = workers_.size();
  double sum_interval = 0.0;
  std::size_t with_interval = 0;
  common::SimTime latest_finish = -1.0;
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!members_[w]) continue;
    const Worker& wk = *workers_[w];
    const double iv = wk.iteration_interval();
    if (iv > 0.0) {
      sum_interval += iv;
      ++with_interval;
      sig.max_interval_s = std::max(sig.max_interval_s, iv);
    }
    latest_finish = std::max(latest_finish, wk.last_finish_time());
    sig.max_backlog_bytes = std::max(
        sig.max_backlog_bytes,
        static_cast<double>(fabric_->network().backlog_bytes(w)));
  }
  if (with_interval > 0) {
    sig.mean_interval_s = sum_interval / static_cast<double>(with_interval);
  }
  sig.seconds_since_progress =
      latest_finish < 0.0 ? engine_->now() : engine_->now() - latest_finish;
  const std::uint64_t dl = fabric_->dead_letters();
  sig.dead_letter_delta = dl - last_dead_letters_;
  last_dead_letters_ = dl;

  const ScaleDecision d = autoscaler_.decide(sig);
  if (d == ScaleDecision::kScaleOut) {
    ++stats_.scale_out_decisions;
    // Lowest-id dormant slot joins (deterministic choice).
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (!members_[w] && workers_[w]->dormant()) {
        activate(w);
        break;
      }
    }
  } else if (d == ScaleDecision::kScaleIn) {
    ++stats_.scale_in_decisions;
    // Highest-id member leaves (deterministic choice).
    for (std::size_t w = workers_.size(); w-- > 0;) {
      if (members_[w]) {
        deactivate(w);
        break;
      }
    }
  }
  engine_->after(config_.autoscaler_period_s, [this] { autoscaler_tick(); });
}

ElasticStats MembershipController::stats() const {
  ElasticStats s = stats_;
  s.epoch = epoch_;
  s.final_members = member_count();
  // Only each slot's *latest* join reads the worker's live bootstrap
  // state; earlier tenures were frozen by the re-activation that replaced
  // them (the worker keeps only its current tenure's counters).
  std::vector<bool> latest_seen(workers_.size(), false);
  for (auto it = s.join_log.rbegin(); it != s.join_log.rend(); ++it) {
    if (latest_seen[it->worker]) continue;
    latest_seen[it->worker] = true;
    const Worker& wk = *workers_[it->worker];
    it->completed = wk.bootstrap_complete_time();
    it->donors = wk.bootstrap_donor_count();
    it->bootstrap_bytes = wk.bootstrap_bytes();
  }
  return s;
}

}  // namespace dlion::core

#include "core/weighted_update.h"

#include <cstring>
#include <stdexcept>

#include "common/check.h"

namespace dlion::core {

double dynamic_batching_weight(std::size_t lbs_sender, std::size_t lbs_self,
                               bool enabled) {
  if (!enabled) return 1.0;
  if (lbs_sender == 0 || lbs_self == 0) {
    throw std::invalid_argument("dynamic_batching_weight: zero LBS");
  }
  return static_cast<double>(lbs_sender) / static_cast<double>(lbs_self);
}

double normalized_batching_weight(std::size_t lbs_sender, std::size_t gbs,
                                  std::size_t n_workers, bool enabled) {
  if (!enabled) return 1.0;
  if (lbs_sender == 0 || gbs == 0 || n_workers == 0) {
    throw std::invalid_argument("normalized_batching_weight: zero input");
  }
  return static_cast<double>(n_workers) * static_cast<double>(lbs_sender) /
         static_cast<double>(gbs);
}

void apply_gradient_update(nn::Model& model, const comm::GradientUpdate& update,
                           double eta, std::size_t n_workers, double db) {
  if (n_workers == 0) {
    throw std::invalid_argument("apply_gradient_update: zero workers");
  }
  const float scale = static_cast<float>(eta * db /
                                         static_cast<double>(n_workers));
  auto& vars = model.variables();
  for (const auto& vg : update.vars) {
    if (vg.var_index >= vars.size()) {
      throw std::out_of_range("apply_gradient_update: bad variable index");
    }
    nn::Variable& var = *vars[vg.var_index];
    if (vg.dense_size != var.size()) {
      throw std::invalid_argument("apply_gradient_update: size mismatch at " +
                                  var.name());
    }
    float* w = var.value().data();
    if (vg.is_dense()) {
      for (std::size_t i = 0; i < vg.values.size(); ++i) {
        w[i] -= scale * vg.values[i];
      }
    } else {
      for (std::size_t e = 0; e < vg.indices.size(); ++e) {
        const std::uint32_t i = vg.indices[e];
        if (i >= var.size()) {
          throw std::out_of_range("apply_gradient_update: bad entry index");
        }
        w[i] -= scale * vg.values[e];
      }
    }
  }
}

void apply_own_gradients(nn::Model& model, double eta, std::size_t n_workers,
                         double db) {
  if (n_workers == 0) {
    throw std::invalid_argument("apply_own_gradients: zero workers");
  }
  const float scale =
      static_cast<float>(eta * db / static_cast<double>(n_workers));
  for (nn::Variable* var : model.variables()) {
    // Shape agreement: value and gradient buffers are walked with one flat
    // index, so their shapes must be identical.
    DLION_CHECK_SHAPE(var->grad().shape(), var->value().shape());
    float* w = var->value().data();
    const float* g = var->grad().data();
    for (std::size_t i = 0; i < var->size(); ++i) w[i] -= scale * g[i];
  }
}

void assign_weights(nn::Model& model, const comm::WeightPayload& weights) {
  auto& vars = model.variables();
  if (weights.parts.size() != vars.size()) {
    throw std::invalid_argument("assign_weights: variable count mismatch");
  }
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const comm::Payload<float>& p = weights.parts[v];
    if (p.size() != vars[v]->size()) {
      throw std::invalid_argument("assign_weights: size mismatch at " +
                                  vars[v]->name());
    }
    if (p.size() > 0) {
      std::memcpy(vars[v]->value().data(), p.data(),
                  p.size() * sizeof(float));
    }
  }
}

}  // namespace dlion::core

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/json_util.h"
#include "obs/track_names.h"

namespace dlion::obs {

namespace {

/// Shortest-faithful double formatting (round-trippable, locale-free).
std::string fmt_double(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  // Integers (the common case for counters) print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = std::strtod(buf, nullptr);
  if (parsed == v) {
    // Try shorter forms for readability.
    for (int prec = 6; prec < 17; ++prec) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      if (std::strtod(shorter, nullptr) == v) return shorter;
    }
  }
  return buf;
}

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(labels[i].first) + "\":\"" +
           json_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  return out;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_time_bounds();
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1])) {
      throw std::invalid_argument(
          "Histogram: bounds must be strictly increasing");
    }
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  sum_ += v;
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  ++count_;
}

double Histogram::observed_min() const {
  return count_ == 0 ? std::nan("") : min_;
}

double Histogram::observed_max() const {
  return count_ == 0 ? std::nan("") : max_;
}

double Histogram::mean() const {
  return count_ == 0 ? std::nan("") : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return std::nan("");
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double c = static_cast<double>(counts_[b]);
    if (cum + c < rank || c == 0.0) {
      cum += c;
      continue;
    }
    // Target rank falls inside bucket b: interpolate linearly between the
    // bucket's edges. The first bucket's lower edge is the observed min;
    // the overflow bucket's upper edge is the observed max.
    const double lo = b == 0 ? min_ : bounds_[b - 1];
    const double hi = b == counts_.size() - 1 ? max_ : bounds_[b];
    const double frac = c > 0.0 ? (rank - cum) / c : 0.0;
    return std::clamp(lo + (hi - lo) * frac, min_, max_);
  }
  return max_;
}

std::vector<double> Histogram::default_time_bounds() {
  // 1 µs .. 1000 s, four log-spaced buckets per decade.
  std::vector<double> b;
  for (int decade = -6; decade <= 2; ++decade) {
    const double base = std::pow(10.0, decade);
    for (double m : {1.0, 1.778, 3.162, 5.623}) b.push_back(base * m);
  }
  b.push_back(1e3);
  return b;
}

void Histogram::merge(const Histogram& other) {
  if (other.bounds_ != bounds_) {
    throw std::invalid_argument("Histogram::merge: bucket bounds differ");
  }
  if (other.count_ == 0) return;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::vector<double> Histogram::default_size_bounds() {
  // 1 .. 1e9, three log-spaced buckets per decade.
  std::vector<double> b;
  for (int decade = 0; decade <= 8; ++decade) {
    const double base = std::pow(10.0, decade);
    for (double m : {1.0, 2.154, 4.642}) b.push_back(base * m);
  }
  b.push_back(1e9);
  return b;
}

// ----------------------------------------------------------------- Windowed

Windowed::Windowed(double window_s)
    : window_s_(window_s > 0.0 ? window_s : 1.0) {}

WindowStats& Windowed::at_window(std::uint64_t w) {
  // Fast path: observations arrive in nondecreasing time, so the target is
  // almost always the last (or a brand-new) window.
  if (!windows_.empty() && windows_.back().window == w) {
    return windows_.back();
  }
  if (windows_.empty() || windows_.back().window < w) {
    windows_.push_back(WindowStats{w, 0, 0.0, 0.0, 0.0});
    return windows_.back();
  }
  const auto it = std::lower_bound(
      windows_.begin(), windows_.end(), w,
      [](const WindowStats& s, std::uint64_t x) { return s.window < x; });
  if (it != windows_.end() && it->window == w) return *it;
  return *windows_.insert(it, WindowStats{w, 0, 0.0, 0.0, 0.0});
}

void Windowed::observe(double t, double v) {
  const std::uint64_t w =
      t <= 0.0 ? 0 : static_cast<std::uint64_t>(t / window_s_);
  WindowStats& s = at_window(w);
  if (s.count == 0 || v < s.min) s.min = v;
  if (s.count == 0 || v > s.max) s.max = v;
  s.sum += v;
  ++s.count;
}

std::uint64_t Windowed::count() const {
  std::uint64_t n = 0;
  for (const WindowStats& s : windows_) n += s.count;
  return n;
}

double Windowed::sum() const {
  double total = 0.0;
  for (const WindowStats& s : windows_) total += s.sum;
  return total;
}

double Windowed::observed_min() const {
  double m = 0.0;
  bool any = false;
  for (const WindowStats& s : windows_) {
    if (s.count == 0) continue;
    if (!any || s.min < m) m = s.min;
    any = true;
  }
  return any ? m : std::nan("");
}

double Windowed::observed_max() const {
  double m = 0.0;
  bool any = false;
  for (const WindowStats& s : windows_) {
    if (s.count == 0) continue;
    if (!any || s.max > m) m = s.max;
    any = true;
  }
  return any ? m : std::nan("");
}

void Windowed::merge(const Windowed& other) {
  if (other.window_s_ != window_s_) {
    throw std::invalid_argument("Windowed::merge: window sizes differ");
  }
  for (const WindowStats& o : other.windows_) {
    if (o.count == 0) continue;
    WindowStats& s = at_window(o.window);
    if (s.count == 0 || o.min < s.min) s.min = o.min;
    if (s.count == 0 || o.max > s.max) s.max = o.max;
    s.sum += o.sum;
    s.count += o.count;
  }
}

// ---------------------------------------------------------- MetricsRegistry

Labels MetricsRegistry::resolve_labels(const Labels& labels) const {
  if (rollup_.worker_group <= 1) return labels;
  Labels out = labels;
  for (auto& [key, value] : out) {
    if (key != "worker" || value.empty()) continue;
    bool digits = true;
    std::size_t id = 0;
    for (char c : value) {
      if (c < '0' || c > '9') {
        digits = false;
        break;
      }
      id = id * 10 + static_cast<std::size_t>(c - '0');
    }
    if (!digits) continue;
    key = "mc";
    value = id_str(id / rollup_.worker_group);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& raw_labels) {
  DLION_AFFINITY_DCHECK(affinity_);
  const Labels labels = resolve_labels(raw_labels);
  auto key = std::make_pair(name, canonical_labels(labels));
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it = counters_
             .emplace(std::move(key), std::make_pair(std::move(sorted),
                                                     std::make_unique<Counter>()))
             .first;
  }
  return *it->second.second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const Labels& raw_labels) {
  DLION_AFFINITY_DCHECK(affinity_);
  const Labels labels = resolve_labels(raw_labels);
  auto key = std::make_pair(name, canonical_labels(labels));
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it = gauges_
             .emplace(std::move(key), std::make_pair(std::move(sorted),
                                                     std::make_unique<Gauge>()))
             .first;
  }
  return *it->second.second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& raw_labels,
                                      std::vector<double> bounds) {
  DLION_AFFINITY_DCHECK(affinity_);
  const Labels labels = resolve_labels(raw_labels);
  auto key = std::make_pair(name, canonical_labels(labels));
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    it = histograms_
             .emplace(std::move(key),
                      std::make_pair(std::move(sorted),
                                     std::make_unique<Histogram>(
                                         std::move(bounds))))
             .first;
  }
  return *it->second.second;
}

Windowed& MetricsRegistry::windowed(const std::string& name,
                                    const Labels& raw_labels,
                                    double window_s) {
  DLION_AFFINITY_DCHECK(affinity_);
  const Labels labels = resolve_labels(raw_labels);
  auto key = std::make_pair(name, canonical_labels(labels));
  auto it = windowed_.find(key);
  if (it == windowed_.end()) {
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    const double w = window_s > 0.0
                         ? window_s
                         : (rollup_.window_s > 0.0 ? rollup_.window_s : 1.0);
    it = windowed_
             .emplace(std::move(key),
                      std::make_pair(std::move(sorted),
                                     std::make_unique<Windowed>(w)))
             .first;
  }
  return *it->second.second;
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size() +
         windowed_.size();
}

double MetricsRegistry::counter_total(const std::string& name) const {
  double total = 0.0;
  for (auto it = counters_.lower_bound({name, std::string()});
       it != counters_.end() && it->first.first == name; ++it) {
    total += it->second.second->value();
  }
  return total;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  auto it = histograms_.lower_bound({name, std::string()});
  if (it != histograms_.end() && it->first.first == name) {
    return it->second.second.get();
  }
  return nullptr;
}

const Windowed* MetricsRegistry::find_windowed(const std::string& name) const {
  auto it = windowed_.lower_bound({name, std::string()});
  if (it != windowed_.end() && it->first.first == name) {
    return it->second.second.get();
  }
  return nullptr;
}

void MetricsRegistry::merge_from(const MetricsRegistry& shard) {
  DLION_AFFINITY_DCHECK(affinity_);
  for (const auto& [key, entry] : shard.counters_) {
    counter(key.first, entry.first).inc(entry.second->value());
  }
  for (const auto& [key, entry] : shard.gauges_) {
    Gauge& g = gauge(key.first, entry.first);
    g.set(std::max(g.value(), entry.second->value()));
  }
  for (const auto& [key, entry] : shard.histograms_) {
    Histogram& h = histogram(key.first, entry.first,
                             entry.second->bounds());
    h.merge(*entry.second);
  }
  for (const auto& [key, entry] : shard.windowed_) {
    Windowed& w =
        windowed(key.first, entry.first, entry.second->window_s());
    w.merge(*entry.second);
  }
}

std::vector<MetricsRegistry::Row> MetricsRegistry::rows() const {
  std::vector<Row> out;
  out.reserve(size());
  for (const auto& [key, entry] : counters_) {
    out.push_back({"counter", key.first, entry.first,
                   entry.second->value(), nullptr});
  }
  for (const auto& [key, entry] : gauges_) {
    out.push_back({"gauge", key.first, entry.first, entry.second->value(),
                   nullptr});
  }
  for (const auto& [key, entry] : histograms_) {
    out.push_back({"histogram", key.first, entry.first,
                   entry.second->sum(), entry.second.get(), nullptr});
  }
  for (const auto& [key, entry] : windowed_) {
    out.push_back({"windowed", key.first, entry.first, entry.second->sum(),
                   nullptr, entry.second.get()});
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    if (a.name != b.name) return a.name < b.name;
    if (a.type != b.type) return a.type < b.type;
    return canonical_labels(a.labels) < canonical_labels(b.labels);
  });
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"schema\":\"dlion-metrics-v2\",\"metrics\":[";
  bool first = true;
  for (const Row& r : rows()) {
    if (!first) out += ",";
    first = false;
    out += "{\"type\":\"" + json_escape(r.type) + "\",\"name\":\"" +
           json_escape(r.name) + "\",\"labels\":" + labels_json(r.labels);
    if (r.win != nullptr) {
      const Windowed& w = *r.win;
      out += ",\"window_s\":" + fmt_double(w.window_s());
      out += ",\"count\":" + fmt_double(static_cast<double>(w.count()));
      out += ",\"sum\":" + fmt_double(w.sum());
      out += ",\"windows\":[";
      bool wfirst = true;
      for (const WindowStats& s : w.windows()) {
        if (s.count == 0) continue;  // sparse export
        if (!wfirst) out += ",";
        wfirst = false;
        out += "{\"w\":" + fmt_double(static_cast<double>(s.window)) +
               ",\"count\":" + fmt_double(static_cast<double>(s.count)) +
               ",\"sum\":" + fmt_double(s.sum) +
               ",\"min\":" + fmt_double(s.min) +
               ",\"max\":" + fmt_double(s.max) + "}";
      }
      out += "]";
    } else if (r.hist == nullptr) {
      out += ",\"value\":" + fmt_double(r.value);
    } else {
      const Histogram& h = *r.hist;
      out += ",\"count\":" + fmt_double(static_cast<double>(h.count()));
      out += ",\"sum\":" + fmt_double(h.sum());
      out += ",\"min\":" + fmt_double(h.observed_min());
      out += ",\"max\":" + fmt_double(h.observed_max());
      out += ",\"p50\":" + fmt_double(h.quantile(0.50));
      out += ",\"p90\":" + fmt_double(h.quantile(0.90));
      out += ",\"p99\":" + fmt_double(h.quantile(0.99));
      out += ",\"buckets\":[";
      bool bfirst = true;
      for (std::size_t b = 0; b < h.bucket_counts().size(); ++b) {
        if (h.bucket_counts()[b] == 0) continue;  // sparse export
        if (!bfirst) out += ",";
        bfirst = false;
        const double le = b < h.bounds().size()
                              ? h.bounds()[b]
                              : std::numeric_limits<double>::infinity();
        out += "{\"le\":" + fmt_double(le) + ",\"count\":" +
               fmt_double(static_cast<double>(h.bucket_counts()[b])) + "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::ostringstream out;
  out << "type,name,labels,value,count,sum,min,max,p50,p90,p99\n";
  auto cell = [](double v) { return std::isnan(v) ? std::string() : fmt_double(v); };
  for (const Row& r : rows()) {
    // The labels column is always quoted (its shape is stable whether or
    // not label values contain commas), with embedded quotes doubled; the
    // type/name columns are quoted only when they need to be (commas,
    // quotes, newlines) so the common case stays byte-compatible.
    out << csv_field(r.type) << "," << csv_field(r.name) << ","
        << csv_quoted(canonical_labels(r.labels)) << ",";
    if (r.win != nullptr) {
      // Windowed rows reuse the histogram columns: aggregate count/sum/
      // min/max across all windows, no quantiles (per-window detail lives
      // in the JSON export).
      const Windowed& w = *r.win;
      out << "," << w.count() << "," << cell(w.sum()) << ","
          << cell(w.observed_min()) << "," << cell(w.observed_max())
          << ",,,\n";
    } else if (r.hist == nullptr) {
      out << fmt_double(r.value) << ",,,,,,,\n";
    } else {
      const Histogram& h = *r.hist;
      out << "," << h.count() << "," << cell(h.sum()) << ","
          << cell(h.observed_min()) << "," << cell(h.observed_max()) << ","
          << cell(h.quantile(0.5)) << "," << cell(h.quantile(0.9)) << ","
          << cell(h.quantile(0.99)) << "\n";
    }
  }
  return out.str();
}

}  // namespace dlion::obs

#include "obs/trace_sink.h"

#include <stdexcept>

#include "obs/trace_format.h"

namespace dlion::obs {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv1a(std::uint64_t& hash, const std::string& bytes) {
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
}

bool pid_seen(std::vector<std::uint32_t>& named, std::uint32_t pid) {
  for (std::uint32_t p : named) {
    if (p == pid) return true;
  }
  named.push_back(pid);
  return false;
}

void note_track(std::vector<std::pair<std::uint32_t, std::uint32_t>>& tracks,
                TrackId id, std::uint32_t pid, std::uint32_t tid) {
  if (tracks.size() < id) tracks.resize(id);
  tracks[id - 1] = {pid, tid};
}

}  // namespace

// ---------------------------------------------------------- ChromeStreamSink

ChromeStreamSink::ChromeStreamSink(std::ostream& out) : out_(&out) {}

ChromeStreamSink::ChromeStreamSink(const std::string& path)
    : file_(path, std::ios::trunc), out_(&file_) {
  if (!file_.is_open()) {
    throw std::runtime_error("ChromeStreamSink: cannot open '" + path + "'");
  }
}

ChromeStreamSink::~ChromeStreamSink() { finish(); }

void ChromeStreamSink::emit(const std::string& event_json) {
  DLION_AFFINITY_DCHECK(affinity_);
  std::string chunk;
  if (first_) {
    chunk = "{\"traceEvents\":[";
    first_ = false;
  } else {
    chunk = ",\n";
  }
  chunk += event_json;
  *out_ << chunk;
  bytes_ += chunk.size();
  fnv1a(hash_, chunk);
  ++events_;
}

std::pair<std::uint32_t, std::uint32_t> ChromeStreamSink::ids(
    TrackId id) const {
  if (id == 0 || id > tracks_.size()) return {0, 0};
  return tracks_[id - 1];
}

void ChromeStreamSink::on_track(TrackId id, std::uint32_t pid,
                                std::uint32_t tid, const std::string& process,
                                const std::string& thread) {
  note_track(tracks_, id, pid, tid);
  if (!pid_seen(pids_named_, pid)) {
    emit(trace_format::process_meta(pid, process));
  }
  emit(trace_format::thread_meta(pid, tid, thread));
}

void ChromeStreamSink::on_span(const Tracer::Span& s) {
  const auto [pid, tid] = ids(s.track);
  emit(trace_format::span_event(s, pid, tid));
}

void ChromeStreamSink::on_instant(const Tracer::Instant& i) {
  const auto [pid, tid] = ids(i.track);
  emit(trace_format::instant_event(i, pid, tid));
}

void ChromeStreamSink::on_sample(const Tracer::Sample& c) {
  const auto [pid, tid] = ids(c.track);
  emit(trace_format::sample_event(c, pid, tid));
}

void ChromeStreamSink::on_flow(const Tracer::Flow& f) {
  const auto [pid, tid] = ids(f.track);
  emit(trace_format::flow_event(f, pid, tid));
}

void ChromeStreamSink::finish() {
  if (finished_) return;
  finished_ = true;
  std::string tail = first_ ? std::string("{\"traceEvents\":[\n]}")
                            : std::string("\n]}");
  *out_ << tail;
  bytes_ += tail.size();
  fnv1a(hash_, tail);
  out_->flush();
}

// ----------------------------------------------------------------- RingSink

RingSink::RingSink(std::size_t capacity) : cap_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(cap_);
}

void RingSink::push(std::string event_json) {
  DLION_AFFINITY_DCHECK(affinity_);
  ++total_;
  if (ring_.size() < cap_) {
    ring_.push_back(std::move(event_json));
    return;
  }
  ring_[next_] = std::move(event_json);
  next_ = (next_ + 1) % cap_;
}

std::pair<std::uint32_t, std::uint32_t> RingSink::ids(TrackId id) const {
  if (id == 0 || id > tracks_.size()) return {0, 0};
  return tracks_[id - 1];
}

void RingSink::on_track(TrackId id, std::uint32_t pid, std::uint32_t tid,
                        const std::string& process,
                        const std::string& thread) {
  note_track(tracks_, id, pid, tid);
  if (!pid_seen(pids_named_, pid)) {
    meta_.push_back(trace_format::process_meta(pid, process));
  }
  meta_.push_back(trace_format::thread_meta(pid, tid, thread));
}

void RingSink::on_span(const Tracer::Span& s) {
  const auto [pid, tid] = ids(s.track);
  push(trace_format::span_event(s, pid, tid));
}

void RingSink::on_instant(const Tracer::Instant& i) {
  const auto [pid, tid] = ids(i.track);
  push(trace_format::instant_event(i, pid, tid));
}

void RingSink::on_sample(const Tracer::Sample& c) {
  const auto [pid, tid] = ids(c.track);
  push(trace_format::sample_event(c, pid, tid));
}

void RingSink::on_flow(const Tracer::Flow& f) {
  const auto [pid, tid] = ids(f.track);
  push(trace_format::flow_event(f, pid, tid));
}

std::string RingSink::chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const std::string& m : meta_) {
    sep();
    out += m;
  }
  // Oldest-first: the slot at next_ is the oldest once the ring has wrapped.
  const std::size_t n = ring_.size();
  const std::size_t start = n < cap_ ? 0 : next_;
  for (std::size_t k = 0; k < n; ++k) {
    sep();
    out += ring_[(start + k) % n];
  }
  out += "\n]}";
  return out;
}

}  // namespace dlion::obs

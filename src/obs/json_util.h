// Shared JSON/CSV string helpers for the observability exporters.
//
// One definition of string escaping for every obs exporter (metrics JSON,
// metrics CSV, Chrome trace JSON, telemetry JSON) so the formats cannot
// drift apart. Header-only; no dependencies beyond the standard library.
#pragma once

#include <cstdio>
#include <string>

namespace dlion::obs {

/// Minimal JSON string escaping (quotes, backslash, control characters).
/// The output is what goes *between* the surrounding double quotes.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// RFC-4180 CSV field quoting: fields containing commas, double quotes, or
/// newlines are wrapped in quotes with embedded quotes doubled; everything
/// else passes through unchanged.
inline std::string csv_field(const std::string& s) {
  bool needs_quotes = false;
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

/// CSV field that is *always* quoted (used for the labels column so its
/// shape is stable whether or not the labels contain commas), with embedded
/// quotes doubled.
inline std::string csv_quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace dlion::obs

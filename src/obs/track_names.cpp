#include "obs/track_names.h"

#include <cstdio>

namespace dlion::obs {

namespace {
int g_pad_width = kDefaultIdPadWidth;
}  // namespace

void set_id_pad_width(int width) {
  g_pad_width = width < 0 ? 0 : (width > 16 ? 16 : width);
}

int id_pad_width() { return g_pad_width; }

std::string id_str(std::size_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*zu", g_pad_width, id);
  return buf;
}

std::string worker_track(std::size_t id) { return "worker " + id_str(id); }

std::string link_track(std::size_t from, std::size_t to) {
  return "link " + id_str(from) + "->" + id_str(to);
}

std::string replica_track(std::size_t id) { return "replica " + id_str(id); }

}  // namespace dlion::obs

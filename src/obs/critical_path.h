// Critical-path attribution over a recorded trace.
//
// Reconstructs the causal DAG a run's spans and flow events imply —
// program order within each lane, Chrome flow links across lanes (worker
// send → link transmission → worker apply) — walks it backwards from the
// last thing that finished, and reports where the end-to-end time went:
// {compute, transfer, queueing, stall, DKT}, per worker and per directed
// link, overall and per fixed-length epoch window.
//
// The walk is exact, not sampled: consecutive path nodes produce
// *contiguous* segments [pred.t1, node.t1], so category seconds sum to the
// path's total length and per-window fractions sum to 1 by construction.
// Everything is derived from the tracer's already-recorded, deterministic
// events; computing a report never touches the simulation.
//
// Lane conventions (what the instrumented components record):
//  - workers:  process "workers", thread "worker <i>" — spans compute,
//    stall, dkt_pull, and zero-duration apply (gradient application at
//    delivery time, the flow-end anchor).
//  - links:    process "network", thread "link <i>-><j>" — tx spans, with
//    a flow step at each tx start.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace dlion::obs {

/// Where a slice of critical-path time is charged.
enum class PathCategory : std::uint8_t {
  kCompute = 0,   ///< gradient compute + application (worker lanes)
  kTransfer = 1,  ///< link transmission + propagation latency
  kQueue = 2,     ///< waiting for a busy link / handler gaps / retries
  kStall = 3,     ///< synchronization waits (bounded-staleness barrier)
  kDkt = 4,       ///< direct-knowledge-transfer weight pulls
};
inline constexpr std::size_t kNumPathCategories = 5;
const char* path_category_name(PathCategory c);

/// One contiguous slice of the critical path (chronological in the
/// report; slices tile [t_start, t_end] exactly).
struct PathSegment {
  double t0 = 0.0;
  double t1 = 0.0;
  PathCategory category = PathCategory::kCompute;
  std::string lane;       ///< "worker 3" or "link 0->1"
  std::string span_name;  ///< originating span name, or "(gap)"
  double seconds() const { return t1 - t0; }
};

/// On-path seconds one lane contributed, split by category.
struct LaneAttribution {
  std::string lane;
  std::array<double, kNumPathCategories> seconds{};
  double total() const;
};

/// Category totals inside one fixed-length time window.
struct EpochWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  std::array<double, kNumPathCategories> seconds{};
  double total() const;
  /// seconds[c] / total(); the five fractions sum to 1 (0 if empty).
  double fraction(PathCategory c) const;
};

struct CriticalPathReport {
  /// False when the trace held no spans (every other field is empty).
  bool valid = false;
  double t_start = 0.0;  ///< first path node's start
  double t_end = 0.0;    ///< last span's completion
  double total_seconds() const { return t_end - t_start; }

  std::array<double, kNumPathCategories> category_seconds{};
  double category_fraction(PathCategory c) const;

  /// Chronological path slices tiling [t_start, t_end].
  std::vector<PathSegment> segments;
  /// Per-lane attribution, sorted by total seconds descending (ties by
  /// lane name); workers and links reported separately.
  std::vector<LaneAttribution> workers;
  std::vector<LaneAttribution> links;

  /// Worker lane with the most on-path seconds (the straggler the paper's
  /// techniques chase); empty when no worker lane is on the path.
  std::string straggler;
  /// Link lane with the most on-path transfer+queue seconds.
  std::string bottleneck_link;

  /// Fixed-length windows (CriticalPathOptions::epoch_seconds); empty when
  /// windowing was disabled.
  std::vector<EpochWindow> epochs;

  /// Deterministic single-object JSON (categories, lanes, epochs,
  /// segments).
  std::string to_json() const;
  /// Human-readable attribution table (the trace_explain output).
  std::string attribution_table() const;
};

struct CriticalPathOptions {
  /// Split the run into fixed windows of this many simulated seconds and
  /// report per-window category fractions. 0 disables windowing.
  double epoch_seconds = 0.0;
};

/// Analyze a finished run's tracer. Read-only; callable any number of
/// times. Returns an invalid report when the tracer recorded no spans.
CriticalPathReport compute_critical_path(const Tracer& tracer,
                                         const CriticalPathOptions& options =
                                             {});

/// Compact headline distilled from a report (embedded in RunTelemetry).
struct CriticalPathSummary {
  bool computed = false;
  double total_s = 0.0;
  std::array<double, kNumPathCategories> category_s{};
  std::string straggler;
  std::string bottleneck_link;
};
CriticalPathSummary summary_of(const CriticalPathReport& report);

}  // namespace dlion::obs

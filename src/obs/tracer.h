// Span tracer on simulated time.
//
// Records begin/end (or pre-measured complete) spans, instant events, and
// counter samples on named *tracks* — (process, thread) pairs that map to
// Chrome trace-event pid/tid — and exports Chrome trace-event JSON that
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Timestamps are simulated seconds (common::SimTime); the exporter scales
// them to the format's microseconds. Recording never reads wall clocks,
// never draws randomness, and never schedules simulation events, so an
// attached tracer cannot perturb a run (the determinism contract in
// DESIGN.md). Storage is append-only vectors; one recorded span costs a
// push_back.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dlion::obs {

/// Opaque track handle; 0 is reserved as "invalid / not yet created".
using TrackId = std::uint32_t;

class Tracer {
 public:
  /// One numeric span/instant argument (rendered in the trace viewer's
  /// detail pane).
  struct Arg {
    std::string key;
    double value = 0.0;
  };

  struct Span {
    TrackId track = 0;
    std::string name;
    double t0 = 0.0;  // seconds
    double t1 = 0.0;
    std::vector<Arg> args;
  };
  struct Instant {
    TrackId track = 0;
    std::string name;
    double t = 0.0;
    std::vector<Arg> args;
  };
  struct Sample {
    TrackId track = 0;
    std::string name;
    double t = 0.0;
    double value = 0.0;
  };

  /// One point of a cross-track causal flow (Chrome flow events). A flow id
  /// links a `kStart` point on the producing track, any number of `kStep`
  /// points (e.g. the network-link transmission), and a `kEnd` point on the
  /// consuming track; trace viewers render the chain as arrows.
  enum class FlowPhase : std::uint8_t { kStart, kStep, kEnd };
  struct Flow {
    TrackId track = 0;
    FlowPhase phase = FlowPhase::kStart;
    std::string name;
    double t = 0.0;
    std::uint64_t id = 0;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Find-or-create the track for (process, thread). Processes group
  /// tracks in the viewer ("workers", "network", "fabric"); threads are
  /// the individual swim lanes ("worker 0", "link 0->1").
  TrackId track(const std::string& process, const std::string& thread);

  /// Begin/end spans nest per track (LIFO). `end` without a matching
  /// `begin` is ignored; spans still open at export time are dropped.
  void begin(TrackId track, std::string name, double t,
             std::vector<Arg> args = {});
  void end(TrackId track, double t);

  /// A span whose duration is already known (emitted once, at schedule or
  /// completion time).
  void complete(TrackId track, std::string name, double t0, double t1,
                std::vector<Arg> args = {});

  void instant(TrackId track, std::string name, double t,
               std::vector<Arg> args = {});

  /// Counter sample: rendered as a stepped chart track ("C" event).
  void counter(TrackId track, std::string name, double t, double value);

  /// Record one point of causal flow `id` on `track` at time `t`. Exported
  /// as Chrome flow events (`ph:"s"/"t"/"f"`); viewers draw arrows between
  /// the slices that enclose each point's (track, t). Ids must be non-zero
  /// and should be deterministic (see comm::make_flow_id).
  void flow(TrackId track, FlowPhase phase, std::string name, double t,
            std::uint64_t id);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  const std::vector<Sample>& samples() const { return samples_; }
  const std::vector<Flow>& flows() const { return flows_; }
  std::size_t event_count() const {
    return spans_.size() + instants_.size() + samples_.size() + flows_.size();
  }
  std::size_t open_spans() const;
  std::size_t track_count() const { return tracks_.size(); }

  /// Track metadata lookup (1-based ids; empty strings for invalid ids).
  const std::string& track_process(TrackId id) const;
  const std::string& track_thread(TrackId id) const;

  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}), deterministic:
  /// metadata first (sorted by pid/tid), then spans, instants, and counter
  /// samples in recording order.
  std::string chrome_json() const;
  void write_chrome_json(std::ostream& out) const;

 private:
  struct Track {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::string process;
    std::string thread;
  };
  struct Open {
    std::string name;
    double t0 = 0.0;
    std::vector<Arg> args;
  };

  /// Hot-path growth policy: pre-reserve a sizeable first block and then
  /// double, so a long run's recording cost is dominated by the push_back
  /// itself rather than early reallocation churn.
  template <typename T>
  static void reserve_growth(std::vector<T>& v) {
    if (v.size() == v.capacity()) {
      v.reserve(v.capacity() == 0 ? 1024 : v.capacity() * 2);
    }
  }

  std::vector<Track> tracks_;                      // index = TrackId - 1
  std::map<std::pair<std::string, std::string>, TrackId> track_index_;
  std::map<std::string, std::uint32_t> pids_;      // process -> pid
  std::vector<std::vector<Open>> open_;            // per-track span stacks
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<Sample> samples_;
  std::vector<Flow> flows_;
};

}  // namespace dlion::obs

// Span tracer on simulated time.
//
// Records begin/end (or pre-measured complete) spans, instant events, and
// counter samples on named *tracks* — (process, thread) pairs that map to
// Chrome trace-event pid/tid — and exports Chrome trace-event JSON that
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Timestamps are simulated seconds (common::SimTime); the exporter scales
// them to the format's microseconds. Recording never reads wall clocks,
// never draws randomness, and never schedules simulation events, so an
// attached tracer cannot perturb a run (the determinism contract in
// DESIGN.md). Storage is append-only vectors; one recorded span costs a
// push_back.
//
// Scale mode (DESIGN.md "Observability at scale"): for large-N runs the
// tracer can (a) stream admitted events to a TraceSink as they close
// instead of — or in addition to — retaining them, and (b) sample
// deterministically via TraceSampleConfig, keyed off track ids and flow
// sequence numbers, never entropy. Both default off: an unconfigured
// Tracer behaves exactly as before (retain everything, no sink).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_affinity.h"

namespace dlion::obs {

/// Opaque track handle; 0 is reserved as "invalid / not yet created".
using TrackId = std::uint32_t;

class TraceSink;  // obs/trace_sink.h

/// Deterministic sampling policy for large-N traces. Every decision is a
/// pure function of (track name, flow id, event time) — same run, same
/// sampled trace, at any DLION_THREADS.
struct TraceSampleConfig {
  /// Keep every event on tracks whose numeric id — the first digit run in
  /// the thread name ("worker 0012" -> 12, "link 0003->0004" -> 3) —
  /// satisfies id % track_stride == 0. Tracks without digits ("control",
  /// "tier") are always kept: they are low-volume by construction.
  /// 1 keeps every track (sampling off).
  std::uint64_t track_stride = 1;
  /// Per-track head budget: the first N span/instant/sample events of a
  /// sampled-out track are kept anyway, so every lane shows its startup
  /// shape. 0 = none.
  std::uint64_t head_events_per_track = 0;
  /// Keep flow chains whose sequence number — (id & flow_seq_mask) —
  /// satisfies seq % flow_stride == 0. The same decision applies to the
  /// s/t/f points of one chain (they share the id), so sampled chains stay
  /// whole. 1 keeps every flow.
  std::uint64_t flow_stride = 1;
  /// Low-bit mask isolating the per-source sequence counter inside a flow
  /// id. The default matches comm::make_flow_id's layout (kFlowSeqBits low
  /// bits are the deterministic per-sender sequence).
  std::uint64_t flow_seq_mask = (std::uint64_t{1} << 40) - 1;
  /// Full-fidelity window [full_t0, full_t1): every event overlapping it is
  /// admitted AND retained regardless of the strides, so critical-path
  /// attribution over the window sees an unsampled trace. Empty (t1 <= t0)
  /// by default. Flow chains straddling a window edge may be partial.
  double full_t0 = 0.0;
  double full_t1 = 0.0;

  bool track_sampling() const { return track_stride > 1; }
  bool flow_sampling() const { return flow_stride > 1; }
  bool window_active() const { return full_t1 > full_t0; }
};

class Tracer {
 public:
  /// One numeric span/instant argument (rendered in the trace viewer's
  /// detail pane).
  struct Arg {
    std::string key;
    double value = 0.0;
  };

  struct Span {
    TrackId track = 0;
    std::string name;
    double t0 = 0.0;  // seconds
    double t1 = 0.0;
    std::vector<Arg> args;
  };
  struct Instant {
    TrackId track = 0;
    std::string name;
    double t = 0.0;
    std::vector<Arg> args;
  };
  struct Sample {
    TrackId track = 0;
    std::string name;
    double t = 0.0;
    double value = 0.0;
  };

  /// One point of a cross-track causal flow (Chrome flow events). A flow id
  /// links a `kStart` point on the producing track, any number of `kStep`
  /// points (e.g. the network-link transmission), and a `kEnd` point on the
  /// consuming track; trace viewers render the chain as arrows.
  enum class FlowPhase : std::uint8_t { kStart, kStep, kEnd };
  struct Flow {
    TrackId track = 0;
    FlowPhase phase = FlowPhase::kStart;
    std::string name;
    double t = 0.0;
    std::uint64_t id = 0;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Find-or-create the track for (process, thread). Processes group
  /// tracks in the viewer ("workers", "network", "fabric"); threads are
  /// the individual swim lanes ("worker 0", "link 0->1").
  TrackId track(const std::string& process, const std::string& thread);

  /// Begin/end spans nest per track (LIFO). `end` without a matching
  /// `begin` is ignored; spans still open at export time are dropped.
  void begin(TrackId track, std::string name, double t,
             std::vector<Arg> args = {});
  void end(TrackId track, double t);

  /// A span whose duration is already known (emitted once, at schedule or
  /// completion time).
  void complete(TrackId track, std::string name, double t0, double t1,
                std::vector<Arg> args = {});

  void instant(TrackId track, std::string name, double t,
               std::vector<Arg> args = {});

  /// Counter sample: rendered as a stepped chart track ("C" event).
  void counter(TrackId track, std::string name, double t, double value);

  /// Record one point of causal flow `id` on `track` at time `t`. Exported
  /// as Chrome flow events (`ph:"s"/"t"/"f"`); viewers draw arrows between
  /// the slices that enclose each point's (track, t). Ids must be non-zero
  /// and should be deterministic (see comm::make_flow_id).
  void flow(TrackId track, FlowPhase phase, std::string name, double t,
            std::uint64_t id);

  // ----------------------------------------------------------- scale mode

  /// Attach a streaming sink (non-owning; nullptr detaches). Admitted
  /// events are forwarded as they close; already-known tracks are replayed
  /// to the new sink immediately. Call finish() when the run ends so the
  /// sink can close its output.
  void set_sink(TraceSink* sink);
  TraceSink* sink() const { return sink_; }
  /// Forwards to the sink's finish() (no-op without one).
  void finish();

  /// Install the deterministic sampling policy. Rejected events are
  /// counted (`sampled_out_events`) and never reach the sink or storage.
  /// Per-track head budgets reset to the new config.
  void set_sampling(const TraceSampleConfig& cfg);
  const TraceSampleConfig& sampling() const { return sample_; }

  /// When false, admitted events are forwarded to the sink but stored only
  /// if they overlap the sampling config's full-fidelity window — memory
  /// becomes O(window + head budgets) instead of O(events). Default true
  /// (retain everything; the pre-scale behavior).
  void set_retain_all(bool retain) { retain_all_ = retain; }
  bool retain_all() const { return retain_all_; }

  /// Events past the sampler (= forwarded to the sink, if any).
  std::uint64_t admitted_events() const { return admitted_; }
  /// Events rejected by the sampler.
  std::uint64_t sampled_out_events() const { return sampled_out_; }
  /// Approximate heap footprint of the *retained* events (struct +
  /// name/arg payload bytes; excludes vector slack and track metadata).
  std::size_t retained_bytes() const { return retained_bytes_; }

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  const std::vector<Sample>& samples() const { return samples_; }
  const std::vector<Flow>& flows() const { return flows_; }
  std::size_t event_count() const {
    return spans_.size() + instants_.size() + samples_.size() + flows_.size();
  }
  std::size_t open_spans() const;
  std::size_t track_count() const { return tracks_.size(); }

  /// Track metadata lookup (1-based ids; empty strings for invalid ids).
  const std::string& track_process(TrackId id) const;
  const std::string& track_thread(TrackId id) const;
  std::uint32_t track_pid(TrackId id) const;
  std::uint32_t track_tid(TrackId id) const;

  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}), deterministic:
  /// metadata first (sorted by pid/tid), then spans, instants, and counter
  /// samples in recording order.
  std::string chrome_json() const;
  void write_chrome_json(std::ostream& out) const;

 private:
  struct Track {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::string process;
    std::string thread;
  };
  struct Open {
    std::string name;
    double t0 = 0.0;
    std::vector<Arg> args;
  };
  /// Per-track sampling state, recomputed by set_sampling().
  struct TrackSample {
    bool sampled = true;
    std::uint64_t head_left = 0;
  };

  /// Hot-path growth policy: pre-reserve a sizeable first block and then
  /// double, so a long run's recording cost is dominated by the push_back
  /// itself rather than early reallocation churn.
  template <typename T>
  static void reserve_growth(std::vector<T>& v) {
    if (v.size() == v.capacity()) {
      v.reserve(v.capacity() == 0 ? 1024 : v.capacity() * 2);
    }
  }

  TrackSample sample_state(const std::string& thread) const;
  bool in_window(double t0, double t1) const {
    return sample_.window_active() && t1 >= sample_.full_t0 &&
           t0 < sample_.full_t1;
  }
  /// Span/instant/sample admission; consumes head budget on sampled-out
  /// tracks.
  bool admit(TrackId track, double t0, double t1);
  void record_span(Span&& s);

  std::vector<Track> tracks_;                      // index = TrackId - 1
  std::map<std::pair<std::string, std::string>, TrackId> track_index_;
  std::map<std::string, std::uint32_t> pids_;      // process -> pid
  std::vector<std::vector<Open>> open_;            // per-track span stacks
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<Sample> samples_;
  std::vector<Flow> flows_;

  TraceSink* sink_ = nullptr;  // non-owning, optional
  /// Recording is single-threaded by contract (no lock on the hot path);
  /// debug/sanitize builds verify every mutating entry point stays on the
  /// binding thread (common/thread_affinity.h).
  common::ThreadAffinity affinity_;
  TraceSampleConfig sample_;
  std::vector<TrackSample> tsample_;  // index = TrackId - 1
  bool retain_all_ = true;
  std::uint64_t admitted_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::size_t retained_bytes_ = 0;
};

}  // namespace dlion::obs

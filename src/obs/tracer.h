// Span tracer on simulated time.
//
// Records begin/end (or pre-measured complete) spans, instant events, and
// counter samples on named *tracks* — (process, thread) pairs that map to
// Chrome trace-event pid/tid — and exports Chrome trace-event JSON that
// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Timestamps are simulated seconds (common::SimTime); the exporter scales
// them to the format's microseconds. Recording never reads wall clocks,
// never draws randomness, and never schedules simulation events, so an
// attached tracer cannot perturb a run (the determinism contract in
// DESIGN.md). Storage is append-only vectors; one recorded span costs a
// push_back.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dlion::obs {

/// Opaque track handle; 0 is reserved as "invalid / not yet created".
using TrackId = std::uint32_t;

class Tracer {
 public:
  /// One numeric span/instant argument (rendered in the trace viewer's
  /// detail pane).
  struct Arg {
    std::string key;
    double value = 0.0;
  };

  struct Span {
    TrackId track = 0;
    std::string name;
    double t0 = 0.0;  // seconds
    double t1 = 0.0;
    std::vector<Arg> args;
  };
  struct Instant {
    TrackId track = 0;
    std::string name;
    double t = 0.0;
    std::vector<Arg> args;
  };
  struct Sample {
    TrackId track = 0;
    std::string name;
    double t = 0.0;
    double value = 0.0;
  };

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Find-or-create the track for (process, thread). Processes group
  /// tracks in the viewer ("workers", "network", "fabric"); threads are
  /// the individual swim lanes ("worker 0", "link 0->1").
  TrackId track(const std::string& process, const std::string& thread);

  /// Begin/end spans nest per track (LIFO). `end` without a matching
  /// `begin` is ignored; spans still open at export time are dropped.
  void begin(TrackId track, std::string name, double t,
             std::vector<Arg> args = {});
  void end(TrackId track, double t);

  /// A span whose duration is already known (emitted once, at schedule or
  /// completion time).
  void complete(TrackId track, std::string name, double t0, double t1,
                std::vector<Arg> args = {});

  void instant(TrackId track, std::string name, double t,
               std::vector<Arg> args = {});

  /// Counter sample: rendered as a stepped chart track ("C" event).
  void counter(TrackId track, std::string name, double t, double value);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<Instant>& instants() const { return instants_; }
  const std::vector<Sample>& samples() const { return samples_; }
  std::size_t event_count() const {
    return spans_.size() + instants_.size() + samples_.size();
  }
  std::size_t open_spans() const;
  std::size_t track_count() const { return tracks_.size(); }

  void clear();

  /// Chrome trace-event JSON ({"traceEvents":[...]}), deterministic:
  /// metadata first (sorted by pid/tid), then spans, instants, and counter
  /// samples in recording order.
  std::string chrome_json() const;
  void write_chrome_json(std::ostream& out) const;

 private:
  struct Track {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::string process;
    std::string thread;
  };
  struct Open {
    std::string name;
    double t0 = 0.0;
    std::vector<Arg> args;
  };

  std::vector<Track> tracks_;                      // index = TrackId - 1
  std::map<std::pair<std::string, std::string>, TrackId> track_index_;
  std::map<std::string, std::uint32_t> pids_;      // process -> pid
  std::vector<std::vector<Open>> open_;            // per-track span stacks
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  std::vector<Sample> samples_;
};

}  // namespace dlion::obs

// Chrome trace-event JSON fragment builders shared by the batch exporter
// (Tracer::chrome_json) and the streaming sinks (obs/trace_sink.h), so the
// two paths emit byte-identical event records. Every function returns one
// complete JSON object (no separators, no enclosing array).
//
// All formatting is fixed-width snprintf with "C"-locale semantics so
// exports are byte-stable across platforms — the same contract the batch
// exporter has had since PR 2.
#pragma once

#include <cstdint>
#include <string>

#include "obs/tracer.h"

namespace dlion::obs::trace_format {

/// Microsecond timestamp with nanosecond resolution ("%.3f" of µs).
std::string fmt_us(double seconds);
/// Argument/counter value ("%.9g").
std::string fmt_value(double v);

std::string process_meta(std::uint32_t pid, const std::string& process);
std::string thread_meta(std::uint32_t pid, std::uint32_t tid,
                        const std::string& thread);
std::string span_event(const Tracer::Span& s, std::uint32_t pid,
                       std::uint32_t tid);
std::string instant_event(const Tracer::Instant& i, std::uint32_t pid,
                          std::uint32_t tid);
std::string sample_event(const Tracer::Sample& c, std::uint32_t pid,
                         std::uint32_t tid);
std::string flow_event(const Tracer::Flow& f, std::uint32_t pid,
                       std::uint32_t tid);

}  // namespace dlion::obs::trace_format

// MetricsRegistry: labeled counters, gauges, and fixed-bucket histograms
// with snapshot/export to JSON and CSV.
//
// Design constraints (see DESIGN.md "Observability layer"):
//  - *Deterministic*: no clocks, no RNG, no iteration-order dependence in
//    exports (rows are sorted by metric name, then canonical label string).
//  - *Hot-path cheap*: `counter()/gauge()/histogram()` return stable
//    references that stay valid for the registry's lifetime, so call sites
//    resolve the (name, labels) key once and keep the handle. An increment
//    is then a single add on a cached pointer.
//  - *No dependencies* beyond the standard library: exports are written by
//    a tiny built-in JSON/CSV emitter.
//
// Histograms use fixed bucket upper bounds (default: log-spaced seconds
// from 1 µs to ~1000 s) and estimate quantiles by linear interpolation
// inside the bucket containing the target rank — the same estimator
// Prometheus' `histogram_quantile` uses, clamped to the observed min/max.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace dlion::obs {

/// Metric labels as (key, value) pairs. Order is irrelevant: keys are
/// sorted when forming the canonical identity of a series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical "k1=v1,k2=v2" form (keys sorted). Two label sets naming the
/// same series always canonicalize identically.
std::string canonical_labels(Labels labels);

class Counter {
 public:
  void inc(double d = 1.0) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  /// `bounds` are strictly increasing bucket upper limits; an implicit
  /// overflow bucket catches everything above the last bound.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Observed extremes (quantiles are clamped into [min, max]).
  double observed_min() const;  // NaN when empty
  double observed_max() const;  // NaN when empty
  double mean() const;          // NaN when empty

  /// Quantile estimate for q in [0, 1]: linear interpolation within the
  /// bucket holding rank q*count. NaN when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Log-spaced duration buckets: 1 µs .. ~1000 s, 4 buckets per decade.
  static std::vector<double> default_time_bounds();
  /// Log-spaced size buckets: 1 .. ~1e9, 3 buckets per decade.
  static std::vector<double> default_size_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (cells are heap-allocated and never moved) — cache them on hot paths.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is only used on first creation; later lookups of the same
  /// series ignore it.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {});

  /// Series registered so far (all three kinds).
  std::size_t size() const;

  /// Sum of every counter series with this name (any labels); 0 if absent.
  double counter_total(const std::string& name) const;
  /// First histogram series with this name (any labels); nullptr if absent.
  const Histogram* find_histogram(const std::string& name) const;

  /// One exported row per series, sorted by (name, canonical labels).
  struct Row {
    std::string type;  // "counter" | "gauge" | "histogram"
    std::string name;
    Labels labels;             // sorted by key
    double value = 0.0;        // counter/gauge value; histogram sum
    const Histogram* hist = nullptr;  // non-null for histogram rows
  };
  std::vector<Row> rows() const;

  /// {"metrics":[{...}, ...]} — see DESIGN.md for the exact shape.
  std::string to_json() const;
  /// Header: type,name,labels,value,count,sum,min,max,p50,p90,p99
  std::string to_csv() const;

 private:
  template <typename T>
  using SeriesMap =
      std::map<std::pair<std::string, std::string>,  // (name, canonical)
               std::pair<Labels, std::unique_ptr<T>>>;

  SeriesMap<Counter> counters_;
  SeriesMap<Gauge> gauges_;
  SeriesMap<Histogram> histograms_;
};

}  // namespace dlion::obs

// MetricsRegistry: labeled counters, gauges, fixed-bucket histograms, and
// time-windowed series with snapshot/export to JSON and CSV.
//
// Design constraints (see DESIGN.md "Observability layer"):
//  - *Deterministic*: no clocks, no RNG, no iteration-order dependence in
//    exports (rows are sorted by metric name, then canonical label string).
//  - *Hot-path cheap*: `counter()/gauge()/histogram()/windowed()` return
//    stable references that stay valid for the registry's lifetime, so call
//    sites resolve the (name, labels) key once and keep the handle. An
//    increment is then a single add on a cached pointer.
//  - *No dependencies* beyond the standard library: exports are written by
//    a tiny built-in JSON/CSV emitter.
//
// Histograms use fixed bucket upper bounds (default: log-spaced seconds
// from 1 µs to ~1000 s) and estimate quantiles by linear interpolation
// inside the bucket containing the target rank — the same estimator
// Prometheus' `histogram_quantile` uses, clamped to the observed min/max.
//
// Scale mode (DESIGN.md "Observability at scale"): RollupConfig collapses
// per-worker label cardinality into per-micro-cloud groups at registration
// time, Windowed series aggregate observations into fixed time windows
// (per-window count/sum/min/max), and merge_from() folds shard registries
// (histograms bucket-wise, counters additively) into cluster rollups.
// All default off; an unconfigured registry behaves exactly as before.
//
// Export schemas: JSON snapshots carry "schema":"dlion-metrics-v2"
// (v1 = PR 2's shape without the schema key or windowed rows); the CSV
// header row is the dlion-metrics-csv-v1 contract, unchanged — windowed
// rows reuse the count/sum/min/max columns.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_affinity.h"

namespace dlion::obs {

/// Metric labels as (key, value) pairs. Order is irrelevant: keys are
/// sorted when forming the canonical identity of a series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical "k1=v1,k2=v2" form (keys sorted). Two label sets naming the
/// same series always canonicalize identically.
std::string canonical_labels(Labels labels);

class Counter {
 public:
  void inc(double d = 1.0) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  /// `bounds` are strictly increasing bucket upper limits; an implicit
  /// overflow bucket catches everything above the last bound.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Fold another histogram into this one (bucket-wise; the shard-merge
  /// primitive for cluster rollups). Throws std::invalid_argument when the
  /// bucket bounds differ.
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Observed extremes (quantiles are clamped into [min, max]).
  double observed_min() const;  // NaN when empty
  double observed_max() const;  // NaN when empty
  double mean() const;          // NaN when empty

  /// Quantile estimate for q in [0, 1]: linear interpolation within the
  /// bucket holding rank q*count. NaN when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  /// Log-spaced duration buckets: 1 µs .. ~1000 s, 4 buckets per decade.
  static std::vector<double> default_time_bounds();
  /// Log-spaced size buckets: 1 .. ~1e9, 3 buckets per decade.
  static std::vector<double> default_size_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One window's aggregate of a Windowed series.
struct WindowStats {
  std::uint64_t window = 0;  ///< index = floor(t / window_s)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Time-windowed aggregation: observations carry their (simulated) time
/// and land in fixed windows of `window_s` seconds, each keeping
/// count/sum/min/max. Memory is O(active windows), not O(observations) —
/// the per-epoch rollup primitive for large-N runs. Storage is sparse:
/// windows nothing was observed in are absent.
class Windowed {
 public:
  explicit Windowed(double window_s);

  /// Record value `v` observed at time `t` (t < 0 clamps to window 0).
  /// Observations normally arrive in nondecreasing t, making this O(1);
  /// out-of-order times fall back to a search.
  void observe(double t, double v);

  double window_s() const { return window_s_; }
  /// Sparse per-window stats, sorted by window index.
  const std::vector<WindowStats>& windows() const { return windows_; }

  /// Totals across every window.
  std::uint64_t count() const;
  double sum() const;
  double observed_min() const;  // NaN when empty
  double observed_max() const;  // NaN when empty

  /// Fold another windowed series into this one, window-by-window. Throws
  /// std::invalid_argument when the window sizes differ.
  void merge(const Windowed& other);

 private:
  WindowStats& at_window(std::uint64_t w);

  double window_s_;
  std::vector<WindowStats> windows_;  // sorted by window index
};

/// Scale-mode knobs (all off by default). Configure before any component
/// caches series handles (i.e. before set_obs wiring), because labels are
/// rewritten at series creation.
struct RollupConfig {
  /// When > 1, a {"worker", "<i>"} label is rewritten at registration to
  /// {"mc", "<i / worker_group>"} — per-worker series collapse into
  /// per-micro-cloud groups, cutting label cardinality by the group size.
  std::size_t worker_group = 0;
  /// Default window size for windowed() calls that don't pass their own.
  double window_s = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Install the rollup policy (see RollupConfig). Call before handles are
  /// created; existing series are not rewritten retroactively.
  void set_rollup(const RollupConfig& cfg) { rollup_ = cfg; }
  const RollupConfig& rollup() const { return rollup_; }

  /// Find-or-create. References stay valid for the registry's lifetime
  /// (cells are heap-allocated and never moved) — cache them on hot paths.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// `bounds` is only used on first creation; later lookups of the same
  /// series ignore it.
  Histogram& histogram(const std::string& name, const Labels& labels = {},
                       std::vector<double> bounds = {});
  /// Windowed series; `window_s` is used on first creation (0 falls back to
  /// RollupConfig::window_s, then 1 s).
  Windowed& windowed(const std::string& name, const Labels& labels = {},
                     double window_s = 0.0);

  /// Series registered so far (all kinds).
  std::size_t size() const;

  /// Sum of every counter series with this name (any labels); 0 if absent.
  double counter_total(const std::string& name) const;
  /// First histogram series with this name (any labels); nullptr if absent.
  const Histogram* find_histogram(const std::string& name) const;
  /// First windowed series with this name (any labels); nullptr if absent.
  const Windowed* find_windowed(const std::string& name) const;

  /// Fold a shard registry into this one: counters add, gauges keep the
  /// max (the useful semantics for peak/backlog levels), histograms and
  /// windowed series merge element-wise. Labels pass through *this*
  /// registry's rollup rewriting, so merging per-worker shards into a
  /// grouped registry produces micro-cloud rollups directly.
  void merge_from(const MetricsRegistry& shard);

  /// One exported row per series, sorted by (name, canonical labels).
  struct Row {
    std::string type;  // "counter" | "gauge" | "histogram" | "windowed"
    std::string name;
    Labels labels;             // sorted by key
    double value = 0.0;        // counter/gauge value; histogram/windowed sum
    const Histogram* hist = nullptr;  // non-null for histogram rows
    const Windowed* win = nullptr;    // non-null for windowed rows
  };
  std::vector<Row> rows() const;

  /// {"schema":"dlion-metrics-v2","metrics":[{...}, ...]} — see DESIGN.md
  /// for the exact shape.
  std::string to_json() const;
  /// Header: type,name,labels,value,count,sum,min,max,p50,p90,p99
  /// (dlion-metrics-csv-v1; windowed rows fill count/sum/min/max).
  std::string to_csv() const;

 private:
  template <typename T>
  using SeriesMap =
      std::map<std::pair<std::string, std::string>,  // (name, canonical)
               std::pair<Labels, std::unique_ptr<T>>>;

  /// Apply the rollup label rewrite (worker -> micro-cloud group).
  Labels resolve_labels(const Labels& labels) const;

  RollupConfig rollup_;
  /// Series creation/merge is single-threaded by contract (handles are
  /// cached by recorders; the registry itself takes no lock). Checked in
  /// debug/sanitize builds.
  common::ThreadAffinity affinity_;
  SeriesMap<Counter> counters_;
  SeriesMap<Gauge> gauges_;
  SeriesMap<Histogram> histograms_;
  SeriesMap<Windowed> windowed_;
};

}  // namespace dlion::obs

// RunTelemetry: the per-run summary distilled from an Observability
// object after a simulation finishes — per-phase time totals aggregated
// from tracer spans, headline counters, and transfer-latency quantiles.
// exp::run_experiment threads one of these into exp::RunResult so benches
// and reports can show where simulated time and bytes went without
// touching the raw registry/tracer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/obs.h"

namespace dlion::obs {

/// Aggregate of every span with the same name (across all tracks).
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double max_s = 0.0;
};

struct RunTelemetry {
  /// False when no observer was attached (all other fields are zero/NaN).
  bool collected = false;

  // Volume.
  std::uint64_t span_count = 0;
  std::uint64_t instant_count = 0;
  std::uint64_t counter_sample_count = 0;
  std::uint64_t metric_series = 0;

  // Headline phase totals, summed across workers (simulated seconds).
  double compute_seconds = 0.0;   ///< spans named "compute"
  double stall_seconds = 0.0;     ///< spans named "stall" (sync waits)
  double dkt_pull_seconds = 0.0;  ///< spans named "dkt_pull"
  double net_tx_seconds = 0.0;    ///< spans named "tx" (link occupancy)

  // Network transfer-duration quantiles (from sim.net.tx_seconds; NaN when
  // no transfers were recorded).
  double tx_p50_s = 0.0;
  double tx_p90_s = 0.0;
  double tx_p99_s = 0.0;

  // Headline counters (0 when the corresponding source recorded nothing).
  double events_executed = 0.0;
  double messages_sent = 0.0;
  double bytes_sent = 0.0;
  double messages_dropped = 0.0;
  double dead_letters = 0.0;
  double reliable_retries = 0.0;

  /// Every span name seen, sorted by total time descending (ties by name).
  std::vector<PhaseStat> phases;

  /// Critical-path headline (filled when the caller asked for the analysis
  /// — RunSpec::collect_critical_path; `critical_path.computed` is false
  /// otherwise).
  CriticalPathSummary critical_path;

  /// Watchdog outcome (all-false/empty when no watchdog was attached).
  bool watchdog_degraded = false;
  bool watchdog_aborted = false;
  /// One formatted line per fired detector ("detector @ t: detail").
  std::vector<std::string> watchdog_events;

  /// Total simulated seconds across the named headline phases.
  double accounted_seconds() const {
    return compute_seconds + stall_seconds + dkt_pull_seconds;
  }

  /// Compact single-object JSON (phases included), for report files.
  std::string to_json() const;
};

/// Distill a finished run's observer. Read-only; callable any number of
/// times.
RunTelemetry summarize(const Observability& obs);

}  // namespace dlion::obs

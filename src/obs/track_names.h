// Canonical worker/link/replica lane names for the tracer and metric
// labels, zero-padded so tracks sort numerically past 2-digit ids
// ("worker 0002" < "worker 0010"; lexicographic "worker 10" < "worker 2"
// was the old failure mode). Width 4 covers the 1,000+-worker target of
// ROADMAP item 1.
//
// The pad width is a process-global formatting knob (set once at startup,
// before any observer is attached; recording itself never touches it).
// `set_id_pad_width(0)` restores the pre-v2 unpadded names for consumers
// pinned to the dlion-trace-v1 track naming — the compat flag promised by
// the trace schema bump to dlion-trace-v2 (DESIGN.md "Observability at
// scale").
//
// Everything that parses lane names (critical_path's "worker %u" /
// "link %u->%u" scans, the tracer's sampling-id extraction) reads the
// first digit run, so padded and unpadded names parse identically.
#pragma once

#include <cstddef>
#include <string>

namespace dlion::obs {

/// Default zero-pad width for numeric ids in lane names and label values.
inline constexpr int kDefaultIdPadWidth = 4;

/// Set the global pad width (0 = legacy unpadded names). Call before
/// attaching observers; names are formatted at track/series creation.
void set_id_pad_width(int width);
int id_pad_width();

/// "0007" at the current pad width ("7" when width is 0).
std::string id_str(std::size_t id);

/// "worker 0007" — worker swim lanes and the fabric's per-worker tracks.
std::string worker_track(std::size_t id);
/// "link 0000->0001" — network link lanes.
std::string link_track(std::size_t from, std::size_t to);
/// "replica 0007" — serving-tier replica lanes.
std::string replica_track(std::size_t id);

}  // namespace dlion::obs

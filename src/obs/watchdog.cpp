#include "obs/watchdog.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/track_names.h"

namespace dlion::obs {

namespace {
std::string worker_tag(std::size_t worker) {
  return worker == WatchdogEvent::kClusterWide ? std::string("cluster")
                                               : worker_track(worker);
}

/// Compact double for human-readable detail strings ("12.5", not
/// "12.500000").
std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

Watchdog::Watchdog(WatchdogConfig config, std::size_t n_workers)
    : config_(config),
      n_(n_workers),
      first_loss_(n_workers, std::numeric_limits<double>::quiet_NaN()) {}

void Watchdog::set_tracer(Tracer* tracer) {
  tracer_ = tracer;
  track_ = tracer != nullptr ? tracer->track("watchdog", "alerts") : 0;
}

bool Watchdog::latched(const char* detector, std::size_t worker) const {
  for (const WatchdogEvent& e : events_) {
    if (e.worker == worker && e.detector == detector) return true;
  }
  return false;
}

void Watchdog::fire(const char* detector, double t, std::size_t worker,
                    double value, std::string detail) {
  if (latched(detector, worker)) return;
  events_.push_back(WatchdogEvent{detector, t, worker, value,
                                  std::move(detail)});
  if (tracer_ != nullptr) {
    tracer_->instant(track_, detector, t,
                     {{"worker", worker == WatchdogEvent::kClusterWide
                                     ? -1.0
                                     : static_cast<double>(worker)},
                      {"value", value}});
  }
  if (config_.abort_on_fire && !aborted_) {
    aborted_ = true;
    if (abort_hook_) abort_hook_();
  }
}

void Watchdog::check_progress(double t) {
  if (config_.no_progress_window_s <= 0.0) return;
  const double since = saw_progress_ ? last_progress_t_ : 0.0;
  const double gap = t - since;
  if (gap > config_.no_progress_window_s) {
    fire("no_progress", t, WatchdogEvent::kClusterWide, gap,
         "no worker finished an iteration for " + fmt(gap) +
             " s (window " + fmt(config_.no_progress_window_s) + " s)");
  }
}

void Watchdog::on_iteration(std::size_t worker, double t) {
  (void)worker;
  check_progress(t);
  last_progress_t_ = t;
  saw_progress_ = true;
}

void Watchdog::on_loss(std::size_t worker, double t, double loss) {
  check_progress(t);
  if (!std::isfinite(loss)) {
    fire("divergent_loss", t, worker, loss,
         worker_tag(worker) + " reported a non-finite loss");
    return;
  }
  if (worker < first_loss_.size()) {
    if (std::isnan(first_loss_[worker])) {
      first_loss_[worker] = loss;
      return;
    }
    const double baseline = std::max(first_loss_[worker], 1e-12);
    if (config_.loss_divergence_factor > 0.0 &&
        loss > config_.loss_divergence_factor * baseline) {
      fire("divergent_loss", t, worker, loss,
           worker_tag(worker) + " loss " + fmt(loss) + " exceeds " +
               fmt(config_.loss_divergence_factor) + "x its baseline " +
               fmt(baseline));
    }
  }
}

void Watchdog::on_staleness(std::size_t worker, double t, double staleness) {
  check_progress(t);
  if (config_.staleness_limit <= 0.0) return;
  if (staleness >= config_.staleness_limit) {
    fire("staleness_breach", t, worker, staleness,
         worker_tag(worker) + " ran " + fmt(staleness) +
             " iterations ahead of its slowest peer (limit " +
             fmt(config_.staleness_limit) + ")");
  }
}

void Watchdog::on_dead_letter(double t) {
  check_progress(t);
  if (config_.dead_letter_limit == 0) return;
  dead_letter_ts_.push_back(t);
  while (!dead_letter_ts_.empty() &&
         dead_letter_ts_.front() < t - config_.dead_letter_window_s) {
    dead_letter_ts_.pop_front();
  }
  if (dead_letter_ts_.size() >= config_.dead_letter_limit) {
    fire("dead_letter_spike", t, WatchdogEvent::kClusterWide,
         static_cast<double>(dead_letter_ts_.size()),
         std::to_string(dead_letter_ts_.size()) + " dead letters within " +
             fmt(config_.dead_letter_window_s) + " s");
  }
}

void Watchdog::on_drop(double t) {
  check_progress(t);
  if (config_.drop_limit == 0) return;
  drop_ts_.push_back(t);
  while (!drop_ts_.empty() && drop_ts_.front() < t - config_.drop_window_s) {
    drop_ts_.pop_front();
  }
  if (drop_ts_.size() >= config_.drop_limit) {
    fire("drop_spike", t, WatchdogEvent::kClusterWide,
         static_cast<double>(drop_ts_.size()),
         std::to_string(drop_ts_.size()) + " network fault drops within " +
             fmt(config_.drop_window_s) + " s");
  }
}

void Watchdog::finalize(double t_end) { check_progress(t_end); }

}  // namespace dlion::obs

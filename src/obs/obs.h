// Observability umbrella: one object bundling the MetricsRegistry and the
// span Tracer, handed (as a non-owning pointer) to the components that
// record into it — sim::Engine, sim::Network, comm::Fabric, core::Worker.
//
// Cost model (DESIGN.md "Observability layer"):
//  - compiled out  (cmake -DDLION_OBS=OFF): `obs::on()` is constexpr false,
//    every instrumentation branch is dead code and is eliminated;
//  - runtime-disabled (no observer attached, the default): each potential
//    record site costs one pointer null-check;
//  - enabled: counter bumps on cached handles plus append-only pushes.
//
// Determinism contract: recording reads the simulated clock only, draws no
// randomness, schedules no events, and never feeds back into control flow,
// so attaching an observer cannot change a run's event order or results.
#pragma once

#include "obs/metrics.h"
#include "obs/tracer.h"

// Set by CMake (-DDLION_OBS=OFF => DLION_OBS_ENABLED=0). Default: on.
#ifndef DLION_OBS_ENABLED
#define DLION_OBS_ENABLED 1
#endif

namespace dlion::obs {

class Watchdog;  // obs/watchdog.h (online health detectors)

class Observability {
 public:
  Observability() = default;
  explicit Observability(bool enabled) : enabled_(enabled) {}
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  /// Runtime switch: a disabled observer stays attached but records
  /// nothing (every call site checks `obs::on()` first).
  bool enabled() const { return enabled_; }
  void set_enabled(bool e) { enabled_ = e; }

  /// Runtime switch for the causal-tracing layer (flow events + apply
  /// spans). On by default; turning it off keeps the PR-2 span/counter
  /// recording while skipping the cross-track flow linkage (used by
  /// bench/obs_overhead to price causal tracing separately).
  bool causal() const { return causal_; }
  void set_causal(bool c) { causal_ = c; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Optional online watchdog (non-owning; nullptr detaches). Record sites
  /// feed it inside their `obs::on()` branches, so an attached watchdog
  /// costs nothing when observability is compiled out or disabled.
  Watchdog* watchdog() { return watchdog_; }
  const Watchdog* watchdog() const { return watchdog_; }
  void set_watchdog(Watchdog* w) { watchdog_ = w; }

 private:
  bool enabled_ = true;
  bool causal_ = true;
  MetricsRegistry metrics_;
  Tracer tracer_;
  Watchdog* watchdog_ = nullptr;  // non-owning, optional
};

/// The instrumentation gate every call site uses:
///   if (obs::on(obs_)) { ...record... }
/// Compiles to `false` (dead-code-eliminating the branch) when the
/// subsystem is compiled out.
#if DLION_OBS_ENABLED
inline bool on(const Observability* o) {
  return o != nullptr && o->enabled();
}
#else
constexpr bool on(const Observability*) { return false; }
#endif

}  // namespace dlion::obs

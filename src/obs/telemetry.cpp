#include "obs/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/json_util.h"
#include "obs/watchdog.h"

namespace dlion::obs {

namespace {

std::string fmt(double v) {
  if (std::isnan(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

RunTelemetry summarize(const Observability& obs) {
  RunTelemetry t;
  t.collected = true;

  const Tracer& tracer = obs.tracer();
  t.span_count = tracer.spans().size();
  t.instant_count = tracer.instants().size();
  t.counter_sample_count = tracer.samples().size();
  t.metric_series = obs.metrics().size();

  std::map<std::string, PhaseStat> by_name;
  for (const Tracer::Span& s : tracer.spans()) {
    PhaseStat& p = by_name[s.name];
    p.name = s.name;
    p.count += 1;
    const double d = s.t1 - s.t0;
    p.total_s += d;
    p.max_s = std::max(p.max_s, d);
  }
  for (auto& [name, stat] : by_name) {
    if (name == "compute") t.compute_seconds = stat.total_s;
    if (name == "stall") t.stall_seconds = stat.total_s;
    if (name == "dkt_pull") t.dkt_pull_seconds = stat.total_s;
    if (name == "tx") t.net_tx_seconds = stat.total_s;
    t.phases.push_back(stat);
  }
  std::sort(t.phases.begin(), t.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              return a.name < b.name;
            });

  const MetricsRegistry& m = obs.metrics();
  if (const Histogram* tx = m.find_histogram("sim.net.tx_seconds")) {
    t.tx_p50_s = tx->quantile(0.50);
    t.tx_p90_s = tx->quantile(0.90);
    t.tx_p99_s = tx->quantile(0.99);
  } else {
    t.tx_p50_s = t.tx_p90_s = t.tx_p99_s = std::nan("");
  }
  t.events_executed = m.counter_total("sim.events_executed");
  t.messages_sent = m.counter_total("sim.net.messages_sent");
  t.bytes_sent = m.counter_total("sim.net.bytes_sent");
  t.messages_dropped = m.counter_total("sim.net.messages_dropped");
  t.dead_letters = m.counter_total("comm.fabric.dead_letters");
  t.reliable_retries = m.counter_total("comm.fabric.reliable_retries");

  if (const Watchdog* wd = obs.watchdog()) {
    t.watchdog_degraded = wd->degraded();
    t.watchdog_aborted = wd->aborted();
    for (const WatchdogEvent& e : wd->events()) {
      char at[48];
      std::snprintf(at, sizeof(at), "%.3f", e.t);
      t.watchdog_events.push_back(e.detector + " @ " + at + " s: " +
                                  e.detail);
    }
  }
  return t;
}

std::string RunTelemetry::to_json() const {
  std::string out = "{";
  out += "\"collected\":" + std::string(collected ? "true" : "false");
  out += ",\"span_count\":" + std::to_string(span_count);
  out += ",\"instant_count\":" + std::to_string(instant_count);
  out += ",\"counter_sample_count\":" + std::to_string(counter_sample_count);
  out += ",\"metric_series\":" + std::to_string(metric_series);
  out += ",\"compute_seconds\":" + fmt(compute_seconds);
  out += ",\"stall_seconds\":" + fmt(stall_seconds);
  out += ",\"dkt_pull_seconds\":" + fmt(dkt_pull_seconds);
  out += ",\"net_tx_seconds\":" + fmt(net_tx_seconds);
  out += ",\"tx_p50_s\":" + fmt(tx_p50_s);
  out += ",\"tx_p90_s\":" + fmt(tx_p90_s);
  out += ",\"tx_p99_s\":" + fmt(tx_p99_s);
  out += ",\"events_executed\":" + fmt(events_executed);
  out += ",\"messages_sent\":" + fmt(messages_sent);
  out += ",\"bytes_sent\":" + fmt(bytes_sent);
  out += ",\"messages_dropped\":" + fmt(messages_dropped);
  out += ",\"dead_letters\":" + fmt(dead_letters);
  out += ",\"reliable_retries\":" + fmt(reliable_retries);
  out += ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) out += ",";
    out += "{\"name\":\"" + phases[i].name + "\"";
    out += ",\"count\":" + std::to_string(phases[i].count);
    out += ",\"total_s\":" + fmt(phases[i].total_s);
    out += ",\"max_s\":" + fmt(phases[i].max_s) + "}";
  }
  out += "]";
  out += ",\"critical_path\":{\"computed\":" +
         std::string(critical_path.computed ? "true" : "false");
  out += ",\"total_s\":" + fmt(critical_path.total_s);
  for (std::size_t c = 0; c < kNumPathCategories; ++c) {
    out += ",\"" + std::string(path_category_name(
                       static_cast<PathCategory>(c))) +
           "_s\":" + fmt(critical_path.category_s[c]);
  }
  out += ",\"straggler\":\"" + json_escape(critical_path.straggler) + "\"";
  out += ",\"bottleneck_link\":\"" +
         json_escape(critical_path.bottleneck_link) + "\"}";
  out += ",\"watchdog\":{\"degraded\":" +
         std::string(watchdog_degraded ? "true" : "false");
  out += ",\"aborted\":" + std::string(watchdog_aborted ? "true" : "false");
  out += ",\"events\":[";
  for (std::size_t i = 0; i < watchdog_events.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(watchdog_events[i]) + "\"";
  }
  out += "]}}";
  return out;
}

}  // namespace dlion::obs

// Minimal JSON document model + recursive-descent parser.
//
// Originally a test-only helper (tests/obs/json_test_util.h); extracted so
// the fuzz harnesses can drive the exact parser the observability tests use
// to validate exporter output. Just enough JSON to read what the exporters
// write, with no external dependencies. Escapes are decoded loosely
// (\uXXXX maps to '?'); numbers use strtod. Header-only.
//
// Hardened after fuzzing: value() recursion is depth-limited
// (kMaxParseDepth) so hostile inputs like 100k nested '[' fail cleanly with
// `false` instead of overflowing the stack (found by fuzz/fuzz_json.cpp;
// regression seed fuzz/corpus/json/deep_nesting).
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace dlion::obs::jsonlite {

/// Recursion budget for nested arrays/objects. Generous for every document
/// the exporters emit (they nest < 10 deep) while keeping worst-case stack
/// use bounded on hostile input.
inline constexpr int kMaxParseDepth = 192;

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json* find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out) { return value(out, 0) && (ws(), pos_ == s_.size()); }

 private:
  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool eat(char c) {
    ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char e = s_[pos_ + 1];
        if (e == 'u') {
          if (pos_ + 5 >= s_.size()) return false;
          pos_ += 6;
          out += '?';
          continue;
        }
        out += (e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e);
        pos_ += 2;
      } else {
        out += s_[pos_++];
      }
    }
    return eat('"');
  }
  bool value(Json& out, int depth) {
    if (depth > kMaxParseDepth) return false;  // bounded recursion
    ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = Json::kObject;
      if (eat('}')) return true;
      do {
        std::string key;
        if (!string(key) || !eat(':')) return false;
        Json v;
        if (!value(v, depth + 1)) return false;
        out.object.emplace(std::move(key), std::move(v));
      } while (eat(','));
      return eat('}');
    }
    if (c == '[') {
      ++pos_;
      out.kind = Json::kArray;
      if (eat(']')) return true;
      do {
        Json v;
        if (!value(v, depth + 1)) return false;
        out.array.push_back(std::move(v));
      } while (eat(','));
      return eat(']');
    }
    if (c == '"') {
      out.kind = Json::kString;
      return string(out.str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out.kind = Json::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.kind = Json::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      out.kind = Json::kNull;
      pos_ += 4;
      return true;
    }
    // Number.
    const std::size_t start = pos_;
    if (s_[pos_] == '-' || s_[pos_] == '+') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = Json::kNumber;
    out.number = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace dlion::obs::jsonlite

#include "obs/critical_path.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/json_util.h"

namespace dlion::obs {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

std::string fmt(double v) {
  if (std::isnan(v)) return "null";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Lane classification parsed from the track's (process, thread) names.
struct Lane {
  enum Kind { kWorker, kLink, kOther } kind = kOther;
  std::size_t worker = kNone;            // kWorker
  std::size_t from = kNone, to = kNone;  // kLink
  std::string name;                      // thread name ("worker 3", ...)
  std::vector<std::size_t> by_t1;        // span indices sorted by (t1,t0,i)
  std::vector<std::size_t> by_t0;        // span indices sorted by (t0,i)
};

Lane::Kind classify(const std::string& process, const std::string& thread,
                    std::size_t* worker, std::size_t* from, std::size_t* to) {
  if (process == "workers") {
    unsigned w = 0;
    if (std::sscanf(thread.c_str(), "worker %u", &w) == 1) {
      *worker = w;
      return Lane::kWorker;
    }
  }
  if (process == "network") {
    unsigned a = 0, b = 0;
    if (std::sscanf(thread.c_str(), "link %u->%u", &a, &b) == 2) {
      *from = a;
      *to = b;
      return Lane::kLink;
    }
  }
  return Lane::kOther;
}

PathCategory body_category(const std::string& span_name, Lane::Kind kind) {
  if (span_name == "compute" || span_name == "apply") {
    return PathCategory::kCompute;
  }
  if (span_name == "tx") return PathCategory::kTransfer;
  if (span_name == "stall") return PathCategory::kStall;
  if (span_name == "dkt_pull") return PathCategory::kDkt;
  return kind == Lane::kLink ? PathCategory::kTransfer
                             : PathCategory::kCompute;
}

/// Tie-break priority when candidate predecessors finish simultaneously:
/// real work beats waiting.
int span_priority(const std::string& name) {
  if (name == "tx" || name == "compute" || name == "apply") return 3;
  if (name == "dkt_pull") return 2;
  if (name == "stall") return 1;
  return 0;
}

struct Candidate {
  std::size_t span = kNone;
  bool causal = false;  ///< reached via a flow link (not program order)
};

}  // namespace

const char* path_category_name(PathCategory c) {
  switch (c) {
    case PathCategory::kCompute: return "compute";
    case PathCategory::kTransfer: return "transfer";
    case PathCategory::kQueue: return "queue";
    case PathCategory::kStall: return "stall";
    case PathCategory::kDkt: return "dkt";
  }
  return "?";
}

double LaneAttribution::total() const {
  double s = 0.0;
  for (double v : seconds) s += v;
  return s;
}

double EpochWindow::total() const {
  double s = 0.0;
  for (double v : seconds) s += v;
  return s;
}

double EpochWindow::fraction(PathCategory c) const {
  const double t = total();
  return t > 0.0 ? seconds[static_cast<std::size_t>(c)] / t : 0.0;
}

double CriticalPathReport::category_fraction(PathCategory c) const {
  const double t = total_seconds();
  return t > 0.0 ? category_seconds[static_cast<std::size_t>(c)] / t : 0.0;
}

CriticalPathReport compute_critical_path(const Tracer& tracer,
                                         const CriticalPathOptions& options) {
  CriticalPathReport report;
  const std::vector<Tracer::Span>& spans = tracer.spans();
  if (spans.empty()) return report;

  // --- Lanes ---
  const std::size_t n_tracks = tracer.track_count();
  std::vector<Lane> lanes(n_tracks + 1);  // index = TrackId (1-based)
  for (TrackId id = 1; id <= n_tracks; ++id) {
    Lane& lane = lanes[id];
    lane.name = tracer.track_thread(id);
    lane.kind = classify(tracer.track_process(id), lane.name, &lane.worker,
                         &lane.from, &lane.to);
  }
  // Sanitize at the ingestion boundary: a trace loaded from disk (or a
  // tracer driven by buggy instrumentation) can hold spans that run
  // backwards, carry non-finite endpoints, or reference tracks that don't
  // exist. Such spans cannot be placed on any causal path — admitting one
  // would let t_end precede t_start in a "valid" report (found by
  // fuzz/fuzz_critical_path.cpp; regression seed
  // fuzz/corpus/critical_path/inverted_times). They are skipped wholesale:
  // the analysis sees only well-formed spans.
  std::vector<std::size_t> usable;
  usable.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Tracer::Span& s = spans[i];
    if (!(s.t1 >= s.t0) || !std::isfinite(s.t0) || !std::isfinite(s.t1)) {
      continue;  // backwards or NaN/inf span: corrupt
    }
    if (s.track < 1 || s.track > n_tracks) continue;  // unknown lane
    usable.push_back(i);
    lanes[s.track].by_t1.push_back(i);
    lanes[s.track].by_t0.push_back(i);
  }
  if (usable.empty()) return report;  // nothing well-formed: invalid
  for (Lane& lane : lanes) {
    std::sort(lane.by_t1.begin(), lane.by_t1.end(),
              [&spans](std::size_t a, std::size_t b) {
                if (spans[a].t1 != spans[b].t1) return spans[a].t1 < spans[b].t1;
                if (spans[a].t0 != spans[b].t0) return spans[a].t0 < spans[b].t0;
                return a < b;
              });
    std::sort(lane.by_t0.begin(), lane.by_t0.end(),
              [&spans](std::size_t a, std::size_t b) {
                if (spans[a].t0 != spans[b].t0) return spans[a].t0 < spans[b].t0;
                return a < b;
              });
  }

  // --- Flow indices ---
  // Per flow id: where it started, stepped (the link tx), and ended.
  struct FlowPoints {
    TrackId start_track = 0;
    double start_t = 0.0;
    TrackId step_track = 0;
    double step_t = 0.0;
    bool has_start = false, has_step = false;
  };
  std::map<std::uint64_t, FlowPoints> flow_points;
  // Delivery points: (receiver track, t) -> flow ids ending there.
  std::map<std::pair<TrackId, double>, std::vector<std::uint64_t>> ends_at;
  // Transmission points: (link track, t) -> flow ids stepping there.
  std::map<std::pair<TrackId, double>, std::vector<std::uint64_t>> steps_at;
  for (const Tracer::Flow& f : tracer.flows()) {
    FlowPoints& p = flow_points[f.id];
    switch (f.phase) {
      case Tracer::FlowPhase::kStart:
        if (!p.has_start) {
          p.start_track = f.track;
          p.start_t = f.t;
          p.has_start = true;
        }
        break;
      case Tracer::FlowPhase::kStep:
        if (!p.has_step) {
          p.step_track = f.track;
          p.step_t = f.t;
          p.has_step = true;
        }
        steps_at[{f.track, f.t}].push_back(f.id);
        break;
      case Tracer::FlowPhase::kEnd:
        ends_at[{f.track, f.t}].push_back(f.id);
        break;
    }
  }

  // Latest span on `track` finishing at or before `t` (program order).
  auto lane_pred = [&](TrackId track, double t) -> std::size_t {
    const Lane& lane = lanes[track];
    // Last index in by_t1 with t1 <= t.
    std::size_t lo = 0, hi = lane.by_t1.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (spans[lane.by_t1[mid]].t1 <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo == 0) return kNone;
    // Among equal-t1 spans, prefer real work over waiting (then recording
    // order) so ties break deterministically.
    std::size_t best = lane.by_t1[lo - 1];
    const double t1 = spans[best].t1;
    for (std::size_t k = lo; k-- > 0;) {
      const std::size_t cand = lane.by_t1[k];
      if (spans[cand].t1 != t1) break;
      if (span_priority(spans[cand].name) > span_priority(spans[best].name) ||
          (span_priority(spans[cand].name) ==
               span_priority(spans[best].name) &&
           cand > best)) {
        best = cand;
      }
    }
    return best;
  };

  // The tx span starting exactly at (track, t) — the slice a flow step
  // points into.
  auto tx_at = [&](TrackId track, double t) -> std::size_t {
    const Lane& lane = lanes[track];
    std::size_t lo = 0, hi = lane.by_t0.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (spans[lane.by_t0[mid]].t0 < t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < lane.by_t0.size() && spans[lane.by_t0[lo]].t0 == t) {
      return lane.by_t0[lo];
    }
    return kNone;
  };

  // --- Terminal node: the last span to finish (prefer worker lanes, then
  // later start, then recording order). ---
  std::size_t terminal = usable.front();
  for (const std::size_t i : usable) {
    const Tracer::Span& a = spans[i];
    const Tracer::Span& b = spans[terminal];
    const bool a_worker = lanes[a.track].kind == Lane::kWorker;
    const bool b_worker = lanes[b.track].kind == Lane::kWorker;
    if (a.t1 != b.t1 ? a.t1 > b.t1
                     : (a_worker != b_worker ? a_worker
                                             : (a.t0 != b.t0 ? a.t0 > b.t0
                                                             : i > terminal))) {
      terminal = i;
    }
  }

  // --- Backward walk ---
  std::vector<std::size_t> chain;
  std::size_t cur = terminal;
  const std::size_t guard = spans.size() + tracer.flows().size() + 8;
  for (std::size_t step = 0; step < guard; ++step) {
    chain.push_back(cur);
    const Tracer::Span& x = spans[cur];

    // A usable predecessor finished by the time x started and is not a
    // same-instant zero-duration twin (two deliveries at one timestamp
    // must not make the walk ping-pong between their apply spans).
    auto acceptable = [&](std::size_t p) {
      return p != kNone && p != cur && spans[p].t1 <= x.t0 &&
             !(spans[p].t0 == x.t0 && spans[p].t1 == x.t1);
    };

    std::vector<Candidate> cands;
    // 1. Program-order predecessor on the same lane.
    if (std::size_t p = lane_pred(x.track, x.t0); acceptable(p)) {
      cands.push_back(Candidate{p, false});
    }
    // 2. Causal predecessors: flows delivered exactly at this span's start
    //    (the fabric records flow-end just before the handler runs, so an
    //    "apply" span — or a compute span the delivery unblocked — starts
    //    at the delivery timestamp). Each maps to the link tx slice that
    //    carried it.
    if (auto it = ends_at.find({x.track, x.t0}); it != ends_at.end()) {
      for (std::uint64_t id : it->second) {
        auto fp = flow_points.find(id);
        if (fp == flow_points.end() || !fp->second.has_step) continue;
        const std::size_t tx =
            tx_at(fp->second.step_track, fp->second.step_t);
        if (acceptable(tx)) cands.push_back(Candidate{tx, true});
      }
    }
    // 3. A tx slice's causal predecessor: the sender-side span enclosing
    //    the flow start (program-order latest at the transmit instant).
    if (lanes[x.track].kind == Lane::kLink) {
      if (auto it = steps_at.find({x.track, x.t0}); it != steps_at.end()) {
        for (std::uint64_t id : it->second) {
          auto fp = flow_points.find(id);
          if (fp == flow_points.end() || !fp->second.has_start) continue;
          const std::size_t p =
              lane_pred(fp->second.start_track, fp->second.start_t);
          if (acceptable(p)) cands.push_back(Candidate{p, true});
        }
      }
    }
    if (cands.empty()) break;

    // A stall ends *because* something arrived: when a causal candidate
    // exists, waiting never wins over the transfer that released it.
    bool any_causal = false;
    for (const Candidate& c : cands) any_causal |= c.causal;
    std::size_t best = kNone;
    for (const Candidate& c : cands) {
      if (any_causal && !c.causal && spans[c.span].name == "stall") continue;
      if (best == kNone) {
        best = c.span;
        continue;
      }
      const Tracer::Span& a = spans[c.span];
      const Tracer::Span& b = spans[best];
      if (a.t1 != b.t1
              ? a.t1 > b.t1
              : (span_priority(a.name) != span_priority(b.name)
                     ? span_priority(a.name) > span_priority(b.name)
                     : c.span > best)) {
        best = c.span;
      }
    }
    if (best == kNone) break;
    cur = best;
  }
  std::reverse(chain.begin(), chain.end());

  // --- Segments (contiguous: they tile [t_start, t_end] exactly) ---
  report.valid = true;
  report.t_start = spans[chain.front()].t0;
  report.t_end = spans[chain.back()].t1;

  auto push_segment = [&report](double t0, double t1, PathCategory cat,
                                const std::string& lane,
                                const std::string& name) {
    if (t1 <= t0) return;
    report.segments.push_back(PathSegment{t0, t1, cat, lane, name});
  };

  // Does [g0, g1] intersect a stall span on this lane?
  auto gap_is_stall = [&](TrackId track, double g0, double g1) {
    for (std::size_t i : lanes[track].by_t1) {
      const Tracer::Span& s = spans[i];
      if (s.name == "stall" && s.t0 < g1 && s.t1 > g0) return true;
    }
    return false;
  };

  for (std::size_t k = 0; k < chain.size(); ++k) {
    const Tracer::Span& x = spans[chain[k]];
    const Lane& xl = lanes[x.track];
    if (k > 0) {
      const Tracer::Span& p = spans[chain[k - 1]];
      const Lane& pl = lanes[p.track];
      if (x.t0 > p.t1) {
        // The causally-unexplained gap between the predecessor's finish
        // and this node's start.
        if (pl.kind == Lane::kLink && xl.kind == Lane::kWorker) {
          // Transmission done, handler not yet run: propagation latency.
          push_segment(p.t1, x.t0, PathCategory::kTransfer, pl.name,
                       "(latency)");
        } else if (xl.kind == Lane::kLink) {
          // Waiting for the link (FIFO queue / fair-share backlog).
          push_segment(p.t1, x.t0, PathCategory::kQueue, xl.name, "(queue)");
        } else if (gap_is_stall(x.track, p.t1, x.t0)) {
          push_segment(p.t1, x.t0, PathCategory::kStall, xl.name, "(stall)");
        } else {
          push_segment(p.t1, x.t0, PathCategory::kQueue, xl.name, "(queue)");
        }
      }
    }
    push_segment(x.t0, x.t1, body_category(x.name, xl.kind), xl.name, x.name);
  }

  // --- Attribution ---
  std::map<std::string, LaneAttribution> worker_attr, link_attr;
  for (const PathSegment& s : report.segments) {
    const double d = s.seconds();
    report.category_seconds[static_cast<std::size_t>(s.category)] += d;
    const bool is_link = s.lane.compare(0, 5, "link ") == 0;
    auto& attr = is_link ? link_attr : worker_attr;
    LaneAttribution& la = attr[s.lane];
    la.lane = s.lane;
    la.seconds[static_cast<std::size_t>(s.category)] += d;
  }
  auto flatten = [](std::map<std::string, LaneAttribution>& m) {
    std::vector<LaneAttribution> v;
    v.reserve(m.size());
    for (auto& [name, la] : m) v.push_back(std::move(la));
    std::sort(v.begin(), v.end(),
              [](const LaneAttribution& a, const LaneAttribution& b) {
                const double ta = a.total(), tb = b.total();
                if (ta != tb) return ta > tb;
                return a.lane < b.lane;
              });
    return v;
  };
  report.workers = flatten(worker_attr);
  report.links = flatten(link_attr);
  if (!report.workers.empty()) report.straggler = report.workers.front().lane;
  double best_link = -1.0;
  for (const LaneAttribution& la : report.links) {
    const double tq =
        la.seconds[static_cast<std::size_t>(PathCategory::kTransfer)] +
        la.seconds[static_cast<std::size_t>(PathCategory::kQueue)];
    if (tq > best_link) {
      best_link = tq;
      report.bottleneck_link = la.lane;
    }
  }

  // --- Epoch windows ---
  if (options.epoch_seconds > 0.0 && report.t_end > report.t_start) {
    const double e = options.epoch_seconds;
    const double w0 = std::floor(report.t_start / e) * e;
    for (double t = w0; t < report.t_end; t += e) {
      EpochWindow w;
      w.t0 = std::max(t, report.t_start);
      w.t1 = std::min(t + e, report.t_end);
      report.epochs.push_back(w);
    }
    for (const PathSegment& s : report.segments) {
      for (EpochWindow& w : report.epochs) {
        const double o0 = std::max(s.t0, w.t0);
        const double o1 = std::min(s.t1, w.t1);
        if (o1 > o0) {
          w.seconds[static_cast<std::size_t>(s.category)] += o1 - o0;
        }
      }
    }
  }
  return report;
}

std::string CriticalPathReport::to_json() const {
  std::string out = "{";
  out += "\"valid\":" + std::string(valid ? "true" : "false");
  out += ",\"t_start\":" + fmt(t_start);
  out += ",\"t_end\":" + fmt(t_end);
  out += ",\"total_seconds\":" + fmt(total_seconds());
  out += ",\"categories\":{";
  for (std::size_t c = 0; c < kNumPathCategories; ++c) {
    if (c != 0) out += ",";
    out += "\"" + std::string(path_category_name(
                      static_cast<PathCategory>(c))) +
           "\":{\"seconds\":" + fmt(category_seconds[c]) + ",\"fraction\":" +
           fmt(category_fraction(static_cast<PathCategory>(c))) + "}";
  }
  out += "}";
  auto lanes_json = [](const std::vector<LaneAttribution>& lanes) {
    std::string s = "[";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (i != 0) s += ",";
      s += "{\"lane\":\"" + json_escape(lanes[i].lane) + "\"";
      for (std::size_t c = 0; c < kNumPathCategories; ++c) {
        s += ",\"" + std::string(path_category_name(
                         static_cast<PathCategory>(c))) +
             "\":" + fmt(lanes[i].seconds[c]);
      }
      s += ",\"total\":" + fmt(lanes[i].total()) + "}";
    }
    return s + "]";
  };
  out += ",\"workers\":" + lanes_json(workers);
  out += ",\"links\":" + lanes_json(links);
  out += ",\"straggler\":\"" + json_escape(straggler) + "\"";
  out += ",\"bottleneck_link\":\"" + json_escape(bottleneck_link) + "\"";
  out += ",\"epochs\":[";
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    if (i != 0) out += ",";
    const EpochWindow& w = epochs[i];
    out += "{\"t0\":" + fmt(w.t0) + ",\"t1\":" + fmt(w.t1);
    out += ",\"total\":" + fmt(w.total());
    for (std::size_t c = 0; c < kNumPathCategories; ++c) {
      out += ",\"" + std::string(path_category_name(
                         static_cast<PathCategory>(c))) +
             "\":" + fmt(w.seconds[c]);
    }
    out += ",\"fractions\":{";
    for (std::size_t c = 0; c < kNumPathCategories; ++c) {
      if (c != 0) out += ",";
      out += "\"" + std::string(path_category_name(
                        static_cast<PathCategory>(c))) +
             "\":" + fmt(w.fraction(static_cast<PathCategory>(c)));
    }
    out += "}}";
  }
  out += "]";
  out += ",\"segments\":[";
  for (std::size_t i = 0; i < segments.size(); ++i) {
    if (i != 0) out += ",";
    const PathSegment& s = segments[i];
    out += "{\"t0\":" + fmt(s.t0) + ",\"t1\":" + fmt(s.t1);
    out += ",\"category\":\"" +
           std::string(path_category_name(s.category)) + "\"";
    out += ",\"lane\":\"" + json_escape(s.lane) + "\"";
    out += ",\"name\":\"" + json_escape(s.span_name) + "\"}";
  }
  out += "]}";
  return out;
}

std::string CriticalPathReport::attribution_table() const {
  if (!valid) return "critical path: (no spans recorded)\n";
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "critical path: %.3f s  (t = %.3f .. %.3f, %zu segments)\n",
                total_seconds(), t_start, t_end, segments.size());
  out += buf;
  for (std::size_t c = 0; c < kNumPathCategories; ++c) {
    std::snprintf(buf, sizeof(buf), "  %-9s %10.3f s  %5.1f%%\n",
                  path_category_name(static_cast<PathCategory>(c)),
                  category_seconds[c],
                  100.0 * category_fraction(static_cast<PathCategory>(c)));
    out += buf;
  }
  if (!straggler.empty()) {
    double s = 0.0;
    for (const LaneAttribution& la : workers) {
      if (la.lane == straggler) s = la.total();
    }
    std::snprintf(buf, sizeof(buf), "straggler: %s (%.3f s on path)\n",
                  straggler.c_str(), s);
    out += buf;
  }
  if (!bottleneck_link.empty()) {
    double tx = 0.0, q = 0.0;
    for (const LaneAttribution& la : links) {
      if (la.lane == bottleneck_link) {
        tx = la.seconds[static_cast<std::size_t>(PathCategory::kTransfer)];
        q = la.seconds[static_cast<std::size_t>(PathCategory::kQueue)];
      }
    }
    std::snprintf(buf, sizeof(buf),
                  "bottleneck link: %s (%.3f s transfer + %.3f s queue)\n",
                  bottleneck_link.c_str(), tx, q);
    out += buf;
  }
  auto table = [&out, &buf](const char* title,
                            const std::vector<LaneAttribution>& lanes) {
    if (lanes.empty()) return;
    out += "\n";
    out += title;
    out += "\n  lane            compute   transfer      queue      stall"
           "        dkt      total\n";
    for (const LaneAttribution& la : lanes) {
      std::snprintf(buf, sizeof(buf),
                    "  %-12s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    la.lane.c_str(), la.seconds[0], la.seconds[1],
                    la.seconds[2], la.seconds[3], la.seconds[4], la.total());
      out += buf;
    }
  };
  table("per-worker on-path seconds:", workers);
  table("per-link on-path seconds:", links);
  if (!epochs.empty()) {
    out += "\nper-epoch category fractions:\n"
           "  window                 compute transfer    queue    stall"
           "      dkt\n";
    for (const EpochWindow& w : epochs) {
      std::snprintf(buf, sizeof(buf),
                    "  [%8.1f, %8.1f)  %7.3f  %7.3f  %7.3f  %7.3f  %7.3f\n",
                    w.t0, w.t1, w.fraction(PathCategory::kCompute),
                    w.fraction(PathCategory::kTransfer),
                    w.fraction(PathCategory::kQueue),
                    w.fraction(PathCategory::kStall),
                    w.fraction(PathCategory::kDkt));
      out += buf;
    }
  }
  return out;
}

CriticalPathSummary summary_of(const CriticalPathReport& report) {
  CriticalPathSummary s;
  s.computed = report.valid;
  s.total_s = report.total_seconds();
  s.category_s = report.category_seconds;
  s.straggler = report.straggler;
  s.bottleneck_link = report.bottleneck_link;
  return s;
}

}  // namespace dlion::obs

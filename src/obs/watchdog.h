// Online run watchdog: deterministic health detectors over simulated time.
//
// The watchdog is *fed* by the instrumented components (worker iterations,
// loss values, staleness readings, fabric dead letters, network fault
// drops) from inside their `obs::on()` branches, so it costs nothing when
// observability is compiled out or disabled, and it evaluates its detectors
// lazily on those feeds — it never schedules simulation events and reads
// only the timestamps it is handed. A fired detector *latches*: each
// (detector, worker) pair reports at most once per run, as a structured
// WatchdogEvent (and, when a tracer is attached, an instant on a
// "watchdog / alerts" track).
//
// Determinism contract: feeding the watchdog never changes a run — with one
// explicit, opt-in exception. When `abort_on_fire` is set the first fired
// event invokes the abort hook (run_experiment wires it to
// sim::Engine::request_stop()), ending the run early. That is a declared
// policy choice in the RunSpec, not a side effect of observing.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace dlion::obs {

struct WatchdogConfig {
  /// No-progress: fires when no worker finishes an iteration for this many
  /// simulated seconds (checked lazily on every feed and at finalize).
  double no_progress_window_s = 30.0;
  /// Divergent loss: fires on a NaN/inf loss, or when a worker's loss
  /// exceeds `loss_divergence_factor` x its first observed loss.
  double loss_divergence_factor = 10.0;
  /// Dead-letter spike: >= `dead_letter_limit` fabric dead letters inside a
  /// sliding `dead_letter_window_s` window.
  double dead_letter_window_s = 10.0;
  std::uint64_t dead_letter_limit = 50;
  /// Drop spike: >= `drop_limit` network fault drops inside a sliding
  /// `drop_window_s` window.
  double drop_window_s = 10.0;
  std::uint64_t drop_limit = 200;
  /// Staleness breach: a worker starts an iteration >= this many iterations
  /// ahead of its slowest live peer. 0 disables the detector.
  double staleness_limit = 0.0;
  /// Abort the run on the first fired detector (see header comment).
  bool abort_on_fire = false;
};

/// One fired detector, latched for the rest of the run.
struct WatchdogEvent {
  std::string detector;  ///< "no_progress", "divergent_loss", ...
  double t = 0.0;        ///< simulated time of the firing
  /// Worker the event is attributed to; kClusterWide for global detectors.
  std::size_t worker = kClusterWide;
  double value = 0.0;    ///< detector-specific reading (loss, count, gap)
  std::string detail;    ///< human-readable one-liner

  static constexpr std::size_t kClusterWide = static_cast<std::size_t>(-1);
};

class Watchdog {
 public:
  Watchdog(WatchdogConfig config, std::size_t n_workers);
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // --- Feeds (call from inside obs::on() branches only) ---
  void on_iteration(std::size_t worker, double t);
  void on_loss(std::size_t worker, double t, double loss);
  void on_staleness(std::size_t worker, double t, double staleness);
  void on_dead_letter(double t);
  void on_drop(double t);
  /// End-of-run sweep: closes the no-progress check over the final gap.
  void finalize(double t_end);

  /// True once any detector has fired.
  bool degraded() const { return !events_.empty(); }
  /// True when a fired detector aborted the run (abort_on_fire policy).
  bool aborted() const { return aborted_; }
  const std::vector<WatchdogEvent>& events() const { return events_; }
  const WatchdogConfig& config() const { return config_; }

  /// Abort hook invoked on the first firing when abort_on_fire is set
  /// (run_experiment wires this to Engine::request_stop).
  void set_abort_hook(std::function<void()> hook) {
    abort_hook_ = std::move(hook);
  }
  /// Optional tracer: fired events also become instants on a
  /// "watchdog / alerts" track (non-owning; nullptr detaches).
  void set_tracer(Tracer* tracer);

 private:
  /// Latch + record one firing (idempotent per detector x worker).
  void fire(const char* detector, double t, std::size_t worker, double value,
            std::string detail);
  bool latched(const char* detector, std::size_t worker) const;
  void check_progress(double t);

  WatchdogConfig config_;
  std::size_t n_;
  double last_progress_t_ = 0.0;   ///< latest iteration finish (or start)
  bool saw_progress_ = false;
  std::vector<double> first_loss_;     ///< per-worker baseline, NaN = unset
  std::deque<double> dead_letter_ts_;  ///< sliding-window timestamps
  std::deque<double> drop_ts_;
  std::vector<WatchdogEvent> events_;
  bool aborted_ = false;
  std::function<void()> abort_hook_;
  Tracer* tracer_ = nullptr;  // non-owning, optional
  TrackId track_ = 0;
};

}  // namespace dlion::obs

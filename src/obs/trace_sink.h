// Streaming trace sinks: consume admitted Tracer events as they are
// recorded (spans as they close) instead of letting them accumulate in the
// tracer's vectors — the memory story for 1,000-worker runs (DESIGN.md
// "Observability at scale").
//
//  - ChromeStreamSink: incremental Chrome trace-event JSON writer. Emits
//    the {"traceEvents":[ header up front, one event object per callback
//    (track metadata interleaved as tracks appear, which Perfetto and
//    chrome://tracing both accept), and the closing ]} on finish(). Event
//    records are built by obs/trace_format.h, so a streamed event is
//    byte-identical to its batch-exported twin. Keeps a running FNV-1a
//    checksum of everything written — the determinism fingerprint the
//    scale tests compare across DLION_THREADS values.
//  - RingSink: bounded ring of the last `capacity` formatted events (plus
//    the full track table, which is O(tracks), not O(events)) for
//    post-mortem export of "what just happened".
//  - TeeSink: fan-out to two sinks (e.g. stream to disk AND keep a ring).
//
// Sinks are driven synchronously from the recording thread; like the
// tracer itself they never read wall clocks or draw randomness.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/tracer.h"

namespace dlion::obs {

/// Receiver for admitted trace events. All callbacks fire in recording
/// order (deterministic for a deterministic run).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// A new track was registered (or replayed on attach). `id` is 1-based
  /// and dense; pid/tid match the batch exporter's numbering.
  virtual void on_track(TrackId id, std::uint32_t pid, std::uint32_t tid,
                        const std::string& process,
                        const std::string& thread) = 0;
  virtual void on_span(const Tracer::Span& s) = 0;
  virtual void on_instant(const Tracer::Instant& i) = 0;
  virtual void on_sample(const Tracer::Sample& c) = 0;
  virtual void on_flow(const Tracer::Flow& f) = 0;
  /// The run is over: flush/close the output. Must be idempotent.
  virtual void finish() {}
};

/// Incremental Chrome-JSON writer. The output is a valid trace file once
/// finish() has run (and most viewers tolerate a truncated tail, so even
/// a crashed run's stream loads).
class ChromeStreamSink final : public TraceSink {
 public:
  /// Stream to a caller-owned ostream (kept by reference; must outlive
  /// the sink).
  explicit ChromeStreamSink(std::ostream& out);
  /// Stream to a file (owned; truncated). Throws std::runtime_error when
  /// the file cannot be opened.
  explicit ChromeStreamSink(const std::string& path);
  ~ChromeStreamSink() override;

  void on_track(TrackId id, std::uint32_t pid, std::uint32_t tid,
                const std::string& process,
                const std::string& thread) override;
  void on_span(const Tracer::Span& s) override;
  void on_instant(const Tracer::Instant& i) override;
  void on_sample(const Tracer::Sample& c) override;
  void on_flow(const Tracer::Flow& f) override;
  void finish() override;

  std::uint64_t events_written() const { return events_; }
  std::uint64_t bytes_written() const { return bytes_; }
  /// FNV-1a 64 over every byte emitted (header and separators included).
  std::uint64_t checksum() const { return hash_; }

 private:
  void emit(const std::string& event_json);
  std::pair<std::uint32_t, std::uint32_t> ids(TrackId id) const;

  std::ofstream file_;   // engaged only for the path constructor
  std::ostream* out_;    // points at file_ or the caller's stream
  bool first_ = true;
  bool finished_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t hash_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tracks_;  // id-1 -> (pid,tid)
  std::vector<std::uint32_t> pids_named_;
  /// Driven synchronously from the recording thread (single-threaded by
  /// contract; checked in debug/sanitize builds).
  common::ThreadAffinity affinity_;
};

/// Bounded in-memory ring of the last `capacity` events (formatted JSON
/// records). Memory is O(capacity + tracks) no matter how long the run.
class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity);

  void on_track(TrackId id, std::uint32_t pid, std::uint32_t tid,
                const std::string& process,
                const std::string& thread) override;
  void on_span(const Tracer::Span& s) override;
  void on_instant(const Tracer::Instant& i) override;
  void on_sample(const Tracer::Sample& c) override;
  void on_flow(const Tracer::Flow& f) override;

  std::size_t capacity() const { return cap_; }
  /// Events currently held (<= capacity).
  std::size_t size() const { return ring_.size(); }
  std::uint64_t total_events() const { return total_; }
  /// Events evicted to stay within capacity.
  std::uint64_t dropped() const {
    return total_ - static_cast<std::uint64_t>(ring_.size());
  }

  /// Chrome trace JSON of the current window: full track metadata, then
  /// the ring's events oldest-first.
  std::string chrome_json() const;

 private:
  void push(std::string event_json);
  std::pair<std::uint32_t, std::uint32_t> ids(TrackId id) const;

  std::size_t cap_;
  std::vector<std::string> ring_;  // circular once full; next_ = oldest
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::vector<std::string> meta_;  // process/thread metadata records
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tracks_;
  std::vector<std::uint32_t> pids_named_;
  common::ThreadAffinity affinity_;  // single-threaded by contract
};

/// Forwards every callback to two sinks (both non-owning, either may be
/// nullptr).
class TeeSink final : public TraceSink {
 public:
  TeeSink(TraceSink* a, TraceSink* b) : a_(a), b_(b) {}

  void on_track(TrackId id, std::uint32_t pid, std::uint32_t tid,
                const std::string& process,
                const std::string& thread) override {
    if (a_ != nullptr) a_->on_track(id, pid, tid, process, thread);
    if (b_ != nullptr) b_->on_track(id, pid, tid, process, thread);
  }
  void on_span(const Tracer::Span& s) override {
    if (a_ != nullptr) a_->on_span(s);
    if (b_ != nullptr) b_->on_span(s);
  }
  void on_instant(const Tracer::Instant& i) override {
    if (a_ != nullptr) a_->on_instant(i);
    if (b_ != nullptr) b_->on_instant(i);
  }
  void on_sample(const Tracer::Sample& c) override {
    if (a_ != nullptr) a_->on_sample(c);
    if (b_ != nullptr) b_->on_sample(c);
  }
  void on_flow(const Tracer::Flow& f) override {
    if (a_ != nullptr) a_->on_flow(f);
    if (b_ != nullptr) b_->on_flow(f);
  }
  void finish() override {
    if (a_ != nullptr) a_->finish();
    if (b_ != nullptr) b_->finish();
  }

 private:
  TraceSink* a_;
  TraceSink* b_;
};

}  // namespace dlion::obs

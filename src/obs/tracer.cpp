#include "obs/tracer.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/json_util.h"

namespace dlion::obs {

namespace {

/// Microsecond timestamp with nanosecond resolution, fixed format so
/// exports are byte-stable across platforms.
std::string fmt_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string fmt_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_args(std::string& out, const std::vector<Tracer::Arg>& args) {
  out += ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(args[i].key) + "\":" + fmt_value(args[i].value);
  }
  out += "}";
}

}  // namespace

TrackId Tracer::track(const std::string& process, const std::string& thread) {
  const auto key = std::make_pair(process, thread);
  auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;

  auto pid_it = pids_.find(process);
  if (pid_it == pids_.end()) {
    pid_it = pids_.emplace(process,
                           static_cast<std::uint32_t>(pids_.size() + 1))
                 .first;
  }
  Track t;
  t.pid = pid_it->second;
  t.tid = static_cast<std::uint32_t>(tracks_.size() + 1);
  t.process = process;
  t.thread = thread;
  tracks_.push_back(std::move(t));
  open_.emplace_back();
  const TrackId id = static_cast<TrackId>(tracks_.size());  // 1-based
  track_index_.emplace(key, id);
  return id;
}

void Tracer::begin(TrackId track, std::string name, double t,
                   std::vector<Arg> args) {
  if (track == 0 || track > tracks_.size()) return;
  open_[track - 1].push_back(Open{std::move(name), t, std::move(args)});
}

void Tracer::end(TrackId track, double t) {
  if (track == 0 || track > tracks_.size()) return;
  auto& stack = open_[track - 1];
  if (stack.empty()) return;  // unmatched end: ignore
  Open span = std::move(stack.back());
  stack.pop_back();
  reserve_growth(spans_);
  spans_.push_back(
      Span{track, std::move(span.name), span.t0, t, std::move(span.args)});
}

void Tracer::complete(TrackId track, std::string name, double t0, double t1,
                      std::vector<Arg> args) {
  if (track == 0 || track > tracks_.size()) return;
  reserve_growth(spans_);
  spans_.push_back(Span{track, std::move(name), t0, t1, std::move(args)});
}

void Tracer::instant(TrackId track, std::string name, double t,
                     std::vector<Arg> args) {
  if (track == 0 || track > tracks_.size()) return;
  reserve_growth(instants_);
  instants_.push_back(Instant{track, std::move(name), t, std::move(args)});
}

void Tracer::counter(TrackId track, std::string name, double t, double value) {
  if (track == 0 || track > tracks_.size()) return;
  reserve_growth(samples_);
  samples_.push_back(Sample{track, std::move(name), t, value});
}

void Tracer::flow(TrackId track, FlowPhase phase, std::string name, double t,
                  std::uint64_t id) {
  if (track == 0 || track > tracks_.size() || id == 0) return;
  reserve_growth(flows_);
  flows_.push_back(Flow{track, phase, std::move(name), t, id});
}

const std::string& Tracer::track_process(TrackId id) const {
  static const std::string kEmpty;
  if (id == 0 || id > tracks_.size()) return kEmpty;
  return tracks_[id - 1].process;
}

const std::string& Tracer::track_thread(TrackId id) const {
  static const std::string kEmpty;
  if (id == 0 || id > tracks_.size()) return kEmpty;
  return tracks_[id - 1].thread;
}

std::size_t Tracer::open_spans() const {
  std::size_t n = 0;
  for (const auto& stack : open_) n += stack.size();
  return n;
}

void Tracer::clear() {
  for (auto& stack : open_) stack.clear();
  spans_.clear();
  instants_.clear();
  samples_.clear();
  flows_.clear();
}

std::string Tracer::chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: process names (one per pid), then thread names per track.
  for (const auto& [process, pid] : pids_) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           json_escape(process) + "\"}}";
  }
  for (const Track& t : tracks_) {
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
           ",\"args\":{\"name\":\"" + json_escape(t.thread) + "\"}}";
  }

  auto ids = [this](TrackId id) {
    const Track& t = tracks_[id - 1];
    return ",\"pid\":" + std::to_string(t.pid) +
           ",\"tid\":" + std::to_string(t.tid);
  };

  for (const Span& s : spans_) {
    sep();
    out += "{\"ph\":\"X\",\"name\":\"" + json_escape(s.name) +
           "\",\"ts\":" + fmt_us(s.t0) +
           ",\"dur\":" + fmt_us(s.t1 - s.t0) + ids(s.track);
    append_args(out, s.args);
    out += "}";
  }
  for (const Flow& f : flows_) {
    sep();
    const char* ph = f.phase == FlowPhase::kStart
                         ? "s"
                         : f.phase == FlowPhase::kStep ? "t" : "f";
    // The 64-bit flow id goes out as a hex string: JSON numbers are doubles
    // in most viewers and would silently round ids above 2^53.
    char idbuf[24];
    std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                  static_cast<unsigned long long>(f.id));
    out += std::string("{\"ph\":\"") + ph + "\",\"cat\":\"flow\",\"name\":\"" +
           json_escape(f.name) + "\",\"id\":\"" + idbuf +
           "\",\"ts\":" + fmt_us(f.t) + ids(f.track);
    // Bind the finish point to its enclosing slice (Chrome flow semantics).
    if (f.phase == FlowPhase::kEnd) out += ",\"bp\":\"e\"";
    out += "}";
  }
  for (const Instant& i : instants_) {
    sep();
    out += "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" + json_escape(i.name) +
           "\",\"ts\":" + fmt_us(i.t) + ids(i.track);
    append_args(out, i.args);
    out += "}";
  }
  for (const Sample& c : samples_) {
    sep();
    out += "{\"ph\":\"C\",\"name\":\"" + json_escape(c.name) +
           "\",\"ts\":" + fmt_us(c.t) + ids(c.track) +
           ",\"args\":{\"value\":" + fmt_value(c.value) + "}}";
  }
  out += "\n]}";
  return out;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  out << chrome_json();
}

}  // namespace dlion::obs

#include "obs/tracer.h"

#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/json_util.h"
#include "obs/trace_format.h"
#include "obs/trace_sink.h"

namespace dlion::obs {

namespace trace_format {

std::string fmt_us(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

std::string fmt_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

namespace {

void append_args(std::string& out, const std::vector<Tracer::Arg>& args) {
  out += ",\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(args[i].key) + "\":" + fmt_value(args[i].value);
  }
  out += "}";
}

std::string ids(std::uint32_t pid, std::uint32_t tid) {
  return ",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid);
}

}  // namespace

std::string process_meta(std::uint32_t pid, const std::string& process) {
  return "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
         json_escape(process) + "\"}}";
}

std::string thread_meta(std::uint32_t pid, std::uint32_t tid,
                        const std::string& thread) {
  return "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":\"" + json_escape(thread) + "\"}}";
}

std::string span_event(const Tracer::Span& s, std::uint32_t pid,
                       std::uint32_t tid) {
  std::string out = "{\"ph\":\"X\",\"name\":\"" + json_escape(s.name) +
                    "\",\"ts\":" + fmt_us(s.t0) +
                    ",\"dur\":" + fmt_us(s.t1 - s.t0) + ids(pid, tid);
  append_args(out, s.args);
  out += "}";
  return out;
}

std::string instant_event(const Tracer::Instant& i, std::uint32_t pid,
                          std::uint32_t tid) {
  std::string out = "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" +
                    json_escape(i.name) + "\",\"ts\":" + fmt_us(i.t) +
                    ids(pid, tid);
  append_args(out, i.args);
  out += "}";
  return out;
}

std::string sample_event(const Tracer::Sample& c, std::uint32_t pid,
                         std::uint32_t tid) {
  return "{\"ph\":\"C\",\"name\":\"" + json_escape(c.name) +
         "\",\"ts\":" + fmt_us(c.t) + ids(pid, tid) +
         ",\"args\":{\"value\":" + fmt_value(c.value) + "}}";
}

std::string flow_event(const Tracer::Flow& f, std::uint32_t pid,
                       std::uint32_t tid) {
  const char* ph = f.phase == Tracer::FlowPhase::kStart
                       ? "s"
                       : f.phase == Tracer::FlowPhase::kStep ? "t" : "f";
  // The 64-bit flow id goes out as a hex string: JSON numbers are doubles
  // in most viewers and would silently round ids above 2^53.
  char idbuf[24];
  std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                static_cast<unsigned long long>(f.id));
  std::string out = std::string("{\"ph\":\"") + ph +
                    "\",\"cat\":\"flow\",\"name\":\"" + json_escape(f.name) +
                    "\",\"id\":\"" + idbuf + "\",\"ts\":" + fmt_us(f.t) +
                    ids(pid, tid);
  // Bind the finish point to its enclosing slice (Chrome flow semantics).
  if (f.phase == Tracer::FlowPhase::kEnd) out += ",\"bp\":\"e\"";
  out += "}";
  return out;
}

}  // namespace trace_format

namespace {

/// First digit run in a lane name ("worker 0012" -> 12, "link 3->4" -> 3);
/// false when the name has no digits.
bool parse_first_uint(const std::string& s, std::uint64_t& out) {
  std::size_t i = 0;
  while (i < s.size() &&
         !std::isdigit(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  if (i == s.size()) return false;
  out = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    out = out * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  return true;
}

std::size_t args_bytes(const std::vector<Tracer::Arg>& args) {
  std::size_t n = args.size() * sizeof(Tracer::Arg);
  for (const Tracer::Arg& a : args) n += a.key.size();
  return n;
}

}  // namespace

Tracer::TrackSample Tracer::sample_state(const std::string& thread) const {
  TrackSample ts;
  if (!sample_.track_sampling()) return ts;  // everything sampled
  std::uint64_t id = 0;
  if (!parse_first_uint(thread, id)) return ts;  // non-numeric lanes kept
  ts.sampled = (id % sample_.track_stride) == 0;
  ts.head_left = ts.sampled ? 0 : sample_.head_events_per_track;
  return ts;
}

bool Tracer::admit(TrackId track, double t0, double t1) {
  if (!sample_.track_sampling()) return true;
  if (in_window(t0, t1)) return true;
  TrackSample& ts = tsample_[track - 1];
  if (ts.sampled) return true;
  if (ts.head_left > 0) {
    --ts.head_left;
    return true;
  }
  return false;
}

TrackId Tracer::track(const std::string& process, const std::string& thread) {
  DLION_AFFINITY_DCHECK(affinity_);
  const auto key = std::make_pair(process, thread);
  auto it = track_index_.find(key);
  if (it != track_index_.end()) return it->second;

  auto pid_it = pids_.find(process);
  if (pid_it == pids_.end()) {
    pid_it = pids_.emplace(process,
                           static_cast<std::uint32_t>(pids_.size() + 1))
                 .first;
  }
  Track t;
  t.pid = pid_it->second;
  t.tid = static_cast<std::uint32_t>(tracks_.size() + 1);
  t.process = process;
  t.thread = thread;
  tracks_.push_back(std::move(t));
  open_.emplace_back();
  tsample_.push_back(sample_state(thread));
  const TrackId id = static_cast<TrackId>(tracks_.size());  // 1-based
  track_index_.emplace(key, id);
  if (sink_ != nullptr) {
    const Track& nt = tracks_.back();
    sink_->on_track(id, nt.pid, nt.tid, nt.process, nt.thread);
  }
  return id;
}

void Tracer::set_sink(TraceSink* sink) {
  sink_ = sink;
  if (sink_ == nullptr) return;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const Track& t = tracks_[i];
    sink_->on_track(static_cast<TrackId>(i + 1), t.pid, t.tid, t.process,
                    t.thread);
  }
}

void Tracer::finish() {
  if (sink_ != nullptr) sink_->finish();
}

void Tracer::set_sampling(const TraceSampleConfig& cfg) {
  sample_ = cfg;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    tsample_[i] = sample_state(tracks_[i].thread);
  }
}

void Tracer::begin(TrackId track, std::string name, double t,
                   std::vector<Arg> args) {
  if (track == 0 || track > tracks_.size()) return;
  open_[track - 1].push_back(Open{std::move(name), t, std::move(args)});
}

void Tracer::record_span(Span&& s) {
  DLION_AFFINITY_DCHECK(affinity_);
  if (!admit(s.track, s.t0, s.t1)) {
    ++sampled_out_;
    return;
  }
  ++admitted_;
  if (sink_ != nullptr) sink_->on_span(s);
  if (retain_all_ || in_window(s.t0, s.t1)) {
    retained_bytes_ += sizeof(Span) + s.name.size() + args_bytes(s.args);
    reserve_growth(spans_);
    spans_.push_back(std::move(s));
  }
}

void Tracer::end(TrackId track, double t) {
  if (track == 0 || track > tracks_.size()) return;
  auto& stack = open_[track - 1];
  if (stack.empty()) return;  // unmatched end: ignore
  Open span = std::move(stack.back());
  stack.pop_back();
  record_span(
      Span{track, std::move(span.name), span.t0, t, std::move(span.args)});
}

void Tracer::complete(TrackId track, std::string name, double t0, double t1,
                      std::vector<Arg> args) {
  if (track == 0 || track > tracks_.size()) return;
  record_span(Span{track, std::move(name), t0, t1, std::move(args)});
}

void Tracer::instant(TrackId track, std::string name, double t,
                     std::vector<Arg> args) {
  DLION_AFFINITY_DCHECK(affinity_);
  if (track == 0 || track > tracks_.size()) return;
  if (!admit(track, t, t)) {
    ++sampled_out_;
    return;
  }
  ++admitted_;
  Instant i{track, std::move(name), t, std::move(args)};
  if (sink_ != nullptr) sink_->on_instant(i);
  if (retain_all_ || in_window(t, t)) {
    retained_bytes_ += sizeof(Instant) + i.name.size() + args_bytes(i.args);
    reserve_growth(instants_);
    instants_.push_back(std::move(i));
  }
}

void Tracer::counter(TrackId track, std::string name, double t, double value) {
  DLION_AFFINITY_DCHECK(affinity_);
  if (track == 0 || track > tracks_.size()) return;
  if (!admit(track, t, t)) {
    ++sampled_out_;
    return;
  }
  ++admitted_;
  Sample c{track, std::move(name), t, value};
  if (sink_ != nullptr) sink_->on_sample(c);
  if (retain_all_ || in_window(t, t)) {
    retained_bytes_ += sizeof(Sample) + c.name.size();
    reserve_growth(samples_);
    samples_.push_back(std::move(c));
  }
}

void Tracer::flow(TrackId track, FlowPhase phase, std::string name, double t,
                  std::uint64_t id) {
  DLION_AFFINITY_DCHECK(affinity_);
  if (track == 0 || track > tracks_.size() || id == 0) return;
  // Flow admission keys off the chain's deterministic sequence number so
  // the s/t/f points of one chain live or die together (track sampling
  // would strand arrows between kept and dropped lanes).
  if (sample_.flow_sampling() && !in_window(t, t) &&
      ((id & sample_.flow_seq_mask) % sample_.flow_stride) != 0) {
    ++sampled_out_;
    return;
  }
  ++admitted_;
  Flow f{track, phase, std::move(name), t, id};
  if (sink_ != nullptr) sink_->on_flow(f);
  if (retain_all_ || in_window(t, t)) {
    retained_bytes_ += sizeof(Flow) + f.name.size();
    reserve_growth(flows_);
    flows_.push_back(std::move(f));
  }
}

const std::string& Tracer::track_process(TrackId id) const {
  static const std::string kEmpty;
  if (id == 0 || id > tracks_.size()) return kEmpty;
  return tracks_[id - 1].process;
}

const std::string& Tracer::track_thread(TrackId id) const {
  static const std::string kEmpty;
  if (id == 0 || id > tracks_.size()) return kEmpty;
  return tracks_[id - 1].thread;
}

std::uint32_t Tracer::track_pid(TrackId id) const {
  if (id == 0 || id > tracks_.size()) return 0;
  return tracks_[id - 1].pid;
}

std::uint32_t Tracer::track_tid(TrackId id) const {
  if (id == 0 || id > tracks_.size()) return 0;
  return tracks_[id - 1].tid;
}

std::size_t Tracer::open_spans() const {
  std::size_t n = 0;
  for (const auto& stack : open_) n += stack.size();
  return n;
}

void Tracer::clear() {
  for (auto& stack : open_) stack.clear();
  spans_.clear();
  instants_.clear();
  samples_.clear();
  flows_.clear();
  admitted_ = 0;
  sampled_out_ = 0;
  retained_bytes_ = 0;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    tsample_[i] = sample_state(tracks_[i].thread);
  }
}

std::string Tracer::chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&out, &first] {
    if (!first) out += ",\n";
    first = false;
  };

  // Metadata: process names (one per pid), then thread names per track.
  for (const auto& [process, pid] : pids_) {
    sep();
    out += trace_format::process_meta(pid, process);
  }
  for (const Track& t : tracks_) {
    sep();
    out += trace_format::thread_meta(t.pid, t.tid, t.thread);
  }

  auto pidtid = [this](TrackId id) -> const Track& {
    return tracks_[id - 1];
  };
  for (const Span& s : spans_) {
    sep();
    const Track& t = pidtid(s.track);
    out += trace_format::span_event(s, t.pid, t.tid);
  }
  for (const Flow& f : flows_) {
    sep();
    const Track& t = pidtid(f.track);
    out += trace_format::flow_event(f, t.pid, t.tid);
  }
  for (const Instant& i : instants_) {
    sep();
    const Track& t = pidtid(i.track);
    out += trace_format::instant_event(i, t.pid, t.tid);
  }
  for (const Sample& c : samples_) {
    sep();
    const Track& t = pidtid(c.track);
    out += trace_format::sample_event(c, t.pid, t.tid);
  }
  out += "\n]}";
  return out;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  out << chrome_json();
}

}  // namespace dlion::obs

// Hop (Luo et al., ASPLOS '19) emulated in the DLion framework (§5.1.4):
// workers exchange whole gradients but advance iterations without waiting
// for straggler ("backup") workers, under a bounded-staleness synchronization
// policy. The gradient side is the Baseline strategy; the distinguishing
// behaviour lives in the `synch_training` policy (Table 1: ~20 lines of
// synchronization code, 1 line of gradient selection).
#pragma once

#include "core/sync_strategy.h"
#include "systems/baseline.h"

namespace dlion::systems {

class HopStrategy : public BaselineStrategy {
 public:
  const char* name() const override { return "hop"; }
};

/// The paper's Hop evaluation settings: 1 backup worker, staleness bound 5.
inline core::SyncPolicy hop_sync_policy() {
  return core::SyncPolicy::bounded(/*staleness=*/5, /*backup=*/1);
}

}  // namespace dlion::systems

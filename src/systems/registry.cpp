#include "systems/registry.h"

#include <stdexcept>

#include "core/link_prioritizer.h"
#include "systems/ako.h"
#include "systems/baseline.h"
#include "systems/dgc.h"
#include "systems/gaia.h"
#include "systems/hop.h"
#include "systems/prague.h"

namespace dlion::systems {

namespace {

SystemSpec dlion_spec() {
  SystemSpec spec;
  spec.name = "dlion";
  spec.strategy_factory = [](std::size_t) -> core::StrategyPtr {
    core::LinkPrioritizerConfig cfg;
    cfg.min_n = 0.85;  // §5.1.4: minimum N for the Max N algorithm
    return std::make_unique<core::LinkPrioritizer>(cfg);
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = true;
    o.weighted_update = true;
    o.sync = core::SyncPolicy::bounded(5, 0);
    o.dkt.mode = core::DktMode::kBest2All;
    o.dkt.period_iters = 100;  // §5.1.4
    o.dkt.lambda = 0.75;       // §5.1.4
  };
  return spec;
}

SystemSpec baseline_spec() {
  SystemSpec spec;
  spec.name = "baseline";
  spec.strategy_factory = [](std::size_t) -> core::StrategyPtr {
    return std::make_unique<BaselineStrategy>();
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = false;
    o.weighted_update = false;
    o.sync = core::SyncPolicy::synchronous();
    o.dkt.mode = core::DktMode::kNone;
  };
  return spec;
}

SystemSpec hop_spec() {
  SystemSpec spec;
  spec.name = "hop";
  spec.strategy_factory = [](std::size_t) -> core::StrategyPtr {
    return std::make_unique<HopStrategy>();
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = false;
    o.weighted_update = false;
    o.sync = hop_sync_policy();
    o.dkt.mode = core::DktMode::kNone;
  };
  return spec;
}

SystemSpec gaia_spec() {
  SystemSpec spec;
  spec.name = "gaia";
  spec.strategy_factory = [](std::size_t) -> core::StrategyPtr {
    return std::make_unique<GaiaStrategy>(/*significance_percent=*/1.0);
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = false;
    o.weighted_update = false;
    // Gaia blocks progress until significant gradients are delivered to all
    // workers (§5.2.5) - synchronous from the iteration-advance viewpoint.
    o.sync = core::SyncPolicy::synchronous();
    o.dkt.mode = core::DktMode::kNone;
  };
  return spec;
}

SystemSpec ako_spec() {
  SystemSpec spec;
  spec.name = "ako";
  spec.strategy_factory = [](std::size_t) -> core::StrategyPtr {
    return std::make_unique<AkoStrategy>();
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = false;
    o.weighted_update = false;
    o.sync = core::SyncPolicy::asynchronous();  // §5.2.5
    o.dkt.mode = core::DktMode::kNone;
  };
  return spec;
}

SystemSpec maxn_spec() {
  SystemSpec spec;
  spec.name = "maxn";
  spec.strategy_factory = [](std::size_t) -> core::StrategyPtr {
    core::LinkPrioritizerConfig cfg;
    cfg.adaptive = false;
    cfg.fixed_n = 10.0;  // Fig. 16: Max10
    return std::make_unique<core::LinkPrioritizer>(cfg);
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = false;
    o.weighted_update = false;
    o.sync = core::SyncPolicy::synchronous();
    o.dkt.mode = core::DktMode::kNone;
  };
  return spec;
}

SystemSpec dlion_no_wu_spec() {
  // Fig. 14 ablation: dynamic batching on, weighted model update off.
  SystemSpec spec = dlion_spec();
  spec.name = "dlion-no-wu";
  auto base = spec.configure;
  spec.configure = [base](core::WorkerOptions& o) {
    base(o);
    o.weighted_update = false;
  };
  return spec;
}

SystemSpec dlion_no_dbwu_spec() {
  // Fig. 14 ablation: neither dynamic batching nor weighted update.
  SystemSpec spec = dlion_spec();
  spec.name = "dlion-no-dbwu";
  auto base = spec.configure;
  spec.configure = [base](core::WorkerOptions& o) {
    base(o);
    o.dynamic_batching = false;
    o.weighted_update = false;
  };
  return spec;
}

SystemSpec dgc_spec() {
  // Extension: DGC-style error-feedback top-k compression plugged into the
  // data quality assurance slot (the paper's related work [3, 43] calls
  // this out as complementary).
  SystemSpec spec;
  spec.name = "dgc";
  spec.strategy_factory = [](std::size_t) -> core::StrategyPtr {
    return std::make_unique<DgcStrategy>(/*density=*/0.01);
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = false;
    o.weighted_update = false;
    o.sync = core::SyncPolicy::bounded(5, 0);
    o.dkt.mode = core::DktMode::kNone;
  };
  return spec;
}

SystemSpec prague_spec() {
  // Extension: Prague-style randomized partial all-reduce (Luo et al.,
  // ASPLOS '20), the fourth related decentralized system in §6.
  SystemSpec spec;
  spec.name = "prague";
  spec.strategy_factory = [](std::size_t worker) -> core::StrategyPtr {
    return std::make_unique<PragueStrategy>(/*group_size=*/2,
                                            /*seed=*/0x9143 + worker);
  };
  spec.configure = [](core::WorkerOptions& o) {
    o.dynamic_batching = false;
    o.weighted_update = false;
    o.sync = core::SyncPolicy::asynchronous();
    o.dkt.mode = core::DktMode::kNone;
  };
  return spec;
}

}  // namespace

SystemSpec make_system(const std::string& name) {
  if (name == "dlion") return dlion_spec();
  if (name == "baseline") return baseline_spec();
  if (name == "hop") return hop_spec();
  if (name == "gaia") return gaia_spec();
  if (name == "ako") return ako_spec();
  if (name == "maxn") return maxn_spec();
  if (name == "dlion-no-wu") return dlion_no_wu_spec();
  if (name == "dlion-no-dbwu") return dlion_no_dbwu_spec();
  if (name == "dgc") return dgc_spec();
  if (name == "prague") return prague_spec();
  throw std::invalid_argument("make_system: unknown system '" + name + "'");
}

std::vector<std::string> comparison_systems() {
  return {"baseline", "hop", "gaia", "ako", "dlion"};
}

}  // namespace dlion::systems

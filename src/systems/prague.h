// Prague-style partial all-reduce (extension).
//
// Prague (Luo et al., ASPLOS '20) is the fourth related decentralized
// system the paper discusses: instead of exchanging gradients with all
// peers, each iteration a worker synchronizes with a small randomized
// group, reducing both traffic and straggler exposure. Emulated in the
// DLion framework as a strategy that sends dense gradients to a per-
// iteration random group and header-only updates to everyone else,
// combined with asynchronous training.
#pragma once

#include "common/rng.h"
#include "core/strategy.h"

namespace dlion::systems {

class PragueStrategy : public core::PartialGradientStrategy {
 public:
  /// `group_size`: number of peers receiving dense gradients per iteration
  /// (clamped to n-1 once the cluster size is known).
  PragueStrategy(std::size_t group_size, std::uint64_t seed);

  std::vector<comm::VariableGrad> generate(
      const nn::Model& model, const core::LinkContext& ctx) override;
  const char* name() const override { return "prague"; }

  /// Peers in the most recent iteration's group (for tests).
  const std::vector<std::size_t>& current_group() const { return group_; }

 private:
  void draw_group(std::size_t self, std::size_t n_workers);

  std::size_t group_size_;
  common::Rng rng_;
  std::uint64_t group_iteration_ = static_cast<std::uint64_t>(-1);
  std::vector<std::size_t> group_;
  /// Per-iteration staged gradient, shared by every group peer's update.
  std::vector<comm::VariableGrad> staged_;
  std::uint64_t staged_iteration_ = 0;
  bool staged_valid_ = false;
};

}  // namespace dlion::systems

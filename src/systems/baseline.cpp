#include "systems/baseline.h"

#include "core/gradient_select.h"

namespace dlion::systems {

std::vector<comm::VariableGrad> BaselineStrategy::generate(
    const nn::Model& model, const core::LinkContext& ctx) {
  // generate_partial_gradients == whole gradients (Table 1: 1 line). The
  // dense gradient is staged into payload blocks once per iteration (lazily,
  // on the first peer); every other peer's update shares views over that
  // single production write - copying a VariableGrad only increfs blocks.
  if (!staged_valid_ || staged_iteration_ != ctx.iteration) {
    comm::PayloadWriter writer(payload_arena(ctx));
    staged_.clear();
    const auto& vars = model.variables();
    staged_.reserve(vars.size());
    for (std::size_t v = 0; v < vars.size(); ++v) {
      staged_.push_back(core::dense_grad(vars[v]->grad().span(),
                                         static_cast<std::uint32_t>(v),
                                         writer));
    }
    staged_iteration_ = ctx.iteration;
    staged_valid_ = true;
  }
  return staged_;
}

}  // namespace dlion::systems

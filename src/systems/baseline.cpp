#include "systems/baseline.h"

#include "core/gradient_select.h"

namespace dlion::systems {

std::vector<comm::VariableGrad> BaselineStrategy::generate(
    const nn::Model& model, const core::LinkContext& /*ctx*/) {
  // generate_partial_gradients == whole gradients (Table 1: 1 line).
  std::vector<comm::VariableGrad> out;
  const auto& vars = model.variables();
  out.reserve(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    out.push_back(core::select_max_n(vars[v]->grad().span(),
                                     static_cast<std::uint32_t>(v), 100.0));
  }
  return out;
}

}  // namespace dlion::systems

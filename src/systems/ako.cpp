#include "systems/ako.h"

#include <algorithm>
#include <cmath>

namespace dlion::systems {

namespace {
constexpr std::size_t kMaxPartitions = 64;
}

AkoStrategy::AkoStrategy(std::size_t partitions)
    : configured_p_(partitions) {}

std::size_t AkoStrategy::partitions_for(std::size_t peer) const {
  if (peer >= peers_.size()) return 0;
  return peers_[peer].p;
}

AkoStrategy::PeerState& AkoStrategy::peer_state(const nn::Model& model,
                                                const core::LinkContext& ctx) {
  if (peers_.size() <= ctx.peer) peers_.resize(ctx.peer + 1);
  PeerState& st = peers_[ctx.peer];
  if (st.acc.empty()) {
    st.acc.resize(model.num_variables());
    for (std::size_t v = 0; v < model.num_variables(); ++v) {
      st.acc[v].assign(model.variables()[v]->size(), 0.0f);
    }
    if (configured_p_ > 0) {
      st.p = configured_p_;
    } else {
      // Ako's partition count balances network capacity against gradient
      // production rate: p ~= bytes produced per iteration / bytes the link
      // absorbs per iteration.
      const double full_bytes = static_cast<double>(model.num_params()) *
                                sizeof(float) * ctx.byte_scale;
      const double budget_bytes = (ctx.available_mbps * 1e6 / 8.0) /
                                  std::max(ctx.iterations_per_sec, 1e-9);
      const double p = budget_bytes <= 0.0
                           ? static_cast<double>(kMaxPartitions)
                           : full_bytes / budget_bytes;
      st.p = std::clamp<std::size_t>(
          static_cast<std::size_t>(std::ceil(p)), 1, kMaxPartitions);
    }
  }
  return st;
}

std::vector<comm::VariableGrad> AkoStrategy::generate(
    const nn::Model& model, const core::LinkContext& ctx) {
  PeerState& st = peer_state(model, ctx);
  const auto& vars = model.variables();
  if (st.last_accumulated_iter != ctx.iteration) {
    st.last_accumulated_iter = ctx.iteration;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const float* g = vars[v]->grad().data();
      float* acc = st.acc[v].data();
      for (std::size_t i = 0; i < st.acc[v].size(); ++i) acc[i] += g[i];
    }
  }
  // Round-robin block: each variable contributes its (iteration mod p)-th
  // contiguous slice; accumulated history for the slice is staged straight
  // into payload blocks (the send-and-reset is the production write - the
  // accumulator is zeroed behind it, so the payload cannot alias live
  // state) and reset.
  const std::size_t block = ctx.iteration % st.p;
  comm::PayloadWriter writer(payload_arena(ctx));
  std::vector<comm::VariableGrad> out;
  out.reserve(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const std::size_t size = st.acc[v].size();
    const std::size_t chunk = (size + st.p - 1) / st.p;
    const std::size_t begin = std::min(block * chunk, size);
    const std::size_t end = std::min(begin + chunk, size);
    const std::size_t n = end - begin;
    comm::VariableGrad vg;
    vg.var_index = static_cast<std::uint32_t>(v);
    vg.dense_size = static_cast<std::uint32_t>(size);
    if (n > 0) {
      std::uint32_t* idx = writer.stage<std::uint32_t>(n);
      for (std::size_t i = 0; i < n; ++i) {
        idx[i] = static_cast<std::uint32_t>(begin + i);
      }
      vg.indices = writer.commit(idx, n);
      float* acc = st.acc[v].data();
      float* vals = writer.stage<float>(n);
      for (std::size_t i = 0; i < n; ++i) {
        vals[i] = acc[begin + i];
        acc[begin + i] = 0.0f;
      }
      vg.values = writer.commit(vals, n);
    }
    out.push_back(std::move(vg));
  }
  return out;
}

}  // namespace dlion::systems

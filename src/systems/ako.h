// Ako (Watcharapichat et al., SoCC '16) emulated in the DLion framework
// (§5.1.4): partition the gradient space into p blocks sized from the
// available network capacity and computation speed, and send one block per
// iteration in round-robin order. Unsent blocks accumulate locally
// ("accumulated gradient history"), so every entry is eventually shipped.
// Ako trains asynchronously.
#pragma once

#include <vector>

#include "core/strategy.h"

namespace dlion::systems {

class AkoStrategy : public core::PartialGradientStrategy {
 public:
  /// `partitions` = 0 derives p per link from the first LinkContext:
  /// p ~= full nominal gradient bytes / per-iteration link byte budget.
  explicit AkoStrategy(std::size_t partitions = 0);

  std::vector<comm::VariableGrad> generate(
      const nn::Model& model, const core::LinkContext& ctx) override;
  const char* name() const override { return "ako"; }

  /// Partition count currently used for `peer` (0 if not yet derived).
  std::size_t partitions_for(std::size_t peer) const;

 private:
  struct PeerState {
    std::size_t p = 0;
    std::uint64_t last_accumulated_iter = static_cast<std::uint64_t>(-1);
    std::vector<std::vector<float>> acc;  // per variable accumulated grads
  };
  PeerState& peer_state(const nn::Model& model, const core::LinkContext& ctx);

  std::size_t configured_p_;
  std::vector<PeerState> peers_;
};

}  // namespace dlion::systems

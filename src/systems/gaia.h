// Gaia (Hsieh et al., NSDI '17) emulated in the DLion framework (§5.1.4):
// exchange only the gradient entries whose *accumulated* update would change
// the corresponding model weight by more than S% ("significance filter").
// Entries below the threshold accumulate locally per peer and are sent once
// their accumulated magnitude becomes significant, so no update is ever
// dropped - only delayed.
#pragma once

#include <vector>

#include "core/strategy.h"

namespace dlion::systems {

class GaiaStrategy : public core::PartialGradientStrategy {
 public:
  /// `significance_percent`: the S threshold (paper evaluation: S = 1%).
  explicit GaiaStrategy(double significance_percent = 1.0);

  std::vector<comm::VariableGrad> generate(
      const nn::Model& model, const core::LinkContext& ctx) override;
  const char* name() const override { return "gaia"; }

 private:
  struct PeerState {
    std::uint64_t last_accumulated_iter = static_cast<std::uint64_t>(-1);
    std::vector<std::vector<float>> acc;  // per variable accumulated grads
  };
  PeerState& peer_state(const nn::Model& model, std::size_t peer);

  double significance_;
  std::vector<PeerState> peers_;
  /// Selection staging, reused across calls (capacity-warm after the first
  /// iteration); the payloads are packed from here in one production write.
  std::vector<std::uint32_t> scratch_idx_;
  std::vector<float> scratch_vals_;
};

}  // namespace dlion::systems

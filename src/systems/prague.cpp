#include "systems/prague.h"

#include <algorithm>
#include <stdexcept>

#include "core/gradient_select.h"

namespace dlion::systems {

PragueStrategy::PragueStrategy(std::size_t group_size, std::uint64_t seed)
    : group_size_(group_size), rng_(seed) {
  if (group_size == 0) {
    throw std::invalid_argument("PragueStrategy: group_size must be >= 1");
  }
}

void PragueStrategy::draw_group(std::size_t self, std::size_t n_workers) {
  // Draw this iteration's randomized peer group from the worker's own
  // stream (group choices are independent across workers, as in Prague's
  // decentralized group generator).
  group_.clear();
  std::vector<std::size_t> peers;
  for (std::size_t p = 0; p < n_workers; ++p) {
    if (p != self) peers.push_back(p);
  }
  const std::size_t k = std::min(group_size_, peers.size());
  for (std::size_t picked = 0; picked < k; ++picked) {
    const std::size_t j = picked + rng_.uniform_index(peers.size() - picked);
    std::swap(peers[picked], peers[j]);
    group_.push_back(peers[picked]);
  }
  std::sort(group_.begin(), group_.end());
}

std::vector<comm::VariableGrad> PragueStrategy::generate(
    const nn::Model& model, const core::LinkContext& ctx) {
  if (group_iteration_ != ctx.iteration) {
    group_iteration_ = ctx.iteration;
    draw_group(ctx.self, ctx.n_workers);
  }
  if (!std::binary_search(group_.begin(), group_.end(), ctx.peer)) {
    return {};  // header-only update: progress signal only
  }
  // Whole gradients for the drawn group, staged once per iteration (lazily,
  // on the group's first peer); the remaining group members share views
  // over the same production write.
  if (!staged_valid_ || staged_iteration_ != ctx.iteration) {
    comm::PayloadWriter writer(payload_arena(ctx));
    staged_.clear();
    const auto& vars = model.variables();
    staged_.reserve(vars.size());
    for (std::size_t v = 0; v < vars.size(); ++v) {
      staged_.push_back(core::dense_grad(vars[v]->grad().span(),
                                         static_cast<std::uint32_t>(v),
                                         writer));
    }
    staged_iteration_ = ctx.iteration;
    staged_valid_ = true;
  }
  return staged_;
}

}  // namespace dlion::systems

#include "systems/dgc.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/gradient_select.h"

namespace dlion::systems {

DgcStrategy::DgcStrategy(double density) : density_(density) {
  if (density <= 0.0 || density > 1.0) {
    throw std::invalid_argument("DgcStrategy: density must be in (0, 1]");
  }
}

DgcStrategy::PeerState& DgcStrategy::peer_state(const nn::Model& model,
                                                std::size_t peer) {
  if (peers_.size() <= peer) peers_.resize(peer + 1);
  PeerState& st = peers_[peer];
  if (st.residual.empty()) {
    st.residual.resize(model.num_variables());
    for (std::size_t v = 0; v < model.num_variables(); ++v) {
      st.residual[v].assign(model.variables()[v]->size(), 0.0f);
    }
  }
  return st;
}

std::vector<comm::VariableGrad> DgcStrategy::generate(
    const nn::Model& model, const core::LinkContext& ctx) {
  PeerState& st = peer_state(model, ctx.peer);
  const auto& vars = model.variables();
  if (st.last_accumulated_iter != ctx.iteration) {
    st.last_accumulated_iter = ctx.iteration;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const float* g = vars[v]->grad().data();
      float* r = st.residual[v].data();
      for (std::size_t i = 0; i < st.residual[v].size(); ++i) r[i] += g[i];
    }
  }
  // Error feedback: select the top density-fraction of the *residual* per
  // variable, send it, and clear only what was sent. Selection packs its
  // result straight into payload blocks; clearing the sent residual entries
  // behind it means the payload never aliases live accumulator state.
  comm::PayloadWriter writer(payload_arena(ctx));
  std::vector<comm::VariableGrad> out;
  out.reserve(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    auto& residual = st.residual[v];
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(density_ * static_cast<double>(residual.size()))));
    comm::VariableGrad vg = core::select_top_k(
        residual, static_cast<std::uint32_t>(v), k, writer);
    if (vg.is_dense()) {
      std::fill(residual.begin(), residual.end(), 0.0f);
    } else {
      for (std::uint32_t idx : vg.indices) residual[idx] = 0.0f;
    }
    out.push_back(std::move(vg));
  }
  return out;
}

}  // namespace dlion::systems

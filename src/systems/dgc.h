// Deep-Gradient-Compression-style strategy (extension).
//
// The paper's related work notes that gradient compression algorithms
// "can be placed in the data quality assurance module in DLion" - this
// plugin demonstrates exactly that: top-k selection by magnitude over an
// error-feedback residual (unsent gradient mass accumulates locally and is
// re-considered every iteration), the core of DGC (Lin et al., ICLR '18)
// and sparsified-SGD methods the paper cites as complementary [3, 43].
#pragma once

#include <vector>

#include "core/strategy.h"

namespace dlion::systems {

class DgcStrategy : public core::PartialGradientStrategy {
 public:
  /// `density`: fraction of each variable's entries shipped per iteration.
  explicit DgcStrategy(double density = 0.01);

  std::vector<comm::VariableGrad> generate(
      const nn::Model& model, const core::LinkContext& ctx) override;
  const char* name() const override { return "dgc"; }

 private:
  struct PeerState {
    std::uint64_t last_accumulated_iter = static_cast<std::uint64_t>(-1);
    std::vector<std::vector<float>> residual;  // error-feedback accumulator
  };
  PeerState& peer_state(const nn::Model& model, std::size_t peer);

  double density_;
  std::vector<PeerState> peers_;
};

}  // namespace dlion::systems

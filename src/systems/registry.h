// System registry: turn-key configurations of DLion and the four
// state-of-the-art comparison systems implemented in the DLion framework
// (§4.2, §5.1.4). Each SystemSpec bundles a partial-gradient strategy
// factory with the worker-option overrides (sync policy, DKT, batching)
// the paper's evaluation uses for that system.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/strategy.h"
#include "core/worker.h"

namespace dlion::systems {

struct SystemSpec {
  std::string name;
  /// Creates the per-worker partial gradient strategy.
  std::function<core::StrategyPtr(std::size_t worker)> strategy_factory;
  /// Applies the system's option overrides on top of base WorkerOptions.
  std::function<void(core::WorkerOptions&)> configure;
};

/// Build a system by name:
///   "dlion"    - all three techniques enabled (paper defaults: min N 0.85,
///                DKT every 100 iterations with lambda 0.75, Best2All)
///   "baseline" - whole gradients, synchronous
///   "hop"      - whole gradients, bounded staleness 5 + 1 backup worker
///   "gaia"     - significance filter S=1%, synchronous
///   "ako"      - round-robin partitioned partial gradients, asynchronous
///   "maxn"     - fixed Max N=10 selection only, no other DLion technique
///                (the Fig. 16 configuration)
SystemSpec make_system(const std::string& name);

/// The five systems compared throughout §5.2, in the paper's order.
std::vector<std::string> comparison_systems();

}  // namespace dlion::systems

#include "systems/gaia.h"

#include <cmath>
#include <span>

namespace dlion::systems {

namespace {
// Weights near zero would make the relative-change test fire on noise;
// Gaia's public description applies the significance test to the relative
// update |delta/w|, so we floor |w|.
constexpr float kWeightFloor = 1e-3f;
}  // namespace

GaiaStrategy::GaiaStrategy(double significance_percent)
    : significance_(significance_percent / 100.0) {}

GaiaStrategy::PeerState& GaiaStrategy::peer_state(const nn::Model& model,
                                                  std::size_t peer) {
  if (peers_.size() <= peer) peers_.resize(peer + 1);
  PeerState& st = peers_[peer];
  if (st.acc.empty()) {
    st.acc.resize(model.num_variables());
    for (std::size_t v = 0; v < model.num_variables(); ++v) {
      st.acc[v].assign(model.variables()[v]->size(), 0.0f);
    }
  }
  return st;
}

std::vector<comm::VariableGrad> GaiaStrategy::generate(
    const nn::Model& model, const core::LinkContext& ctx) {
  PeerState& st = peer_state(model, ctx.peer);
  const auto& vars = model.variables();
  // Fold this iteration's gradients into the per-peer accumulator exactly
  // once (generate is called once per peer per iteration).
  if (st.last_accumulated_iter != ctx.iteration) {
    st.last_accumulated_iter = ctx.iteration;
    for (std::size_t v = 0; v < vars.size(); ++v) {
      const float* g = vars[v]->grad().data();
      float* acc = st.acc[v].data();
      for (std::size_t i = 0; i < st.acc[v].size(); ++i) acc[i] += g[i];
    }
  }
  // Significance filter: send entries whose accumulated *update* - what the
  // receiver will subtract from its weight, (eta/n) * acc - exceeds S% of
  // the weight's magnitude; reset what we send.
  const double update_scale =
      ctx.learning_rate / static_cast<double>(std::max<std::size_t>(
                              ctx.n_workers, 1));
  comm::PayloadWriter writer(payload_arena(ctx));
  std::vector<comm::VariableGrad> out;
  out.reserve(vars.size());
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const float* w = vars[v]->value().data();
    float* acc = st.acc[v].data();
    comm::VariableGrad vg;
    vg.var_index = static_cast<std::uint32_t>(v);
    vg.dense_size = static_cast<std::uint32_t>(st.acc[v].size());
    scratch_idx_.clear();
    scratch_vals_.clear();
    for (std::size_t i = 0; i < st.acc[v].size(); ++i) {
      const float wm = std::max(std::fabs(w[i]), kWeightFloor);
      if (update_scale * std::fabs(acc[i]) >= significance_ * wm) {
        scratch_idx_.push_back(static_cast<std::uint32_t>(i));
        scratch_vals_.push_back(acc[i]);
        acc[i] = 0.0f;
      }
    }
    vg.indices = writer.copy(std::span<const std::uint32_t>(scratch_idx_));
    vg.values = writer.copy(std::span<const float>(scratch_vals_));
    out.push_back(std::move(vg));
  }
  return out;
}

}  // namespace dlion::systems

// Baseline system (§5.1.4): exchange whole gradients with all workers every
// iteration, synchronous training. The "generate_partial_gradients" plugin
// is one line of algorithm: everything, dense.
#pragma once

#include "core/strategy.h"

namespace dlion::systems {

class BaselineStrategy : public core::PartialGradientStrategy {
 public:
  std::vector<comm::VariableGrad> generate(
      const nn::Model& model, const core::LinkContext& ctx) override;
  const char* name() const override { return "baseline"; }
};

}  // namespace dlion::systems

// Baseline system (§5.1.4): exchange whole gradients with all workers every
// iteration, synchronous training. The "generate_partial_gradients" plugin
// is one line of algorithm: everything, dense.
#pragma once

#include "core/strategy.h"

namespace dlion::systems {

class BaselineStrategy : public core::PartialGradientStrategy {
 public:
  std::vector<comm::VariableGrad> generate(
      const nn::Model& model, const core::LinkContext& ctx) override;
  const char* name() const override { return "baseline"; }

 private:
  /// Per-iteration staged gradient, shared by every peer's update.
  std::vector<comm::VariableGrad> staged_;
  std::uint64_t staged_iteration_ = 0;
  bool staged_valid_ = false;
};

}  // namespace dlion::systems

// Grow-only tensor pool for steady-state inference (DESIGN.md "Serving
// tier").
//
// A serving replica churns through activation tensors at request rate; a
// fresh heap allocation per forward pass would dominate the hot path and
// fragment the allocator. TensorPool recycles the float storage of dead
// tensors instead: acquire() reuses the largest retired buffer that fits
// (resizing inside existing capacity — no allocation once warm), release()
// retires a tensor's storage back to the pool. The pool only grows (like
// common/scratch.h's ScratchBuffer) and is single-owner per replica, so no
// locking and no cross-replica nondeterminism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace dlion::tensor {

class TensorPool {
 public:
  TensorPool() = default;
  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

  /// A zero-filled tensor of `shape`, reusing pooled storage when any
  /// retired buffer's capacity covers the element count.
  Tensor acquire(const Shape& shape);

  /// Retire `t`'s storage into the pool. The tensor is left empty.
  void release(Tensor&& t);

  /// Buffers currently parked in the pool.
  std::size_t free_buffers() const { return free_.size(); }
  /// Heap allocations acquire() could not avoid (pool misses).
  std::uint64_t misses() const { return misses_; }
  /// acquire() calls served entirely from pooled capacity.
  std::uint64_t hits() const { return hits_; }

 private:
  std::vector<std::vector<float>> free_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dlion::tensor

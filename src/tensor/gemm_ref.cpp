#include "tensor/gemm_ref.h"

#include <cstring>

namespace dlion::tensor {

namespace {
// The pre-blocking kernels, preserved as-is (minus the thread-pool fan-out)
// from the original tensor/ops.cpp.

void ref_nn(std::size_t m, std::size_t n, std::size_t k, float alpha,
            const float* a, const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = alpha * a[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void ref_nt(std::size_t m, std::size_t n, std::size_t k, float alpha,
            const float* a, const float* b, float* c) {
  // B is (n x k): C[i][j] += alpha * dot(A.row(i), B.row(j))
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += alpha * acc;
    }
  }
}

void ref_tn(std::size_t m, std::size_t n, std::size_t k, float alpha,
            const float* a, const float* b, float* c) {
  // A is (k x m): C[i][j] += alpha * sum_p A[p][i] * B[p][j]
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void ref_tt(std::size_t m, std::size_t n, std::size_t k, float alpha,
            const float* a, const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
      c[i * n + j] += alpha * acc;
    }
  }
}
}  // namespace

void reference_gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                    std::size_t k, float alpha, const float* a, const float* b,
                    float beta, float* c) {
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (!trans_a && !trans_b) {
    ref_nn(m, n, k, alpha, a, b, c);
  } else if (!trans_a && trans_b) {
    ref_nt(m, n, k, alpha, a, b, c);
  } else if (trans_a && !trans_b) {
    ref_tn(m, n, k, alpha, a, b, c);
  } else {
    ref_tt(m, n, k, alpha, a, b, c);
  }
}

}  // namespace dlion::tensor

// Register-tiled GEMM micro-kernels behind a tiny dispatch table.
//
// The blocked GEMM driver (tensor/ops.cpp) packs A into (kc x MR) strips and
// B into (kc x NR) strips, then calls MicroKernel::tile for every MR x NR
// tile of C. The tile function accumulates
//
//     acc[i][j] = sum_{p=0}^{kc-1} a_strip[p*MR + i] * b_strip[p*NR + j]
//
// entirely in registers (fixed p-ascending order - this is what makes the
// whole GEMM bit-deterministic at any thread count) and then performs the
// epilogue  C[i][j] += alpha * acc[i][j]  for the valid mr_eff x nr_eff
// corner of the tile.
//
// Two implementations are compiled from the same template body
// (gemm_microkernel.inl):
//   * portable (4x8):  baseline ISA, always available.
//   * avx2 (6x16):     built only when the toolchain accepts -mavx2 -mfma
//                      (CMake defines DLION_HAVE_AVX2_KERNEL), selected at
//                      runtime only when the CPU reports AVX2+FMA.
// The active kernel is fixed for the lifetime of the process, so results
// are deterministic per host; DLION_GEMM_KERNEL=portable|avx2 overrides the
// choice (e.g. for cross-kernel comparisons or bit-reproduction across
// machines with different ISAs).
#pragma once

#include <cstddef>

namespace dlion::tensor::detail {

using MicroTileFn = void (*)(std::size_t kc, const float* a_strip,
                             const float* b_strip, float alpha, float* c,
                             std::size_t ldc, std::size_t mr_eff,
                             std::size_t nr_eff);

struct MicroKernel {
  std::size_t mr = 0;  ///< A-strip register rows
  std::size_t nr = 0;  ///< B-strip register columns
  MicroTileFn tile = nullptr;
  const char* name = "";
};

/// Baseline-ISA kernel; always linked.
const MicroKernel& portable_micro_kernel();

#if defined(DLION_HAVE_AVX2_KERNEL)
/// AVX2+FMA kernel; only safe to call when the CPU supports AVX2 and FMA.
const MicroKernel& avx2_micro_kernel();
#endif

/// The kernel the process uses, chosen once: the widest kernel the CPU
/// supports, unless overridden via DLION_GEMM_KERNEL.
const MicroKernel& active_micro_kernel();

}  // namespace dlion::tensor::detail

#include "tensor/pool.h"

#include <algorithm>
#include <utility>

namespace dlion::tensor {

Tensor TensorPool::acquire(const Shape& shape) {
  const std::size_t n = shape.num_elements();
  // Best fit: the smallest parked buffer whose capacity covers n. Scanning
  // a handful of buffers is cheaper than any ordered structure at the pool
  // sizes a replica reaches (one buffer per live tensor of the deepest
  // forward pass).
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].capacity() < n) continue;
    if (best == free_.size() ||
        free_[i].capacity() < free_[best].capacity()) {
      best = i;
    }
  }
  if (best == free_.size()) {
    ++misses_;
    return Tensor(shape);
  }
  ++hits_;
  std::vector<float> data = std::move(free_[best]);
  free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
  data.assign(n, 0.0f);  // within capacity: no allocation
  return Tensor(shape, std::move(data));
}

void TensorPool::release(Tensor&& t) {
  std::vector<float> data = std::move(t).take_data();
  if (data.capacity() == 0) return;
  free_.push_back(std::move(data));
}

}  // namespace dlion::tensor

// Dense float32 tensor with value semantics.
//
// This is the numeric substrate the NN library is built on. Shapes are
// small (rank <= 4) and storage is contiguous row-major, which keeps GEMM
// and im2col cache-friendly (Core Guidelines Per.19: access memory
// predictably).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace dlion::tensor {

/// Shape of a tensor, rank 0..4. Rank-0 denotes a scalar with one element.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<std::size_t> dims) : dims_(std::move(dims)) {}

  std::size_t rank() const { return dims_.size(); }
  std::size_t operator[](std::size_t i) const {
    DLION_DCHECK(i < dims_.size());
    return dims_[i];
  }
  std::size_t num_elements() const;
  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  std::string to_string() const;
  const std::vector<std::size_t>& dims() const { return dims_; }

 private:
  std::vector<std::size_t> dims_;
};

/// Contiguous row-major float tensor.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor scalar(float v) { return Tensor(Shape{}, {v}); }

  const Shape& shape() const { return shape_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    DLION_DCHECK(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    DLION_DCHECK(i < data_.size());
    return data_[i];
  }

  /// 2-D accessor for matrices (rank must be 2).
  float& at(std::size_t r, std::size_t c) {
    DLION_DCHECK(shape_.rank() == 2);
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    DLION_DCHECK(shape_.rank() == 2);
    return data_[r * shape_[1] + c];
  }

  /// 4-D accessor (N, C, H, W) for images.
  float& at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
    DLION_DCHECK(shape_.rank() == 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }
  float at4(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const {
    DLION_DCHECK(shape_.rank() == 4);
    return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
  }

  void fill(float v);
  /// Reshape in place. New shape must have the same element count.
  void reshape(Shape new_shape);

  /// View the first `rows` rows of a rank>=1 tensor as a new tensor (copy).
  Tensor slice_rows(std::size_t begin, std::size_t end) const;

  /// Release the underlying storage (rvalue only), leaving the tensor
  /// empty. Lets a pool recycle the capacity of a dead tensor without a
  /// copy (see pool.h).
  std::vector<float> take_data() && {
    shape_ = Shape{};
    return std::move(data_);
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace dlion::tensor

// Shared micro-kernel template body, included by the per-ISA translation
// units (gemm_kernel_portable.cpp, gemm_kernel_avx2.cpp). Each TU
// instantiates micro_tile_impl<MR, NR, W> under its own compile flags, so
// the same source yields 128-bit SSE2/NEON code in the portable TU and
// 256-bit AVX2+FMA code in the AVX2 TU.
//
// GNU vector extensions (supported by GCC and Clang) are used instead of a
// plain scalar loop: they force the MR x NR accumulator tile into vector
// registers, which plain arrays fail to achieve reliably (GCC's scalar
// replacement gives up on a 96-float array and spills, costing ~20x).
//
// Determinism contract: the accumulation order over p is fixed and the
// epilogue is a single read-modify-write of each C element, so for a given
// kernel the result depends only on the operand values - never on thread
// count or scheduling.
//
// Keep this file free of includes; the including TU provides <cstddef> and
// <cstring>.

namespace dlion::tensor::detail {
namespace {

// MR x NR register tile using W-byte vectors (NR must be a multiple of the
// lane count W/4). a is a packed strip of kc*MR floats (a[p*MR + i]),
// b a packed strip of kc*NR floats (b[p*NR + j]); both are zero-padded by
// the packing routines, so edge tiles accumulate exact zeros in the unused
// lanes and only the valid mr_eff x nr_eff corner is written back.
template <int MR, int NR, int W>
inline void micro_tile_impl(std::size_t kc, const float* __restrict a,
                            const float* __restrict b, float alpha,
                            float* __restrict c, std::size_t ldc,
                            std::size_t mr_eff, std::size_t nr_eff) {
  typedef float VF __attribute__((vector_size(W), aligned(4), may_alias));
  constexpr int kLanes = W / static_cast<int>(sizeof(float));
  constexpr int NV = NR / kLanes;
  static_assert(NR % kLanes == 0, "NR must be a multiple of the lane count");

  VF acc[MR][NV];
  for (int i = 0; i < MR; ++i) {
    for (int v = 0; v < NV; ++v) acc[i][v] = VF{};
  }

  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict ap = a + p * MR;
    const float* __restrict bp = b + p * NR;
    VF bv[NV];
    for (int v = 0; v < NV; ++v) {
      bv[v] = *reinterpret_cast<const VF*>(bp + v * kLanes);
    }
    for (int i = 0; i < MR; ++i) {
      const VF av = VF{} + ap[i];  // scalar broadcast
      for (int v = 0; v < NV; ++v) acc[i][v] += av * bv[v];
    }
  }

  if (mr_eff == static_cast<std::size_t>(MR) &&
      nr_eff == static_cast<std::size_t>(NR)) {
    // Full tile: vector read-modify-write of the C rows.
    for (int i = 0; i < MR; ++i) {
      float* crow = c + static_cast<std::size_t>(i) * ldc;
      for (int v = 0; v < NV; ++v) {
        VF cv = *reinterpret_cast<const VF*>(crow + v * kLanes);
        cv += alpha * acc[i][v];
        *reinterpret_cast<VF*>(crow + v * kLanes) = cv;
      }
    }
  } else {
    // Edge tile: spill the accumulators once, write the valid corner.
    float buf[MR * NR];
    for (int i = 0; i < MR; ++i) {
      std::memcpy(buf + i * NR, &acc[i][0], sizeof(float) * NR);
    }
    for (std::size_t i = 0; i < mr_eff; ++i) {
      float* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr_eff; ++j) {
        crow[j] += alpha * buf[i * static_cast<std::size_t>(NR) + j];
      }
    }
  }
}

}  // namespace
}  // namespace dlion::tensor::detail

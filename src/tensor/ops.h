// Numeric kernels over Tensor: GEMM, elementwise ops, reductions, and the
// im2col/col2im transforms used by the convolution layers.
//
// GEMM is a cache-blocked, panel-packed implementation driving a
// register-tiled micro-kernel (see DESIGN.md "Numeric kernels" for the
// blocking scheme and the determinism policy). All four transpose variants
// share the packed path, which parallelizes over row blocks on the global
// thread pool while staying bit-deterministic at any thread count.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.h"

namespace dlion::tensor {

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// A is (m x k) if !trans_a else (k x m); B is (k x n) if !trans_b else (n x k).
///
/// Deterministic: for a fixed host and build, the result is bit-identical
/// across runs and thread counts (fixed k-blocking order, one writer per C
/// element). Bit-compatibility with the pre-blocking kernels or across
/// hosts with different vector ISAs is NOT promised; see reference_gemm in
/// gemm_ref.h for the conformance oracle.
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

/// Testing/bench hook: enable/disable the GEMM thread-pool fan-out.
/// Returns the previous setting. Results are bit-identical either way (that
/// is what the determinism tests assert); this only trades wall-clock.
bool set_gemm_parallel(bool enabled);

/// Name of the active GEMM micro-kernel (e.g. "avx2-6x16", "portable-4x8").
const char* gemm_kernel_name();

/// out = A * B for rank-2 tensors; shapes checked.
Tensor matmul(const Tensor& a, const Tensor& b);

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);
/// x *= alpha.
void scale(float alpha, std::span<float> x);
/// Elementwise sum reduction.
double sum(std::span<const float> x);
/// Dot product.
double dot(std::span<const float> x, std::span<const float> y);
/// L2 norm.
double l2_norm(std::span<const float> x);
/// Max of |x_i|; 0 for empty input.
float max_abs(std::span<const float> x);

/// Add row vector `bias` (length n) to each row of matrix `m_by_n`.
void add_bias_rows(Tensor& m_by_n, const Tensor& bias);

/// Fused epilogue for dense layers: data[r*cols + c] += bias[c], then ReLU
/// in place, recording mask[i] = 1.0f where the post-bias value was > 0 and
/// 0.0f elsewhere. Bit-identical to add_bias_rows followed by a separate
/// ReLU pass, but touches the activation matrix once.
void add_bias_rows_relu(float* data, std::size_t rows, std::size_t cols,
                        const float* bias, float* mask);

/// Inference-only variant of the fused dense epilogue: bias + ReLU in one
/// pass with no backward mask. Bit-identical activations to the masked
/// overload (same arithmetic, same order).
void add_bias_rows_relu(float* data, std::size_t rows, std::size_t cols,
                        const float* bias);

/// Add bias[ch] to each element of the (images x channels x plane) conv
/// activation block (plane = out_h * out_w).
void add_bias_channels(float* data, std::size_t images, std::size_t channels,
                       std::size_t plane, const float* bias);

/// Fused conv epilogue: add_bias_channels + in-place ReLU + mask, single
/// pass (mask layout matches data).
void add_bias_channels_relu(float* data, std::size_t images,
                            std::size_t channels, std::size_t plane,
                            const float* bias, float* mask);

/// dst[i] = grad[i] * mask[i] (ReLU backward for the fused layers). `dst`
/// may alias `grad`.
void apply_mask(const float* grad, const float* mask, float* dst,
                std::size_t n);

/// im2col for NCHW input: expands (C, H, W) patches of one image into a
/// matrix of shape (C*kh*kw, out_h*out_w) for GEMM-based convolution.
void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* col);

/// Inverse of im2col: accumulates columns back into image gradients.
void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* img);

/// Output spatial size of a convolution/pool along one dimension.
constexpr std::size_t conv_out_dim(std::size_t in, std::size_t k,
                                   std::size_t stride, std::size_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

}  // namespace dlion::tensor

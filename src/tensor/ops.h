// Numeric kernels over Tensor: GEMM, elementwise ops, reductions, and the
// im2col/col2im transforms used by the convolution layers.
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.h"

namespace dlion::tensor {

/// C = alpha * op(A) * op(B) + beta * C, row-major.
/// A is (m x k) if !trans_a else (k x m); B is (k x n) if !trans_b else (n x k).
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c);

/// out = A * B for rank-2 tensors; shapes checked.
Tensor matmul(const Tensor& a, const Tensor& b);

/// y += alpha * x (sizes must match).
void axpy(float alpha, std::span<const float> x, std::span<float> y);
/// x *= alpha.
void scale(float alpha, std::span<float> x);
/// Elementwise sum reduction.
double sum(std::span<const float> x);
/// Dot product.
double dot(std::span<const float> x, std::span<const float> y);
/// L2 norm.
double l2_norm(std::span<const float> x);
/// Max of |x_i|; 0 for empty input.
float max_abs(std::span<const float> x);

/// Add row vector `bias` (length n) to each row of matrix `m_by_n`.
void add_bias_rows(Tensor& m_by_n, const Tensor& bias);

/// im2col for NCHW input: expands (C, H, W) patches of one image into a
/// matrix of shape (C*kh*kw, out_h*out_w) for GEMM-based convolution.
void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* col);

/// Inverse of im2col: accumulates columns back into image gradients.
void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* img);

/// Output spatial size of a convolution/pool along one dimension.
constexpr std::size_t conv_out_dim(std::size_t in, std::size_t k,
                                   std::size_t stride, std::size_t pad) {
  return (in + 2 * pad - k) / stride + 1;
}

}  // namespace dlion::tensor

// Portable (baseline-ISA) micro-kernel TU plus the runtime kernel dispatch.
//
// 4x8 tile: 32 accumulators fit the 16 xmm registers of baseline x86-64
// (8 registers of accumulator, 8 free for operands) and map equally well to
// NEON. The AVX2 TU (gemm_kernel_avx2.cpp) provides a wider 6x16 tile when
// both the toolchain and the CPU allow it.

#include "tensor/gemm_kernel.h"

#include <cstdlib>
#include <cstring>

#include "tensor/gemm_microkernel.inl"

namespace dlion::tensor::detail {

namespace {
constexpr int kPortableMR = 4;
constexpr int kPortableNR = 8;

void portable_tile(std::size_t kc, const float* a, const float* b, float alpha,
                   float* c, std::size_t ldc, std::size_t mr_eff,
                   std::size_t nr_eff) {
  micro_tile_impl<kPortableMR, kPortableNR, 16>(kc, a, b, alpha, c, ldc,
                                                mr_eff, nr_eff);
}

bool cpu_has_avx2_fma() {
#if defined(DLION_HAVE_AVX2_KERNEL) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const MicroKernel& choose_kernel() {
  const char* force = std::getenv("DLION_GEMM_KERNEL");
  if (force != nullptr) {
    if (std::strcmp(force, "portable") == 0) return portable_micro_kernel();
#if defined(DLION_HAVE_AVX2_KERNEL)
    if (std::strcmp(force, "avx2") == 0 && cpu_has_avx2_fma()) {
      return avx2_micro_kernel();
    }
#endif
    // Unknown or unsupported request: fall through to auto-detection.
  }
#if defined(DLION_HAVE_AVX2_KERNEL)
  if (cpu_has_avx2_fma()) return avx2_micro_kernel();
#endif
  return portable_micro_kernel();
}
}  // namespace

const MicroKernel& portable_micro_kernel() {
  static const MicroKernel kernel{kPortableMR, kPortableNR, &portable_tile,
                                  "portable-4x8"};
  return kernel;
}

const MicroKernel& active_micro_kernel() {
  // Chosen once per process: the choice never changes afterwards, so every
  // GEMM in a run uses the same kernel (per-host determinism).
  static const MicroKernel& kernel = choose_kernel();
  return kernel;
}

}  // namespace dlion::tensor::detail

// Reference GEMM: the pre-blocking naive kernels, kept verbatim as the
// conformance oracle for the packed kernels (tests/tensor/
// gemm_conformance_test.cpp) and as the "before" side of the tracked
// hot-path benchmark (bench/hotpath.cpp -> BENCH_hotpath.json).
//
// These are intentionally simple row-loop kernels with no packing, no cache
// blocking, and no threading. Do not optimize them: their value is being
// obviously correct and representing the pre-PR baseline.
#pragma once

#include <cstddef>

namespace dlion::tensor {

/// C = alpha * op(A) * op(B) + beta * C, row-major, serial naive loops.
/// Same shape conventions as tensor::gemm (see ops.h).
void reference_gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                    std::size_t k, float alpha, const float* a, const float* b,
                    float beta, float* c);

}  // namespace dlion::tensor

#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace dlion::tensor {

std::size_t Shape::num_elements() const {
  std::size_t n = 1;
  for (std::size_t d : dims_) n *= d;
  return n;
}

std::string Shape::to_string() const {
  std::ostringstream ss;
  ss << "(";
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) ss << ", ";
    ss << dims_[i];
  }
  ss << ")";
  return ss.str();
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_.num_elements(), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (shape_.num_elements() != data_.size()) {
    throw std::invalid_argument("Tensor: shape " + shape_.to_string() +
                                " does not match data size " +
                                std::to_string(data_.size()));
  }
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::reshape(Shape new_shape) {
  if (new_shape.num_elements() != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch (" +
                                shape_.to_string() + " -> " +
                                new_shape.to_string() + ")");
  }
  shape_ = std::move(new_shape);
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
  if (shape_.rank() < 1 || begin > end || end > shape_[0]) {
    throw std::out_of_range("Tensor::slice_rows: bad range");
  }
  std::vector<std::size_t> dims = shape_.dims();
  const std::size_t row_elems = shape_.num_elements() / (dims[0] ? dims[0] : 1);
  dims[0] = end - begin;
  std::vector<float> out(data_.begin() + static_cast<std::ptrdiff_t>(begin * row_elems),
                         data_.begin() + static_cast<std::ptrdiff_t>(end * row_elems));
  return Tensor(Shape(std::move(dims)), std::move(out));
}

}  // namespace dlion::tensor

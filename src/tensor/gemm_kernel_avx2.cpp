// AVX2+FMA micro-kernel TU. Compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt); only this translation unit carries those
// flags, and the dispatcher (gemm_kernel_portable.cpp) only calls into it
// after __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")
// passes, so the binary stays runnable on baseline x86-64.
//
// 6x16 tile: 12 ymm accumulator registers + 2 for B loads + broadcasts fit
// the 16 ymm registers of Haswell+ - the classic BLIS sgemm shape.

#if defined(DLION_HAVE_AVX2_KERNEL)

#include "tensor/gemm_kernel.h"

#include <cstring>

#include "tensor/gemm_microkernel.inl"

namespace dlion::tensor::detail {

namespace {
constexpr int kAvx2MR = 6;
constexpr int kAvx2NR = 16;

void avx2_tile(std::size_t kc, const float* a, const float* b, float alpha,
               float* c, std::size_t ldc, std::size_t mr_eff,
               std::size_t nr_eff) {
  micro_tile_impl<kAvx2MR, kAvx2NR, 32>(kc, a, b, alpha, c, ldc, mr_eff,
                                        nr_eff);
}
}  // namespace

const MicroKernel& avx2_micro_kernel() {
  static const MicroKernel kernel{kAvx2MR, kAvx2NR, &avx2_tile, "avx2-6x16"};
  return kernel;
}

}  // namespace dlion::tensor::detail

#endif  // DLION_HAVE_AVX2_KERNEL

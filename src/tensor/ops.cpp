#include "tensor/ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/scratch.h"
#include "common/thread_pool.h"
#include "tensor/gemm_kernel.h"
#include "tensor/gemm_ref.h"

namespace dlion::tensor {

namespace {
// ---------------------------------------------------------------------------
// Blocked, packed GEMM (GotoBLAS/BLIS decomposition).
//
//   for jc (NC columns of C)            - B panel selection
//     for pc (KC of the k dimension)    - FIXED serial order => determinism
//       pack B(kc x nc) into NR strips  - L2/L3-resident, shared, read-only
//       for ic (MC rows, PARALLEL)      - disjoint C rows per task
//         pack A(mc x kc) into MR strips (thread-local arena)
//         for jr (NR strips)            - B strip stays L1-resident
//           for ir (MR strips)          - micro-kernel: registers only
//
// Each C element is accumulated by exactly one task per (jc, pc) step, the
// pc loop runs in a fixed serial order with a barrier (parallel_for joins),
// and the micro-kernel's p-loop order is fixed, so the floating-point
// addition order per C element never depends on the thread count. That is
// the whole determinism argument - see DESIGN.md "Numeric kernels".
// ---------------------------------------------------------------------------

// Cache blocking. KC*NR floats of B strip (16 KiB at NR=16) stay L1 while a
// full A panel streams; MC*KC floats of packed A (~120 KiB) target L2; the
// packed B panel (KC*NC = 256 KiB) targets L2/L3. MC is a multiple of both
// micro-kernel MR values (4 and 6), NC of both NR values (8 and 16).
constexpr std::size_t kKC = 256;
constexpr std::size_t kMC = 120;
constexpr std::size_t kNC = 256;

// Below this many multiply-adds the packing overhead is not worth it; the
// naive reference kernels run serially instead. The cutoff depends only on
// the problem shape, never on the thread count, so it cannot break
// determinism.
constexpr std::size_t kPackedMulAddThreshold = 1u << 19;  // 512K mul-adds

// Above this many FLOPs the packed driver fans out row blocks over the
// global thread pool (kept from the pre-blocking kernels).
constexpr double kParallelFlopThreshold = 8e6;

std::atomic<bool> g_gemm_parallel{true};

inline std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

// Pack the A block rows [i0, i0+mc) x k-cols [p0, p0+kc) into MR strips:
// dst[strip][(p * MR) + i] = A(i0 + strip*MR + i, p0 + p), zero-padded to a
// full strip. A is (m x k) row-major, or (k x m) when trans_a.
void pack_a(const float* a, bool trans_a, std::size_t m, std::size_t k,
            std::size_t i0, std::size_t mc, std::size_t p0, std::size_t kc,
            std::size_t mr_tile, float* dst) {
  for (std::size_t strip = 0; strip < mc; strip += mr_tile) {
    const std::size_t mr = std::min(mr_tile, mc - strip);
    if (!trans_a) {
      // Rows of A are contiguous in p: copy row by row into the strided
      // strip layout (write stride = mr_tile, a small constant).
      for (std::size_t i = 0; i < mr; ++i) {
        const float* src = a + (i0 + strip + i) * k + p0;
        for (std::size_t p = 0; p < kc; ++p) dst[p * mr_tile + i] = src[p];
      }
    } else {
      // A is (k x m): for fixed p the i-run is contiguous in memory.
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = a + (p0 + p) * m + i0 + strip;
        float* d = dst + p * mr_tile;
        for (std::size_t i = 0; i < mr; ++i) d[i] = src[i];
      }
    }
    if (mr < mr_tile) {
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t i = mr; i < mr_tile; ++i) dst[p * mr_tile + i] = 0.0f;
      }
    }
    dst += kc * mr_tile;
  }
}

// Pack the B block k-rows [p0, p0+kc) x cols [j0, j0+nc) into NR strips:
// dst[strip][(p * NR) + j] = B(p0 + p, j0 + strip*NR + j), zero-padded.
// B is (k x n) row-major, or (n x k) when trans_b.
void pack_b(const float* b, bool trans_b, std::size_t k, std::size_t n,
            std::size_t p0, std::size_t kc, std::size_t j0, std::size_t nc,
            std::size_t nr_tile, float* dst) {
  for (std::size_t strip = 0; strip < nc; strip += nr_tile) {
    const std::size_t nr = std::min(nr_tile, nc - strip);
    if (!trans_b) {
      // Contiguous j-runs for fixed p: contiguous reads AND writes.
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * n + j0 + strip;
        float* d = dst + p * nr_tile;
        for (std::size_t j = 0; j < nr; ++j) d[j] = src[j];
        for (std::size_t j = nr; j < nr_tile; ++j) d[j] = 0.0f;
      }
    } else {
      // B is (n x k): rows of B are contiguous in p.
      for (std::size_t j = 0; j < nr; ++j) {
        const float* src = b + (j0 + strip + j) * k + p0;
        for (std::size_t p = 0; p < kc; ++p) dst[p * nr_tile + j] = src[p];
      }
      if (nr < nr_tile) {
        for (std::size_t p = 0; p < kc; ++p) {
          for (std::size_t j = nr; j < nr_tile; ++j) {
            dst[p * nr_tile + j] = 0.0f;
          }
        }
      }
    }
    dst += kc * nr_tile;
  }
}

// Packed driver. beta has already been applied to C by gemm().
void gemm_packed(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, const float* a, const float* b,
                 float* c) {
  const detail::MicroKernel& mk = detail::active_micro_kernel();
  const std::size_t mr_tile = mk.mr;
  const std::size_t nr_tile = mk.nr;
  // Blocking geometry contract: the MC/NC blocks must be whole multiples of
  // the active micro-tile, or partial strips would overlap across blocks
  // and the fixed k-ordered accumulation (the determinism argument above)
  // would no longer hold per C element.
  DLION_DCHECK(mr_tile > 0 && nr_tile > 0 && kMC % mr_tile == 0 &&
                   kNC % nr_tile == 0,
               "cache blocks must be multiples of the micro-tile");

  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const bool parallel = g_gemm_parallel.load(std::memory_order_relaxed) &&
                        flops > kParallelFlopThreshold;

  common::ScratchArena& arena = common::ScratchArena::tls();
  const std::size_t num_ic = ceil_div(m, kMC);

  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    const std::size_t b_strips = ceil_div(nc, nr_tile);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      common::ScratchArena::Scope scope(arena);
      float* bpanel = arena.alloc_floats(b_strips * kc * nr_tile);
      pack_b(b, trans_b, k, n, pc, kc, jc, nc, nr_tile, bpanel);

      auto process_row_block = [&](std::size_t ic_index) {
        const std::size_t ic = ic_index * kMC;
        const std::size_t mc = std::min(kMC, m - ic);
        // Row blocks tile [0, m) disjointly - the packed panels and the C
        // writes below must stay inside the operand extents.
        DLION_DCHECK(ic < m && ic + mc <= m && pc + kc <= k && jc + nc <= n,
                     "GEMM block escaped its operand");
        const std::size_t a_strips = ceil_div(mc, mr_tile);
        // Each executing thread packs into its own arena, so parallel row
        // blocks never contend (the caller's arena simply nests a scope).
        common::ScratchArena& task_arena = common::ScratchArena::tls();
        common::ScratchArena::Scope task_scope(task_arena);
        float* apanel = task_arena.alloc_floats(a_strips * kc * mr_tile);
        pack_a(a, trans_a, m, k, ic, mc, pc, kc, mr_tile, apanel);

        for (std::size_t jr = 0; jr < nc; jr += nr_tile) {
          const float* bstrip = bpanel + (jr / nr_tile) * kc * nr_tile;
          const std::size_t nr_eff = std::min(nr_tile, nc - jr);
          for (std::size_t ir = 0; ir < mc; ir += mr_tile) {
            const float* astrip = apanel + (ir / mr_tile) * kc * mr_tile;
            mk.tile(kc, astrip, bstrip, alpha, c + (ic + ir) * n + jc + jr, n,
                    std::min(mr_tile, mc - ir), nr_eff);
          }
        }
      };

      if (parallel && num_ic > 1) {
        common::ThreadPool::global().parallel_for(0, num_ic,
                                                  process_row_block,
                                                  /*grain=*/1);
      } else {
        for (std::size_t i = 0; i < num_ic; ++i) process_row_block(i);
      }
    }
  }
}
}  // namespace

bool set_gemm_parallel(bool enabled) {
  return g_gemm_parallel.exchange(enabled, std::memory_order_relaxed);
}

const char* gemm_kernel_name() { return detail::active_micro_kernel().name; }

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (m == 0 || n == 0) return;
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
  } else if (beta != 1.0f) {
    scale(beta, std::span<float>(c, m * n));
  }
  if (k == 0 || alpha == 0.0f) return;

  if (m * n * k < kPackedMulAddThreshold) {
    // Small problems: packing overhead dominates, use the naive kernels
    // (beta already applied above).
    reference_gemm(trans_a, trans_b, m, n, k, alpha, a, b, 1.0f, c);
    return;
  }
  gemm_packed(trans_a, trans_b, m, n, k, alpha, a, b, c);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2 ||
      a.shape()[1] != b.shape()[0]) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                a.shape().to_string() + " x " +
                                b.shape().to_string());
  }
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c(Shape{m, n});
  gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

// ---------------------------------------------------------------------------
// Vector kernels. These run over full model-sized vectors every training
// step (weighted_update, the optimizers, Max-N selection), so they are
// written restrict-qualified with 4-way unrolling to keep the
// auto-vectorizer engaged even at moderate optimization levels. Partial
// accumulators are combined in a fixed order, so results are deterministic
// (though not bit-identical to the pre-unroll single-accumulator loops).
// ---------------------------------------------------------------------------

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  const float* __restrict xp = x.data();
  float* __restrict yp = y.data();
  const std::size_t n = x.size();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    yp[i + 0] += alpha * xp[i + 0];
    yp[i + 1] += alpha * xp[i + 1];
    yp[i + 2] += alpha * xp[i + 2];
    yp[i + 3] += alpha * xp[i + 3];
  }
  for (std::size_t i = n4; i < n; ++i) yp[i] += alpha * xp[i];
}

void scale(float alpha, std::span<float> x) {
  float* __restrict xp = x.data();
  const std::size_t n = x.size();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    xp[i + 0] *= alpha;
    xp[i + 1] *= alpha;
    xp[i + 2] *= alpha;
    xp[i + 3] *= alpha;
  }
  for (std::size_t i = n4; i < n; ++i) xp[i] *= alpha;
}

double sum(std::span<const float> x) {
  const float* __restrict xp = x.data();
  const std::size_t n = x.size();
  const std::size_t n4 = n & ~std::size_t{3};
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::size_t i = 0; i < n4; i += 4) {
    s0 += xp[i + 0];
    s1 += xp[i + 1];
    s2 += xp[i + 2];
    s3 += xp[i + 3];
  }
  double s = (s0 + s2) + (s1 + s3);
  for (std::size_t i = n4; i < n; ++i) s += xp[i];
  return s;
}

double dot(std::span<const float> x, std::span<const float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  const float* __restrict xp = x.data();
  const float* __restrict yp = y.data();
  const std::size_t n = x.size();
  const std::size_t n4 = n & ~std::size_t{3};
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::size_t i = 0; i < n4; i += 4) {
    s0 += static_cast<double>(xp[i + 0]) * yp[i + 0];
    s1 += static_cast<double>(xp[i + 1]) * yp[i + 1];
    s2 += static_cast<double>(xp[i + 2]) * yp[i + 2];
    s3 += static_cast<double>(xp[i + 3]) * yp[i + 3];
  }
  double s = (s0 + s2) + (s1 + s3);
  for (std::size_t i = n4; i < n; ++i) {
    s += static_cast<double>(xp[i]) * yp[i];
  }
  return s;
}

double l2_norm(std::span<const float> x) { return std::sqrt(dot(x, x)); }

float max_abs(std::span<const float> x) {
  const float* __restrict xp = x.data();
  const std::size_t n = x.size();
  const std::size_t n4 = n & ~std::size_t{3};
  float m0 = 0.0f, m1 = 0.0f, m2 = 0.0f, m3 = 0.0f;
  for (std::size_t i = 0; i < n4; i += 4) {
    m0 = std::max(m0, std::fabs(xp[i + 0]));
    m1 = std::max(m1, std::fabs(xp[i + 1]));
    m2 = std::max(m2, std::fabs(xp[i + 2]));
    m3 = std::max(m3, std::fabs(xp[i + 3]));
  }
  float m = std::max(std::max(m0, m2), std::max(m1, m3));
  for (std::size_t i = n4; i < n; ++i) m = std::max(m, std::fabs(xp[i]));
  return m;
}

void add_bias_rows(Tensor& m_by_n, const Tensor& bias) {
  if (m_by_n.shape().rank() != 2 || bias.size() != m_by_n.shape()[1]) {
    throw std::invalid_argument("add_bias_rows: shape mismatch");
  }
  const std::size_t rows = m_by_n.shape()[0], cols = m_by_n.shape()[1];
  const float* __restrict bp = bias.data();
  for (std::size_t r = 0; r < rows; ++r) {
    float* __restrict row = m_by_n.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bp[c];
  }
}

void add_bias_rows_relu(float* data, std::size_t rows, std::size_t cols,
                        const float* bias, float* mask) {
  const float* __restrict bp = bias;
  for (std::size_t r = 0; r < rows; ++r) {
    float* __restrict row = data + r * cols;
    float* __restrict mrow = mask + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      const float v = row[c] + bp[c];
      const bool pos = v > 0.0f;
      row[c] = pos ? v : 0.0f;
      mrow[c] = pos ? 1.0f : 0.0f;
    }
  }
}

void add_bias_rows_relu(float* data, std::size_t rows, std::size_t cols,
                        const float* bias) {
  const float* __restrict bp = bias;
  for (std::size_t r = 0; r < rows; ++r) {
    float* __restrict row = data + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      const float v = row[c] + bp[c];
      row[c] = v > 0.0f ? v : 0.0f;
    }
  }
}

void add_bias_channels(float* data, std::size_t images, std::size_t channels,
                       std::size_t plane, const float* bias) {
  for (std::size_t i = 0; i < images; ++i) {
    for (std::size_t ch = 0; ch < channels; ++ch) {
      float* __restrict p = data + (i * channels + ch) * plane;
      const float b = bias[ch];
      for (std::size_t x = 0; x < plane; ++x) p[x] += b;
    }
  }
}

void add_bias_channels_relu(float* data, std::size_t images,
                            std::size_t channels, std::size_t plane,
                            const float* bias, float* mask) {
  for (std::size_t i = 0; i < images; ++i) {
    for (std::size_t ch = 0; ch < channels; ++ch) {
      const std::size_t off = (i * channels + ch) * plane;
      float* __restrict p = data + off;
      float* __restrict mp = mask + off;
      const float b = bias[ch];
      for (std::size_t x = 0; x < plane; ++x) {
        const float v = p[x] + b;
        const bool pos = v > 0.0f;
        p[x] = pos ? v : 0.0f;
        mp[x] = pos ? 1.0f : 0.0f;
      }
    }
  }
}

void apply_mask(const float* grad, const float* mask, float* dst,
                std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    dst[i + 0] = grad[i + 0] * mask[i + 0];
    dst[i + 1] = grad[i + 1] * mask[i + 1];
    dst[i + 2] = grad[i + 2] * mask[i + 2];
    dst[i + 3] = grad[i + 3] * mask[i + 3];
  }
  for (std::size_t i = n4; i < n; ++i) dst[i] = grad[i] * mask[i];
}

void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* col) {
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const bool inside = iy >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(height) &&
                                ix >= 0 &&
                                ix < static_cast<std::ptrdiff_t>(width);
            col[idx++] =
                inside
                    ? img[(c * height + static_cast<std::size_t>(iy)) * width +
                          static_cast<std::size_t>(ix)]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* img) {
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const float v = col[idx++];
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(height) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(width)) {
              img[(c * height + static_cast<std::size_t>(iy)) * width +
                  static_cast<std::size_t>(ix)] += v;
            }
          }
        }
      }
    }
  }
}

}  // namespace dlion::tensor

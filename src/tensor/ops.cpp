#include "tensor/ops.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/thread_pool.h"

namespace dlion::tensor {

namespace {
// Above this many FLOPs, the row-disjoint kernels fan out over the global
// thread pool. Rows are processed independently and each row's additions
// keep their serial order, so results are bit-identical at any thread count.
constexpr double kParallelFlopThreshold = 8e6;

// One output row of the non-transposed kernel: C.row(i) += alpha *
// A.row(i) * B, jp order so the innermost loop streams through B and C.
inline void gemm_nn_row(std::size_t i, std::size_t n, std::size_t k,
                        float alpha, const float* a, const float* b,
                        float* c) {
  for (std::size_t p = 0; p < k; ++p) {
    const float av = alpha * a[i * k + p];
    if (av == 0.0f) continue;
    const float* brow = b + p * n;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
  }
}

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, const float* b, float* c) {
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  if (flops > kParallelFlopThreshold) {
    common::ThreadPool::global().parallel_for(
        0, m, [=](std::size_t i) { gemm_nn_row(i, n, k, alpha, a, b, c); },
        /*grain=*/4);
  } else {
    for (std::size_t i = 0; i < m; ++i) gemm_nn_row(i, n, k, alpha, a, b, c);
  }
}

inline void gemm_nt_row(std::size_t i, std::size_t n, std::size_t k,
                        float alpha, const float* a, const float* b,
                        float* c) {
  const float* arow = a + i * k;
  for (std::size_t j = 0; j < n; ++j) {
    const float* brow = b + j * k;
    float acc = 0.0f;
    for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
    c[i * n + j] += alpha * acc;
  }
}

void gemm_nt(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, const float* b, float* c) {
  // B is (n x k): C[i][j] += alpha * dot(A.row(i), B.row(j))
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  if (flops > kParallelFlopThreshold) {
    common::ThreadPool::global().parallel_for(
        0, m, [=](std::size_t i) { gemm_nt_row(i, n, k, alpha, a, b, c); },
        /*grain=*/4);
  } else {
    for (std::size_t i = 0; i < m; ++i) gemm_nt_row(i, n, k, alpha, a, b, c);
  }
}

void gemm_tn(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, const float* b, float* c) {
  // A is (k x m): C[i][j] += alpha * sum_p A[p][i] * B[p][j]
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void gemm_tt(std::size_t m, std::size_t n, std::size_t k, float alpha,
             const float* a, const float* b, float* c) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += a[p * m + i] * b[j * k + p];
      c[i * n + j] += alpha * acc;
    }
  }
}
}  // namespace

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (beta == 0.0f) {
    std::memset(c, 0, m * n * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (!trans_a && !trans_b) {
    gemm_nn(m, n, k, alpha, a, b, c);
  } else if (!trans_a && trans_b) {
    gemm_nt(m, n, k, alpha, a, b, c);
  } else if (trans_a && !trans_b) {
    gemm_tn(m, n, k, alpha, a, b, c);
  } else {
    gemm_tt(m, n, k, alpha, a, b, c);
  }
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  if (a.shape().rank() != 2 || b.shape().rank() != 2 ||
      a.shape()[1] != b.shape()[0]) {
    throw std::invalid_argument("matmul: incompatible shapes " +
                                a.shape().to_string() + " x " +
                                b.shape().to_string());
  }
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c(Shape{m, n});
  gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  return c;
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(float alpha, std::span<float> x) {
  for (float& v : x) v *= alpha;
}

double sum(std::span<const float> x) {
  double s = 0;
  for (float v : x) s += v;
  return s;
}

double dot(std::span<const float> x, std::span<const float> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    s += static_cast<double>(x[i]) * y[i];
  }
  return s;
}

double l2_norm(std::span<const float> x) { return std::sqrt(dot(x, x)); }

float max_abs(std::span<const float> x) {
  float m = 0.0f;
  for (float v : x) {
    const float a = std::fabs(v);
    if (a > m) m = a;
  }
  return m;
}

void add_bias_rows(Tensor& m_by_n, const Tensor& bias) {
  if (m_by_n.shape().rank() != 2 || bias.size() != m_by_n.shape()[1]) {
    throw std::invalid_argument("add_bias_rows: shape mismatch");
  }
  const std::size_t rows = m_by_n.shape()[0], cols = m_by_n.shape()[1];
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = m_by_n.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void im2col(const float* img, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* col) {
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const bool inside = iy >= 0 &&
                                iy < static_cast<std::ptrdiff_t>(height) &&
                                ix >= 0 &&
                                ix < static_cast<std::ptrdiff_t>(width);
            col[idx++] =
                inside
                    ? img[(c * height + static_cast<std::size_t>(iy)) * width +
                          static_cast<std::size_t>(ix)]
                    : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw,
            std::size_t stride, std::size_t pad, float* img) {
  const std::size_t out_h = conv_out_dim(height, kh, stride, pad);
  const std::size_t out_w = conv_out_dim(width, kw, stride, pad);
  std::size_t idx = 0;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ky = 0; ky < kh; ++ky) {
      for (std::size_t kx = 0; kx < kw; ++kx) {
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride + ky) -
              static_cast<std::ptrdiff_t>(pad);
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride + kx) -
                static_cast<std::ptrdiff_t>(pad);
            const float v = col[idx++];
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(height) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(width)) {
              img[(c * height + static_cast<std::size_t>(iy)) * width +
                  static_cast<std::size_t>(ix)] += v;
            }
          }
        }
      }
    }
  }
}

}  // namespace dlion::tensor

// Keyed message queues and a pub/sub bus - the in-process equivalents of
// the prototype's Redis Lists and Redis PUB/SUB (§4.2).
//
// The prototype keeps two queues per worker: a *control queue* for
// synchronization signals and a *data queue* where partial gradients are
// pushed under unique keys, one entry per weight variable ("the granularity
// of data transmission is ... individual weight variables"). These classes
// reproduce those semantics for code that wants explicit queue handling
// rather than the callback-based Fabric: KeyedQueue is a multimap-backed
// LPUSH/RPOP store, PubSubBus delivers to all current subscribers of a
// channel.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "comm/message.h"

namespace dlion::comm {

/// FIFO queues addressed by string key (Redis List semantics: push to the
/// tail, pop from the head; pop on a missing/empty key returns nullopt).
class KeyedQueue {
 public:
  void push(const std::string& key, MessagePtr msg);
  std::optional<MessagePtr> pop(const std::string& key);
  /// Peek without removing.
  std::optional<MessagePtr> front(const std::string& key) const;
  std::size_t size(const std::string& key) const;
  std::size_t total_size() const;
  /// Keys that currently hold at least one message, sorted.
  std::vector<std::string> keys() const;
  /// Remove all entries under a key; returns how many were dropped.
  std::size_t clear(const std::string& key);

 private:
  std::map<std::string, std::deque<MessagePtr>> queues_;
};

/// Publish/subscribe bus (Redis PUB/SUB semantics: a published message is
/// delivered to every *current* subscriber of the channel and is not
/// stored; subscribers added later miss it).
class PubSubBus {
 public:
  using Handler = std::function<void(const std::string& channel,
                                     const MessagePtr&)>;
  using SubscriptionId = std::size_t;

  SubscriptionId subscribe(const std::string& channel, Handler handler);
  /// Removes the subscription; unknown ids are ignored.
  void unsubscribe(SubscriptionId id);
  /// Returns the number of subscribers the message was delivered to.
  std::size_t publish(const std::string& channel, MessagePtr msg);
  std::size_t subscriber_count(const std::string& channel) const;

 private:
  struct Subscription {
    std::string channel;
    Handler handler;
  };
  std::map<SubscriptionId, Subscription> subs_;
  SubscriptionId next_id_ = 0;
};

/// The per-worker queue pair from §4.2.
struct WorkerQueues {
  KeyedQueue control;
  KeyedQueue data;

  /// The prototype's keying scheme: one data-queue key per (sender,
  /// iteration, weight variable).
  static std::string data_key(std::size_t from, std::uint64_t iteration,
                              std::uint32_t var_index);

  /// Keying for elastic-membership bootstrap transfers: one data-queue key
  /// per (donor, roster epoch, first variable of the chunk's range). Epoch
  /// in the key keeps chunks from a superseded join attempt from colliding
  /// with a later occupant of the same slot.
  static std::string bootstrap_key(std::size_t from, std::uint64_t epoch,
                                   std::uint32_t first_var);
};

}  // namespace dlion::comm

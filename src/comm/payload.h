// Zero-copy data-plane payloads (DESIGN.md "Zero-copy data plane").
//
// Data-lane messages (gradients, weight snapshots, bootstrap chunks, model
// publishes) carry *views* into refcounted arena blocks instead of owned
// vectors. The building blocks:
//
//  * PayloadArena - a pool of refcounted, 64-byte-aligned, grow-only blocks
//    (the `common/scratch.h` block shape plus refcounting). A block is
//    recycled only when no Payload pins it, so in-flight messages keep
//    their backing storage alive by construction: a dangling view is
//    impossible. Recycling scans blocks in index order, so reuse is
//    deterministic for a deterministic message schedule.
//
//  * Payload<T> - an immutable view {data, size, generation} plus the
//    shared handle that pins its block. Copying a Payload is an atomic
//    incref: no allocation, no data copy. `generation` is the block's reuse
//    counter captured at creation; debug builds check it on access, so a
//    view that somehow outlived a recycle fails loudly instead of reading
//    someone else's bytes.
//
//  * PayloadWriter - the single *production write* of a payload's bytes:
//    stage scratch space in an arena block, fill it, commit the final
//    element count. One writer packs any number of payloads; a payload
//    never straddles blocks (the writer acquires a fresh block when the
//    current one cannot fit the next stage).
//
// Copy accounting: producing bytes through a writer is not a copy - it is
// the first materialization of that payload. Duplicating bytes that already
// exist as a payload (Payload construction from an owned vector, codec
// decode rebuilding payloads from wire bytes) increments the global
// payload-copy counters below; the hot data path must keep them flat
// (bench/hotpath "comm" section, CI perf-smoke).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/thread_affinity.h"

namespace dlion::comm {

namespace detail {

/// One refcounted arena block. `generation` counts recycles; Payloads
/// capture it at creation so stale views are detectable in debug builds.
struct PayloadBlock {
  static constexpr std::size_t kAlignment = 64;

  struct AlignedByteDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t(kAlignment));
    }
  };

  std::unique_ptr<std::byte[], AlignedByteDelete> data;
  std::size_t capacity = 0;  ///< bytes
  std::size_t used = 0;      ///< bump cursor (bytes)
  std::uint64_t generation = 0;
};

/// Global payload-copy counters (see file comment). Atomic so sanitizer
/// builds with a live GEMM pool stay race-free; relaxed - these are
/// counters, not synchronization.
void note_payload_copy(std::size_t bytes);

/// Freshly allocated block of exactly `bytes` capacity (rounded up to the
/// alignment), outside any arena - used by the materializing Payload
/// constructors and the codec decode path.
std::shared_ptr<PayloadBlock> make_block(std::size_t bytes);

}  // namespace detail

using PayloadHandle = std::shared_ptr<detail::PayloadBlock>;

/// Payload copies performed since process start / the last difference the
/// caller took. Production writes through a PayloadWriter do not count.
std::uint64_t payload_copy_count();
std::uint64_t payload_copy_bytes();

/// Immutable refcounted view of `size` elements of T. Copying is an atomic
/// incref; the viewed block cannot be recycled while any view pins it.
template <typename T>
class Payload {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Payload() = default;

  /// View over [data, data + size) inside the block `pin` holds. The
  /// normal way to obtain one is PayloadWriter::commit/copy.
  Payload(const T* data, std::size_t size, PayloadHandle pin)
      : data_(data),
        size_(static_cast<std::uint32_t>(size)),
        generation_(pin != nullptr ? pin->generation : 0),
        pin_(std::move(pin)) {}

  /// Materializing constructors: allocate an exact-size self-owned block
  /// and duplicate the elements into it. Counted as payload copies - test
  /// and codec-boundary convenience, not the hot path.
  Payload(std::initializer_list<T> init)
      : Payload(init.begin(), init.size(), kMaterialize) {}
  Payload(const std::vector<T>& v)  // NOLINT(google-explicit-constructor)
      : Payload(v.data(), v.size(), kMaterialize) {}

  /// Materialize `count` elements from raw (possibly unaligned) memory -
  /// the codec's decode path. Counted as a payload copy.
  static Payload materialize(const void* src, std::size_t count) {
    return Payload(src, count, kMaterialize);
  }
  Payload& operator=(const std::vector<T>& v) {
    return *this = Payload(v);
  }
  Payload& operator=(std::initializer_list<T> init) {
    return *this = Payload(init);
  }

  Payload(const Payload&) = default;
  Payload(Payload&&) noexcept = default;
  Payload& operator=(const Payload&) = default;
  Payload& operator=(Payload&&) noexcept = default;

  std::span<const T> span() const {
    check_generation();
    return {data_, size_};
  }
  const T* data() const {
    check_generation();
    return data_;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const {
    DLION_DCHECK(i < size_);
    check_generation();
    return data_[i];
  }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  /// Block reuse counter captured at creation (0 for detached payloads).
  std::uint64_t generation() const { return generation_; }
  const PayloadHandle& pin() const { return pin_; }

  friend bool operator==(const Payload& a, const Payload& b) {
    if (a.size() != b.size()) return false;
    if (a.size() == 0) return true;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
  }
  friend bool operator==(const Payload& a, const std::vector<T>& b) {
    if (a.size() != b.size()) return false;
    if (a.size() == 0) return true;
    return std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
  }
  friend bool operator==(const std::vector<T>& a, const Payload& b) {
    return b == a;
  }

  /// Owned duplicate (tests / diagnostics; counted as a copy).
  std::vector<T> to_vector() const {
    if (size_ > 0) detail::note_payload_copy(size_ * sizeof(T));
    return std::vector<T>(begin(), end());
  }

 private:
  struct MaterializeTag {};
  static constexpr MaterializeTag kMaterialize{};

  Payload(const void* src, std::size_t size, MaterializeTag) {
    size_ = static_cast<std::uint32_t>(size);
    if (size == 0) return;
    pin_ = detail::make_block(size * sizeof(T));
    std::memcpy(pin_->data.get(), src, size * sizeof(T));
    pin_->used = size * sizeof(T);
    data_ = reinterpret_cast<const T*>(pin_->data.get());
    generation_ = pin_->generation;
    detail::note_payload_copy(size * sizeof(T));
  }

  void check_generation() const {
    DLION_DCHECK(pin_ == nullptr || generation_ == pin_->generation,
                 "payload view outlived its block's recycle");
  }

  const T* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint64_t generation_ = 0;
  PayloadHandle pin_;
};

/// Production write into a fresh standalone exact-size block, outside any
/// arena - for producers without an arena in reach (gradient-selection
/// compatibility entry points, tests). Like PayloadWriter::copy this is the
/// payload's first materialization, not a counted copy.
template <typename T>
Payload<T> make_payload(std::span<const T> src) {
  if (src.empty()) return {};
  PayloadHandle block = detail::make_block(src.size() * sizeof(T));
  std::memcpy(block->data.get(), src.data(), src.size() * sizeof(T));
  block->used = src.size() * sizeof(T);
  const T* data = reinterpret_cast<const T*>(block->data.get());
  return Payload<T>(data, src.size(), std::move(block));
}

/// Weight-bearing payload: one Payload per weight variable (the wire format
/// only needs per-part sizes, so parts replace nn::Snapshot tensors on the
/// data lane 1:1).
struct WeightPayload {
  std::vector<Payload<float>> parts;

  std::size_t num_values() const {
    std::size_t n = 0;
    for (const auto& p : parts) n += p.size();
    return n;
  }
};

/// Pool of refcounted blocks. acquire() recycles the first block (index
/// order - deterministic) whose only owner is the arena, or grows.
class PayloadArena {
 public:
  static constexpr std::size_t kMinBlockBytes = 1 << 16;  // 64 KiB

  PayloadArena() = default;
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  /// A block with at least `min_bytes` free capacity and `used` reset to 0.
  /// Recycling bumps the block's generation, invalidating (detectably) any
  /// stale view that failed to pin it.
  PayloadHandle acquire(std::size_t min_bytes);

  std::size_t blocks() const { return blocks_.size(); }
  /// Blocks currently pinned by at least one live Payload or writer.
  std::size_t pinned_blocks() const;
  std::size_t capacity_bytes() const;

 private:
  /// Block acquisition/recycling is single-threaded by contract (Payload
  /// *copies* are thread-safe atomic increfs; the arena itself is not).
  /// Checked in debug/sanitize builds.
  common::ThreadAffinity affinity_;
  std::vector<PayloadHandle> blocks_;
};

/// Packs payload production writes into arena blocks. Not thread-safe (all
/// messaging happens on the simulation thread).
class PayloadWriter {
 public:
  /// `hint_bytes` sizes the first block acquisition; larger payloads simply
  /// acquire larger blocks as needed.
  explicit PayloadWriter(PayloadArena& arena,
                         std::size_t hint_bytes = PayloadArena::kMinBlockBytes)
      : arena_(&arena), hint_bytes_(hint_bytes) {}

  /// Mutable staging region for up to `max_elems` elements. Fill it, then
  /// seal with commit(). stage/commit calls pair up strictly.
  template <typename T>
  T* stage(std::size_t max_elems) {
    DLION_DCHECK(staged_bytes_ == 0, "stage() without matching commit()");
    const std::size_t bytes = max_elems * sizeof(T);
    std::byte* p = reserve(bytes, alignof(T));
    staged_bytes_ = bytes;
    return reinterpret_cast<T*>(p);
  }

  /// Seal the staged region at its final element count (<= the staged
  /// maximum); the unused tail is reclaimed for the next stage.
  template <typename T>
  Payload<T> commit(T* staged, std::size_t count) {
    DLION_DCHECK(staged != nullptr || count == 0);
    DLION_DCHECK(block_ != nullptr);
    DLION_DCHECK(reinterpret_cast<std::byte*>(staged) ==
                     block_->data.get() + staged_offset_,
                 "commit() pointer is not the last stage()");
    DLION_DCHECK(count * sizeof(T) <= staged_bytes_,
                 "commit() larger than staged");
    block_->used = staged_offset_ + count * sizeof(T);
    staged_bytes_ = 0;
    return Payload<T>(staged, count, block_);
  }

  /// Production write of an existing span: stage + memcpy + commit. This is
  /// the one-time materialization of a payload, not a counted copy.
  template <typename T>
  Payload<T> copy(std::span<const T> src) {
    T* p = stage<T>(src.size());
    if (!src.empty()) std::memcpy(p, src.data(), src.size() * sizeof(T));
    return commit(p, src.size());
  }

 private:
  /// Cursor into the current block, aligned to `align`, with `bytes` free -
  /// acquiring a fresh block when the current one cannot fit.
  std::byte* reserve(std::size_t bytes, std::size_t align);

  PayloadArena* arena_;
  std::size_t hint_bytes_;
  PayloadHandle block_;
  std::size_t staged_offset_ = 0;
  std::size_t staged_bytes_ = 0;
};

}  // namespace dlion::comm

// The message fabric: typed message delivery between workers over the
// simulated network.
//
// Plays the role of the prototype's Redis deployment. Data-queue messages
// (gradients, weights) are charged to the network at their encoded size
// multiplied by `byte_scale` - the ratio between the nominal model size
// (5 MB Cipher / 17 MB MobileNet) and the actually-trained model, so traffic
// volume matches the paper's regardless of bench scale (see DESIGN.md).
// Control-queue messages are small and charged at their fixed size.
#pragma once

#include <functional>
#include <vector>

#include "comm/codec.h"
#include "comm/message.h"
#include "sim/network.h"

namespace dlion::comm {

class Fabric {
 public:
  using Handler = std::function<void(std::size_t from, MessagePtr msg)>;

  /// `byte_scale` multiplies data-queue wire sizes (>= 0; 1 = exact).
  Fabric(sim::Network& network, double byte_scale = 1.0);

  std::size_t size() const { return network_->size(); }

  /// Register worker `w`'s message handler (one per worker).
  void attach(std::size_t worker, Handler handler);

  /// Send `msg` from worker `from` to worker `to`.
  void send(std::size_t from, std::size_t to, Message msg);

  /// Send `msg` to every other worker.
  void broadcast(std::size_t from, const Message& msg);

  /// Simulated wire size this fabric charges for a message.
  common::Bytes charged_bytes(const Message& msg) const;

  sim::Network& network() { return *network_; }
  double byte_scale() const { return byte_scale_; }

 private:
  sim::Network* network_;
  double byte_scale_;
  std::vector<Handler> handlers_;
};

}  // namespace dlion::comm

// The message fabric: typed message delivery between workers over the
// simulated network.
//
// Plays the role of the prototype's Redis deployment. Data-queue messages
// (gradients, weights) are charged to the network at their encoded size
// multiplied by `byte_scale` - the ratio between the nominal model size
// (5 MB Cipher / 17 MB MobileNet) and the actually-trained model, so traffic
// volume matches the paper's regardless of bench scale (see DESIGN.md).
// Control-queue messages are small and charged at their fixed size.
//
// Fault-tolerance semantics:
//  - Workers attach/detach dynamically (crash = detach, recover = attach).
//    A message arriving at a detached worker is counted as a *dead letter*
//    and silently discarded - delivery never throws.
//  - `send_reliable` implements an at-most-once-delivered, at-least-once-
//    attempted control-plane channel: each attempt is acknowledged at the
//    transport level (Ack messages, never surfaced to worker handlers),
//    unacked attempts are retried with exponential backoff, duplicates are
//    suppressed at the receiver, and callers learn the final outcome via a
//    callback (used by DKT weight pulls to fall back to the next-best peer).
#pragma once

#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "comm/codec.h"
#include "comm/message.h"
#include "obs/obs.h"
#include "sim/network.h"

namespace dlion::comm {

/// Retry behaviour of the reliable control-plane channel. Attempt i
/// (0-based) times out after timeout_s * backoff^i.
struct RetryPolicy {
  double timeout_s = 1.0;
  double backoff = 2.0;
  std::size_t max_attempts = 4;
};

class Fabric {
 public:
  using Handler = std::function<void(std::size_t from, MessagePtr msg)>;
  /// Outcome callback for reliable sends: acked = true once the receiver's
  /// ack arrives; false when every attempt timed out.
  using ReliableCallback = std::function<void(bool acked)>;

  /// `byte_scale` multiplies data-queue wire sizes (>= 0; 1 = exact).
  Fabric(sim::Network& network, double byte_scale = 1.0);

  std::size_t size() const { return network_->size(); }

  /// Register worker `w`'s message handler (one per worker).
  void attach(std::size_t worker, Handler handler);
  /// Unregister worker `w` (crash). In-flight messages to it dead-letter.
  void detach(std::size_t worker);
  bool attached(std::size_t worker) const;

  /// Send `msg` from worker `from` to worker `to` (fire-and-forget).
  void send(std::size_t from, std::size_t to, Message msg);

  /// Send `msg` to every other worker. The message is materialized and its
  /// wire size computed exactly once; all n-1 sends share one MessagePtr.
  void broadcast(std::size_t from, const Message& msg);

  /// Reliable control-plane send (ack + timeout + exponential backoff).
  /// Returns the request's sequence number. `done` (optional) fires exactly
  /// once with the final outcome.
  std::uint64_t send_reliable(std::size_t from, std::size_t to, Message msg,
                              const RetryPolicy& policy = {},
                              ReliableCallback done = {});

  /// Messages that arrived at a worker with no handler attached.
  std::uint64_t dead_letters() const { return dead_letters_; }
  std::uint64_t dead_letters(std::size_t to) const {
    return dead_letters_to_.at(to);
  }
  /// Reliable-channel retransmissions and failures so far.
  std::uint64_t reliable_retries() const { return reliable_retries_; }
  std::uint64_t reliable_failures() const { return reliable_failures_; }
  /// Reliable requests still awaiting an ack.
  std::size_t reliable_pending() const { return pending_.size(); }

  /// Simulated wire size this fabric charges for a message.
  common::Bytes charged_bytes(const Message& msg) const;
  /// Overload for callers that already hold the concrete update: computes
  /// the same value without constructing a Message variant (which would
  /// deep-copy the whole gradient payload just to measure it).
  common::Bytes charged_bytes(const GradientUpdate& update) const;

  sim::Network& network() { return *network_; }
  double byte_scale() const { return byte_scale_; }

  /// Attach an observer (non-owning; nullptr detaches). Sends are counted
  /// by message type (`comm.fabric.sent{type}`, `.sent_bytes{type}`), the
  /// dead-letter / retry / failure tallies are mirrored into the registry
  /// (existing accessors keep working), and dead letters, retries, and
  /// reliable failures appear as instants on a "fabric / control" track.
  void set_obs(obs::Observability* o);

 private:
  enum class Kind { kPlain, kReliable, kAck };

  /// Cached per-message-type registry handles (index = variant index).
  struct ObsTypeHandles {
    obs::Counter* sent = nullptr;
    obs::Counter* sent_bytes = nullptr;
  };

  struct PendingReliable {
    std::size_t from = 0;
    std::size_t to = 0;
    MessagePtr msg;
    common::Bytes bytes = 0;
    RetryPolicy policy;
    std::size_t attempt = 0;  // attempts already transmitted
    ReliableCallback done;
    sim::EventId timer = 0;
  };

  sim::Engine& engine() { return network_->engine(); }
  /// Hand `msg` to the receiver's handler; dead-letters if detached.
  /// `flow` is the transmission's causal-flow id (flow-end is recorded on
  /// the receiver's track just before the handler runs).
  bool deliver(std::size_t from, std::size_t to, const MessagePtr& msg,
               FlowId flow);
  void transmit(std::size_t from, std::size_t to, MessagePtr msg,
                common::Bytes bytes, Kind kind, std::uint64_t seq);
  void send_ack(std::size_t from, std::size_t to, std::uint64_t seq);
  void on_ack(std::uint64_t seq);
  void start_attempt(std::uint64_t seq);
  void on_timeout(std::uint64_t seq);

  sim::Network* network_;
  double byte_scale_;
  std::vector<Handler> handlers_;
  std::vector<std::uint64_t> dead_letters_to_;
  std::uint64_t dead_letters_ = 0;
  std::uint64_t next_seq_ = 1;
  /// Per-sender transmission counters feeding make_flow_id. Advance
  /// unconditionally (observer attached or not) so obs-on and obs-off runs
  /// assign identical flow ids — and, since the ids never touch delivery,
  /// stay bit-identical altogether.
  std::vector<std::uint64_t> flow_seq_;
  std::map<std::uint64_t, PendingReliable> pending_;
  /// Per-receiver reliable seqs already delivered (duplicate suppression).
  std::vector<std::unordered_set<std::uint64_t>> delivered_seqs_;
  std::uint64_t reliable_retries_ = 0;
  std::uint64_t reliable_failures_ = 0;

  obs::Observability* obs_ = nullptr;  // non-owning, optional
  std::vector<ObsTypeHandles> obs_types_;
  obs::Counter* obs_dead_letters_ = nullptr;
  obs::Counter* obs_retries_ = nullptr;
  obs::Counter* obs_failures_ = nullptr;
  obs::TrackId obs_track_ = 0;  // "fabric / control"
  /// Flow endpoints: the per-worker "workers / worker i" tracks (shared
  /// with core::Worker via the tracer's find-or-create semantics).
  std::vector<obs::TrackId> obs_worker_tracks_;
};

}  // namespace dlion::comm

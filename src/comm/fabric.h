// The message fabric: typed message delivery between workers over the
// simulated network.
//
// Plays the role of the prototype's Redis deployment. Data-queue messages
// (gradients, weights) are charged to the network at their encoded size
// multiplied by `byte_scale` - the ratio between the nominal model size
// (5 MB Cipher / 17 MB MobileNet) and the actually-trained model, so traffic
// volume matches the paper's regardless of bench scale (see DESIGN.md).
// Control-queue messages are small and charged at their fixed size.
//
// Fault-tolerance semantics:
//  - Workers attach/detach dynamically (crash = detach, recover = attach).
//    A message arriving at a detached worker is counted as a *dead letter*
//    and silently discarded - delivery never throws.
//  - `send_reliable` implements an at-most-once-delivered, at-least-once-
//    attempted control-plane channel: each attempt is acknowledged at the
//    transport level (Ack messages, never surfaced to worker handlers),
//    unacked attempts are retried with exponential backoff, duplicates are
//    suppressed at the receiver, and callers learn the final outcome via a
//    callback (used by DKT weight pulls to fall back to the next-best peer).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <unordered_set>
#include <vector>

#include "comm/codec.h"
#include "common/thread_affinity.h"
#include "comm/message.h"
#include "obs/obs.h"
#include "sim/network.h"

namespace dlion::comm {

/// Retry behaviour of the reliable control-plane channel. Attempt i
/// (0-based) times out after timeout_s * backoff^i.
struct RetryPolicy {
  double timeout_s = 1.0;
  double backoff = 2.0;
  std::size_t max_attempts = 4;
};

/// Record kept for a message that dead-lettered (arrived at a detached
/// worker, or exhausted its reliable-send retry budget). The record retains
/// the message for diagnosis — for a data-lane message that pins its
/// arena-backed payload blocks — so retention is bounded two ways: at most
/// `FabricOptions::dead_letter_cap` records, and at most
/// `FabricOptions::dead_letter_max_bytes` of pinned payload across the
/// queue (`payload_bytes` is each record's contribution). Whichever bound
/// is exceeded first evicts the oldest records.
struct DeadLetter {
  common::SimTime time = 0.0;
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t type = 0;  ///< Message variant index
  MessagePtr msg;        ///< retained for diagnosis (pins payload blocks)
  common::Bytes payload_bytes = 0;  ///< arena bytes this record pins
};

struct FabricOptions {
  /// Data-queue wire-size multiplier (> 0; 1 = exact). See class comment.
  double byte_scale = 1.0;
  /// Maximum retained DeadLetter records. When full, the oldest record is
  /// evicted (counted in dead_letter_evictions) — long churn runs cannot
  /// grow the queue without limit. 0 keeps counters only, no records.
  std::size_t dead_letter_cap = 256;
  /// Maximum payload bytes the retained records may pin in total; records
  /// are evicted oldest-first until the sum fits. Bounds the arena memory
  /// a burst of dead-lettered gradient/weight messages can hold alive.
  common::Bytes dead_letter_max_bytes = 8 * 1024 * 1024;
};

class Fabric {
 public:
  using Handler = std::function<void(std::size_t from, MessagePtr msg)>;
  /// Outcome callback for reliable sends: acked = true once the receiver's
  /// ack arrives; false when every attempt timed out.
  using ReliableCallback = std::function<void(bool acked)>;

  /// `byte_scale` multiplies data-queue wire sizes (>= 0; 1 = exact).
  Fabric(sim::Network& network, double byte_scale = 1.0);
  Fabric(sim::Network& network, const FabricOptions& options);

  std::size_t size() const { return network_->size(); }

  /// Register worker `w`'s message handler (one per worker).
  void attach(std::size_t worker, Handler handler);
  /// Unregister worker `w` (crash). In-flight messages to it dead-letter.
  void detach(std::size_t worker);
  bool attached(std::size_t worker) const;

  /// Send `msg` from worker `from` to worker `to` (fire-and-forget).
  void send(std::size_t from, std::size_t to, Message msg);

  /// Send `msg` to every other worker. The message is materialized and its
  /// wire size computed exactly once; all n-1 sends share one MessagePtr.
  void broadcast(std::size_t from, const Message& msg);

  /// Broadcast restricted to workers flagged in `targets` (self skipped).
  /// Elastic-membership runs use this to address the current roster only,
  /// so dormant capacity slots neither receive traffic nor consume the
  /// sender's egress share. An all-true mask reproduces broadcast exactly.
  void broadcast(std::size_t from, const Message& msg,
                 const std::vector<bool>& targets);

  /// Reliable control-plane send (ack + timeout + exponential backoff).
  /// Returns the request's sequence number. `done` (optional) fires exactly
  /// once with the final outcome.
  std::uint64_t send_reliable(std::size_t from, std::size_t to, Message msg,
                              const RetryPolicy& policy = {},
                              ReliableCallback done = {});

  /// Messages that arrived at a worker with no handler attached.
  std::uint64_t dead_letters() const { return dead_letters_; }
  std::uint64_t dead_letters(std::size_t to) const {
    return dead_letters_to_.at(to);
  }
  /// Most recent dead-letter records (bounded by options.dead_letter_cap).
  const std::deque<DeadLetter>& recent_dead_letters() const {
    return dead_letter_queue_;
  }
  /// Dead-letter records evicted because the queue hit its cap (record
  /// count or pinned payload bytes).
  std::uint64_t dead_letter_evictions() const {
    return dead_letter_evictions_;
  }
  /// Payload bytes currently pinned by retained dead-letter records
  /// (mirrored as the `comm.dead_letter_pinned_bytes` gauge when an
  /// observer is attached).
  common::Bytes dead_letter_pinned_bytes() const {
    return dead_letter_pinned_bytes_;
  }

  // --- Roster epochs (elastic membership, DESIGN.md) ---
  //
  // Like the causal FlowId, the epoch stamp is transport-level state: it is
  // attached to every transmission at transmit time and never encoded into
  // the wire format, so non-elastic runs (where every stamp and floor stays
  // 0) charge exactly the bytes they always did and reject nothing.

  /// Set worker `w`'s current roster epoch; every subsequent transmission
  /// from `w` carries this stamp (including reliable-channel retries, which
  /// re-stamp at each attempt).
  void set_epoch(std::size_t worker, std::uint64_t epoch);
  std::uint64_t epoch(std::size_t worker) const { return epoch_stamp_.at(worker); }
  /// Set worker `w`'s acceptance floor: deliveries stamped with an epoch
  /// below it are rejected deterministically (counted, never handled). A
  /// joiner raises its floor to its join epoch, so in-flight traffic
  /// addressed to a previous occupant of the slot can never reach it.
  void set_epoch_floor(std::size_t worker, std::uint64_t epoch);
  /// Deliveries rejected by the epoch floor so far.
  std::uint64_t stale_epoch_rejected() const { return stale_rejected_; }
  /// Reliable-channel retransmissions and failures so far.
  std::uint64_t reliable_retries() const { return reliable_retries_; }
  std::uint64_t reliable_failures() const { return reliable_failures_; }
  /// Reliable requests still awaiting an ack.
  std::size_t reliable_pending() const { return pending_.size(); }

  /// Simulated wire size this fabric charges for a message.
  common::Bytes charged_bytes(const Message& msg) const;
  /// Overload for callers that already hold the concrete update: computes
  /// the same value without constructing a Message variant (which would
  /// deep-copy the whole gradient payload just to measure it).
  common::Bytes charged_bytes(const GradientUpdate& update) const;

  sim::Network& network() { return *network_; }
  double byte_scale() const { return byte_scale_; }

  /// Attach an observer (non-owning; nullptr detaches). Sends are counted
  /// by message type (`comm.fabric.sent{type}`, `.sent_bytes{type}`), the
  /// dead-letter / retry / failure tallies are mirrored into the registry
  /// (existing accessors keep working), and dead letters, retries, and
  /// reliable failures appear as instants on a "fabric / control" track.
  void set_obs(obs::Observability* o);

 private:
  enum class Kind { kPlain, kReliable, kAck };

  /// Cached per-message-type registry handles (index = variant index).
  struct ObsTypeHandles {
    obs::Counter* sent = nullptr;
    obs::Counter* sent_bytes = nullptr;
  };

  struct PendingReliable {
    std::size_t from = 0;
    std::size_t to = 0;
    MessagePtr msg;
    common::Bytes bytes = 0;
    RetryPolicy policy;
    std::size_t attempt = 0;  // attempts already transmitted
    ReliableCallback done;
    sim::EventId timer = 0;
  };

  sim::Engine& engine() { return network_->engine(); }
  /// Hand `msg` to the receiver's handler; dead-letters if detached and
  /// rejects deliveries stamped below the receiver's epoch floor. `flow` is
  /// the transmission's causal-flow id (flow-end is recorded on the
  /// receiver's track just before the handler runs); `epoch` is the
  /// sender's roster epoch captured at transmit time.
  bool deliver(std::size_t from, std::size_t to, const MessagePtr& msg,
               FlowId flow, std::uint64_t epoch);
  void record_dead_letter(std::size_t from, std::size_t to,
                          const MessagePtr& msg);
  void transmit(std::size_t from, std::size_t to, MessagePtr msg,
                common::Bytes bytes, Kind kind, std::uint64_t seq);
  void send_ack(std::size_t from, std::size_t to, std::uint64_t seq);
  void on_ack(std::uint64_t seq);
  void start_attempt(std::uint64_t seq);
  void on_timeout(std::uint64_t seq);

  sim::Network* network_;
  double byte_scale_;
  /// All sends and deliveries run on the simulation thread (no locks on
  /// the message path); checked in debug/sanitize builds.
  common::ThreadAffinity affinity_;
  std::size_t dead_letter_cap_;
  common::Bytes dead_letter_max_bytes_;
  std::vector<Handler> handlers_;
  std::vector<std::uint64_t> dead_letters_to_;
  std::uint64_t dead_letters_ = 0;
  /// Bounded by dead_letter_cap_ records and dead_letter_max_bytes_ of
  /// pinned payload.
  std::deque<DeadLetter> dead_letter_queue_;
  common::Bytes dead_letter_pinned_bytes_ = 0;
  std::uint64_t dead_letter_evictions_ = 0;
  /// Roster epochs: per-sender transmission stamp, per-receiver acceptance
  /// floor, and the rejected-delivery counter. All-zero unless the elastic
  /// membership layer is active.
  std::vector<std::uint64_t> epoch_stamp_;
  std::vector<std::uint64_t> epoch_floor_;
  std::uint64_t stale_rejected_ = 0;
  std::uint64_t next_seq_ = 1;
  /// Per-sender transmission counters feeding make_flow_id. Advance
  /// unconditionally (observer attached or not) so obs-on and obs-off runs
  /// assign identical flow ids — and, since the ids never touch delivery,
  /// stay bit-identical altogether.
  std::vector<std::uint64_t> flow_seq_;
  std::map<std::uint64_t, PendingReliable> pending_;
  /// Per-receiver reliable seqs already delivered (duplicate suppression).
  std::vector<std::unordered_set<std::uint64_t>> delivered_seqs_;
  std::uint64_t reliable_retries_ = 0;
  std::uint64_t reliable_failures_ = 0;

  obs::Observability* obs_ = nullptr;  // non-owning, optional
  std::vector<ObsTypeHandles> obs_types_;
  obs::Counter* obs_dead_letters_ = nullptr;
  obs::Counter* obs_dead_letter_evictions_ = nullptr;
  obs::Gauge* obs_dead_letter_pinned_bytes_ = nullptr;
  obs::Counter* obs_stale_rejected_ = nullptr;
  obs::Counter* obs_retries_ = nullptr;
  obs::Counter* obs_failures_ = nullptr;
  obs::TrackId obs_track_ = 0;  // "fabric / control"
  /// Flow endpoints: the per-worker "workers / worker i" tracks (shared
  /// with core::Worker via the tracer's find-or-create semantics).
  std::vector<obs::TrackId> obs_worker_tracks_;
};

}  // namespace dlion::comm

// Wire codec for messages.
//
// encode/decode provide an exact byte representation (round-trip tested);
// wire_bytes() computes the encoded size without materializing the buffer,
// which is what the simulator charges to the network. Layout is
// little-endian, fixed-width, no padding.
//
// Decode paths are hardened against hostile input (fuzz/fuzz_codec.cpp):
// every length prefix is validated against the bytes actually remaining
// *before* any allocation sized by it, every enum tag is bounds-checked,
// and malformed buffers fail with a typed DecodeError carrying the reason —
// never UB, never an unbounded allocation, never a non-codec exception.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "comm/message.h"
#include "common/units.h"

namespace dlion::comm {

/// Why a decode rejected its input.
enum class DecodeErrorKind : std::uint8_t {
  kTruncated = 0,       ///< buffer ended before a fixed-width field/array
  kTrailingBytes = 1,   ///< buffer longer than the message it encodes
  kCountMismatch = 2,   ///< index/value/dense_size counts disagree
  kOversizedCount = 3,  ///< length prefix exceeds what the buffer can hold
  kBadTag = 4,          ///< unknown message-type tag
  kBadValue = 5,        ///< field value violates the format (e.g. unsorted
                        ///< or out-of-range sparse indices)
};
const char* decode_error_kind_name(DecodeErrorKind kind);

/// Typed decode failure. Every malformed input lands here; decoders throw
/// nothing else.
class DecodeError : public std::runtime_error {
 public:
  DecodeError(DecodeErrorKind kind, const std::string& detail);
  DecodeErrorKind kind() const { return kind_; }

 private:
  DecodeErrorKind kind_;
};

std::vector<std::uint8_t> encode(const GradientUpdate& update);
GradientUpdate decode_gradient_update(const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode(const WeightSnapshot& snapshot);
WeightSnapshot decode_weight_snapshot(const std::vector<std::uint8_t>& buf);

/// Tagged envelope for any Message alternative: a one-byte variant tag
/// followed by the alternative's payload. The decoder validates the tag
/// (DecodeErrorKind::kBadTag) before touching the payload.
std::vector<std::uint8_t> encode_message(const Message& msg);
Message decode_message(const std::vector<std::uint8_t>& buf);

/// Encoded size of any message without encoding it.
common::Bytes wire_bytes(const Message& msg);
common::Bytes wire_bytes(const GradientUpdate& update);
common::Bytes wire_bytes(const WeightSnapshot& snapshot);
common::Bytes wire_bytes(const BootstrapChunk& chunk);
common::Bytes wire_bytes(const ModelPublish& publish);

}  // namespace dlion::comm

// Wire codec for messages.
//
// encode/decode provide an exact byte representation (round-trip tested);
// wire_bytes() computes the encoded size without materializing the buffer,
// which is what the simulator charges to the network. Layout is
// little-endian, fixed-width, no padding.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/message.h"
#include "common/units.h"

namespace dlion::comm {

std::vector<std::uint8_t> encode(const GradientUpdate& update);
GradientUpdate decode_gradient_update(const std::vector<std::uint8_t>& buf);

std::vector<std::uint8_t> encode(const WeightSnapshot& snapshot);
WeightSnapshot decode_weight_snapshot(const std::vector<std::uint8_t>& buf);

/// Encoded size of any message without encoding it.
common::Bytes wire_bytes(const Message& msg);
common::Bytes wire_bytes(const GradientUpdate& update);
common::Bytes wire_bytes(const WeightSnapshot& snapshot);

}  // namespace dlion::comm

#include "comm/codec.h"

#include <cstring>
#include <limits>
#include <string>

#include "common/check.h"

namespace dlion::comm {

const char* decode_error_kind_name(DecodeErrorKind kind) {
  switch (kind) {
    case DecodeErrorKind::kTruncated:
      return "truncated";
    case DecodeErrorKind::kTrailingBytes:
      return "trailing_bytes";
    case DecodeErrorKind::kCountMismatch:
      return "count_mismatch";
    case DecodeErrorKind::kOversizedCount:
      return "oversized_count";
    case DecodeErrorKind::kBadTag:
      return "bad_tag";
    case DecodeErrorKind::kBadValue:
      return "bad_value";
  }
  return "unknown";
}

DecodeError::DecodeError(DecodeErrorKind kind, const std::string& detail)
    : std::runtime_error("codec: [" +
                         std::string(decode_error_kind_name(kind)) + "] " +
                         detail),
      kind_(kind) {}

namespace {

constexpr common::Bytes kGradientHeader = 20;   // from+iter+lbs+var count
constexpr common::Bytes kPerVarHeader = 16;     // index+dense_size+counts
constexpr common::Bytes kSnapshotHeader = 24;   // from+iter+loss+var count
constexpr common::Bytes kChunkHeader = 44;      // from+epoch+var+iter+ticks+loss+count
constexpr common::Bytes kPublishHeader = 32;    // from+version+iter+var+total+count
constexpr common::Bytes kControlBytes = 64;     // loss/DKT/RCP messages

[[noreturn]] void fail(DecodeErrorKind kind, const std::string& detail) {
  throw DecodeError(kind, detail);
}

class Writer {
 public:
  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &v, sizeof(T));
  }
  template <typename T>
  void put_array(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return;  // empty arrays may have a null data()
    const std::size_t off = buf_.size();
    buf_.resize(off + count * sizeof(T));
    std::memcpy(buf_.data() + off, data, count * sizeof(T));
  }
  template <typename T>
  void put_array(const std::vector<T>& vs) {
    put_array(vs.data(), vs.size());
  }
  template <typename T>
  void put_array(const Payload<T>& p) {
    put_array(p.data(), p.size());
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(&buf) {}
  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    check(sizeof(T));
    T v;
    std::memcpy(&v, buf_->data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> get_array(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return {};
    // Bounds check *before* sizing any allocation by the untrusted count
    // (sizeof(T) <= 8 and count < 2^32, so the product cannot overflow a
    // 64-bit size_t).
    check(count * sizeof(T));
    std::vector<T> vs(count);
    std::memcpy(vs.data(), buf_->data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return vs;
  }
  /// Materialize `count` wire elements as an arena-backed payload (one
  /// exact-size block, counted as a payload copy - decode is off the warm
  /// path, which shares views instead of re-decoding).
  template <typename T>
  Payload<T> get_payload(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count == 0) return {};
    check(count * sizeof(T));
    Payload<T> p = Payload<T>::materialize(buf_->data() + pos_, count);
    pos_ += count * sizeof(T);
    return p;
  }

  std::size_t remaining() const { return buf_->size() - pos_; }
  bool exhausted() const { return pos_ == buf_->size(); }

  /// Reject a claimed element count that the remaining bytes cannot
  /// possibly hold (each element needs >= min_bytes_each more bytes). This
  /// is the guard that keeps a 4-byte length prefix from driving a
  /// multi-gigabyte reserve() before any payload byte is validated.
  void check_count(std::size_t count, std::size_t min_bytes_each,
                   const char* what) const {
    DLION_DCHECK(min_bytes_each > 0);
    if (count > remaining() / min_bytes_each) {
      fail(DecodeErrorKind::kOversizedCount,
           std::string(what) + " count " + std::to_string(count) +
               " cannot fit in " + std::to_string(remaining()) +
               " remaining bytes");
    }
  }

 private:
  void check(std::size_t n) const {
    DLION_DCHECK(pos_ <= buf_->size());
    if (n > buf_->size() - pos_) {
      fail(DecodeErrorKind::kTruncated,
           "need " + std::to_string(n) + " bytes at offset " +
               std::to_string(pos_) + ", have " +
               std::to_string(buf_->size() - pos_));
    }
  }
  const std::vector<std::uint8_t>* buf_;
  std::size_t pos_ = 0;
};

void expect_exhausted(const Reader& r) {
  if (!r.exhausted()) {
    fail(DecodeErrorKind::kTrailingBytes,
         std::to_string(r.remaining()) + " bytes past message end");
  }
}

/// Format validation shared by decode paths: a VariableGrad must be dense
/// (no indices, exactly dense_size values), sparse (strictly increasing
/// in-range indices, one value each), or empty.
void validate_variable_grad(const VariableGrad& v) {
  if (v.indices.empty()) {
    if (!v.values.empty() && v.values.size() != v.dense_size) {
      fail(DecodeErrorKind::kCountMismatch,
           "dense payload of " + std::to_string(v.values.size()) +
               " values vs dense_size " + std::to_string(v.dense_size));
    }
    return;
  }
  std::uint32_t prev = 0;
  for (std::size_t e = 0; e < v.indices.size(); ++e) {
    const std::uint32_t idx = v.indices[e];
    if (idx >= v.dense_size) {
      fail(DecodeErrorKind::kBadValue,
           "sparse index " + std::to_string(idx) + " >= dense_size " +
               std::to_string(v.dense_size));
    }
    if (e > 0 && idx <= prev) {
      fail(DecodeErrorKind::kBadValue,
           "sparse indices not strictly increasing at entry " +
               std::to_string(e));
    }
    prev = idx;
  }
}

void encode_gradient_update_into(Writer& w, const GradientUpdate& update) {
  w.put<std::uint32_t>(update.from);
  w.put<std::uint64_t>(update.iteration);
  w.put<std::uint32_t>(update.lbs);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(update.vars.size()));
  for (const auto& v : update.vars) {
    // Encoding a malformed update would produce bytes the decoder rejects;
    // catch the bug at the producer.
    DLION_DCHECK(v.indices.empty() || v.indices.size() == v.values.size(),
                 "var " + std::to_string(v.var_index) +
                     " has mismatched index/value counts");
    w.put<std::uint32_t>(v.var_index);
    w.put<std::uint32_t>(v.dense_size);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(v.indices.size()));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(v.values.size()));
    w.put_array(v.indices);
    w.put_array(v.values);
  }
}

GradientUpdate decode_gradient_update_from(Reader& r) {
  GradientUpdate u;
  u.from = r.get<std::uint32_t>();
  u.iteration = r.get<std::uint64_t>();
  u.lbs = r.get<std::uint32_t>();
  const auto nvars = r.get<std::uint32_t>();
  r.check_count(nvars, kPerVarHeader, "variable");
  u.vars.reserve(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) {
    VariableGrad v;
    v.var_index = r.get<std::uint32_t>();
    v.dense_size = r.get<std::uint32_t>();
    const auto nidx = r.get<std::uint32_t>();
    const auto nval = r.get<std::uint32_t>();
    if (nidx != 0 && nidx != nval) {
      fail(DecodeErrorKind::kCountMismatch,
           "var " + std::to_string(i) + ": " + std::to_string(nidx) +
               " indices vs " + std::to_string(nval) + " values");
    }
    v.indices = r.get_payload<std::uint32_t>(nidx);
    v.values = r.get_payload<float>(nval);
    validate_variable_grad(v);
    u.vars.push_back(std::move(v));
  }
  return u;
}

void encode_weight_snapshot_into(Writer& w, const WeightSnapshot& snapshot) {
  w.put<std::uint32_t>(snapshot.from);
  w.put<std::uint64_t>(snapshot.iteration);
  w.put<double>(snapshot.loss);
  w.put<std::uint32_t>(
      static_cast<std::uint32_t>(snapshot.weights.parts.size()));
  for (const auto& p : snapshot.weights.parts) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(p.size()));
    w.put_array(p);
  }
}

WeightSnapshot decode_weight_snapshot_from(Reader& r) {
  WeightSnapshot s;
  s.from = r.get<std::uint32_t>();
  s.iteration = r.get<std::uint64_t>();
  s.loss = r.get<double>();
  const auto nvars = r.get<std::uint32_t>();
  r.check_count(nvars, sizeof(std::uint32_t), "tensor");
  s.weights.parts.reserve(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) {
    const auto n = r.get<std::uint32_t>();
    s.weights.parts.push_back(r.get_payload<float>(n));
  }
  return s;
}

/// Stable one-byte wire tags for the Message envelope. Decoupled from
/// std::variant_size/index so reordering the variant cannot silently
/// re-number the wire format (the static_asserts below pin the mapping).
enum class MessageTag : std::uint8_t {
  kGradientUpdate = 0,
  kWeightSnapshot = 1,
  kLossReport = 2,
  kDktRequest = 3,
  kRcpReport = 4,
  kHeartbeat = 5,
  kAck = 6,
  kRosterUpdate = 7,
  kBootstrapRequest = 8,
  kBootstrapChunk = 9,
  kModelPublish = 10,
};
constexpr std::uint8_t kMaxMessageTag = 10;
static_assert(std::variant_size_v<Message> == kMaxMessageTag + 1,
              "update MessageTag when Message gains an alternative");

void encode_roster_update_into(Writer& w, const RosterUpdate& m) {
  w.put<std::uint32_t>(m.from);
  w.put<std::uint64_t>(m.epoch);
  w.put<std::uint32_t>(m.capacity);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(m.member_words.size()));
  w.put_array(m.member_words);
}

RosterUpdate decode_roster_update_from(Reader& r) {
  RosterUpdate m;
  m.from = r.get<std::uint32_t>();
  m.epoch = r.get<std::uint64_t>();
  m.capacity = r.get<std::uint32_t>();
  const auto nwords = r.get<std::uint32_t>();
  r.check_count(nwords, sizeof(std::uint64_t), "member word");
  // A well-formed bitmap has exactly ceil(capacity/64) words — anything
  // else either truncates the member set or smuggles trailing bits.
  if (nwords != (static_cast<std::size_t>(m.capacity) + 63) / 64) {
    fail(DecodeErrorKind::kCountMismatch,
         std::to_string(nwords) + " member words vs capacity " +
             std::to_string(m.capacity));
  }
  m.member_words = r.get_array<std::uint64_t>(nwords);
  // Bits above `capacity` in the last word must be clear (canonical form);
  // set bits there would make two encodings of the same roster differ.
  if (m.capacity % 64 != 0 && !m.member_words.empty() &&
      (m.member_words.back() >> (m.capacity % 64)) != 0) {
    fail(DecodeErrorKind::kBadValue,
         "member bits set past capacity " + std::to_string(m.capacity));
  }
  return m;
}

void encode_bootstrap_request_into(Writer& w, const BootstrapRequest& m) {
  w.put<std::uint32_t>(m.from);
  w.put<std::uint64_t>(m.epoch);
  w.put<std::uint32_t>(m.first_var);
  w.put<std::uint32_t>(m.var_count);
}

BootstrapRequest decode_bootstrap_request_from(Reader& r) {
  BootstrapRequest m;
  m.from = r.get<std::uint32_t>();
  m.epoch = r.get<std::uint64_t>();
  m.first_var = r.get<std::uint32_t>();
  m.var_count = r.get<std::uint32_t>();
  return m;
}

void encode_bootstrap_chunk_into(Writer& w, const BootstrapChunk& m) {
  w.put<std::uint32_t>(m.from);
  w.put<std::uint64_t>(m.epoch);
  w.put<std::uint32_t>(m.first_var);
  w.put<std::uint64_t>(m.iteration);
  w.put<std::uint64_t>(m.gbs_ticks);
  w.put<double>(m.loss);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(m.weights.parts.size()));
  for (const auto& p : m.weights.parts) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(p.size()));
    w.put_array(p);
  }
}

BootstrapChunk decode_bootstrap_chunk_from(Reader& r) {
  BootstrapChunk m;
  m.from = r.get<std::uint32_t>();
  m.epoch = r.get<std::uint64_t>();
  m.first_var = r.get<std::uint32_t>();
  m.iteration = r.get<std::uint64_t>();
  m.gbs_ticks = r.get<std::uint64_t>();
  m.loss = r.get<double>();
  const auto nvars = r.get<std::uint32_t>();
  r.check_count(nvars, sizeof(std::uint32_t), "chunk tensor");
  m.weights.parts.reserve(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) {
    const auto n = r.get<std::uint32_t>();
    m.weights.parts.push_back(r.get_payload<float>(n));
  }
  return m;
}

void encode_model_publish_into(Writer& w, const ModelPublish& m) {
  w.put<std::uint32_t>(m.from);
  w.put<std::uint64_t>(m.version);
  w.put<std::uint64_t>(m.iteration);
  w.put<std::uint32_t>(m.first_var);
  w.put<std::uint32_t>(m.total_vars);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(m.weights.parts.size()));
  for (const auto& p : m.weights.parts) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(p.size()));
    w.put_array(p);
  }
}

ModelPublish decode_model_publish_from(Reader& r) {
  ModelPublish m;
  m.from = r.get<std::uint32_t>();
  m.version = r.get<std::uint64_t>();
  m.iteration = r.get<std::uint64_t>();
  m.first_var = r.get<std::uint32_t>();
  m.total_vars = r.get<std::uint32_t>();
  const auto nvars = r.get<std::uint32_t>();
  r.check_count(nvars, sizeof(std::uint32_t), "publish tensor");
  // The carried range [first_var, first_var + nvars) must lie inside the
  // model's variable space — a range past total_vars cannot be applied.
  if (static_cast<std::uint64_t>(m.first_var) + nvars > m.total_vars) {
    fail(DecodeErrorKind::kBadValue,
         "publish range [" + std::to_string(m.first_var) + ", " +
             std::to_string(static_cast<std::uint64_t>(m.first_var) + nvars) +
             ") exceeds total_vars " + std::to_string(m.total_vars));
  }
  m.weights.parts.reserve(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) {
    const auto n = r.get<std::uint32_t>();
    m.weights.parts.push_back(r.get_payload<float>(n));
  }
  return m;
}

}  // namespace

std::vector<std::uint8_t> encode(const GradientUpdate& update) {
  Writer w;
  encode_gradient_update_into(w, update);
  return w.take();
}

GradientUpdate decode_gradient_update(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  GradientUpdate u = decode_gradient_update_from(r);
  expect_exhausted(r);
  return u;
}

std::vector<std::uint8_t> encode(const WeightSnapshot& snapshot) {
  Writer w;
  encode_weight_snapshot_into(w, snapshot);
  return w.take();
}

WeightSnapshot decode_weight_snapshot(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  WeightSnapshot s = decode_weight_snapshot_from(r);
  expect_exhausted(r);
  return s;
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  Writer w;
  w.put<std::uint8_t>(static_cast<std::uint8_t>(msg.index()));
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, GradientUpdate>) {
          encode_gradient_update_into(w, m);
        } else if constexpr (std::is_same_v<T, WeightSnapshot>) {
          encode_weight_snapshot_into(w, m);
        } else if constexpr (std::is_same_v<T, LossReport>) {
          w.put<std::uint32_t>(m.from);
          w.put<std::uint64_t>(m.iteration);
          w.put<double>(m.avg_loss);
        } else if constexpr (std::is_same_v<T, DktRequest>) {
          w.put<std::uint32_t>(m.from);
          w.put<std::uint64_t>(m.iteration);
        } else if constexpr (std::is_same_v<T, RcpReport>) {
          w.put<std::uint32_t>(m.from);
          w.put<double>(m.rcp);
        } else if constexpr (std::is_same_v<T, Heartbeat>) {
          w.put<std::uint32_t>(m.from);
          w.put<std::uint64_t>(m.iteration);
        } else if constexpr (std::is_same_v<T, RosterUpdate>) {
          encode_roster_update_into(w, m);
        } else if constexpr (std::is_same_v<T, BootstrapRequest>) {
          encode_bootstrap_request_into(w, m);
        } else if constexpr (std::is_same_v<T, BootstrapChunk>) {
          encode_bootstrap_chunk_into(w, m);
        } else if constexpr (std::is_same_v<T, ModelPublish>) {
          encode_model_publish_into(w, m);
        } else {
          static_assert(std::is_same_v<T, Ack>);
          w.put<std::uint32_t>(m.from);
          w.put<std::uint64_t>(m.seq);
        }
      },
      msg);
  return w.take();
}

Message decode_message(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  const auto raw_tag = r.get<std::uint8_t>();
  if (raw_tag > kMaxMessageTag) {
    fail(DecodeErrorKind::kBadTag,
         "message tag " + std::to_string(raw_tag) + " > " +
             std::to_string(kMaxMessageTag));
  }
  Message out;
  switch (static_cast<MessageTag>(raw_tag)) {
    case MessageTag::kGradientUpdate:
      out = decode_gradient_update_from(r);
      break;
    case MessageTag::kWeightSnapshot:
      out = decode_weight_snapshot_from(r);
      break;
    case MessageTag::kLossReport: {
      LossReport m;
      m.from = r.get<std::uint32_t>();
      m.iteration = r.get<std::uint64_t>();
      m.avg_loss = r.get<double>();
      out = m;
      break;
    }
    case MessageTag::kDktRequest: {
      DktRequest m;
      m.from = r.get<std::uint32_t>();
      m.iteration = r.get<std::uint64_t>();
      out = m;
      break;
    }
    case MessageTag::kRcpReport: {
      RcpReport m;
      m.from = r.get<std::uint32_t>();
      m.rcp = r.get<double>();
      out = m;
      break;
    }
    case MessageTag::kHeartbeat: {
      Heartbeat m;
      m.from = r.get<std::uint32_t>();
      m.iteration = r.get<std::uint64_t>();
      out = m;
      break;
    }
    case MessageTag::kAck: {
      Ack m;
      m.from = r.get<std::uint32_t>();
      m.seq = r.get<std::uint64_t>();
      out = m;
      break;
    }
    case MessageTag::kRosterUpdate:
      out = decode_roster_update_from(r);
      break;
    case MessageTag::kBootstrapRequest:
      out = decode_bootstrap_request_from(r);
      break;
    case MessageTag::kBootstrapChunk:
      out = decode_bootstrap_chunk_from(r);
      break;
    case MessageTag::kModelPublish:
      out = decode_model_publish_from(r);
      break;
  }
  DLION_DCHECK(out.index() == raw_tag,
               "decoded alternative disagrees with wire tag");
  expect_exhausted(r);
  return out;
}

common::Bytes wire_bytes(const GradientUpdate& update) {
  common::Bytes bytes = kGradientHeader;
  for (const auto& v : update.vars) {
    bytes += kPerVarHeader + v.indices.size() * sizeof(std::uint32_t) +
             v.values.size() * sizeof(float);
  }
  return bytes;
}

common::Bytes wire_bytes(const WeightSnapshot& snapshot) {
  return kSnapshotHeader +
         snapshot.weights.parts.size() * sizeof(std::uint32_t) +
         snapshot.weights.num_values() * sizeof(float);
}

common::Bytes wire_bytes(const BootstrapChunk& chunk) {
  return kChunkHeader + chunk.weights.parts.size() * sizeof(std::uint32_t) +
         chunk.weights.num_values() * sizeof(float);
}

common::Bytes wire_bytes(const ModelPublish& publish) {
  return kPublishHeader +
         publish.weights.parts.size() * sizeof(std::uint32_t) +
         publish.weights.num_values() * sizeof(float);
}

common::Bytes wire_bytes(const Message& msg) {
  return std::visit(
      [](const auto& m) -> common::Bytes {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, GradientUpdate>) {
          return wire_bytes(m);
        } else if constexpr (std::is_same_v<T, WeightSnapshot>) {
          return wire_bytes(m);
        } else if constexpr (std::is_same_v<T, BootstrapChunk>) {
          return wire_bytes(m);
        } else if constexpr (std::is_same_v<T, ModelPublish>) {
          return wire_bytes(m);
        } else {
          return kControlBytes;
        }
      },
      msg);
}

}  // namespace dlion::comm

#include "comm/codec.h"

#include <cstring>
#include <stdexcept>

namespace dlion::comm {

namespace {

constexpr common::Bytes kGradientHeader = 20;   // from+iter+lbs+var count
constexpr common::Bytes kPerVarHeader = 16;     // index+dense_size+counts
constexpr common::Bytes kSnapshotHeader = 24;   // from+iter+loss+var count
constexpr common::Bytes kControlBytes = 64;     // loss/DKT/RCP messages

class Writer {
 public:
  template <typename T>
  void put(T v) {
    const std::size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &v, sizeof(T));
  }
  template <typename T>
  void put_array(const std::vector<T>& vs) {
    if (vs.empty()) return;  // empty vectors may have a null data()
    const std::size_t off = buf_.size();
    buf_.resize(off + vs.size() * sizeof(T));
    std::memcpy(buf_.data() + off, vs.data(), vs.size() * sizeof(T));
  }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(&buf) {}
  template <typename T>
  T get() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, buf_->data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  template <typename T>
  std::vector<T> get_array(std::size_t count) {
    if (count == 0) return {};
    check(count * sizeof(T));
    std::vector<T> vs(count);
    std::memcpy(vs.data(), buf_->data() + pos_, count * sizeof(T));
    pos_ += count * sizeof(T);
    return vs;
  }
  bool exhausted() const { return pos_ == buf_->size(); }

 private:
  void check(std::size_t n) const {
    if (pos_ + n > buf_->size()) {
      throw std::out_of_range("codec: truncated buffer");
    }
  }
  const std::vector<std::uint8_t>* buf_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode(const GradientUpdate& update) {
  Writer w;
  w.put<std::uint32_t>(update.from);
  w.put<std::uint64_t>(update.iteration);
  w.put<std::uint32_t>(update.lbs);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(update.vars.size()));
  for (const auto& v : update.vars) {
    w.put<std::uint32_t>(v.var_index);
    w.put<std::uint32_t>(v.dense_size);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(v.indices.size()));
    w.put<std::uint32_t>(static_cast<std::uint32_t>(v.values.size()));
    w.put_array(v.indices);
    w.put_array(v.values);
  }
  return w.take();
}

GradientUpdate decode_gradient_update(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  GradientUpdate u;
  u.from = r.get<std::uint32_t>();
  u.iteration = r.get<std::uint64_t>();
  u.lbs = r.get<std::uint32_t>();
  const auto nvars = r.get<std::uint32_t>();
  u.vars.reserve(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) {
    VariableGrad v;
    v.var_index = r.get<std::uint32_t>();
    v.dense_size = r.get<std::uint32_t>();
    const auto nidx = r.get<std::uint32_t>();
    const auto nval = r.get<std::uint32_t>();
    if (nidx != 0 && nidx != nval) {
      throw std::invalid_argument("codec: index/value count mismatch");
    }
    v.indices = r.get_array<std::uint32_t>(nidx);
    v.values = r.get_array<float>(nval);
    u.vars.push_back(std::move(v));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("codec: trailing bytes");
  }
  return u;
}

std::vector<std::uint8_t> encode(const WeightSnapshot& snapshot) {
  Writer w;
  w.put<std::uint32_t>(snapshot.from);
  w.put<std::uint64_t>(snapshot.iteration);
  w.put<double>(snapshot.loss);
  w.put<std::uint32_t>(
      static_cast<std::uint32_t>(snapshot.weights.values.size()));
  for (const auto& t : snapshot.weights.values) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(t.size()));
    std::vector<float> data(t.data(), t.data() + t.size());
    w.put_array(data);
  }
  return w.take();
}

WeightSnapshot decode_weight_snapshot(const std::vector<std::uint8_t>& buf) {
  Reader r(buf);
  WeightSnapshot s;
  s.from = r.get<std::uint32_t>();
  s.iteration = r.get<std::uint64_t>();
  s.loss = r.get<double>();
  const auto nvars = r.get<std::uint32_t>();
  s.weights.values.reserve(nvars);
  for (std::uint32_t i = 0; i < nvars; ++i) {
    const auto n = r.get<std::uint32_t>();
    auto data = r.get_array<float>(n);
    s.weights.values.emplace_back(tensor::Shape{n}, std::move(data));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("codec: trailing bytes");
  }
  return s;
}

common::Bytes wire_bytes(const GradientUpdate& update) {
  common::Bytes bytes = kGradientHeader;
  for (const auto& v : update.vars) {
    bytes += kPerVarHeader + v.indices.size() * sizeof(std::uint32_t) +
             v.values.size() * sizeof(float);
  }
  return bytes;
}

common::Bytes wire_bytes(const WeightSnapshot& snapshot) {
  common::Bytes bytes = kSnapshotHeader;
  for (const auto& t : snapshot.weights.values) {
    bytes += sizeof(std::uint32_t) + t.size() * sizeof(float);
  }
  return bytes;
}

common::Bytes wire_bytes(const Message& msg) {
  return std::visit(
      [](const auto& m) -> common::Bytes {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, GradientUpdate>) {
          return wire_bytes(m);
        } else if constexpr (std::is_same_v<T, WeightSnapshot>) {
          return wire_bytes(m);
        } else {
          return kControlBytes;
        }
      },
      msg);
}

}  // namespace dlion::comm

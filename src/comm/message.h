// Message types exchanged between DLion workers.
//
// Mirrors the prototype's Redis usage (§4.2): a *data queue* carries
// gradients and weights, a *control queue* carries small signals (loss
// reports, DKT requests, go-signals). The granularity of gradient exchange
// is the individual weight variable, transmitted as (indices, values) pairs
// exactly like the paper's `send_data`.
#pragma once

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "comm/payload.h"

namespace dlion::comm {

/// Partial gradient of one named weight variable. `indices` empty means the
/// values are dense (all `dense_size` entries in order). Both arrays are
/// arena-backed views (comm/payload.h): copying a VariableGrad increfs the
/// backing blocks, it never duplicates gradient bytes.
struct VariableGrad {
  std::uint32_t var_index = 0;
  std::uint32_t dense_size = 0;
  Payload<std::uint32_t> indices;  ///< sorted, empty if dense
  Payload<float> values;

  bool is_dense() const {
    return indices.empty() && values.size() == dense_size;
  }
  std::size_t num_entries() const { return values.size(); }
};

/// One worker's gradient contribution for one iteration.
struct GradientUpdate {
  std::uint32_t from = 0;
  std::uint64_t iteration = 0;
  std::uint32_t lbs = 0;  ///< sender's local batch size (for db weights)
  std::vector<VariableGrad> vars;

  std::size_t num_entries() const;
  /// Fraction of the full model's parameters carried by this update.
  double density(std::size_t model_params) const;
};

/// Full model weights (direct knowledge transfer, §3.4). `weights.parts`
/// holds one view per weight variable in model order.
struct WeightSnapshot {
  std::uint32_t from = 0;
  std::uint64_t iteration = 0;
  double loss = 0.0;  ///< sender's smoothed loss when snapshotting
  WeightPayload weights;
};

/// Periodic average-of-last-l losses broadcast (control queue).
struct LossReport {
  std::uint32_t from = 0;
  std::uint64_t iteration = 0;
  double avg_loss = 0.0;
};

/// Request to the current best worker to send its weights.
struct DktRequest {
  std::uint32_t from = 0;
  std::uint64_t iteration = 0;
};

/// Relative-compute-power announcement used by the LBS controller (§3.2).
struct RcpReport {
  std::uint32_t from = 0;
  double rcp = 0.0;  ///< max LBS this worker can process per unit time
};

/// Periodic liveness beacon (control queue). Peers that stop emitting
/// heartbeats become *suspected* after a timeout and are excluded from
/// synchronization wait-sets and update renormalization.
struct Heartbeat {
  std::uint32_t from = 0;
  std::uint64_t iteration = 0;  ///< sender's training progress
};

/// Transport-level acknowledgement for reliable control-plane sends
/// (Fabric::send_reliable). Never surfaced to worker handlers.
struct Ack {
  std::uint32_t from = 0;
  std::uint64_t seq = 0;
};

/// Roster-change announcement (elastic membership, DESIGN.md "Elastic
/// membership"). Carries the new monotone roster epoch and the full member
/// set packed as a little-endian bitmap (bit w of word w/64 = worker w is a
/// member). Receivers adopt the roster iff `epoch` exceeds their current
/// epoch; older announcements are stale by definition and rejected.
struct RosterUpdate {
  std::uint32_t from = 0;
  std::uint64_t epoch = 0;
  std::uint32_t capacity = 0;                ///< cluster capacity (slots)
  std::vector<std::uint64_t> member_words;   ///< ceil(capacity/64) words
};

/// Joiner's request for one disjoint chunk of the model: the weight
/// variables [first_var, first_var + var_count). A joiner splits the model
/// across >= 2 live donors (TensorHub-style sharded bootstrap) and sends
/// one request per donor over the reliable control channel.
struct BootstrapRequest {
  std::uint32_t from = 0;
  std::uint64_t epoch = 0;      ///< joiner's roster epoch
  std::uint32_t first_var = 0;
  std::uint32_t var_count = 0;
};

/// One donor's bootstrap reply: weight values for the requested variable
/// range plus the training-clock state (iteration, GBS controller ticks)
/// the joiner adopts once every chunk has arrived.
struct BootstrapChunk {
  std::uint32_t from = 0;
  std::uint64_t epoch = 0;
  std::uint32_t first_var = 0;
  std::uint64_t iteration = 0;
  std::uint64_t gbs_ticks = 0;  ///< donor's GBS controller tick count
  double loss = 0.0;            ///< donor's smoothed loss (DKT seed)
  WeightPayload weights;        ///< parts for [first_var, first_var+n)
};

/// Weight-snapshot publication from a live training run to serving
/// replicas (DESIGN.md "Serving tier"). Reuses the bootstrap chunking
/// scheme: `weights` holds the variables [first_var, first_var +
/// weights.parts.size()) out of `total_vars`, so large models can be
/// streamed in ranges over the data lane. All chunks of one publish share
/// views over a single staged snapshot; fanning out to many replicas never
/// re-copies weights. `version` is the publisher's monotone publish
/// sequence number; `iteration` is the training iteration the snapshot was
/// taken at (feeds the replica staleness metric).
struct ModelPublish {
  std::uint32_t from = 0;
  std::uint64_t version = 0;
  std::uint64_t iteration = 0;
  std::uint32_t first_var = 0;
  std::uint32_t total_vars = 0;
  WeightPayload weights;  ///< parts for [first_var, first_var+n)
};

using Message = std::variant<GradientUpdate, WeightSnapshot, LossReport,
                             DktRequest, RcpReport, Heartbeat, Ack,
                             RosterUpdate, BootstrapRequest, BootstrapChunk,
                             ModelPublish>;
using MessagePtr = std::shared_ptr<const Message>;

/// Pack a member set into the RosterUpdate bitmap words (and back).
std::vector<std::uint64_t> pack_members(const std::vector<bool>& members);
std::vector<bool> unpack_members(const std::vector<std::uint64_t>& words,
                                 std::size_t capacity);

/// Deterministic causal-flow identifier stamped on every fabric
/// transmission (DESIGN.md "Causal tracing"). Derived purely from
/// (src_worker, per-sender transmission sequence) — no randomness, no wall
/// clocks — so the same simulation always produces the same flow ids and an
/// attached tracer can link send → transfer → deliver events across tracks.
///
/// Layout: bits [40, 64) hold src_worker + 1 (so a valid id is never 0),
/// bits [0, 40) the 1-based per-sender sequence number.
using FlowId = std::uint64_t;

inline constexpr int kFlowSeqBits = 40;

constexpr FlowId make_flow_id(std::size_t src_worker, std::uint64_t seq) {
  return (static_cast<FlowId>(src_worker + 1) << kFlowSeqBits) |
         (seq & ((FlowId{1} << kFlowSeqBits) - 1));
}
constexpr std::size_t flow_src_worker(FlowId id) {
  return static_cast<std::size_t>(id >> kFlowSeqBits) - 1;
}
constexpr std::uint64_t flow_seq(FlowId id) {
  return id & ((FlowId{1} << kFlowSeqBits) - 1);
}

/// True for messages that ride the control queue (small, latency-bound).
bool is_control(const Message& msg);

/// Arena bytes a retained copy of `msg` pins (sum of its payload view
/// lengths; 0 for control messages). Feeds the fabric's dead-letter
/// byte-based eviction: a dead-lettered data message keeps its blocks alive
/// until the record is dropped.
std::size_t payload_bytes(const Message& msg);

/// Stable human-readable name of the message's alternative ("GradientUpdate",
/// "Ack", ...) — used as the `type` label on fabric metrics.
const char* message_type_name(const Message& msg);
/// Same, by variant index (0 <= index < std::variant_size_v<Message>).
const char* message_type_name(std::size_t variant_index);

}  // namespace dlion::comm

#include "comm/message.h"

namespace dlion::comm {

std::size_t GradientUpdate::num_entries() const {
  std::size_t n = 0;
  for (const auto& v : vars) n += v.num_entries();
  return n;
}

double GradientUpdate::density(std::size_t model_params) const {
  if (model_params == 0) return 0.0;
  return static_cast<double>(num_entries()) /
         static_cast<double>(model_params);
}

bool is_control(const Message& msg) {
  return std::holds_alternative<LossReport>(msg) ||
         std::holds_alternative<DktRequest>(msg) ||
         std::holds_alternative<RcpReport>(msg) ||
         std::holds_alternative<Heartbeat>(msg) ||
         std::holds_alternative<Ack>(msg);
}

}  // namespace dlion::comm

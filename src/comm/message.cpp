#include "comm/message.h"

namespace dlion::comm {

std::size_t GradientUpdate::num_entries() const {
  std::size_t n = 0;
  for (const auto& v : vars) n += v.num_entries();
  return n;
}

double GradientUpdate::density(std::size_t model_params) const {
  if (model_params == 0) return 0.0;
  return static_cast<double>(num_entries()) /
         static_cast<double>(model_params);
}

std::vector<std::uint64_t> pack_members(const std::vector<bool>& members) {
  std::vector<std::uint64_t> words((members.size() + 63) / 64, 0);
  for (std::size_t w = 0; w < members.size(); ++w) {
    if (members[w]) words[w / 64] |= std::uint64_t{1} << (w % 64);
  }
  return words;
}

std::vector<bool> unpack_members(const std::vector<std::uint64_t>& words,
                                 std::size_t capacity) {
  std::vector<bool> members(capacity, false);
  for (std::size_t w = 0; w < capacity; ++w) {
    const std::size_t word = w / 64;
    if (word < words.size() &&
        ((words[word] >> (w % 64)) & std::uint64_t{1}) != 0) {
      members[w] = true;
    }
  }
  return members;
}

const char* message_type_name(std::size_t variant_index) {
  static constexpr const char* kNames[] = {
      "GradientUpdate", "WeightSnapshot", "LossReport",
      "DktRequest",     "RcpReport",      "Heartbeat",
      "Ack",            "RosterUpdate",   "BootstrapRequest",
      "BootstrapChunk", "ModelPublish"};
  static_assert(std::variant_size_v<Message> ==
                    sizeof(kNames) / sizeof(kNames[0]),
                "message_type_name: update kNames for new Message types");
  return variant_index < std::variant_size_v<Message> ? kNames[variant_index]
                                                      : "Unknown";
}

const char* message_type_name(const Message& msg) {
  return message_type_name(msg.index());
}

bool is_control(const Message& msg) {
  // BootstrapChunk and ModelPublish are deliberately absent: they carry
  // model weights and ride the data queue at their (byte-scaled) encoded
  // size, exactly like a WeightSnapshot.
  return std::holds_alternative<LossReport>(msg) ||
         std::holds_alternative<DktRequest>(msg) ||
         std::holds_alternative<RcpReport>(msg) ||
         std::holds_alternative<Heartbeat>(msg) ||
         std::holds_alternative<Ack>(msg) ||
         std::holds_alternative<RosterUpdate>(msg) ||
         std::holds_alternative<BootstrapRequest>(msg);
}

std::size_t payload_bytes(const Message& msg) {
  return std::visit(
      [](const auto& m) -> std::size_t {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, GradientUpdate>) {
          std::size_t bytes = 0;
          for (const auto& v : m.vars) {
            bytes += v.indices.size() * sizeof(std::uint32_t) +
                     v.values.size() * sizeof(float);
          }
          return bytes;
        } else if constexpr (std::is_same_v<T, WeightSnapshot> ||
                             std::is_same_v<T, BootstrapChunk> ||
                             std::is_same_v<T, ModelPublish>) {
          return m.weights.num_values() * sizeof(float);
        } else {
          return 0;
        }
      },
      msg);
}

}  // namespace dlion::comm

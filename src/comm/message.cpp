#include "comm/message.h"

namespace dlion::comm {

std::size_t GradientUpdate::num_entries() const {
  std::size_t n = 0;
  for (const auto& v : vars) n += v.num_entries();
  return n;
}

double GradientUpdate::density(std::size_t model_params) const {
  if (model_params == 0) return 0.0;
  return static_cast<double>(num_entries()) /
         static_cast<double>(model_params);
}

const char* message_type_name(std::size_t variant_index) {
  static constexpr const char* kNames[] = {
      "GradientUpdate", "WeightSnapshot", "LossReport", "DktRequest",
      "RcpReport",      "Heartbeat",      "Ack"};
  static_assert(std::variant_size_v<Message> ==
                    sizeof(kNames) / sizeof(kNames[0]),
                "message_type_name: update kNames for new Message types");
  return variant_index < std::variant_size_v<Message> ? kNames[variant_index]
                                                      : "Unknown";
}

const char* message_type_name(const Message& msg) {
  return message_type_name(msg.index());
}

bool is_control(const Message& msg) {
  return std::holds_alternative<LossReport>(msg) ||
         std::holds_alternative<DktRequest>(msg) ||
         std::holds_alternative<RcpReport>(msg) ||
         std::holds_alternative<Heartbeat>(msg) ||
         std::holds_alternative<Ack>(msg);
}

}  // namespace dlion::comm

#include "comm/queues.h"

namespace dlion::comm {

void KeyedQueue::push(const std::string& key, MessagePtr msg) {
  queues_[key].push_back(std::move(msg));
}

std::optional<MessagePtr> KeyedQueue::pop(const std::string& key) {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  MessagePtr msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return msg;
}

std::optional<MessagePtr> KeyedQueue::front(const std::string& key) const {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::size_t KeyedQueue::size(const std::string& key) const {
  auto it = queues_.find(key);
  return it == queues_.end() ? 0 : it->second.size();
}

std::size_t KeyedQueue::total_size() const {
  std::size_t n = 0;
  for (const auto& [key, q] : queues_) n += q.size();
  return n;
}

std::vector<std::string> KeyedQueue::keys() const {
  std::vector<std::string> out;
  out.reserve(queues_.size());
  for (const auto& [key, q] : queues_) {
    if (!q.empty()) out.push_back(key);
  }
  return out;
}

std::size_t KeyedQueue::clear(const std::string& key) {
  auto it = queues_.find(key);
  if (it == queues_.end()) return 0;
  const std::size_t n = it->second.size();
  queues_.erase(it);
  return n;
}

PubSubBus::SubscriptionId PubSubBus::subscribe(const std::string& channel,
                                               Handler handler) {
  const SubscriptionId id = next_id_++;
  subs_.emplace(id, Subscription{channel, std::move(handler)});
  return id;
}

void PubSubBus::unsubscribe(SubscriptionId id) { subs_.erase(id); }

std::size_t PubSubBus::publish(const std::string& channel, MessagePtr msg) {
  // Collect handlers first: a handler may (un)subscribe during delivery.
  std::vector<Handler> targets;
  for (const auto& [id, sub] : subs_) {
    if (sub.channel == channel) targets.push_back(sub.handler);
  }
  for (const auto& handler : targets) handler(channel, msg);
  return targets.size();
}

std::size_t PubSubBus::subscriber_count(const std::string& channel) const {
  std::size_t n = 0;
  for (const auto& [id, sub] : subs_) {
    if (sub.channel == channel) ++n;
  }
  return n;
}

std::string WorkerQueues::data_key(std::size_t from, std::uint64_t iteration,
                                   std::uint32_t var_index) {
  return "w" + std::to_string(from) + "/i" + std::to_string(iteration) +
         "/v" + std::to_string(var_index);
}

std::string WorkerQueues::bootstrap_key(std::size_t from, std::uint64_t epoch,
                                        std::uint32_t first_var) {
  return "b" + std::to_string(from) + "/e" + std::to_string(epoch) + "/v" +
         std::to_string(first_var);
}

}  // namespace dlion::comm

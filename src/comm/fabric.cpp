#include "comm/fabric.h"

#include <cmath>
#include <stdexcept>

namespace dlion::comm {

Fabric::Fabric(sim::Network& network, double byte_scale)
    : network_(&network),
      byte_scale_(byte_scale),
      handlers_(network.size()) {
  if (byte_scale <= 0.0) {
    throw std::invalid_argument("Fabric: byte_scale must be positive");
  }
}

void Fabric::attach(std::size_t worker, Handler handler) {
  handlers_.at(worker) = std::move(handler);
}

common::Bytes Fabric::charged_bytes(const Message& msg) const {
  const common::Bytes raw = wire_bytes(msg);
  if (is_control(msg)) return raw;  // control queue: no scaling
  return static_cast<common::Bytes>(
      std::llround(static_cast<double>(raw) * byte_scale_));
}

void Fabric::send(std::size_t from, std::size_t to, Message msg) {
  if (!handlers_.at(to)) {
    throw std::logic_error("Fabric::send: no handler attached at receiver");
  }
  auto ptr = std::make_shared<const Message>(std::move(msg));
  const common::Bytes bytes = charged_bytes(*ptr);
  network_->send(from, to, bytes, [this, from, to, ptr]() {
    handlers_[to](from, ptr);
  });
}

void Fabric::broadcast(std::size_t from, const Message& msg) {
  for (std::size_t to = 0; to < size(); ++to) {
    if (to != from) send(from, to, msg);
  }
}

}  // namespace dlion::comm

#include "comm/fabric.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/track_names.h"
#include "obs/watchdog.h"

namespace dlion::comm {

Fabric::Fabric(sim::Network& network, double byte_scale)
    : Fabric(network, FabricOptions{byte_scale, FabricOptions{}.dead_letter_cap,
                                    FabricOptions{}.dead_letter_max_bytes}) {}

Fabric::Fabric(sim::Network& network, const FabricOptions& options)
    : network_(&network),
      byte_scale_(options.byte_scale),
      dead_letter_cap_(options.dead_letter_cap),
      dead_letter_max_bytes_(options.dead_letter_max_bytes),
      handlers_(network.size()),
      dead_letters_to_(network.size(), 0),
      epoch_stamp_(network.size(), 0),
      epoch_floor_(network.size(), 0),
      flow_seq_(network.size(), 0),
      delivered_seqs_(network.size()) {
  if (options.byte_scale <= 0.0) {
    throw std::invalid_argument("Fabric: byte_scale must be positive");
  }
}

void Fabric::set_obs(obs::Observability* o) {
  obs_ = o;
  obs_types_.clear();
  obs_dead_letters_ = obs_dead_letter_evictions_ = obs_stale_rejected_ =
      obs_retries_ = obs_failures_ = nullptr;
  obs_dead_letter_pinned_bytes_ = nullptr;
  obs_track_ = 0;
  obs_worker_tracks_.clear();
  if (o == nullptr) return;
  obs::MetricsRegistry& m = o->metrics();
  obs_types_.resize(std::variant_size_v<Message>);
  for (std::size_t i = 0; i < obs_types_.size(); ++i) {
    const obs::Labels labels{{"type", message_type_name(i)}};
    obs_types_[i].sent = &m.counter("comm.fabric.sent", labels);
    obs_types_[i].sent_bytes = &m.counter("comm.fabric.sent_bytes", labels);
  }
  obs_dead_letters_ = &m.counter("comm.fabric.dead_letters");
  obs_dead_letter_evictions_ = &m.counter("comm.fabric.dead_letter_evictions");
  obs_dead_letter_pinned_bytes_ = &m.gauge("comm.dead_letter_pinned_bytes");
  obs_stale_rejected_ = &m.counter("comm.fabric.stale_epoch_rejected");
  obs_retries_ = &m.counter("comm.fabric.reliable_retries");
  obs_failures_ = &m.counter("comm.fabric.reliable_failures");
  obs_track_ = o->tracer().track("fabric", "control");
  // Flow endpoints live on the same "workers / worker i" lanes the workers
  // record their compute/stall spans on (find-or-create dedupes with
  // core::Worker::set_obs regardless of attach order).
  obs_worker_tracks_.resize(size());
  for (std::size_t w = 0; w < size(); ++w) {
    obs_worker_tracks_[w] = o->tracer().track("workers", obs::worker_track(w));
  }
}

void Fabric::attach(std::size_t worker, Handler handler) {
  handlers_.at(worker) = std::move(handler);
}

void Fabric::detach(std::size_t worker) { handlers_.at(worker) = nullptr; }

bool Fabric::attached(std::size_t worker) const {
  return static_cast<bool>(handlers_.at(worker));
}

common::Bytes Fabric::charged_bytes(const Message& msg) const {
  const common::Bytes raw = wire_bytes(msg);
  if (is_control(msg)) return raw;  // control queue: no scaling
  return static_cast<common::Bytes>(
      std::llround(static_cast<double>(raw) * byte_scale_));
}

common::Bytes Fabric::charged_bytes(const GradientUpdate& update) const {
  // Gradient updates are data messages (never control), so the scaling
  // always applies; same arithmetic as the Message overload.
  return static_cast<common::Bytes>(
      std::llround(static_cast<double>(wire_bytes(update)) * byte_scale_));
}

bool Fabric::deliver(std::size_t from, std::size_t to, const MessagePtr& msg,
                     FlowId flow, std::uint64_t epoch) {
  DLION_AFFINITY_DCHECK(affinity_);
  DLION_DCHECK(to < handlers_.size(), "delivery to out-of-range worker");
  DLION_DCHECK(msg != nullptr);
  if (epoch < epoch_floor_[to]) {
    // Stamped before the receiver's join epoch: traffic addressed to a
    // previous occupant of this roster slot (or from a member that had not
    // yet observed the roster change when it transmitted). Rejected
    // deterministically — the outcome depends only on the stamp and the
    // floor, both of which are event-ordered state.
    ++stale_rejected_;
    if (obs::on(obs_)) {
      obs_stale_rejected_->inc();
      obs_->tracer().instant(obs_track_, "stale_epoch", engine().now(),
                             {{"to", static_cast<double>(to)},
                              {"epoch", static_cast<double>(epoch)},
                              {"type", static_cast<double>(msg->index())}});
    }
    return false;
  }
  if (!handlers_[to]) {
    // Receiver is detached (crashed or never joined): dead-letter. The
    // causal flow ends nowhere — viewers show the arrow stopping at the
    // link's tx span, which is exactly what happened.
    ++dead_letters_;
    ++dead_letters_to_[to];
    record_dead_letter(from, to, msg);
    if (obs::on(obs_)) {
      obs_dead_letters_->inc();
      obs_->tracer().instant(obs_track_, "dead_letter",
                             engine().now(),
                             {{"to", static_cast<double>(to)},
                              {"type", static_cast<double>(msg->index())}});
      if (obs::Watchdog* wd = obs_->watchdog()) {
        wd->on_dead_letter(engine().now());
      }
    }
    return false;
  }
  if (obs::on(obs_) && obs_->causal() && flow != 0) {
    // Flow end on the receiver's lane, at delivery time, just before the
    // handler runs — the handler's same-timestamp "apply" span (or the
    // next span on the lane) is the arrow's destination.
    obs_->tracer().flow(obs_worker_tracks_[to], obs::Tracer::FlowPhase::kEnd,
                        message_type_name(*msg), engine().now(), flow);
  }
  handlers_[to](from, msg);
  return true;
}

void Fabric::record_dead_letter(std::size_t from, std::size_t to,
                                const MessagePtr& msg) {
  DLION_AFFINITY_DCHECK(affinity_);
  if (dead_letter_cap_ == 0) return;  // counters only, no records
  const common::Bytes pinned = payload_bytes(*msg);
  dead_letter_queue_.push_back(
      DeadLetter{engine().now(), from, to, msg->index(), msg, pinned});
  dead_letter_pinned_bytes_ += pinned;
  // Evict oldest-first until both bounds hold: record count and total
  // pinned payload bytes (a retained data-lane message keeps its arena
  // blocks alive, so the byte bound is what actually caps memory).
  while (dead_letter_queue_.size() > dead_letter_cap_ ||
         dead_letter_pinned_bytes_ > dead_letter_max_bytes_) {
    dead_letter_pinned_bytes_ -= dead_letter_queue_.front().payload_bytes;
    dead_letter_queue_.pop_front();
    ++dead_letter_evictions_;
    if (obs::on(obs_)) obs_dead_letter_evictions_->inc();
  }
  if (obs::on(obs_)) {
    obs_dead_letter_pinned_bytes_->set(
        static_cast<double>(dead_letter_pinned_bytes_));
  }
}

void Fabric::set_epoch(std::size_t worker, std::uint64_t epoch) {
  epoch_stamp_.at(worker) = epoch;
}

void Fabric::set_epoch_floor(std::size_t worker, std::uint64_t epoch) {
  epoch_floor_.at(worker) = epoch;
}

void Fabric::transmit(std::size_t from, std::size_t to, MessagePtr msg,
                      common::Bytes bytes, Kind kind, std::uint64_t seq) {
  DLION_AFFINITY_DCHECK(affinity_);
  // Flow ids advance unconditionally: the stamp exists whether or not an
  // observer is attached, so attaching one cannot shift any id (and the id
  // itself never influences delivery — see Network::send).
  DLION_DCHECK(from < flow_seq_.size(), "transmit from out-of-range worker");
  const FlowId flow = make_flow_id(from, ++flow_seq_[from]);
  // Roster-epoch stamp: captured at transmit time, so a reliable-channel
  // retry after the sender's epoch advanced carries the *new* stamp.
  const std::uint64_t epoch = epoch_stamp_[from];
  // Flow-id monotonicity contract: the per-sender sequence is strictly
  // increasing and must stay inside its 40-bit field — a wrap would reuse
  // ids and silently cross-link unrelated causal flows in the trace.
  DLION_ASSERT(flow_seq_[from] < (std::uint64_t{1} << kFlowSeqBits),
               "per-sender flow sequence overflowed 2^40 transmissions");
  DLION_DCHECK(flow_src_worker(flow) == from && flow != 0,
               "flow id round-trip lost the sender");
  if (obs::on(obs_)) {
    ObsTypeHandles& h = obs_types_[msg->index()];
    h.sent->inc();
    h.sent_bytes->inc(static_cast<double>(bytes));
    if (obs_->causal()) {
      // Flow start on the sender's lane at transmit time; the enclosing
      // slice (compute/apply) becomes the arrow's origin.
      obs_->tracer().flow(obs_worker_tracks_[from],
                          obs::Tracer::FlowPhase::kStart,
                          message_type_name(*msg), engine().now(), flow);
    }
  }
  switch (kind) {
    case Kind::kPlain:
      network_->send(from, to, bytes, [this, from, to, msg, flow, epoch] {
        deliver(from, to, msg, flow, epoch);
      }, flow);
      break;
    case Kind::kReliable:
      network_->send(from, to, bytes, [this, from, to, msg, seq, flow,
                                       epoch] {
        if (delivered_seqs_[to].contains(seq)) {
          // Duplicate attempt (our earlier ack was lost): suppress the
          // re-delivery but re-acknowledge so the sender stops retrying.
          send_ack(to, from, seq);
          return;
        }
        if (deliver(from, to, msg, flow, epoch)) {
          delivered_seqs_[to].insert(seq);
          send_ack(to, from, seq);
        }
        // A detached receiver sends no ack: the sender keeps retrying and
        // succeeds iff the worker reattaches within its retry budget.
      }, flow);
      break;
    case Kind::kAck:
      network_->send(from, to, bytes, [this, to, msg, flow] {
        if (obs::on(obs_) && obs_->causal()) {
          obs_->tracer().flow(obs_worker_tracks_[to],
                              obs::Tracer::FlowPhase::kEnd, "Ack",
                              engine().now(), flow);
        }
        on_ack(std::get<Ack>(*msg).seq);
      }, flow);
      break;
  }
}

void Fabric::send(std::size_t from, std::size_t to, Message msg) {
  auto ptr = std::make_shared<const Message>(std::move(msg));
  const common::Bytes bytes = charged_bytes(*ptr);
  transmit(from, to, std::move(ptr), bytes, Kind::kPlain, 0);
}

void Fabric::broadcast(std::size_t from, const Message& msg) {
  // Encode-size once, share one immutable message across all n-1 sends.
  auto ptr = std::make_shared<const Message>(msg);
  const common::Bytes bytes = charged_bytes(*ptr);
  for (std::size_t to = 0; to < size(); ++to) {
    if (to != from) transmit(from, to, ptr, bytes, Kind::kPlain, 0);
  }
}

void Fabric::broadcast(std::size_t from, const Message& msg,
                       const std::vector<bool>& targets) {
  DLION_ASSERT(targets.size() == size(),
               "Fabric::broadcast: target mask size != worker count");
  auto ptr = std::make_shared<const Message>(msg);
  const common::Bytes bytes = charged_bytes(*ptr);
  for (std::size_t to = 0; to < size(); ++to) {
    if (to != from && targets[to]) transmit(from, to, ptr, bytes, Kind::kPlain, 0);
  }
}

void Fabric::send_ack(std::size_t from, std::size_t to, std::uint64_t seq) {
  auto ptr = std::make_shared<const Message>(
      Ack{static_cast<std::uint32_t>(from), seq});
  const common::Bytes bytes = charged_bytes(*ptr);
  transmit(from, to, std::move(ptr), bytes, Kind::kAck, seq);
}

std::uint64_t Fabric::send_reliable(std::size_t from, std::size_t to,
                                    Message msg, const RetryPolicy& policy,
                                    ReliableCallback done) {
  if (policy.max_attempts == 0 || policy.timeout_s <= 0.0 ||
      policy.backoff < 1.0) {
    throw std::invalid_argument("Fabric::send_reliable: bad RetryPolicy");
  }
  const std::uint64_t seq = next_seq_++;
  PendingReliable pending;
  pending.from = from;
  pending.to = to;
  pending.msg = std::make_shared<const Message>(std::move(msg));
  pending.bytes = charged_bytes(*pending.msg);
  pending.policy = policy;
  pending.done = std::move(done);
  pending_.emplace(seq, std::move(pending));
  start_attempt(seq);
  return seq;
}

void Fabric::start_attempt(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  PendingReliable& p = it->second;
  const double timeout =
      p.policy.timeout_s *
      std::pow(p.policy.backoff, static_cast<double>(p.attempt));
  ++p.attempt;
  transmit(p.from, p.to, p.msg, p.bytes, Kind::kReliable, seq);
  p.timer = engine().after(timeout, [this, seq] { on_timeout(seq); });
}

void Fabric::on_timeout(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // acked in the meantime
  PendingReliable& p = it->second;
  if (p.attempt >= p.policy.max_attempts) {
    ++reliable_failures_;
    ++dead_letters_;
    ++dead_letters_to_[p.to];
    record_dead_letter(p.from, p.to, p.msg);
    if (obs::on(obs_)) {
      obs_failures_->inc();
      obs_dead_letters_->inc();
      obs_->tracer().instant(obs_track_, "reliable_failure", engine().now(),
                             {{"to", static_cast<double>(p.to)},
                              {"seq", static_cast<double>(seq)}});
      if (obs::Watchdog* wd = obs_->watchdog()) {
        wd->on_dead_letter(engine().now());
      }
    }
    ReliableCallback done = std::move(p.done);
    pending_.erase(it);
    if (done) done(false);
    return;
  }
  ++reliable_retries_;
  if (obs::on(obs_)) {
    obs_retries_->inc();
    obs_->tracer().instant(obs_track_, "reliable_retry", engine().now(),
                           {{"to", static_cast<double>(p.to)},
                            {"seq", static_cast<double>(seq)}});
  }
  start_attempt(seq);
}

void Fabric::on_ack(std::uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;  // duplicate ack
  engine().cancel(it->second.timer);
  ReliableCallback done = std::move(it->second.done);
  pending_.erase(it);
  if (done) done(true);
}

}  // namespace dlion::comm

#include "comm/payload.h"

#include <algorithm>

namespace dlion::comm {

namespace {

std::atomic<std::uint64_t> g_copy_count{0};
std::atomic<std::uint64_t> g_copy_bytes{0};

std::size_t round_up(std::size_t bytes) {
  return (bytes + detail::PayloadBlock::kAlignment - 1) &
         ~(detail::PayloadBlock::kAlignment - 1);
}

}  // namespace

namespace detail {

void note_payload_copy(std::size_t bytes) {
  g_copy_count.fetch_add(1, std::memory_order_relaxed);
  g_copy_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

std::shared_ptr<PayloadBlock> make_block(std::size_t bytes) {
  auto block = std::make_shared<PayloadBlock>();
  const std::size_t capacity = round_up(bytes == 0 ? 1 : bytes);
  block->data.reset(new (std::align_val_t(PayloadBlock::kAlignment))
                        std::byte[capacity]);
  block->capacity = capacity;
  return block;
}

}  // namespace detail

std::uint64_t payload_copy_count() {
  return g_copy_count.load(std::memory_order_relaxed);
}

std::uint64_t payload_copy_bytes() {
  return g_copy_bytes.load(std::memory_order_relaxed);
}

PayloadHandle PayloadArena::acquire(std::size_t min_bytes) {
  DLION_AFFINITY_DCHECK(affinity_);
  // Deterministic index-order scan for an unpinned block that fits. The
  // arena's own handle is the one remaining owner of a recyclable block, so
  // use_count() == 1 means no Payload or writer holds it. All messaging
  // runs on the simulation thread; there is no concurrent owner that could
  // race this check.
  for (auto& block : blocks_) {
    if (block.use_count() == 1 && block->capacity >= min_bytes) {
      block->used = 0;
      ++block->generation;
      return block;
    }
  }
  // Size new blocks by demand, never by doubling the previous block: a
  // consumer that legitimately retains messages (dead-letter queue, a test
  // harness inbox) pins blocks indefinitely, and demand-doubling would turn
  // every pinned block into exponential growth. Linear-in-retention is the
  // worst case here; recycling keeps the steady state at O(1) blocks.
  const std::size_t size = std::max(kMinBlockBytes, round_up(min_bytes));
  blocks_.push_back(detail::make_block(size));
  return blocks_.back();
}

std::size_t PayloadArena::pinned_blocks() const {
  std::size_t n = 0;
  for (const auto& block : blocks_) {
    if (block.use_count() > 1) ++n;
  }
  return n;
}

std::size_t PayloadArena::capacity_bytes() const {
  std::size_t total = 0;
  for (const auto& block : blocks_) total += block->capacity;
  return total;
}

std::byte* PayloadWriter::reserve(std::size_t bytes, std::size_t align) {
  if (block_ != nullptr) {
    std::size_t off = block_->used;
    off = (off + align - 1) & ~(align - 1);
    if (off + bytes <= block_->capacity) {
      staged_offset_ = off;
      block_->used = off;  // cursor advances at commit()
      return block_->data.get() + off;
    }
  }
  std::size_t want = hint_bytes_;
  if (want < bytes) want = bytes;
  block_ = arena_->acquire(want);
  staged_offset_ = 0;
  return block_->data.get();
}

}  // namespace dlion::comm

// Fuzz target: critical-path attribution over corrupted traces.
//
// The input bytes are decoded as a little op stream that drives the Tracer
// API into arbitrary — including pathological — shapes: spans on worker and
// link lanes with fuzzer-chosen names and (possibly inverted, overlapping,
// or NaN-free but extreme) timestamps, dangling flow starts, flow ends with
// no start, duplicated flow ids, unmatched begin/end pairs. The analyzer
// must cope: a trace file on disk can be truncated or hand-edited, and the
// DAG builder is documented as never touching the simulation.
//
// Properties enforced on every input:
//   1. compute_critical_path never crashes and never loops forever.
//   2. An invalid report is all-empty; a valid report satisfies the tiling
//      contract: category seconds sum to the path's total length (within
//      float tolerance) and segments tile [t_start, t_end] contiguously.
//   3. to_json() of any report parses with the jsonlite parser — the
//      exporter emits well-formed JSON even for degenerate traces.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/critical_path.h"
#include "obs/json_lite.h"
#include "obs/tracer.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_critical_path: property violated: %s\n", what);
  std::abort();
}

/// Sequential byte reader; wraps to 0 past the end so any prefix length
/// still yields a full op decode (keeps coverage dense on short inputs).
struct ByteStream {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  std::uint8_t u8() { return pos < size ? data[pos++] : 0; }
  double time() {
    // 16-bit fixed point over [0, 655.35]s: finite, non-NaN by
    // construction (the tracer's own inputs are sim times, always finite),
    // but unordered and colliding — the interesting corruption space.
    const std::uint16_t raw =
        static_cast<std::uint16_t>(u8() | (static_cast<std::uint16_t>(u8()) << 8));
    return static_cast<double>(raw) / 100.0;
  }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using dlion::obs::Tracer;
  dlion::obs::Tracer tracer;
  ByteStream in{data, size};

  // A small fixed lane universe mirroring the instrumented conventions.
  const dlion::obs::TrackId lanes[4] = {
      tracer.track("workers", "worker 0"),
      tracer.track("workers", "worker 1"),
      tracer.track("network", "link 0->1"),
      tracer.track("network", "link 1->0"),
  };
  static const char* const kNames[8] = {"compute", "stall",   "dkt_pull",
                                        "apply",   "tx",      "queue",
                                        "retry",   "mystery"};

  // Cap ops so a large input can't make the harness itself slow; 4k ops is
  // far beyond any shape the analyzer distinguishes.
  const std::size_t max_ops = 4096;
  for (std::size_t op_count = 0; in.pos < in.size && op_count < max_ops;
       ++op_count) {
    const std::uint8_t op = in.u8();
    const dlion::obs::TrackId lane = lanes[op & 3];
    const char* name = kNames[(op >> 2) & 7];
    switch (op >> 5) {
      case 0: {
        const double t0 = in.time();
        const double t1 = in.time();
        tracer.complete(lane, name, t0, t1);  // possibly t1 < t0
        break;
      }
      case 1:
        tracer.begin(lane, name, in.time());
        break;
      case 2:
        tracer.end(lane, in.time());
        break;
      case 3:
        tracer.instant(lane, name, in.time());
        break;
      case 4:
        tracer.counter(lane, name, in.time(), static_cast<double>(in.u8()));
        break;
      case 5:
        tracer.flow(lane, Tracer::FlowPhase::kStart, name, in.time(),
                    1 + (in.u8() & 15));
        break;
      case 6:
        tracer.flow(lane, Tracer::FlowPhase::kEnd, name, in.time(),
                    1 + (in.u8() & 15));
        break;
      case 7:
        tracer.flow(lane, Tracer::FlowPhase::kStep, name, in.time(),
                    1 + (in.u8() & 15));
        break;
    }
  }

  dlion::obs::CriticalPathOptions options;
  options.epoch_seconds = (data && size != 0 && (data[0] & 1) != 0) ? 10.0 : 0.0;
  const dlion::obs::CriticalPathReport report =
      dlion::obs::compute_critical_path(tracer, options);

  if (!report.valid) {
    if (!report.segments.empty() || !report.workers.empty() ||
        !report.links.empty()) {
      die("invalid report carries data");
    }
  } else {
    // Tiling contract: category seconds sum to the path length; segments
    // are contiguous and chronological.
    double cat_total = 0.0;
    for (double s : report.category_seconds) {
      if (!(s >= 0.0)) die("negative or NaN category seconds");
      cat_total += s;
    }
    const double span = report.total_seconds();
    if (!(span >= 0.0)) die("t_end precedes t_start in a valid report");
    if (std::fabs(cat_total - span) > 1e-6 * (1.0 + std::fabs(span))) {
      die("category seconds do not sum to the path length");
    }
    double cursor = report.t_start;
    for (const auto& seg : report.segments) {
      if (std::fabs(seg.t0 - cursor) > 1e-9) die("segments do not tile");
      if (seg.t1 < seg.t0 - 1e-9) die("segment runs backwards");
      cursor = seg.t1;
    }
    if (!report.segments.empty() &&
        std::fabs(cursor - report.t_end) > 1e-9) {
      die("segments do not reach t_end");
    }
  }

  // Exported JSON must be well-formed regardless of trace shape.
  const std::string json = report.to_json();
  dlion::obs::jsonlite::Json doc;
  dlion::obs::jsonlite::JsonParser parser(json);
  if (!parser.parse(doc)) die("report.to_json() is not valid JSON");
  (void)report.attribution_table();
  return 0;
}

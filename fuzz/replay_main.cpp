// Corpus-replay driver for the fuzz harnesses.
//
// The build image carries gcc only, so the default fuzz build has no
// libFuzzer runtime. Instead each harness links this main(), which feeds
// every file (or every file in every directory) named on the command line
// through LLVMFuzzerTestOneInput — exactly what `./fuzz_codec corpus/codec`
// under libFuzzer would replay, minus the mutation engine. This makes the
// committed corpora a deterministic regression suite runnable under ctest
// and any sanitizer.
//
// Configure with -DDLION_FUZZ=ON (requires clang) to link libFuzzer
// instead and actually explore.
#ifndef DLION_FUZZ_LIBFUZZER

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

int run_one(const std::filesystem::path& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  // A crash/abort inside the harness terminates the process with the
  // offending file already announced, so failures are attributable.
  std::fprintf(stderr, "[replay] %s (%zu bytes)\n", path.string().c_str(),
               bytes.size());
  return LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t executed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path target(argv[i]);
    std::error_code ec;
    if (fs::is_directory(target, ec)) {
      // Sorted order: the replay itself is deterministic.
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(target, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const fs::path& f : files) {
        run_one(f);
        ++executed;
      }
    } else if (fs::is_regular_file(target, ec)) {
      run_one(target);
      ++executed;
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n", argv[i]);
      return 2;
    }
  }
  std::printf("replay: %zu input(s), no crashes\n", executed);
  return 0;
}

#endif  // !DLION_FUZZ_LIBFUZZER

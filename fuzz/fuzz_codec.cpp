// Fuzz target: the wire codec's decode paths.
//
// Properties enforced on every input:
//   1. Decoding never crashes, never allocates proportionally to a hostile
//      length prefix, and throws nothing but comm::DecodeError.
//   2. Canonical re-encode: any buffer the decoder ACCEPTS must re-encode
//      byte-identically. The simulator charges wire_bytes() to the network,
//      so a non-canonical accepted encoding would let identical messages
//      cost different bytes depending on history — a determinism leak.
//   3. wire_bytes() of a decoded message equals the accepted buffer's size.
//
// The input is fed to all three entry points (gradient update, weight
// snapshot, tagged envelope); each either throws DecodeError or satisfies
// the round-trip property.
//
// Historical finding (now a unit test + corpus seed): decode trusted the
// 32-bit var/tensor count prefixes and reserve()d before validating, so a
// 20-byte header claiming 0xFFFFFFFF variables attempted a multi-GB
// allocation. corpus/codec/oversized_var_count is the regression input.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "comm/codec.h"
#include "comm/message.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_codec: property violated: %s\n", what);
  std::abort();
}

template <typename Decode, typename Encode>
void check_entry_point(const std::vector<std::uint8_t>& buf, Decode decode,
                       Encode encode, const char* name) {
  bool accepted = false;
  try {
    auto msg = decode(buf);
    accepted = true;
    const std::vector<std::uint8_t> reencoded = encode(msg);
    if (reencoded != buf) die(name);
  } catch (const dlion::comm::DecodeError&) {
    // Expected rejection path for malformed input.
    if (accepted) die("DecodeError thrown after successful decode");
  }
  // Any other exception type escapes and aborts the harness: decoders
  // contractually throw DecodeError only.
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> buf(data, data + size);
  using namespace dlion::comm;

  check_entry_point(
      buf, [](const auto& b) { return decode_gradient_update(b); },
      [](const GradientUpdate& m) { return encode(m); },
      "gradient update re-encode not byte-identical");

  check_entry_point(
      buf, [](const auto& b) { return decode_weight_snapshot(b); },
      [](const WeightSnapshot& m) { return encode(m); },
      "weight snapshot re-encode not byte-identical");

  try {
    const Message msg = decode_message(buf);
    const std::vector<std::uint8_t> reencoded = encode_message(msg);
    if (reencoded != buf) die("envelope re-encode not byte-identical");
    // Envelope = 1 tag byte + payload. For DATA messages wire_bytes() is
    // the exact encoded payload size; for control messages it is the flat
    // simulator charge (kControlBytes), deliberately decoupled from the
    // encoding — so the equality is asserted only for data.
    if (!is_control(msg) &&
        static_cast<std::size_t>(wire_bytes(msg)) + 1 != buf.size()) {
      die("wire_bytes disagrees with accepted data-message envelope size");
    }
  } catch (const DecodeError&) {
  }
  return 0;
}

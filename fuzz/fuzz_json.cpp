// Fuzz target: the jsonlite parser used to validate run-artifact JSON
// (telemetry, watchdog reports, critical-path exports).
//
// Properties enforced on every input:
//   1. Parsing never crashes — in particular the recursion depth limit
//      holds. (Historical finding: value() recursed once per nesting level
//      with no bound, so ~100k of '[' overflowed the stack. Fixed by
//      kMaxParseDepth; corpus/json/deep_nesting is the regression input.)
//   2. Parsing is deterministic: a second parse of the same bytes returns
//      the same verdict.
//   3. Accepted documents are structurally sane (kind tags within range).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json_lite.h"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "fuzz_json: property violated: %s\n", what);
  std::abort();
}

void check_sane(const dlion::obs::jsonlite::Json& j, int depth) {
  using Json = dlion::obs::jsonlite::Json;
  if (depth > dlion::obs::jsonlite::kMaxParseDepth + 1) {
    die("accepted document deeper than the parse depth limit");
  }
  switch (j.kind) {
    case Json::kNull:
    case Json::kBool:
    case Json::kNumber:
    case Json::kString:
      break;
    case Json::kArray:
      for (const Json& v : j.array) check_sane(v, depth + 1);
      break;
    case Json::kObject:
      for (const auto& [k, v] : j.object) check_sane(v, depth + 1);
      break;
    default:
      die("kind tag out of range");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  using dlion::obs::jsonlite::Json;
  using dlion::obs::jsonlite::JsonParser;

  Json first;
  JsonParser p1(text);
  const bool ok1 = p1.parse(first);

  Json second;
  JsonParser p2(text);
  const bool ok2 = p2.parse(second);
  if (ok1 != ok2) die("parse verdict not deterministic");

  if (ok1) check_sane(first, 0);
  return 0;
}

#include "comm/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dlion::comm {
namespace {

GradientUpdate sample_update() {
  GradientUpdate u;
  u.from = 3;
  u.iteration = 12345;
  u.lbs = 64;
  VariableGrad sparse;
  sparse.var_index = 0;
  sparse.dense_size = 100;
  sparse.indices = {1, 17, 99};
  sparse.values = {0.5f, -2.0f, 3.25f};
  VariableGrad dense;
  dense.var_index = 1;
  dense.dense_size = 4;
  dense.values = {1, 2, 3, 4};
  u.vars = {sparse, dense};
  return u;
}

TEST(Codec, GradientUpdateRoundTrip) {
  const GradientUpdate u = sample_update();
  const auto buf = encode(u);
  const GradientUpdate d = decode_gradient_update(buf);
  EXPECT_EQ(d.from, u.from);
  EXPECT_EQ(d.iteration, u.iteration);
  EXPECT_EQ(d.lbs, u.lbs);
  ASSERT_EQ(d.vars.size(), 2u);
  EXPECT_EQ(d.vars[0].indices, u.vars[0].indices);
  EXPECT_EQ(d.vars[0].values, u.vars[0].values);
  EXPECT_TRUE(d.vars[1].is_dense());
  EXPECT_EQ(d.vars[1].values, u.vars[1].values);
}

TEST(Codec, WireBytesMatchesEncodedSize) {
  const GradientUpdate u = sample_update();
  EXPECT_EQ(wire_bytes(u), encode(u).size());
}

TEST(Codec, EmptyUpdateRoundTrip) {
  GradientUpdate u;
  u.from = 1;
  u.iteration = 7;
  u.lbs = 32;
  const GradientUpdate d = decode_gradient_update(encode(u));
  EXPECT_EQ(d.iteration, 7u);
  EXPECT_TRUE(d.vars.empty());
}

TEST(Codec, TruncatedBufferThrows) {
  auto buf = encode(sample_update());
  buf.resize(buf.size() - 4);
  EXPECT_THROW(decode_gradient_update(buf), std::out_of_range);
}

TEST(Codec, TrailingBytesThrow) {
  auto buf = encode(sample_update());
  buf.push_back(0);
  EXPECT_THROW(decode_gradient_update(buf), std::invalid_argument);
}

TEST(Codec, WeightSnapshotRoundTrip) {
  WeightSnapshot s;
  s.from = 2;
  s.iteration = 99;
  s.loss = 0.123;
  s.weights.values.emplace_back(tensor::Shape{3}, std::vector<float>{1, 2, 3});
  s.weights.values.emplace_back(tensor::Shape{2}, std::vector<float>{4, 5});
  const WeightSnapshot d = decode_weight_snapshot(encode(s));
  EXPECT_EQ(d.from, 2u);
  EXPECT_EQ(d.iteration, 99u);
  EXPECT_DOUBLE_EQ(d.loss, 0.123);
  ASSERT_EQ(d.weights.values.size(), 2u);
  EXPECT_FLOAT_EQ(d.weights.values[0][1], 2.0f);
  EXPECT_FLOAT_EQ(d.weights.values[1][1], 5.0f);
}

TEST(Codec, SnapshotWireBytesMatchesEncoding) {
  WeightSnapshot s;
  s.weights.values.emplace_back(tensor::Shape{10});
  EXPECT_EQ(wire_bytes(s), encode(s).size());
}

TEST(Codec, ControlMessagesHaveFixedSize) {
  const Message loss = LossReport{1, 2, 0.5};
  const Message req = DktRequest{1, 2};
  const Message rcp = RcpReport{1, 64.0};
  EXPECT_EQ(wire_bytes(loss), 64u);
  EXPECT_EQ(wire_bytes(req), 64u);
  EXPECT_EQ(wire_bytes(rcp), 64u);
}

TEST(Message, DensityAndEntries) {
  const GradientUpdate u = sample_update();
  EXPECT_EQ(u.num_entries(), 7u);
  EXPECT_DOUBLE_EQ(u.density(104), 7.0 / 104.0);
}

TEST(Message, ControlClassification) {
  EXPECT_TRUE(is_control(Message(LossReport{})));
  EXPECT_TRUE(is_control(Message(DktRequest{})));
  EXPECT_TRUE(is_control(Message(RcpReport{})));
  EXPECT_FALSE(is_control(Message(GradientUpdate{})));
  EXPECT_FALSE(is_control(Message(WeightSnapshot{})));
}

TEST(Codec, LargeRandomUpdateRoundTrip) {
  common::Rng rng(6);
  GradientUpdate u;
  u.from = 0;
  u.iteration = 1;
  u.lbs = 16;
  for (std::uint32_t v = 0; v < 5; ++v) {
    VariableGrad vg;
    vg.var_index = v;
    vg.dense_size = 1000;
    for (std::uint32_t i = 0; i < 1000; i += 7) {
      vg.indices.push_back(i);
      vg.values.push_back(static_cast<float>(rng.normal()));
    }
    u.vars.push_back(std::move(vg));
  }
  const GradientUpdate d = decode_gradient_update(encode(u));
  ASSERT_EQ(d.vars.size(), 5u);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(d.vars[v].indices, u.vars[v].indices);
    EXPECT_EQ(d.vars[v].values, u.vars[v].values);
  }
}

}  // namespace
}  // namespace dlion::comm

#include "comm/codec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dlion::comm {
namespace {

GradientUpdate sample_update() {
  GradientUpdate u;
  u.from = 3;
  u.iteration = 12345;
  u.lbs = 64;
  VariableGrad sparse;
  sparse.var_index = 0;
  sparse.dense_size = 100;
  sparse.indices = {1, 17, 99};
  sparse.values = {0.5f, -2.0f, 3.25f};
  VariableGrad dense;
  dense.var_index = 1;
  dense.dense_size = 4;
  dense.values = {1, 2, 3, 4};
  u.vars = {sparse, dense};
  return u;
}

TEST(Codec, GradientUpdateRoundTrip) {
  const GradientUpdate u = sample_update();
  const auto buf = encode(u);
  const GradientUpdate d = decode_gradient_update(buf);
  EXPECT_EQ(d.from, u.from);
  EXPECT_EQ(d.iteration, u.iteration);
  EXPECT_EQ(d.lbs, u.lbs);
  ASSERT_EQ(d.vars.size(), 2u);
  EXPECT_EQ(d.vars[0].indices, u.vars[0].indices);
  EXPECT_EQ(d.vars[0].values, u.vars[0].values);
  EXPECT_TRUE(d.vars[1].is_dense());
  EXPECT_EQ(d.vars[1].values, u.vars[1].values);
}

TEST(Codec, WireBytesMatchesEncodedSize) {
  const GradientUpdate u = sample_update();
  EXPECT_EQ(wire_bytes(u), encode(u).size());
}

TEST(Codec, EmptyUpdateRoundTrip) {
  GradientUpdate u;
  u.from = 1;
  u.iteration = 7;
  u.lbs = 32;
  const GradientUpdate d = decode_gradient_update(encode(u));
  EXPECT_EQ(d.iteration, 7u);
  EXPECT_TRUE(d.vars.empty());
}

/// Decode `buf` and return the typed failure kind (asserts it throws).
template <typename Fn>
DecodeErrorKind decode_failure_kind(Fn&& decode) {
  try {
    decode();
  } catch (const DecodeError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "decode accepted a malformed buffer";
  return DecodeErrorKind::kTruncated;
}

TEST(Codec, TruncatedBufferThrows) {
  auto buf = encode(sample_update());
  buf.resize(buf.size() - 4);
  EXPECT_EQ(decode_failure_kind([&] { decode_gradient_update(buf); }),
            DecodeErrorKind::kTruncated);
}

TEST(Codec, EveryTruncationPointThrowsTyped) {
  // Cutting the buffer at *any* byte must yield kTruncated or
  // kOversizedCount - never UB, never a foreign exception type.
  const auto full = encode(sample_update());
  for (std::size_t n = 0; n < full.size(); ++n) {
    std::vector<std::uint8_t> buf(full.begin(), full.begin() + n);
    EXPECT_THROW(decode_gradient_update(buf), DecodeError) << "cut at " << n;
  }
}

TEST(Codec, TrailingBytesThrow) {
  auto buf = encode(sample_update());
  buf.push_back(0);
  EXPECT_EQ(decode_failure_kind([&] { decode_gradient_update(buf); }),
            DecodeErrorKind::kTrailingBytes);
}

TEST(Codec, OversizedVarCountRejectedBeforeAllocation) {
  // Regression for the fuzzer-found decode bug: a 20-byte header whose
  // var-count field claims 2^32-1 variables used to drive a ~240 GB
  // vector::reserve before any payload validation. The count must be
  // rejected against the bytes actually remaining.
  auto buf = encode(GradientUpdate{});  // header only, vars = 0
  ASSERT_EQ(buf.size(), 20u);
  buf[16] = 0xff;  // var-count field (little-endian u32 at offset 16)
  buf[17] = 0xff;
  buf[18] = 0xff;
  buf[19] = 0xff;
  EXPECT_EQ(decode_failure_kind([&] { decode_gradient_update(buf); }),
            DecodeErrorKind::kOversizedCount);
}

TEST(Codec, OversizedTensorCountRejectedBeforeAllocation) {
  WeightSnapshot s;
  auto buf = encode(s);  // header only
  ASSERT_EQ(buf.size(), 24u);
  buf[20] = 0xff;  // tensor-count field
  buf[21] = 0xff;
  buf[22] = 0xff;
  buf[23] = 0xff;
  EXPECT_EQ(decode_failure_kind([&] { decode_weight_snapshot(buf); }),
            DecodeErrorKind::kOversizedCount);
}

TEST(Codec, IndexValueCountMismatchThrows) {
  GradientUpdate u = sample_update();
  auto buf = encode(u);
  // First var: {var_index, dense_size, nidx, nval} at offset 20; bump nidx
  // from 3 to 4 so the counts disagree.
  buf[20 + 8] = 4;
  EXPECT_EQ(decode_failure_kind([&] { decode_gradient_update(buf); }),
            DecodeErrorKind::kCountMismatch);
}

TEST(Codec, DensePayloadSizeMismatchThrows) {
  // indices empty but values.size() != dense_size and != 0: neither dense
  // nor sparse - a state no producer emits and apply_gradient_update would
  // silently ignore.
  GradientUpdate u;
  VariableGrad v;
  v.var_index = 0;
  v.dense_size = 8;
  v.values = {1.0f, 2.0f, 3.0f};  // 3 != 8
  u.vars.push_back(v);
  const auto buf = encode(u);
  EXPECT_EQ(decode_failure_kind([&] { decode_gradient_update(buf); }),
            DecodeErrorKind::kCountMismatch);
}

TEST(Codec, UnsortedSparseIndicesThrow) {
  GradientUpdate u;
  VariableGrad v;
  v.var_index = 0;
  v.dense_size = 100;
  v.indices = {17, 3};  // not strictly increasing
  v.values = {1.0f, 2.0f};
  u.vars.push_back(v);
  const auto buf = encode(u);
  EXPECT_EQ(decode_failure_kind([&] { decode_gradient_update(buf); }),
            DecodeErrorKind::kBadValue);
}

TEST(Codec, OutOfRangeSparseIndexThrows) {
  GradientUpdate u;
  VariableGrad v;
  v.var_index = 0;
  v.dense_size = 10;
  v.indices = {9, 10};  // 10 >= dense_size
  v.values = {1.0f, 2.0f};
  u.vars.push_back(v);
  const auto buf = encode(u);
  EXPECT_EQ(decode_failure_kind([&] { decode_gradient_update(buf); }),
            DecodeErrorKind::kBadValue);
}

TEST(Codec, MessageEnvelopeBadTagThrows) {
  std::vector<std::uint8_t> buf{42};  // unknown tag, no payload
  EXPECT_EQ(decode_failure_kind([&] { decode_message(buf); }),
            DecodeErrorKind::kBadTag);
  EXPECT_EQ(decode_failure_kind([&] { decode_message({}); }),
            DecodeErrorKind::kTruncated);
}

TEST(Codec, MessageEnvelopeRoundTripsEveryAlternative) {
  GradientUpdate g = sample_update();
  WeightSnapshot s;
  s.from = 2;
  s.iteration = 9;
  s.loss = -1.5;
  s.weights.parts.emplace_back(std::vector<float>{7, 8});
  const Message msgs[] = {
      Message(g),
      Message(s),
      Message(LossReport{1, 2, 0.5}),
      Message(DktRequest{3, 4}),
      Message(RcpReport{5, 64.0}),
      Message(Heartbeat{6, 7}),
      Message(Ack{8, 9}),
  };
  for (const Message& m : msgs) {
    const auto buf = encode_message(m);
    const Message d = decode_message(buf);
    EXPECT_EQ(d.index(), m.index());
    // Byte-exact round trip: re-encoding the decoded message must
    // reproduce the original buffer.
    EXPECT_EQ(encode_message(d), buf) << message_type_name(m);
  }
}

TEST(Codec, WeightSnapshotRoundTrip) {
  WeightSnapshot s;
  s.from = 2;
  s.iteration = 99;
  s.loss = 0.123;
  s.weights.parts.emplace_back(std::vector<float>{1, 2, 3});
  s.weights.parts.emplace_back(std::vector<float>{4, 5});
  const WeightSnapshot d = decode_weight_snapshot(encode(s));
  EXPECT_EQ(d.from, 2u);
  EXPECT_EQ(d.iteration, 99u);
  EXPECT_DOUBLE_EQ(d.loss, 0.123);
  ASSERT_EQ(d.weights.parts.size(), 2u);
  EXPECT_FLOAT_EQ(d.weights.parts[0][1], 2.0f);
  EXPECT_FLOAT_EQ(d.weights.parts[1][1], 5.0f);
}

TEST(Codec, SnapshotWireBytesMatchesEncoding) {
  WeightSnapshot s;
  s.weights.parts.emplace_back(std::vector<float>(10, 0.0f));
  EXPECT_EQ(wire_bytes(s), encode(s).size());
}

TEST(Codec, ControlMessagesHaveFixedSize) {
  const Message loss = LossReport{1, 2, 0.5};
  const Message req = DktRequest{1, 2};
  const Message rcp = RcpReport{1, 64.0};
  EXPECT_EQ(wire_bytes(loss), 64u);
  EXPECT_EQ(wire_bytes(req), 64u);
  EXPECT_EQ(wire_bytes(rcp), 64u);
}

TEST(Message, DensityAndEntries) {
  const GradientUpdate u = sample_update();
  EXPECT_EQ(u.num_entries(), 7u);
  EXPECT_DOUBLE_EQ(u.density(104), 7.0 / 104.0);
}

TEST(Message, ControlClassification) {
  EXPECT_TRUE(is_control(Message(LossReport{})));
  EXPECT_TRUE(is_control(Message(DktRequest{})));
  EXPECT_TRUE(is_control(Message(RcpReport{})));
  EXPECT_FALSE(is_control(Message(GradientUpdate{})));
  EXPECT_FALSE(is_control(Message(WeightSnapshot{})));
}

TEST(Codec, LargeRandomUpdateRoundTrip) {
  common::Rng rng(6);
  GradientUpdate u;
  u.from = 0;
  u.iteration = 1;
  u.lbs = 16;
  for (std::uint32_t v = 0; v < 5; ++v) {
    VariableGrad vg;
    vg.var_index = v;
    vg.dense_size = 1000;
    std::vector<std::uint32_t> indices;
    std::vector<float> values;
    for (std::uint32_t i = 0; i < 1000; i += 7) {
      indices.push_back(i);
      values.push_back(static_cast<float>(rng.normal()));
    }
    vg.indices = indices;
    vg.values = values;
    u.vars.push_back(std::move(vg));
  }
  const GradientUpdate d = decode_gradient_update(encode(u));
  ASSERT_EQ(d.vars.size(), 5u);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(d.vars[v].indices, u.vars[v].indices);
    EXPECT_EQ(d.vars[v].values, u.vars[v].values);
  }
}

// --- ModelPublish (tag 10): the serving tier's online-refresh message ----

ModelPublish sample_publish() {
  ModelPublish p;
  p.from = 2;
  p.version = 7;
  p.iteration = 4242;
  p.first_var = 1;
  p.total_vars = 4;
  p.weights.parts.emplace_back(std::vector<float>{1.0f, 2.0f, 3.0f});
  p.weights.parts.emplace_back(std::vector<float>{-4.0f, 0.5f});
  return p;
}

TEST(Codec, ModelPublishEnvelopeRoundTrip) {
  const Message m = sample_publish();
  const auto buf = encode_message(m);
  EXPECT_EQ(buf[0], 10u);  // stable wire tag
  const Message d = decode_message(buf);
  const auto* p = std::get_if<ModelPublish>(&d);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->from, 2u);
  EXPECT_EQ(p->version, 7u);
  EXPECT_EQ(p->iteration, 4242u);
  EXPECT_EQ(p->first_var, 1u);
  EXPECT_EQ(p->total_vars, 4u);
  ASSERT_EQ(p->weights.parts.size(), 2u);
  EXPECT_FLOAT_EQ(p->weights.parts[0][2], 3.0f);
  EXPECT_FLOAT_EQ(p->weights.parts[1][1], 0.5f);
  EXPECT_EQ(encode_message(d), buf);
}

TEST(Codec, ModelPublishIsDataLaneAndWireBytesMatch) {
  const ModelPublish p = sample_publish();
  // Data message: charged its actual payload; the envelope adds one tag
  // byte (same accounting as BootstrapChunk / WeightSnapshot).
  EXPECT_FALSE(is_control(Message(p)));
  EXPECT_EQ(encode_message(Message(p)).size(),
            static_cast<std::size_t>(wire_bytes(p)) + 1);
  EXPECT_EQ(wire_bytes(Message(p)), wire_bytes(p));
}

TEST(Codec, ModelPublishEveryTruncationPointThrowsTyped) {
  const auto full = encode_message(Message(sample_publish()));
  for (std::size_t n = 1; n < full.size(); ++n) {
    std::vector<std::uint8_t> buf(full.begin(), full.begin() + n);
    EXPECT_THROW(decode_message(buf), DecodeError) << "cut at " << n;
  }
}

TEST(Codec, ModelPublishTrailingBytesThrow) {
  auto buf = encode_message(Message(sample_publish()));
  buf.push_back(0);
  EXPECT_EQ(decode_failure_kind([&] { decode_message(buf); }),
            DecodeErrorKind::kTrailingBytes);
}

TEST(Codec, ModelPublishOversizedTensorCountRejectedBeforeAllocation) {
  ModelPublish p;
  p.total_vars = 4;
  auto buf = encode_message(Message(p));  // tag + 32-byte header, no tensors
  ASSERT_EQ(buf.size(), 33u);
  buf[29] = 0xff;  // tensor-count field (little-endian u32 at offset 29)
  buf[30] = 0xff;
  buf[31] = 0xff;
  buf[32] = 0xff;
  EXPECT_EQ(decode_failure_kind([&] { decode_message(buf); }),
            DecodeErrorKind::kOversizedCount);
}

TEST(Codec, ModelPublishRangePastTotalVarsThrows) {
  // A chunk whose [first_var, first_var + nvars) range sticks out past
  // total_vars can never be applied; the decoder rejects it up front.
  ModelPublish p = sample_publish();
  p.first_var = 3;  // 3 + 2 tensors > total_vars 4
  const auto buf = encode_message(Message(p));
  EXPECT_EQ(decode_failure_kind([&] { decode_message(buf); }),
            DecodeErrorKind::kBadValue);
}

}  // namespace
}  // namespace dlion::comm

// Property tests for the wire codec: encode -> decode -> encode must be
// byte-identical for every message type, over a large seeded sample of
// randomly generated messages. Complements the hand-written cases in
// codec_test.cpp (known layouts, malformed inputs) with breadth: shapes,
// sparsity patterns, extreme values, empty payloads.
//
// The generator uses common::Rng with fixed seeds, so a failure reproduces
// exactly. Tests run under ASan/UBSan/TSan builds unchanged (no death
// tests, no timing).

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "comm/codec.h"
#include "comm/message.h"
#include "common/rng.h"

namespace dlion::comm {
namespace {

/// Float values worth hitting often: exact binary fractions, extremes,
/// denormals, signed zero, infinities. (NaN is excluded: NaN != NaN makes
/// message equality ill-defined; byte-level identity is still covered by
/// the fuzz harness, which compares raw buffers only.)
float interesting_float(common::Rng& rng) {
  switch (rng.uniform_index(8)) {
    case 0: return 0.0f;
    case 1: return -0.0f;
    case 2: return std::numeric_limits<float>::max();
    case 3: return std::numeric_limits<float>::lowest();
    case 4: return std::numeric_limits<float>::denorm_min();
    case 5: return std::numeric_limits<float>::infinity();
    case 6: return -std::numeric_limits<float>::infinity();
    default: return static_cast<float>(rng.normal(0.0, 10.0));
  }
}

VariableGrad random_variable_grad(common::Rng& rng) {
  VariableGrad vg;
  vg.var_index = static_cast<std::uint32_t>(rng.uniform_index(1u << 20));
  const std::size_t n = rng.uniform_index(33);  // 0..32 entries
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  if (rng.uniform() < 0.5) {
    // Dense: values carry the whole variable.
    vg.dense_size = static_cast<std::uint32_t>(n);
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(interesting_float(rng));
    }
  } else {
    // Sparse: strictly increasing indices into a larger dense size.
    const std::uint32_t dense = static_cast<std::uint32_t>(
        n + rng.uniform_index(1000));
    vg.dense_size = dense;
    std::uint32_t next_index = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t remaining = static_cast<std::uint32_t>(n - i);
      if (next_index > dense - remaining) break;
      const std::uint32_t hi = dense - remaining;
      next_index += static_cast<std::uint32_t>(
          rng.uniform_index(hi - next_index + 1));
      indices.push_back(next_index);
      values.push_back(interesting_float(rng));
      ++next_index;
    }
    // A sparse record with zero entries is indistinguishable from (and
    // only valid as) an empty dense record: collapse to that.
    if (indices.empty()) vg.dense_size = 0;
  }
  vg.indices = indices;
  vg.values = values;
  return vg;
}

GradientUpdate random_gradient(common::Rng& rng) {
  GradientUpdate g;
  g.from = static_cast<std::uint32_t>(rng.uniform_index(64));
  g.iteration = rng.next();
  g.lbs = static_cast<std::uint32_t>(rng.uniform_index(4096));
  const std::size_t nvars = rng.uniform_index(6);
  for (std::size_t i = 0; i < nvars; ++i) {
    g.vars.push_back(random_variable_grad(rng));
  }
  return g;
}

WeightSnapshot random_snapshot(common::Rng& rng) {
  WeightSnapshot s;
  s.from = static_cast<std::uint32_t>(rng.uniform_index(64));
  s.iteration = rng.next();
  s.loss = rng.normal(1.0, 0.5);
  const std::size_t ntensors = rng.uniform_index(5);
  for (std::size_t i = 0; i < ntensors; ++i) {
    const std::size_t len = rng.uniform_index(40);
    std::vector<float> data;
    data.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      data.push_back(interesting_float(rng));
    }
    s.weights.parts.emplace_back(data);
  }
  return s;
}

RosterUpdate random_roster_update(common::Rng& rng) {
  RosterUpdate m;
  m.from = static_cast<std::uint32_t>(rng.uniform_index(64));
  m.epoch = rng.next();
  const std::size_t capacity = rng.uniform_index(130);  // 0..129, spans words
  std::vector<bool> members(capacity);
  for (std::size_t i = 0; i < capacity; ++i) members[i] = rng.uniform() < 0.5;
  m.capacity = static_cast<std::uint32_t>(capacity);
  m.member_words = pack_members(members);
  return m;
}

BootstrapRequest random_bootstrap_request(common::Rng& rng) {
  BootstrapRequest m;
  m.from = static_cast<std::uint32_t>(rng.uniform_index(64));
  m.epoch = rng.next();
  m.first_var = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
  m.var_count = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
  return m;
}

BootstrapChunk random_bootstrap_chunk(common::Rng& rng) {
  BootstrapChunk m;
  m.from = static_cast<std::uint32_t>(rng.uniform_index(64));
  m.epoch = rng.next();
  m.first_var = static_cast<std::uint32_t>(rng.uniform_index(1u << 16));
  m.iteration = rng.next();
  m.gbs_ticks = rng.next();
  m.loss = rng.normal(1.0, 0.5);
  const std::size_t ntensors = rng.uniform_index(5);
  for (std::size_t i = 0; i < ntensors; ++i) {
    const std::size_t len = rng.uniform_index(40);
    std::vector<float> data;
    data.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      data.push_back(interesting_float(rng));
    }
    m.weights.parts.emplace_back(data);
  }
  return m;
}

ModelPublish random_model_publish(common::Rng& rng) {
  ModelPublish m;
  m.from = static_cast<std::uint32_t>(rng.uniform_index(64));
  m.version = rng.next();
  m.iteration = rng.next();
  const std::size_t ntensors = rng.uniform_index(5);
  m.first_var = static_cast<std::uint32_t>(rng.uniform_index(1u << 10));
  // Keep the chunk range consistent: decode rejects
  // first_var + ntensors > total_vars.
  m.total_vars = m.first_var + static_cast<std::uint32_t>(ntensors) +
                 static_cast<std::uint32_t>(rng.uniform_index(8));
  for (std::size_t i = 0; i < ntensors; ++i) {
    const std::size_t len = rng.uniform_index(40);
    std::vector<float> data;
    data.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      data.push_back(interesting_float(rng));
    }
    m.weights.parts.emplace_back(data);
  }
  return m;
}

constexpr int kIterations = 1000;

TEST(CodecRoundTripProperty, GradientUpdateEncodeDecodeEncodeByteIdentical) {
  common::Rng rng(0xC0DEC001);
  for (int i = 0; i < kIterations; ++i) {
    const GradientUpdate original = random_gradient(rng);
    const std::vector<std::uint8_t> first = encode(original);
    const GradientUpdate decoded = decode_gradient_update(first);
    const std::vector<std::uint8_t> second = encode(decoded);
    ASSERT_EQ(first, second) << "iteration " << i;
    ASSERT_EQ(first.size(), static_cast<std::size_t>(wire_bytes(original)))
        << "iteration " << i;
  }
}

TEST(CodecRoundTripProperty, WeightSnapshotEncodeDecodeEncodeByteIdentical) {
  common::Rng rng(0xC0DEC002);
  for (int i = 0; i < kIterations; ++i) {
    const WeightSnapshot original = random_snapshot(rng);
    const std::vector<std::uint8_t> first = encode(original);
    const WeightSnapshot decoded = decode_weight_snapshot(first);
    const std::vector<std::uint8_t> second = encode(decoded);
    ASSERT_EQ(first, second) << "iteration " << i;
    ASSERT_EQ(first.size(), static_cast<std::size_t>(wire_bytes(original)))
        << "iteration " << i;
  }
}

TEST(CodecRoundTripProperty, EveryMessageAlternativeRoundTrips) {
  common::Rng rng(0xC0DEC003);
  for (int i = 0; i < kIterations; ++i) {
    Message msg;
    switch (rng.uniform_index(11)) {
      case 0: msg = random_gradient(rng); break;
      case 1: msg = random_snapshot(rng); break;
      case 2:
        msg = LossReport{static_cast<std::uint32_t>(rng.uniform_index(64)),
                         rng.next(), rng.normal(1.0, 0.5)};
        break;
      case 3:
        msg = DktRequest{static_cast<std::uint32_t>(rng.uniform_index(64)),
                         rng.next()};
        break;
      case 4:
        msg = RcpReport{static_cast<std::uint32_t>(rng.uniform_index(64)),
                        rng.uniform(0.0, 100.0)};
        break;
      case 5:
        msg = Heartbeat{static_cast<std::uint32_t>(rng.uniform_index(64)),
                        rng.next()};
        break;
      case 6:
        msg = Ack{static_cast<std::uint32_t>(rng.uniform_index(64)),
                  rng.next()};
        break;
      case 7: msg = random_roster_update(rng); break;
      case 8: msg = random_bootstrap_request(rng); break;
      case 9: msg = random_bootstrap_chunk(rng); break;
      default: msg = random_model_publish(rng); break;
    }
    const std::vector<std::uint8_t> first = encode_message(msg);
    const Message decoded = decode_message(first);
    ASSERT_EQ(decoded.index(), msg.index()) << "iteration " << i;
    const std::vector<std::uint8_t> second = encode_message(decoded);
    ASSERT_EQ(first, second) << "iteration " << i;
  }
}

TEST(CodecRoundTripProperty, ModelPublishRoundTripsByteIdentical) {
  common::Rng rng(0xC0DEC007);
  for (int i = 0; i < kIterations; ++i) {
    const ModelPublish original = random_model_publish(rng);
    const std::vector<std::uint8_t> first = encode_message(Message(original));
    const Message decoded = decode_message(first);
    const auto* p = std::get_if<ModelPublish>(&decoded);
    ASSERT_NE(p, nullptr) << "iteration " << i;
    const std::vector<std::uint8_t> second = encode_message(decoded);
    ASSERT_EQ(first, second) << "iteration " << i;
    // ModelPublish is a data message: wire_bytes counts its actual payload,
    // and the envelope adds the one-byte tag.
    ASSERT_EQ(first.size(),
              static_cast<std::size_t>(wire_bytes(original)) + 1)
        << "iteration " << i;
  }
}

TEST(CodecRoundTripProperty, ElasticMessagesRoundTripByteIdentical) {
  common::Rng rng(0xC0DEC005);
  for (int i = 0; i < kIterations; ++i) {
    Message msg;
    switch (rng.uniform_index(3)) {
      case 0: msg = random_roster_update(rng); break;
      case 1: msg = random_bootstrap_request(rng); break;
      default: msg = random_bootstrap_chunk(rng); break;
    }
    const std::vector<std::uint8_t> first = encode_message(msg);
    const Message decoded = decode_message(first);
    ASSERT_EQ(decoded.index(), msg.index()) << "iteration " << i;
    const std::vector<std::uint8_t> second = encode_message(decoded);
    ASSERT_EQ(first, second) << "iteration " << i;
    // BootstrapChunk is a data message: wire_bytes counts its actual
    // payload, and the envelope adds the one-byte tag. (RosterUpdate and
    // BootstrapRequest are charged the flat control size instead.)
    if (const auto* chunk = std::get_if<BootstrapChunk>(&msg)) {
      ASSERT_EQ(first.size(),
                static_cast<std::size_t>(wire_bytes(*chunk)) + 1)
          << "iteration " << i;
    }
  }
}

TEST(CodecRoundTripProperty, PackUnpackMembersRoundTrips) {
  common::Rng rng(0xC0DEC006);
  for (int i = 0; i < 200; ++i) {
    const std::size_t capacity = rng.uniform_index(200);
    std::vector<bool> members(capacity);
    for (std::size_t w = 0; w < capacity; ++w) {
      members[w] = rng.uniform() < 0.5;
    }
    ASSERT_EQ(unpack_members(pack_members(members), capacity), members)
        << "iteration " << i;
  }
}

TEST(CodecRoundTripProperty, EncodingIsDeterministicAcrossCalls) {
  common::Rng rng(0xC0DEC004);
  for (int i = 0; i < 100; ++i) {
    const GradientUpdate g = random_gradient(rng);
    ASSERT_EQ(encode(g), encode(g)) << "iteration " << i;
  }
}

// --- View/owned equivalence: the zero-copy refactor's wire contract -------
//
// A message whose payloads are arena-backed views (the hot-path production
// route: PayloadWriter stage/commit) must encode byte-identically to the
// same message built from owned vectors (the materializing route the
// generators above use). The codec may not care where payload bytes live.

GradientUpdate restage_through_writer(const GradientUpdate& owned,
                                      PayloadWriter& writer) {
  GradientUpdate staged;
  staged.from = owned.from;
  staged.iteration = owned.iteration;
  staged.lbs = owned.lbs;
  for (const VariableGrad& vg : owned.vars) {
    VariableGrad out;
    out.var_index = vg.var_index;
    out.dense_size = vg.dense_size;
    out.indices = writer.copy(vg.indices.span());
    out.values = writer.copy(vg.values.span());
    staged.vars.push_back(std::move(out));
  }
  return staged;
}

WeightPayload restage_through_writer(const WeightPayload& owned,
                                     PayloadWriter& writer) {
  WeightPayload staged;
  for (const Payload<float>& p : owned.parts) {
    staged.parts.push_back(writer.copy(p.span()));
  }
  return staged;
}

TEST(CodecViewEquivalence, GradientUpdateViewsEncodeByteIdentical) {
  common::Rng rng(0xC0DEC010);
  PayloadArena arena;
  for (int i = 0; i < kIterations; ++i) {
    const GradientUpdate owned = random_gradient(rng);
    PayloadWriter writer(arena);
    const GradientUpdate staged = restage_through_writer(owned, writer);
    ASSERT_EQ(encode(owned), encode(staged)) << "iteration " << i;
    ASSERT_EQ(wire_bytes(owned), wire_bytes(staged)) << "iteration " << i;
  }
}

TEST(CodecViewEquivalence, WeightSnapshotViewsEncodeByteIdentical) {
  common::Rng rng(0xC0DEC011);
  PayloadArena arena;
  for (int i = 0; i < kIterations; ++i) {
    const WeightSnapshot owned = random_snapshot(rng);
    WeightSnapshot staged = owned;
    PayloadWriter writer(arena);
    staged.weights = restage_through_writer(owned.weights, writer);
    ASSERT_EQ(encode(owned), encode(staged)) << "iteration " << i;
    ASSERT_EQ(wire_bytes(owned), wire_bytes(staged)) << "iteration " << i;
  }
}

TEST(CodecViewEquivalence, BootstrapChunkViewsEncodeByteIdentical) {
  common::Rng rng(0xC0DEC012);
  PayloadArena arena;
  for (int i = 0; i < kIterations; ++i) {
    const BootstrapChunk owned = random_bootstrap_chunk(rng);
    BootstrapChunk staged = owned;
    PayloadWriter writer(arena);
    staged.weights = restage_through_writer(owned.weights, writer);
    ASSERT_EQ(encode_message(Message(owned)), encode_message(Message(staged)))
        << "iteration " << i;
  }
}

TEST(CodecViewEquivalence, ModelPublishViewsEncodeByteIdentical) {
  common::Rng rng(0xC0DEC013);
  PayloadArena arena;
  for (int i = 0; i < kIterations; ++i) {
    const ModelPublish owned = random_model_publish(rng);
    ModelPublish staged = owned;
    PayloadWriter writer(arena);
    staged.weights = restage_through_writer(owned.weights, writer);
    ASSERT_EQ(encode_message(Message(owned)), encode_message(Message(staged)))
        << "iteration " << i;
  }
}

TEST(CodecViewEquivalence, DecodeMaterializesEqualPayloads) {
  // Decode -> the payloads are self-owned materialized blocks; they must
  // compare equal to the originals element-for-element (and re-encode
  // identically, which the round-trip tests above already pin down).
  common::Rng rng(0xC0DEC014);
  PayloadArena arena;
  for (int i = 0; i < 200; ++i) {
    PayloadWriter writer(arena);
    const GradientUpdate staged =
        restage_through_writer(random_gradient(rng), writer);
    const GradientUpdate decoded = decode_gradient_update(encode(staged));
    ASSERT_EQ(decoded.vars.size(), staged.vars.size()) << "iteration " << i;
    for (std::size_t v = 0; v < staged.vars.size(); ++v) {
      ASSERT_TRUE(decoded.vars[v].indices == staged.vars[v].indices)
          << "iteration " << i;
      ASSERT_TRUE(decoded.vars[v].values == staged.vars[v].values)
          << "iteration " << i;
    }
  }
}

}  // namespace
}  // namespace dlion::comm

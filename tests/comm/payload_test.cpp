// Tests for the zero-copy payload substrate (comm/payload.h): view
// semantics, refcounted pinning, deterministic arena recycling, writer
// stage/commit packing, and the payload-copy accounting that the perf-smoke
// gate asserts on.

#include "comm/payload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace dlion::comm {
namespace {

/// Copy-counter deltas around a scope, so tests compose regardless of what
/// other tests (or fixtures) did to the global counters.
struct CopyDelta {
  std::uint64_t count0 = payload_copy_count();
  std::uint64_t bytes0 = payload_copy_bytes();
  std::uint64_t count() const { return payload_copy_count() - count0; }
  std::uint64_t bytes() const { return payload_copy_bytes() - bytes0; }
};

TEST(Payload, DefaultIsEmptyAndUnpinned) {
  Payload<float> p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.pin(), nullptr);
  EXPECT_EQ(p.span().size(), 0u);
}

TEST(Payload, WriterCopyIsProductionWriteNotCountedCopy) {
  PayloadArena arena;
  PayloadWriter writer(arena);
  std::vector<float> src(100);
  std::iota(src.begin(), src.end(), 0.0f);
  CopyDelta d;
  Payload<float> p = writer.copy(std::span<const float>(src));
  EXPECT_EQ(d.count(), 0u) << "production writes must not count as copies";
  ASSERT_EQ(p.size(), src.size());
  EXPECT_TRUE(p == src);
}

TEST(Payload, CopyingAViewIsAnIncrefNotACopy) {
  PayloadArena arena;
  PayloadWriter writer(arena);
  std::vector<float> src = {1.0f, 2.0f, 3.0f};
  Payload<float> p = writer.copy(std::span<const float>(src));
  const long before = p.pin().use_count();
  CopyDelta d;
  Payload<float> q = p;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(d.count(), 0u);
  EXPECT_EQ(q.pin().use_count(), before + 1);
  EXPECT_EQ(q.data(), p.data()) << "views share the same bytes";
}

TEST(Payload, MaterializingConstructorsAreCountedCopies) {
  CopyDelta d;
  std::vector<float> v = {1.0f, 2.0f, 3.0f, 4.0f};
  Payload<float> from_vector(v);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_EQ(d.bytes(), v.size() * sizeof(float));
  Payload<float> from_init = {5.0f, 6.0f};
  EXPECT_EQ(d.count(), 2u);
  Payload<float> from_raw =
      Payload<float>::materialize(v.data(), v.size());
  EXPECT_EQ(d.count(), 3u);
  EXPECT_TRUE(from_vector == v);
  EXPECT_TRUE(from_raw == v);
  EXPECT_EQ(from_init.size(), 2u);
  // to_vector duplicates the bytes back out: also counted.
  EXPECT_EQ(from_vector.to_vector(), v);
  EXPECT_EQ(d.count(), 4u);
}

TEST(Payload, MakePayloadIsUncountedProductionWrite) {
  std::vector<std::uint32_t> src = {3, 1, 4, 1, 5};
  CopyDelta d;
  Payload<std::uint32_t> p =
      make_payload(std::span<const std::uint32_t>(src));
  EXPECT_EQ(d.count(), 0u);
  EXPECT_TRUE(p == src);
  EXPECT_NE(p.pin(), nullptr) << "standalone block keeps the view alive";
}

TEST(PayloadArena, RecyclesUnpinnedBlockInIndexOrder) {
  PayloadArena arena;
  PayloadHandle first = arena.acquire(64);
  const std::uint64_t gen0 = first->generation;
  detail::PayloadBlock* raw = first.get();
  first.reset();  // drop the only non-arena owner
  PayloadHandle again = arena.acquire(64);
  EXPECT_EQ(again.get(), raw) << "unpinned block must be recycled";
  EXPECT_EQ(arena.blocks(), 1u);
  EXPECT_EQ(again->generation, gen0 + 1) << "recycle bumps the generation";
  EXPECT_EQ(again->used, 0u);
}

TEST(PayloadArena, PinnedBlockIsNeverRecycled) {
  PayloadArena arena;
  PayloadWriter writer(arena);
  std::vector<float> src(16, 1.5f);
  Payload<float> view = writer.copy(std::span<const float>(src));
  // The view (and the writer) pin block 0: a fresh acquire must grow.
  PayloadHandle other = arena.acquire(64);
  EXPECT_EQ(arena.blocks(), 2u);
  EXPECT_NE(other.get(), view.pin().get());
  EXPECT_EQ(arena.pinned_blocks(), 2u);
  // The pinned view still reads its original bytes.
  EXPECT_TRUE(view == src);
}

TEST(PayloadArena, GrowthIsDemandSizedNotDoubling) {
  PayloadArena arena;
  // Pin every block as it is handed out, forcing growth each time - the
  // pathological retention pattern (dead-letter queue, test inboxes).
  std::vector<PayloadHandle> pinned;
  for (int i = 0; i < 8; ++i) pinned.push_back(arena.acquire(64));
  EXPECT_EQ(arena.blocks(), 8u);
  EXPECT_EQ(arena.capacity_bytes(), 8 * PayloadArena::kMinBlockBytes)
      << "retained blocks must cost linear, not exponential, memory";
}

TEST(PayloadArena, OversizedRequestGetsExactBlock) {
  PayloadArena arena;
  const std::size_t big = 3 * PayloadArena::kMinBlockBytes + 7;
  PayloadHandle block = arena.acquire(big);
  EXPECT_GE(block->capacity, big);
  EXPECT_LT(block->capacity, 2 * big) << "demand-sized, not doubled";
}

TEST(PayloadWriter, PacksMultiplePayloadsIntoOneBlock) {
  PayloadArena arena;
  PayloadWriter writer(arena);
  std::vector<std::uint32_t> idx = {1, 2, 3};
  std::vector<float> vals = {0.5f, -1.0f, 2.0f};
  Payload<std::uint32_t> pi = writer.copy(std::span<const std::uint32_t>(idx));
  Payload<float> pv = writer.copy(std::span<const float>(vals));
  EXPECT_EQ(pi.pin().get(), pv.pin().get())
      << "small payloads share one block";
  EXPECT_EQ(arena.blocks(), 1u);
  EXPECT_TRUE(pi == idx);
  EXPECT_TRUE(pv == vals);
}

TEST(PayloadWriter, CommitShrinksToFinalCountAndReclaimsTail) {
  PayloadArena arena;
  PayloadWriter writer(arena);
  float* staged = writer.stage<float>(1000);
  staged[0] = 7.0f;
  staged[1] = 8.0f;
  Payload<float> p = writer.commit(staged, 2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 7.0f);
  EXPECT_EQ(p[1], 8.0f);
  // The reclaimed tail serves the next payload from the same block.
  std::vector<float> more(500, 1.0f);
  Payload<float> q = writer.copy(std::span<const float>(more));
  EXPECT_EQ(q.pin().get(), p.pin().get());
  EXPECT_EQ(arena.blocks(), 1u);
}

TEST(PayloadWriter, PayloadNeverStraddlesBlocks) {
  PayloadArena arena;
  PayloadWriter writer(arena);
  const std::size_t elems = PayloadArena::kMinBlockBytes / sizeof(float);
  // Fill most of block 0, then stage something the remainder cannot hold.
  std::vector<float> bulk(elems - 8, 0.25f);
  Payload<float> a = writer.copy(std::span<const float>(bulk));
  std::vector<float> tail(64, 0.75f);
  Payload<float> b = writer.copy(std::span<const float>(tail));
  EXPECT_NE(a.pin().get(), b.pin().get())
      << "a payload that does not fit starts a fresh block";
  EXPECT_TRUE(b == tail);
  EXPECT_TRUE(a == bulk);
}

TEST(PayloadWriter, HintSizesTheFirstAcquisition) {
  PayloadArena arena;
  const std::size_t hint = 4 * PayloadArena::kMinBlockBytes;
  PayloadWriter writer(arena, hint);
  std::vector<float> small(4, 1.0f);
  Payload<float> p = writer.copy(std::span<const float>(small));
  EXPECT_GE(p.pin()->capacity, hint)
      << "the hint pre-sizes the block so later payloads pack into it";
}

TEST(WeightPayload, NumValuesSumsParts) {
  WeightPayload w;
  EXPECT_EQ(w.num_values(), 0u);
  w.parts.emplace_back(std::vector<float>{1, 2, 3});
  w.parts.emplace_back(std::vector<float>{4, 5});
  w.parts.emplace_back(std::vector<float>{});
  EXPECT_EQ(w.num_values(), 5u);
}

TEST(PayloadArena, RecycledBlockServesNewViewsWithFreshGeneration) {
  PayloadArena arena;
  std::uint64_t gen_before = 0;
  {
    PayloadWriter writer(arena);
    std::vector<float> src = {1.0f, 2.0f};
    Payload<float> p = writer.copy(std::span<const float>(src));
    gen_before = p.generation();
  }  // all pins dropped: block 0 is recyclable
  PayloadWriter writer(arena);
  std::vector<float> src = {9.0f};
  Payload<float> q = writer.copy(std::span<const float>(src));
  EXPECT_EQ(arena.blocks(), 1u) << "the block was recycled, not regrown";
  EXPECT_EQ(q.generation(), gen_before + 1);
  EXPECT_EQ(q[0], 9.0f);
}

}  // namespace
}  // namespace dlion::comm

#include "comm/fabric.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlion::comm {
namespace {

struct Received {
  std::size_t from;
  MessagePtr msg;
  double time;
};

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : net_(engine_, 3), fabric_(net_, 2.0) {
    for (std::size_t w = 0; w < 3; ++w) {
      fabric_.attach(w, [this, w](std::size_t from, MessagePtr msg) {
        inbox_[w].push_back({from, std::move(msg), engine_.now()});
      });
    }
  }

  sim::Engine engine_;
  sim::Network net_;
  Fabric fabric_;
  std::vector<Received> inbox_[3];
};

TEST_F(FabricTest, DeliversTypedMessage) {
  fabric_.send(0, 1, LossReport{0, 5, 0.25});
  engine_.run();
  ASSERT_EQ(inbox_[1].size(), 1u);
  EXPECT_EQ(inbox_[1][0].from, 0u);
  const auto& report = std::get<LossReport>(*inbox_[1][0].msg);
  EXPECT_DOUBLE_EQ(report.avg_loss, 0.25);
}

TEST_F(FabricTest, BroadcastReachesAllOthers) {
  fabric_.broadcast(1, LossReport{1, 0, 0.5});
  engine_.run();
  EXPECT_EQ(inbox_[0].size(), 1u);
  EXPECT_EQ(inbox_[1].size(), 0u);  // no self-delivery
  EXPECT_EQ(inbox_[2].size(), 1u);
}

TEST_F(FabricTest, DataMessagesScaledControlNot) {
  GradientUpdate u;
  u.vars.push_back(VariableGrad{0, 4, {}, {1, 2, 3, 4}});
  const Message data(u);
  const Message control(LossReport{});
  EXPECT_EQ(fabric_.charged_bytes(data), 2 * wire_bytes(data));
  EXPECT_EQ(fabric_.charged_bytes(control), wire_bytes(control));
}

TEST_F(FabricTest, ChargedBytesReachNetworkStats) {
  GradientUpdate u;
  u.vars.push_back(VariableGrad{0, 4, {}, {1, 2, 3, 4}});
  const common::Bytes expected = fabric_.charged_bytes(Message(u));
  fabric_.send(0, 1, u);
  engine_.run();
  EXPECT_EQ(net_.stats(0).bytes_sent, expected);
}

TEST_F(FabricTest, TransferTimeScalesWithChargedSize) {
  net_.set_egress(0, sim::Schedule(8.0));  // 1 MB/s
  net_.set_all_latency(0.0);
  GradientUpdate u;
  u.vars.push_back(VariableGrad{0, 125000,
                                {}, std::vector<float>(125000, 1.0f)});
  // 500016 raw bytes * 2.0 scale ~ 1.0 MB over the fair egress share
  // 8 Mbps / 2 peers = 4 Mbps -> ~2 s.
  fabric_.send(0, 1, u);
  engine_.run();
  ASSERT_EQ(inbox_[1].size(), 1u);
  EXPECT_NEAR(inbox_[1][0].time, 2.0, 0.01);
}

TEST_F(FabricTest, SendWithoutHandlerThrows) {
  sim::Engine e2;
  sim::Network n2(e2, 2);
  Fabric f2(n2, 1.0);
  EXPECT_THROW(f2.send(0, 1, LossReport{}), std::logic_error);
}

TEST(Fabric, InvalidScaleThrows) {
  sim::Engine e;
  sim::Network n(e, 2);
  EXPECT_THROW(Fabric(n, 0.0), std::invalid_argument);
  EXPECT_THROW(Fabric(n, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dlion::comm

#include "comm/fabric.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlion::comm {
namespace {

struct Received {
  std::size_t from;
  MessagePtr msg;
  double time;
};

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : net_(engine_, 3), fabric_(net_, 2.0) {
    for (std::size_t w = 0; w < 3; ++w) {
      fabric_.attach(w, [this, w](std::size_t from, MessagePtr msg) {
        inbox_[w].push_back({from, std::move(msg), engine_.now()});
      });
    }
  }

  sim::Engine engine_;
  sim::Network net_;
  Fabric fabric_;
  std::vector<Received> inbox_[3];
};

TEST_F(FabricTest, DeliversTypedMessage) {
  fabric_.send(0, 1, LossReport{0, 5, 0.25});
  engine_.run();
  ASSERT_EQ(inbox_[1].size(), 1u);
  EXPECT_EQ(inbox_[1][0].from, 0u);
  const auto& report = std::get<LossReport>(*inbox_[1][0].msg);
  EXPECT_DOUBLE_EQ(report.avg_loss, 0.25);
}

TEST_F(FabricTest, BroadcastReachesAllOthers) {
  fabric_.broadcast(1, LossReport{1, 0, 0.5});
  engine_.run();
  EXPECT_EQ(inbox_[0].size(), 1u);
  EXPECT_EQ(inbox_[1].size(), 0u);  // no self-delivery
  EXPECT_EQ(inbox_[2].size(), 1u);
}

TEST_F(FabricTest, DataMessagesScaledControlNot) {
  GradientUpdate u;
  u.vars.push_back(VariableGrad{0, 4, {}, {1, 2, 3, 4}});
  const Message data(u);
  const Message control(LossReport{});
  EXPECT_EQ(fabric_.charged_bytes(data), 2 * wire_bytes(data));
  EXPECT_EQ(fabric_.charged_bytes(control), wire_bytes(control));
}

TEST_F(FabricTest, ChargedBytesReachNetworkStats) {
  GradientUpdate u;
  u.vars.push_back(VariableGrad{0, 4, {}, {1, 2, 3, 4}});
  const common::Bytes expected = fabric_.charged_bytes(Message(u));
  fabric_.send(0, 1, u);
  engine_.run();
  EXPECT_EQ(net_.stats(0).bytes_sent, expected);
}

TEST_F(FabricTest, TransferTimeScalesWithChargedSize) {
  net_.set_egress(0, sim::Schedule(8.0));  // 1 MB/s
  net_.set_all_latency(0.0);
  GradientUpdate u;
  u.vars.push_back(VariableGrad{0, 125000,
                                {}, std::vector<float>(125000, 1.0f)});
  // 500016 raw bytes * 2.0 scale ~ 1.0 MB over the fair egress share
  // 8 Mbps / 2 peers = 4 Mbps -> ~2 s.
  fabric_.send(0, 1, u);
  engine_.run();
  ASSERT_EQ(inbox_[1].size(), 1u);
  EXPECT_NEAR(inbox_[1][0].time, 2.0, 0.01);
}

TEST_F(FabricTest, SendWithoutHandlerDeadLetters) {
  // Delivery to a detached worker never throws: the message is counted as a
  // dead letter and discarded (crash semantics).
  sim::Engine e2;
  sim::Network n2(e2, 2);
  Fabric f2(n2, 1.0);
  EXPECT_NO_THROW(f2.send(0, 1, LossReport{}));
  e2.run();
  EXPECT_EQ(f2.dead_letters(), 1u);
  EXPECT_EQ(f2.dead_letters(1), 1u);
  EXPECT_EQ(f2.dead_letters(0), 0u);
}

TEST_F(FabricTest, DetachDropsThenReattachResumesDelivery) {
  fabric_.detach(1);
  EXPECT_FALSE(fabric_.attached(1));
  fabric_.send(0, 1, LossReport{0, 1, 0.5});
  engine_.run();
  EXPECT_EQ(inbox_[1].size(), 0u);
  EXPECT_EQ(fabric_.dead_letters(1), 1u);
  fabric_.attach(1, [this](std::size_t from, MessagePtr msg) {
    inbox_[1].push_back({from, std::move(msg), engine_.now()});
  });
  fabric_.send(0, 1, LossReport{0, 2, 0.25});
  engine_.run();
  ASSERT_EQ(inbox_[1].size(), 1u);
  EXPECT_EQ(fabric_.dead_letters(1), 1u);  // no new dead letters
}

TEST_F(FabricTest, BroadcastSharesOneMessageAcrossReceivers) {
  // Satellite fix: broadcast materializes the message and computes its wire
  // size exactly once; every receiver sees the same immutable MessagePtr.
  fabric_.broadcast(1, LossReport{1, 7, 0.125});
  engine_.run();
  ASSERT_EQ(inbox_[0].size(), 1u);
  ASSERT_EQ(inbox_[2].size(), 1u);
  EXPECT_EQ(inbox_[0][0].msg.get(), inbox_[2][0].msg.get());
}

TEST_F(FabricTest, ReliableSendAcksWithoutRetriesOnHealthyLink) {
  bool acked = false;
  fabric_.send_reliable(0, 1, DktRequest{0, 3}, RetryPolicy{},
                        [&](bool ok) { acked = ok; });
  engine_.run();
  EXPECT_TRUE(acked);
  ASSERT_EQ(inbox_[1].size(), 1u);  // delivered exactly once
  EXPECT_TRUE(std::holds_alternative<DktRequest>(*inbox_[1][0].msg));
  EXPECT_EQ(fabric_.reliable_retries(), 0u);
  EXPECT_EQ(fabric_.reliable_failures(), 0u);
  EXPECT_EQ(fabric_.reliable_pending(), 0u);
}

TEST_F(FabricTest, AcksNeverSurfaceToHandlers) {
  fabric_.send_reliable(0, 1, DktRequest{0, 3});
  engine_.run();
  for (const auto& inbox : inbox_) {
    for (const auto& r : inbox) {
      EXPECT_FALSE(std::holds_alternative<Ack>(*r.msg));
    }
  }
}

TEST_F(FabricTest, ReliableRetriesUntilReceiverReattaches) {
  // The receiver is down for the first attempts; the sender's exponential
  // backoff outlives the outage and the request lands exactly once.
  fabric_.detach(1);
  bool acked = false;
  RetryPolicy policy;
  policy.timeout_s = 1.0;
  policy.backoff = 2.0;
  policy.max_attempts = 5;  // attempts at ~0, 1, 3, 7, 15 s
  fabric_.send_reliable(0, 1, DktRequest{0, 9}, policy,
                        [&](bool ok) { acked = ok; });
  engine_.at(5.0, [this] {
    fabric_.attach(1, [this](std::size_t from, MessagePtr msg) {
      inbox_[1].push_back({from, std::move(msg), engine_.now()});
    });
  });
  engine_.run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(inbox_[1].size(), 1u);
  EXPECT_GE(fabric_.reliable_retries(), 2u);
  EXPECT_EQ(fabric_.reliable_failures(), 0u);
  EXPECT_EQ(fabric_.reliable_pending(), 0u);
}

TEST_F(FabricTest, ReliableFailsAfterExhaustingAttempts) {
  fabric_.detach(1);
  bool called = false;
  bool acked = true;
  RetryPolicy policy;
  policy.timeout_s = 0.5;
  policy.max_attempts = 3;
  fabric_.send_reliable(0, 1, DktRequest{0, 4}, policy, [&](bool ok) {
    called = true;
    acked = ok;
  });
  engine_.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(acked);
  EXPECT_EQ(fabric_.reliable_failures(), 1u);
  EXPECT_EQ(fabric_.reliable_retries(), policy.max_attempts - 1);
  EXPECT_EQ(fabric_.reliable_pending(), 0u);
  EXPECT_GE(fabric_.dead_letters(1), policy.max_attempts);
}

TEST(FabricFaults, LostAckTriggersRetryButSuppressesDuplicateDelivery) {
  // Ack path 1->0 is 100% lossy for a while: the data arrives, the ack
  // dies, the sender retries, and the receiver re-acks without re-delivering
  // - at-least-once attempts, at-most-once delivery.
  sim::Engine e;
  sim::Network net(e, 2);
  sim::FaultSchedule s;
  s.lossy(1, 0, 1.0, 0.0, 2.5);  // only the reverse (ack) direction
  sim::FaultInjector inj(s);
  net.set_fault_injector(&inj);
  Fabric fabric(net, 1.0);
  std::vector<MessagePtr> inbox0, inbox1;
  fabric.attach(0, [&](std::size_t, MessagePtr m) {
    inbox0.push_back(std::move(m));
  });
  fabric.attach(1, [&](std::size_t, MessagePtr m) {
    inbox1.push_back(std::move(m));
  });
  bool acked = false;
  RetryPolicy policy;
  policy.timeout_s = 1.0;
  policy.backoff = 2.0;
  policy.max_attempts = 5;  // attempts at ~0, 1, 3 s; ack survives after 2.5
  fabric.send_reliable(0, 1, DktRequest{0, 11}, policy,
                       [&](bool ok) { acked = ok; });
  e.run();
  EXPECT_TRUE(acked);
  EXPECT_EQ(inbox1.size(), 1u) << "duplicate attempts must not re-deliver";
  EXPECT_EQ(inbox0.size(), 0u) << "acks are transport-level";
  EXPECT_GE(fabric.reliable_retries(), 2u);
  EXPECT_EQ(fabric.reliable_failures(), 0u);
}

TEST(Fabric, InvalidScaleThrows) {
  sim::Engine e;
  sim::Network n(e, 2);
  EXPECT_THROW(Fabric(n, 0.0), std::invalid_argument);
  EXPECT_THROW(Fabric(n, -1.0), std::invalid_argument);
}

TEST_F(FabricTest, EpochFloorRejectsStaleTrafficDeterministically) {
  // Receiver 1 joined at epoch 3; traffic stamped with an older epoch (a
  // sender that has not adopted the roster yet, or in-flight messages
  // addressed to the slot's previous occupant) is rejected, never handled.
  fabric_.set_epoch_floor(1, 3);
  fabric_.set_epoch(0, 2);
  fabric_.send(0, 1, LossReport{0, 1, 0.5});
  engine_.run();
  EXPECT_EQ(inbox_[1].size(), 0u);
  EXPECT_EQ(fabric_.stale_epoch_rejected(), 1u);
  // Once the sender adopts an epoch at or above the floor, traffic flows.
  fabric_.set_epoch(0, 3);
  fabric_.send(0, 1, LossReport{0, 2, 0.5});
  engine_.run();
  EXPECT_EQ(inbox_[1].size(), 1u);
  EXPECT_EQ(fabric_.stale_epoch_rejected(), 1u);
}

TEST_F(FabricTest, EpochStampIsCapturedAtTransmitTime) {
  // The stamp rides the transmission, not the delivery: a message sent
  // while the sender was at epoch 5 passes a floor of 5 even if the floor
  // was raised after the send but before delivery.
  fabric_.set_epoch(0, 5);
  fabric_.send(0, 2, LossReport{0, 1, 0.25});
  fabric_.set_epoch_floor(2, 5);
  engine_.run();
  EXPECT_EQ(inbox_[2].size(), 1u);
  EXPECT_EQ(fabric_.stale_epoch_rejected(), 0u);
}

TEST(Fabric, DeadLetterQueueIsBoundedWithEvictionCounter) {
  sim::Engine e;
  sim::Network net(e, 2);
  FabricOptions options;
  options.dead_letter_cap = 3;
  Fabric fabric(net, options);
  fabric.attach(0, [](std::size_t, MessagePtr) {});
  // Worker 1 never attaches: every message to it dead-letters.
  for (int i = 0; i < 8; ++i) {
    fabric.send(0, 1, Heartbeat{0, static_cast<std::uint64_t>(i)});
  }
  e.run();
  EXPECT_EQ(fabric.dead_letters(), 8u);
  EXPECT_EQ(fabric.recent_dead_letters().size(), 3u);
  EXPECT_EQ(fabric.dead_letter_evictions(), 5u);
  // The retained records are the most recent ones, oldest evicted first.
  for (const DeadLetter& dl : fabric.recent_dead_letters()) {
    EXPECT_EQ(dl.from, 0u);
    EXPECT_EQ(dl.to, 1u);
  }
}

TEST(Fabric, DeadLetterCapZeroKeepsCountersOnly) {
  sim::Engine e;
  sim::Network net(e, 2);
  FabricOptions options;
  options.dead_letter_cap = 0;
  Fabric fabric(net, options);
  fabric.attach(0, [](std::size_t, MessagePtr) {});
  for (int i = 0; i < 4; ++i) fabric.send(0, 1, Heartbeat{0, 1});
  e.run();
  EXPECT_EQ(fabric.dead_letters(), 4u);
  EXPECT_EQ(fabric.recent_dead_letters().size(), 0u);
  EXPECT_EQ(fabric.dead_letter_evictions(), 0u);
}

/// Dense gradient with `n` float values: pins exactly n * 4 payload bytes.
GradientUpdate dense_payload_update(std::size_t n) {
  GradientUpdate u;
  u.from = 0;
  VariableGrad vg;
  vg.var_index = 0;
  vg.dense_size = static_cast<std::uint32_t>(n);
  vg.values = std::vector<float>(n, 1.0f);
  u.vars.push_back(std::move(vg));
  return u;
}

TEST(Fabric, DeadLetterQueueEvictsByPinnedPayloadBytes) {
  sim::Engine e;
  sim::Network net(e, 2);
  FabricOptions options;
  options.dead_letter_cap = 100;  // record bound far away: bytes bind first
  options.dead_letter_max_bytes = 1000;  // each message pins 400 bytes
  Fabric fabric(net, options);
  fabric.attach(0, [](std::size_t, MessagePtr) {});
  for (int i = 0; i < 5; ++i) fabric.send(0, 1, dense_payload_update(100));
  e.run();
  EXPECT_EQ(fabric.dead_letters(), 5u);
  // 5 x 400 B pinned exceeds the 1000 B cap: evict oldest-first down to 2
  // records / 800 B even though the record cap (100) was never reached.
  EXPECT_EQ(fabric.recent_dead_letters().size(), 2u);
  EXPECT_EQ(fabric.dead_letter_evictions(), 3u);
  EXPECT_EQ(fabric.dead_letter_pinned_bytes(), 800u);
  for (const DeadLetter& dl : fabric.recent_dead_letters()) {
    EXPECT_EQ(dl.payload_bytes, 400u);
    ASSERT_NE(dl.msg, nullptr);
    EXPECT_EQ(payload_bytes(*dl.msg), 400u);
  }
}

TEST(Fabric, DeadLetterControlMessagesPinNoBytes) {
  sim::Engine e;
  sim::Network net(e, 2);
  FabricOptions options;
  options.dead_letter_cap = 3;
  Fabric fabric(net, options);
  fabric.attach(0, [](std::size_t, MessagePtr) {});
  for (int i = 0; i < 5; ++i) fabric.send(0, 1, Heartbeat{0, 1});
  e.run();
  // Control messages carry no payload views: only the record cap binds.
  EXPECT_EQ(fabric.recent_dead_letters().size(), 3u);
  EXPECT_EQ(fabric.dead_letter_pinned_bytes(), 0u);
}

#if DLION_OBS_ENABLED
TEST(Fabric, DeadLetterPinnedBytesGaugeTracksRetention) {
  sim::Engine e;
  sim::Network net(e, 2);
  FabricOptions options;
  options.dead_letter_cap = 100;
  options.dead_letter_max_bytes = 1000;
  Fabric fabric(net, options);
  obs::Observability obs(true);
  fabric.set_obs(&obs);
  fabric.attach(0, [](std::size_t, MessagePtr) {});
  for (int i = 0; i < 5; ++i) fabric.send(0, 1, dense_payload_update(100));
  e.run();
  EXPECT_DOUBLE_EQ(
      obs.metrics().gauge("comm.dead_letter_pinned_bytes").value(), 800.0);
}
#endif  // DLION_OBS_ENABLED

TEST_F(FabricTest, TargetedBroadcastSkipsUnflaggedWorkers) {
  std::vector<bool> targets = {true, false, true};
  fabric_.broadcast(2, LossReport{2, 0, 0.5}, targets);
  engine_.run();
  EXPECT_EQ(inbox_[0].size(), 1u);
  EXPECT_EQ(inbox_[1].size(), 0u);  // not in the roster
  EXPECT_EQ(inbox_[2].size(), 0u);  // no self-delivery
}

}  // namespace
}  // namespace dlion::comm

#include "comm/queues.h"

#include <gtest/gtest.h>

namespace dlion::comm {
namespace {

MessagePtr make_loss(double v) {
  return std::make_shared<const Message>(LossReport{0, 0, v});
}

double loss_of(const MessagePtr& msg) {
  return std::get<LossReport>(*msg).avg_loss;
}

TEST(KeyedQueue, FifoPerKey) {
  KeyedQueue q;
  q.push("a", make_loss(1.0));
  q.push("a", make_loss(2.0));
  q.push("b", make_loss(9.0));
  EXPECT_DOUBLE_EQ(loss_of(*q.pop("a")), 1.0);
  EXPECT_DOUBLE_EQ(loss_of(*q.pop("a")), 2.0);
  EXPECT_DOUBLE_EQ(loss_of(*q.pop("b")), 9.0);
}

TEST(KeyedQueue, PopOnEmptyReturnsNullopt) {
  KeyedQueue q;
  EXPECT_FALSE(q.pop("missing").has_value());
  q.push("k", make_loss(1.0));
  (void)q.pop("k");
  EXPECT_FALSE(q.pop("k").has_value());
}

TEST(KeyedQueue, FrontDoesNotRemove) {
  KeyedQueue q;
  q.push("k", make_loss(3.0));
  EXPECT_DOUBLE_EQ(loss_of(*q.front("k")), 3.0);
  EXPECT_EQ(q.size("k"), 1u);
}

TEST(KeyedQueue, SizesAndKeys) {
  KeyedQueue q;
  EXPECT_EQ(q.total_size(), 0u);
  q.push("b", make_loss(1.0));
  q.push("a", make_loss(2.0));
  q.push("a", make_loss(3.0));
  EXPECT_EQ(q.size("a"), 2u);
  EXPECT_EQ(q.size("b"), 1u);
  EXPECT_EQ(q.total_size(), 3u);
  EXPECT_EQ(q.keys(), (std::vector<std::string>{"a", "b"}));  // sorted
}

TEST(KeyedQueue, ClearDropsAllEntries) {
  KeyedQueue q;
  q.push("k", make_loss(1.0));
  q.push("k", make_loss(2.0));
  EXPECT_EQ(q.clear("k"), 2u);
  EXPECT_EQ(q.total_size(), 0u);
  EXPECT_EQ(q.clear("k"), 0u);
}

TEST(PubSubBus, DeliversToAllSubscribers) {
  PubSubBus bus;
  int a = 0, b = 0;
  bus.subscribe("grad", [&](const std::string&, const MessagePtr&) { ++a; });
  bus.subscribe("grad", [&](const std::string&, const MessagePtr&) { ++b; });
  bus.subscribe("other", [&](const std::string&, const MessagePtr&) {
    FAIL() << "wrong channel";
  });
  EXPECT_EQ(bus.publish("grad", make_loss(1.0)), 2u);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(PubSubBus, NoSubscribersMeansDropped) {
  PubSubBus bus;
  EXPECT_EQ(bus.publish("void", make_loss(1.0)), 0u);
}

TEST(PubSubBus, UnsubscribeStopsDelivery) {
  PubSubBus bus;
  int count = 0;
  const auto id = bus.subscribe(
      "c", [&](const std::string&, const MessagePtr&) { ++count; });
  bus.publish("c", make_loss(1.0));
  bus.unsubscribe(id);
  bus.publish("c", make_loss(1.0));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus.subscriber_count("c"), 0u);
}

TEST(PubSubBus, LateSubscribersMissEarlierMessages) {
  PubSubBus bus;
  bus.publish("c", make_loss(1.0));
  int count = 0;
  bus.subscribe("c", [&](const std::string&, const MessagePtr&) { ++count; });
  EXPECT_EQ(count, 0);  // pub/sub does not store
}

TEST(PubSubBus, HandlerMaySubscribeDuringDelivery) {
  PubSubBus bus;
  int late = 0;
  bus.subscribe("c", [&](const std::string&, const MessagePtr&) {
    bus.subscribe("c",
                  [&](const std::string&, const MessagePtr&) { ++late; });
  });
  bus.publish("c", make_loss(1.0));  // must not invalidate iteration
  EXPECT_EQ(late, 0);
  bus.publish("c", make_loss(2.0));
  EXPECT_EQ(late, 1);
}

TEST(WorkerQueues, DataKeyEncodesSenderIterationVariable) {
  EXPECT_EQ(WorkerQueues::data_key(3, 17, 2), "w3/i17/v2");
  WorkerQueues wq;
  wq.data.push(WorkerQueues::data_key(0, 0, 0), make_loss(1.0));
  wq.control.push("go", make_loss(0.0));
  EXPECT_EQ(wq.data.total_size(), 1u);
  EXPECT_EQ(wq.control.total_size(), 1u);
}

}  // namespace
}  // namespace dlion::comm

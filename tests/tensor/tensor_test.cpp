#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dlion::tensor {
namespace {

TEST(Shape, NumElements) {
  EXPECT_EQ(Shape({2, 3, 4}).num_elements(), 24u);
  EXPECT_EQ(Shape({}).num_elements(), 1u);  // scalar
  EXPECT_EQ(Shape({0, 5}).num_elements(), 0u);
}

TEST(Shape, EqualityAndToString) {
  EXPECT_TRUE(Shape({2, 3}) == Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).to_string(), "(2, 3)");
}

TEST(Tensor, ConstructWithFill) {
  Tensor t(Shape{2, 2}, 1.5f);
  EXPECT_EQ(t.size(), 4u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, ConstructFromData) {
  Tensor t(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ScalarHelper) {
  Tensor s = Tensor::scalar(3.0f);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_FLOAT_EQ(s[0], 3.0f);
}

TEST(Tensor, FillOverwrites) {
  Tensor t(Shape{3}, {1, 2, 3});
  t.fill(0.0f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape(Shape{3, 2});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
}

TEST(Tensor, ReshapeBadCountThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.reshape(Shape{5}), std::invalid_argument);
}

TEST(Tensor, At4Indexing) {
  Tensor t(Shape{1, 2, 2, 2});
  t.at4(0, 1, 1, 0) = 9.0f;
  // (((0*2+1)*2+1)*2+0) = 6
  EXPECT_FLOAT_EQ(t[6], 9.0f);
}

TEST(Tensor, SliceRows) {
  Tensor t(Shape{4, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  const Tensor s = t.slice_rows(1, 3);
  EXPECT_TRUE(s.shape() == Shape({2, 2}));
  EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 5.0f);
}

TEST(Tensor, SliceRowsBadRangeThrows) {
  Tensor t(Shape{4, 2});
  EXPECT_THROW(t.slice_rows(3, 2), std::out_of_range);
  EXPECT_THROW(t.slice_rows(0, 5), std::out_of_range);
}

TEST(Tensor, SpanViews) {
  Tensor t(Shape{3}, {1, 2, 3});
  auto s = t.span();
  s[0] = 10.0f;
  EXPECT_FLOAT_EQ(t[0], 10.0f);
  const Tensor& ct = t;
  EXPECT_EQ(ct.span().size(), 3u);
}

}  // namespace
}  // namespace dlion::tensor

// TensorPool: storage recycling for the serving hot path. Covers the
// hit/miss accounting, capacity-fit reuse, and the zero-fill guarantee on
// recycled buffers.

#include <utility>

#include <gtest/gtest.h>

#include "tensor/pool.h"

namespace dlion::tensor {
namespace {

TEST(TensorPool, FirstAcquireIsAMiss) {
  TensorPool pool;
  Tensor t = pool.acquire(Shape{4, 8});
  EXPECT_EQ(t.shape(), (Shape{4, 8}));
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(TensorPool, ReleaseThenAcquireReusesStorage) {
  TensorPool pool;
  Tensor t = pool.acquire(Shape{4, 8});
  const float* storage = t.data();
  pool.release(std::move(t));
  EXPECT_EQ(pool.free_buffers(), 1u);

  // Same element count: must come back from the pool, same storage.
  Tensor u = pool.acquire(Shape{8, 4});
  EXPECT_EQ(u.data(), storage);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(TensorPool, SmallerRequestFitsInsideRetiredCapacity) {
  TensorPool pool;
  pool.release(pool.acquire(Shape{64}));
  Tensor small = pool.acquire(Shape{10});
  EXPECT_EQ(small.size(), 10u);
  EXPECT_EQ(pool.hits(), 1u);
  // A request larger than any parked buffer allocates fresh.
  pool.release(std::move(small));
  Tensor big = pool.acquire(Shape{128});
  EXPECT_EQ(big.size(), 128u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(TensorPool, RecycledBuffersComeBackZeroFilled) {
  TensorPool pool;
  Tensor t = pool.acquire(Shape{16});
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = 42.0f;
  pool.release(std::move(t));

  Tensor u = pool.acquire(Shape{12});
  for (std::size_t i = 0; i < u.size(); ++i) {
    ASSERT_EQ(u.data()[i], 0.0f) << "element " << i;
  }
}

TEST(TensorPool, SteadyStateLoopIsAllHits) {
  TensorPool pool;
  pool.release(pool.acquire(Shape{32, 8}));
  for (int i = 0; i < 100; ++i) {
    // Varying batch size within the warm capacity, like a replica whose
    // batches shrink and grow with load.
    const std::size_t rows = 1 + static_cast<std::size_t>(i % 32);
    Tensor t = pool.acquire(Shape{rows, 8});
    pool.release(std::move(t));
  }
  EXPECT_EQ(pool.hits(), 100u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.free_buffers(), 1u);
}

}  // namespace
}  // namespace dlion::tensor

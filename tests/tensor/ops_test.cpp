#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/rng.h"

namespace dlion::tensor {
namespace {

// Reference GEMM, obviously-correct triple loop over logical matrices.
std::vector<float> ref_gemm(bool ta, bool tb, std::size_t m, std::size_t n,
                            std::size_t k, const std::vector<float>& a,
                            const std::vector<float>& b) {
  std::vector<float> c(m * n, 0.0f);
  auto A = [&](std::size_t i, std::size_t p) {
    return ta ? a[p * m + i] : a[i * k + p];
  };
  auto B = [&](std::size_t p, std::size_t j) {
    return tb ? b[j * k + p] : b[p * n + j];
  };
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t p = 0; p < k; ++p) acc += A(i, p) * B(p, j);
      c[i * n + j] = acc;
    }
  }
  return c;
}

class GemmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTransposeTest, MatchesReference) {
  const auto [ta, tb] = GetParam();
  const std::size_t m = 5, n = 7, k = 4;
  common::Rng rng(1);
  std::vector<float> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  const auto expected = ref_gemm(ta, tb, m, n, k, a, b);
  std::vector<float> c(m * n, 0.0f);
  gemm(ta, tb, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTransposeTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(Gemm, AlphaBetaScaling) {
  // C = 2*A*B + 3*C
  std::vector<float> a = {1, 0, 0, 1};  // identity 2x2
  std::vector<float> b = {5, 6, 7, 8};
  std::vector<float> c = {1, 1, 1, 1};
  gemm(false, false, 2, 2, 2, 2.0f, a.data(), b.data(), 3.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 13.0f);
  EXPECT_FLOAT_EQ(c[3], 19.0f);
}

TEST(Matmul, ShapeCheckThrows) {
  Tensor a(Shape{2, 3}), b(Shape{2, 3});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Matmul, IdentityPreserves) {
  Tensor eye(Shape{2, 2}, {1, 0, 0, 1});
  Tensor x(Shape{2, 2}, {1, 2, 3, 4});
  const Tensor y = matmul(eye, x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Axpy, AddsScaled) {
  std::vector<float> x = {1, 2, 3}, y = {10, 10, 10};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 16.0f);
}

TEST(Axpy, SizeMismatchThrows) {
  std::vector<float> x = {1}, y = {1, 2};
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

TEST(Scale, MultipliesInPlace) {
  std::vector<float> x = {2, -4};
  scale(0.5f, x);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(Reductions, SumDotNorm) {
  std::vector<float> x = {3, 4};
  EXPECT_DOUBLE_EQ(sum(x), 7.0);
  EXPECT_DOUBLE_EQ(dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(l2_norm(x), 5.0);
}

TEST(MaxAbs, FindsLargestMagnitude) {
  std::vector<float> x = {1, -7, 3};
  EXPECT_FLOAT_EQ(max_abs(x), 7.0f);
  EXPECT_FLOAT_EQ(max_abs(std::span<const float>{}), 0.0f);
}

TEST(AddBiasRows, BroadcastsAcrossRows) {
  Tensor m(Shape{2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor bias(Shape{3}, {1, 2, 3});
  add_bias_rows(m, bias);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 3.0f);
}

TEST(ConvOutDim, KnownValues) {
  EXPECT_EQ(conv_out_dim(28, 5, 1, 2), 28u);
  EXPECT_EQ(conv_out_dim(28, 2, 2, 0), 14u);
  EXPECT_EQ(conv_out_dim(8, 3, 1, 0), 6u);
  EXPECT_EQ(conv_out_dim(3, 3, 2, 1), 2u);
}

TEST(Im2Col, IdentityKernelLayout) {
  // 1 channel, 2x2 image, 1x1 kernel: col should equal the image.
  std::vector<float> img = {1, 2, 3, 4};
  std::vector<float> col(4);
  im2col(img.data(), 1, 2, 2, 1, 1, 1, 0, col.data());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(col[i], img[i]);
}

TEST(Im2Col, PaddingProducesZeros) {
  // 1x1 image, 3x3 kernel, pad 1: only the center tap sees the pixel.
  std::vector<float> img = {5};
  std::vector<float> col(9);
  im2col(img.data(), 1, 1, 1, 3, 3, 1, 1, col.data());
  float total = 0;
  for (float v : col) total += v;
  EXPECT_FLOAT_EQ(total, 5.0f);
  EXPECT_FLOAT_EQ(col[4], 5.0f);  // center tap
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y - the defining
  // property that makes the convolution backward pass correct.
  common::Rng rng(3);
  const std::size_t c = 2, h = 5, w = 4, kh = 3, kw = 3, stride = 1, pad = 1;
  const std::size_t oh = conv_out_dim(h, kh, stride, pad);
  const std::size_t ow = conv_out_dim(w, kw, stride, pad);
  const std::size_t col_size = c * kh * kw * oh * ow;
  std::vector<float> x(c * h * w), y(col_size);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());

  std::vector<float> col(col_size);
  im2col(x.data(), c, h, w, kh, kw, stride, pad, col.data());
  std::vector<float> back(c * h * w, 0.0f);
  col2im(y.data(), c, h, w, kh, kw, stride, pad, back.data());

  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < col_size; ++i) lhs += col[i] * y[i];
  for (std::size_t i = 0; i < x.size(); ++i) rhs += x[i] * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

}  // namespace
}  // namespace dlion::tensor

// Conformance and determinism suite for the cache-blocked packed GEMM.
//
// The packed kernel is validated against the kept naive reference
// (tensor::reference_gemm) across all four transpose variants, odd shapes
// that exercise every edge-tile path of the blocking (m/n/k of 1, 3,
// tile +/- 1, and above the MC/KC/NC blocking), and alpha/beta edge cases.
// The determinism tests assert the contract documented in ops.h: results
// are bit-identical with the thread-pool fan-out on or off, and across
// thread-pool sizes.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/gemm_ref.h"
#include "tensor/ops.h"

namespace dlion::tensor {
namespace {

std::vector<float> random_vec(std::size_t n, common::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Tolerance scaled to the dot-product length: the packed kernel and the
/// reference accumulate in different orders, so they agree to float
/// rounding, not bitwise.
double tol_for(std::size_t k) { return 1e-5 * static_cast<double>(k + 16); }

void expect_conformance(bool ta, bool tb, std::size_t m, std::size_t n,
                        std::size_t k, float alpha, float beta,
                        std::uint64_t seed) {
  common::Rng rng(seed);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  const auto c0 = random_vec(m * n, rng);

  std::vector<float> c_packed = c0, c_ref = c0;
  gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta, c_packed.data());
  reference_gemm(ta, tb, m, n, k, alpha, a.data(), b.data(), beta,
                 c_ref.data());
  const double tol = tol_for(k) * (std::abs(alpha) + std::abs(beta) + 1.0);
  for (std::size_t i = 0; i < c_packed.size(); ++i) {
    ASSERT_NEAR(c_packed[i], c_ref[i], tol)
        << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
        << " k=" << k << " alpha=" << alpha << " beta=" << beta << " i=" << i;
  }
}

class GemmConformance
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmConformance, OddShapesMatchReference) {
  const auto [ta, tb] = GetParam();
  // 1 and 3: degenerate panels. 5/7/9/15/17: around the 4x8 / 6x16 register
  // tiles. 121/127: above the MC=120 row blocking. 257: above KC=NC=256, so
  // the k- and n-loops take more than one block.
  const std::size_t dims[] = {1, 3, 5, 7, 9, 15, 17, 121};
  for (std::size_t m : dims) {
    for (std::size_t n : dims) {
      for (std::size_t k : dims) {
        expect_conformance(ta, tb, m, n, k, 1.0f, 0.0f,
                           m * 10007 + n * 101 + k);
      }
    }
  }
}

TEST_P(GemmConformance, BlockingBoundariesMatchReference) {
  const auto [ta, tb] = GetParam();
  // Shapes straddling the MC/KC/NC cache blocking and forcing the packed
  // path past the small-problem cutoff.
  expect_conformance(ta, tb, 119, 64, 257, 1.0f, 0.0f, 11);
  expect_conformance(ta, tb, 121, 257, 64, 1.0f, 1.0f, 12);
  expect_conformance(ta, tb, 127, 255, 129, 1.0f, 0.0f, 13);
}

TEST_P(GemmConformance, AlphaBetaEdges) {
  const auto [ta, tb] = GetParam();
  const std::size_t m = 33, n = 65, k = 97;
  for (float alpha : {0.0f, 1.0f, 0.5f, -2.0f}) {
    for (float beta : {0.0f, 1.0f, 0.5f, -1.0f}) {
      expect_conformance(ta, tb, m, n, k, alpha, beta, 100 + ta * 2 + tb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmConformance,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(GemmConformance, KZeroScalesByBeta) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  gemm(false, false, 2, 2, 0, 1.0f, nullptr, nullptr, 0.5f, c.data());
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

// --- Determinism -----------------------------------------------------------

std::vector<float> run_gemm_once(std::size_t m, std::size_t n, std::size_t k,
                                 bool ta, bool tb) {
  common::Rng rng(99);
  const auto a = random_vec(m * k, rng);
  const auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n, 0.25f);
  gemm(ta, tb, m, n, k, 1.0f, a.data(), b.data(), 1.0f, c.data());
  return c;
}

TEST(GemmDeterminism, SerialAndPooledBitIdentical) {
  // Large enough to clear both the packed-path and the parallel cutoffs.
  const std::size_t m = 320, n = 192, k = 288;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      const bool prev = set_gemm_parallel(false);
      const auto serial = run_gemm_once(m, n, k, ta, tb);
      set_gemm_parallel(true);
      const auto pooled = run_gemm_once(m, n, k, ta, tb);
      set_gemm_parallel(prev);
      ASSERT_EQ(0, std::memcmp(serial.data(), pooled.data(),
                               serial.size() * sizeof(float)))
          << "ta=" << ta << " tb=" << tb;
    }
  }
}

TEST(GemmDeterminism, BitIdenticalAcrossThreadCounts) {
  const std::size_t m = 320, n = 192, k = 288;
  std::vector<float> baseline;
  for (std::size_t total_threads : {1u, 2u, 4u}) {
    common::ThreadPool::reset_global_for_testing(total_threads);
    const auto c = run_gemm_once(m, n, k, false, false);
    if (baseline.empty()) {
      baseline = c;
    } else {
      ASSERT_EQ(0, std::memcmp(baseline.data(), c.data(),
                               c.size() * sizeof(float)))
          << "threads=" << total_threads;
    }
  }
  common::ThreadPool::reset_global_for_testing(0);  // restore default
}

TEST(GemmDeterminism, RepeatRunsIdentical) {
  const auto c1 = run_gemm_once(130, 257, 70, false, false);
  const auto c2 = run_gemm_once(130, 257, 70, false, false);
  ASSERT_EQ(0,
            std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

TEST(GemmKernel, NameIsReported) {
  const char* name = gemm_kernel_name();
  ASSERT_NE(name, nullptr);
  EXPECT_GT(std::strlen(name), 0u);
}

}  // namespace
}  // namespace dlion::tensor

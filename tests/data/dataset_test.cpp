#include "data/dataset.h"

#include <gtest/gtest.h>

namespace dlion::data {
namespace {

Dataset tiny_dataset(std::size_t n) {
  Dataset ds;
  ds.images = tensor::Tensor(tensor::Shape{n, 1, 1, 2});
  ds.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ds.images[i * 2] = static_cast<float>(i);
    ds.images[i * 2 + 1] = static_cast<float>(i) + 0.5f;
    ds.labels[i] = static_cast<std::int32_t>(i % 3);
  }
  return ds;
}

TEST(Dataset, NumClasses) {
  const Dataset ds = tiny_dataset(7);
  EXPECT_EQ(ds.num_classes(), 3u);
}

TEST(Dataset, SampleElems) {
  const Dataset ds = tiny_dataset(4);
  EXPECT_EQ(ds.sample_elems(), 2u);
}

TEST(Gather, PicksRequestedSamples) {
  const Dataset ds = tiny_dataset(10);
  std::vector<std::size_t> idx = {3, 7};
  const Batch b = gather(ds, idx);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_FLOAT_EQ(b.images[0], 3.0f);
  EXPECT_FLOAT_EQ(b.images[2], 7.0f);
  EXPECT_EQ(b.labels[0], 0);
  EXPECT_EQ(b.labels[1], 1);
}

TEST(Gather, BadIndexThrows) {
  const Dataset ds = tiny_dataset(3);
  std::vector<std::size_t> idx = {5};
  EXPECT_THROW(gather(ds, idx), std::out_of_range);
}

TEST(Shard, SizesDifferByAtMostOne) {
  const Dataset ds = tiny_dataset(10);
  std::size_t total = 0;
  for (std::size_t w = 0; w < 3; ++w) {
    const Dataset s = shard(ds, 3, w);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 4u);
    total += s.size();
  }
  EXPECT_EQ(total, 10u);
}

TEST(Shard, ShardsAreDisjointAndOrdered) {
  const Dataset ds = tiny_dataset(9);
  const Dataset s0 = shard(ds, 3, 0);
  const Dataset s1 = shard(ds, 3, 1);
  const Dataset s2 = shard(ds, 3, 2);
  EXPECT_FLOAT_EQ(s0.images[0], 0.0f);
  EXPECT_FLOAT_EQ(s1.images[0], 3.0f);
  EXPECT_FLOAT_EQ(s2.images[0], 6.0f);
}

TEST(Shard, SingleWorkerGetsEverything) {
  const Dataset ds = tiny_dataset(5);
  const Dataset s = shard(ds, 1, 0);
  EXPECT_EQ(s.size(), 5u);
}

TEST(Shard, BadArgsThrow) {
  const Dataset ds = tiny_dataset(5);
  EXPECT_THROW(shard(ds, 0, 0), std::invalid_argument);
  EXPECT_THROW(shard(ds, 2, 2), std::invalid_argument);
}

TEST(MinibatchSampler, ProducesRequestedSize) {
  const Dataset ds = tiny_dataset(20);
  MinibatchSampler sampler(ds, 1);
  const Batch b = sampler.next(8);
  EXPECT_EQ(b.size(), 8u);
}

TEST(MinibatchSampler, DeterministicBySeed) {
  const Dataset ds = tiny_dataset(20);
  MinibatchSampler a(ds, 42), b(ds, 42);
  const Batch ba = a.next(16), bb = b.next(16);
  for (std::size_t i = 0; i < ba.images.size(); ++i) {
    EXPECT_FLOAT_EQ(ba.images[i], bb.images[i]);
  }
}

TEST(MinibatchSampler, DifferentSeedsDiffer) {
  const Dataset ds = tiny_dataset(100);
  MinibatchSampler a(ds, 1), b(ds, 2);
  const Batch ba = a.next(16), bb = b.next(16);
  bool any_diff = false;
  for (std::size_t i = 0; i < ba.images.size(); ++i) {
    if (ba.images[i] != bb.images[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MinibatchSampler, EmptyDatasetThrows) {
  Dataset empty;
  MinibatchSampler sampler(empty, 1);
  EXPECT_THROW(sampler.next(4), std::logic_error);
}

}  // namespace
}  // namespace dlion::data

#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace dlion::data {
namespace {

TEST(Synthetic, DeterministicBySeed) {
  SyntheticSpec spec;
  spec.num_train = 50;
  spec.num_test = 10;
  spec.seed = 77;
  const TrainTest a = make_synthetic(spec);
  const TrainTest b = make_synthetic(spec);
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    EXPECT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Synthetic, DifferentSeedsDiffer) {
  SyntheticSpec s1, s2;
  s1.num_train = s2.num_train = 50;
  s1.num_test = s2.num_test = 10;
  s1.seed = 1;
  s2.seed = 2;
  const TrainTest a = make_synthetic(s1);
  const TrainTest b = make_synthetic(s2);
  bool differ = false;
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    if (a.train.images[i] != b.train.images[i]) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(Synthetic, ShapesAndLabelRanges) {
  SyntheticSpec spec;
  spec.num_train = 30;
  spec.num_test = 20;
  spec.classes = 7;
  spec.channels = 3;
  spec.height = 5;
  spec.width = 6;
  const TrainTest tt = make_synthetic(spec);
  EXPECT_TRUE(tt.train.images.shape() == tensor::Shape({30, 3, 5, 6}));
  EXPECT_TRUE(tt.test.images.shape() == tensor::Shape({20, 3, 5, 6}));
  for (auto l : tt.train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 7);
  }
}

TEST(Synthetic, PixelsBoundedByTanh) {
  SyntheticSpec spec;
  spec.num_train = 20;
  spec.num_test = 1;
  const TrainTest tt = make_synthetic(spec);
  for (std::size_t i = 0; i < tt.train.images.size(); ++i) {
    EXPECT_GE(tt.train.images[i], -1.0f);
    EXPECT_LE(tt.train.images[i], 1.0f);
  }
}

TEST(Synthetic, AllClassesRepresented) {
  SyntheticSpec spec;
  spec.num_train = 500;
  spec.num_test = 10;
  spec.classes = 10;
  const TrainTest tt = make_synthetic(spec);
  std::set<std::int32_t> seen(tt.train.labels.begin(),
                              tt.train.labels.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SynthCipher, BenchScaleDimensions) {
  const TrainTest tt = make_synth_cipher(1, /*paper_scale=*/false);
  EXPECT_EQ(tt.train.size(), 6000u);
  EXPECT_EQ(tt.test.size(), 1000u);
  EXPECT_EQ(tt.train.images.shape()[2], 8u);
  EXPECT_EQ(tt.train.num_classes(), 10u);
}

TEST(SynthImageNet, BenchScaleDimensions) {
  const TrainTest tt = make_synth_imagenet100(1, /*paper_scale=*/false);
  EXPECT_EQ(tt.train.size(), 20000u);
  EXPECT_EQ(tt.train.images.shape()[1], 3u);  // RGB
  EXPECT_EQ(tt.train.num_classes(), 20u);
}

TEST(Blobs, GeneratesSeparableClasses) {
  const TrainTest tt = make_blobs(3, 8, 4, 100, 50, 0.1);
  EXPECT_EQ(tt.train.size(), 100u);
  EXPECT_EQ(tt.train.num_classes(), 4u);
  EXPECT_TRUE(tt.train.images.shape() == tensor::Shape({100, 1, 1, 8}));
}

TEST(Blobs, DeterministicBySeed) {
  const TrainTest a = make_blobs(9, 4, 2, 20, 5);
  const TrainTest b = make_blobs(9, 4, 2, 20, 5);
  for (std::size_t i = 0; i < a.train.images.size(); ++i) {
    EXPECT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
  }
}

}  // namespace
}  // namespace dlion::data

#include "core/weighted_update.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/model_zoo.h"

namespace dlion::core {
namespace {

TEST(DbWeight, RatioOfBatchSizes) {
  EXPECT_DOUBLE_EQ(dynamic_batching_weight(64, 32), 2.0);
  EXPECT_DOUBLE_EQ(dynamic_batching_weight(16, 32), 0.5);
  EXPECT_DOUBLE_EQ(dynamic_batching_weight(32, 32), 1.0);
}

TEST(DbWeight, DisabledIsOne) {
  EXPECT_DOUBLE_EQ(dynamic_batching_weight(64, 32, /*enabled=*/false), 1.0);
}

TEST(DbWeight, ZeroLbsThrows) {
  EXPECT_THROW(dynamic_batching_weight(0, 32), std::invalid_argument);
  EXPECT_THROW(dynamic_batching_weight(32, 0), std::invalid_argument);
}

TEST(NormalizedDbWeight, SampleProportional) {
  // n=4 workers, GBS=128: a sender with LBS 64 carries half the samples.
  EXPECT_DOUBLE_EQ(normalized_batching_weight(64, 128, 4), 2.0);
  EXPECT_DOUBLE_EQ(normalized_batching_weight(32, 128, 4), 1.0);
  EXPECT_DOUBLE_EQ(normalized_batching_weight(16, 128, 4), 0.5);
}

TEST(NormalizedDbWeight, SumOverWorkersIsN) {
  const std::size_t gbs = 100, n = 4;
  const std::vector<std::size_t> lbs = {40, 30, 20, 10};
  double sum = 0;
  for (std::size_t l : lbs) sum += normalized_batching_weight(l, gbs, n);
  EXPECT_NEAR(sum, static_cast<double>(n), 1e-12);
}

TEST(NormalizedDbWeight, EqualLbsReducesToOne) {
  EXPECT_DOUBLE_EQ(normalized_batching_weight(32, 192, 6), 1.0);
}

nn::BuiltModel tiny_model(std::uint64_t seed) {
  common::Rng rng(seed);
  return nn::make_logistic_regression(rng, 4, 2);
}

comm::GradientUpdate dense_update(const nn::Model& model, float value) {
  comm::GradientUpdate u;
  u.lbs = 32;
  const auto& vars = model.variables();
  for (std::size_t v = 0; v < vars.size(); ++v) {
    comm::VariableGrad vg;
    vg.var_index = static_cast<std::uint32_t>(v);
    vg.dense_size = static_cast<std::uint32_t>(vars[v]->size());
    vg.values = std::vector<float>(vars[v]->size(), value);
    u.vars.push_back(std::move(vg));
  }
  return u;
}

TEST(ApplyGradientUpdate, DenseSubtractsScaledValues) {
  nn::BuiltModel bm = tiny_model(1);
  const nn::Snapshot before = bm.model.weights();
  // eta=0.1, n=4, db=2: each weight moves by -0.1/4 * 2 * 1 = -0.05.
  apply_gradient_update(bm.model, dense_update(bm.model, 1.0f), 0.1, 4, 2.0);
  const nn::Snapshot after = bm.model.weights();
  for (std::size_t v = 0; v < before.values.size(); ++v) {
    for (std::size_t i = 0; i < before.values[v].size(); ++i) {
      EXPECT_NEAR(after.values[v][i], before.values[v][i] - 0.05f, 1e-6);
    }
  }
}

TEST(ApplyGradientUpdate, SparseTouchesOnlyListedEntries) {
  nn::BuiltModel bm = tiny_model(2);
  const nn::Snapshot before = bm.model.weights();
  comm::GradientUpdate u;
  comm::VariableGrad vg;
  vg.var_index = 0;
  vg.dense_size =
      static_cast<std::uint32_t>(bm.model.variables()[0]->size());
  vg.indices = {0, 3};
  vg.values = {1.0f, -1.0f};
  u.vars.push_back(vg);
  apply_gradient_update(bm.model, u, 1.0, 1, 1.0);
  const nn::Snapshot after = bm.model.weights();
  EXPECT_NEAR(after.values[0][0], before.values[0][0] - 1.0f, 1e-6);
  EXPECT_NEAR(after.values[0][3], before.values[0][3] + 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(after.values[0][1], before.values[0][1]);
  EXPECT_FLOAT_EQ(after.values[0][2], before.values[0][2]);
}

TEST(ApplyGradientUpdate, BadVariableIndexThrows) {
  nn::BuiltModel bm = tiny_model(3);
  comm::GradientUpdate u;
  comm::VariableGrad vg;
  vg.var_index = 99;
  vg.dense_size = 1;
  vg.values = {1.0f};
  u.vars.push_back(vg);
  EXPECT_THROW(apply_gradient_update(bm.model, u, 0.1, 2, 1.0),
               std::out_of_range);
}

TEST(ApplyGradientUpdate, SizeMismatchThrows) {
  nn::BuiltModel bm = tiny_model(4);
  comm::GradientUpdate u;
  comm::VariableGrad vg;
  vg.var_index = 0;
  vg.dense_size = 3;  // wrong
  vg.values = {1.0f, 1.0f, 1.0f};
  u.vars.push_back(vg);
  EXPECT_THROW(apply_gradient_update(bm.model, u, 0.1, 2, 1.0),
               std::invalid_argument);
}

TEST(ApplyGradientUpdate, ZeroWorkersThrows) {
  nn::BuiltModel bm = tiny_model(5);
  EXPECT_THROW(
      apply_gradient_update(bm.model, dense_update(bm.model, 1.0f), 0.1, 0,
                            1.0),
      std::invalid_argument);
}

TEST(ApplyOwnGradients, MatchesManualSgd) {
  nn::BuiltModel bm = tiny_model(6);
  for (nn::Variable* v : bm.model.variables()) v->grad().fill(2.0f);
  const nn::Snapshot before = bm.model.weights();
  apply_own_gradients(bm.model, 0.5, 4);  // -0.5/4 * 2 = -0.25
  const nn::Snapshot after = bm.model.weights();
  for (std::size_t v = 0; v < before.values.size(); ++v) {
    for (std::size_t i = 0; i < before.values[v].size(); ++i) {
      EXPECT_NEAR(after.values[v][i], before.values[v][i] - 0.25f, 1e-6);
    }
  }
}

TEST(Eq7ReducesToEq4, EqualLbsMakesWeightedAndPlainIdentical) {
  // With identical LBS everywhere, db = 1 and Eq. 7 must equal Eq. 4.
  nn::BuiltModel weighted = tiny_model(7);
  nn::BuiltModel plain = tiny_model(7);
  const comm::GradientUpdate u = dense_update(weighted.model, 0.7f);
  const double db_weighted = dynamic_batching_weight(32, 32, true);
  const double db_plain = dynamic_batching_weight(32, 32, false);
  apply_gradient_update(weighted.model, u, 0.1, 6, db_weighted);
  apply_gradient_update(plain.model, u, 0.1, 6, db_plain);
  const nn::Snapshot a = weighted.model.weights();
  const nn::Snapshot b = plain.model.weights();
  for (std::size_t v = 0; v < a.values.size(); ++v) {
    for (std::size_t i = 0; i < a.values[v].size(); ++i) {
      EXPECT_FLOAT_EQ(a.values[v][i], b.values[v][i]);
    }
  }
}

}  // namespace
}  // namespace dlion::core

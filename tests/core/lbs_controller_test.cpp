#include "core/lbs_controller.h"

#include <gtest/gtest.h>

#include <numeric>

namespace dlion::core {
namespace {

TEST(EstimateRcp, ExactLinearTiming) {
  // time = 0.1 + 0.01 * lbs; in 1 s the worker can process (1-0.1)/0.01 = 90.
  std::vector<double> lbs = {8, 16, 32, 64};
  std::vector<double> times;
  for (double b : lbs) times.push_back(0.1 + 0.01 * b);
  EXPECT_NEAR(estimate_rcp(lbs, times, 1.0), 90.0, 1e-9);
}

TEST(EstimateRcp, ScalesWithUnitTime) {
  std::vector<double> lbs = {8, 16, 32};
  std::vector<double> times = {0.18, 0.26, 0.42};  // 0.1 + 0.01 * lbs
  const double rcp1 = estimate_rcp(lbs, times, 1.0);
  const double rcp2 = estimate_rcp(lbs, times, 2.0);
  EXPECT_GT(rcp2, rcp1);
}

TEST(EstimateRcp, DegenerateReturnsOne) {
  std::vector<double> one = {8};
  EXPECT_DOUBLE_EQ(estimate_rcp(one, one, 1.0), 1.0);
  std::vector<double> lbs = {8, 16, 32};
  std::vector<double> flat = {1.0, 1.0, 1.0};  // zero slope
  EXPECT_DOUBLE_EQ(estimate_rcp(lbs, flat, 1.0), 1.0);
}

TEST(EstimateRcp, NeverBelowOne) {
  // Overhead larger than the unit time: raw RCP would be negative.
  std::vector<double> lbs = {8, 16, 32};
  std::vector<double> times = {5.08, 5.16, 5.32};
  EXPECT_DOUBLE_EQ(estimate_rcp(lbs, times, 1.0), 1.0);
}

TEST(AllocateLbs, SumsToGbs) {
  std::vector<double> rcps = {60, 60, 30, 30, 15, 15};
  const auto alloc = allocate_lbs(600, rcps);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0ull), 600u);
}

TEST(AllocateLbs, ProportionalToRcp) {
  std::vector<double> rcps = {60, 30, 15, 15};  // total 120
  const auto alloc = allocate_lbs(120, rcps);
  EXPECT_EQ(alloc[0], 60u);
  EXPECT_EQ(alloc[1], 30u);
  EXPECT_EQ(alloc[2], 15u);
  EXPECT_EQ(alloc[3], 15u);
}

TEST(AllocateLbs, EqualRcpsMeansEvenSplit) {
  std::vector<double> rcps(6, 10.0);
  const auto alloc = allocate_lbs(192, rcps);
  for (std::size_t v : alloc) EXPECT_EQ(v, 32u);
}

TEST(AllocateLbs, RoundingPreservesSum) {
  std::vector<double> rcps = {1.0, 1.0, 1.0};
  const auto alloc = allocate_lbs(100, rcps);  // not divisible by 3
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0ull), 100u);
  for (std::size_t v : alloc) {
    EXPECT_GE(v, 33u);
    EXPECT_LE(v, 34u);
  }
}

TEST(AllocateLbs, MinimumLbsRespected) {
  std::vector<double> rcps = {1000.0, 1.0, 1.0};
  const auto alloc = allocate_lbs(100, rcps, 5);
  EXPECT_GE(alloc[1], 5u);
  EXPECT_GE(alloc[2], 5u);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0ull), 100u);
}

TEST(AllocateLbs, DegenerateGbsGivesStrongestWorkersFirst) {
  std::vector<double> rcps = {1.0, 10.0, 5.0};
  const auto alloc = allocate_lbs(4, rcps, 2);  // 4 < 3 workers * 2 min
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0ull), 4u);
  EXPECT_EQ(alloc[1], 2u);  // strongest gets the minimum first
  EXPECT_EQ(alloc[2], 2u);
  EXPECT_EQ(alloc[0], 0u);
}

TEST(AllocateLbs, DeterministicTieBreaking) {
  std::vector<double> rcps = {1.0, 1.0, 1.0, 1.0};
  const auto a = allocate_lbs(10, rcps);
  const auto b = allocate_lbs(10, rcps);
  EXPECT_EQ(a, b);
}

TEST(AllocateLbs, InvalidInputsThrow) {
  EXPECT_THROW(allocate_lbs(10, {}), std::invalid_argument);
  std::vector<double> bad = {1.0, 0.0};
  EXPECT_THROW(allocate_lbs(10, bad), std::invalid_argument);
}

class AllocationSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AllocationSweep, SumInvariantHoldsAcrossShapes) {
  const auto [gbs, n] = GetParam();
  std::vector<double> rcps;
  for (std::size_t i = 0; i < n; ++i) {
    rcps.push_back(1.0 + static_cast<double>(i * i));
  }
  const auto alloc = allocate_lbs(gbs, rcps);
  EXPECT_EQ(alloc.size(), n);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0ull), gbs);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllocationSweep,
    ::testing::Combine(::testing::Values<std::size_t>(6, 97, 192, 600, 6000),
                       ::testing::Values<std::size_t>(2, 3, 6, 13)));

}  // namespace
}  // namespace dlion::core

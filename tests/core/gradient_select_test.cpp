#include "core/gradient_select.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"

namespace dlion::core {
namespace {

std::vector<float> random_grad(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> g(n);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  return g;
}

TEST(MaxN, N100IsDense) {
  const auto g = random_grad(50, 1);
  const comm::VariableGrad v = select_max_n(g, 0, 100.0);
  EXPECT_TRUE(v.is_dense());
  EXPECT_EQ(v.values.size(), 50u);
}

TEST(MaxN, ThresholdSemantics) {
  // max|g| = 10. N = 20 keeps |g| >= 0.8 * 10 = 8.
  std::vector<float> g = {10.0f, -9.0f, 8.0f, 7.9f, -0.5f};
  const comm::VariableGrad v = select_max_n(g, 0, 20.0);
  EXPECT_EQ(v.indices, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(MaxN, SelectionGrowsWithN) {
  const auto g = random_grad(1000, 2);
  std::size_t prev = 0;
  for (double n : {1.0, 10.0, 25.0, 50.0, 75.0, 100.0}) {
    const std::size_t count = count_max_n(g, n);
    EXPECT_GE(count, prev) << "N = " << n;
    prev = count;
  }
  EXPECT_EQ(prev, 1000u);
}

TEST(MaxN, CountMatchesSelect) {
  const auto g = random_grad(500, 3);
  for (double n : {5.0, 50.0, 95.0}) {
    EXPECT_EQ(count_max_n(g, n), select_max_n(g, 0, n).values.size());
  }
}

TEST(MaxN, SelectedValuesMatchSource) {
  const auto g = random_grad(100, 4);
  const comm::VariableGrad v = select_max_n(g, 7, 30.0);
  EXPECT_EQ(v.var_index, 7u);
  EXPECT_EQ(v.dense_size, 100u);
  for (std::size_t e = 0; e < v.indices.size(); ++e) {
    EXPECT_FLOAT_EQ(v.values[e], g[v.indices[e]]);
  }
}

TEST(MaxN, InvalidNThrows) {
  const auto g = random_grad(10, 5);
  EXPECT_THROW(select_max_n(g, 0, 0.0), std::invalid_argument);
  EXPECT_THROW(select_max_n(g, 0, 101.0), std::invalid_argument);
  EXPECT_THROW(select_max_n(g, 0, -5.0), std::invalid_argument);
}

TEST(MaxN, ThresholdFormula) {
  EXPECT_DOUBLE_EQ(max_n_threshold(100.0, 4.0f), 0.0);
  EXPECT_DOUBLE_EQ(max_n_threshold(25.0, 4.0f), 3.0);
}

TEST(TopK, SelectsLargestMagnitudes) {
  std::vector<float> g = {1.0f, -5.0f, 3.0f, -2.0f, 4.0f};
  const comm::VariableGrad v = select_top_k(g, 0, 2);
  EXPECT_EQ(v.indices, (std::vector<std::uint32_t>{1, 4}));
  EXPECT_FLOAT_EQ(v.values[0], -5.0f);
  EXPECT_FLOAT_EQ(v.values[1], 4.0f);
}

TEST(TopK, KZeroIsEmpty) {
  const auto g = random_grad(10, 6);
  const comm::VariableGrad v = select_top_k(g, 0, 0);
  EXPECT_TRUE(v.indices.empty());
  EXPECT_TRUE(v.values.empty());
  EXPECT_EQ(v.dense_size, 10u);
}

TEST(TopK, KAboveSizeIsDense) {
  const auto g = random_grad(10, 6);
  const comm::VariableGrad v = select_top_k(g, 0, 100);
  EXPECT_TRUE(v.is_dense());
}

TEST(TopK, IndicesSortedAscending) {
  const auto g = random_grad(200, 7);
  const comm::VariableGrad v = select_top_k(g, 0, 50);
  for (std::size_t e = 1; e < v.indices.size(); ++e) {
    EXPECT_LT(v.indices[e - 1], v.indices[e]);
  }
}

TEST(TopK, NestedSelectionsAreSupersets) {
  const auto g = random_grad(300, 8);
  const comm::VariableGrad small = select_top_k(g, 0, 20);
  const comm::VariableGrad big = select_top_k(g, 0, 80);
  const std::set<std::uint32_t> big_set(big.indices.begin(),
                                        big.indices.end());
  for (std::uint32_t i : small.indices) {
    EXPECT_TRUE(big_set.count(i)) << "index " << i;
  }
}

TEST(TopK, AgreesWithMaxNAtEquivalentThreshold) {
  // Selecting top-k and selecting Max N at the equivalent N should pick the
  // same entry count (modulo magnitude ties, absent in random floats).
  const auto g = random_grad(400, 9);
  const std::size_t k = 37;
  const double n = equivalent_n(g, k);
  EXPECT_EQ(count_max_n(g, n), k);
}

TEST(EquivalentN, Extremes) {
  const auto g = random_grad(100, 10);
  EXPECT_DOUBLE_EQ(equivalent_n(g, 100), 100.0);
  EXPECT_DOUBLE_EQ(equivalent_n(g, 0), 0.0);
  EXPECT_DOUBLE_EQ(equivalent_n({}, 5), 100.0);
}

TEST(EquivalentN, MonotoneInK) {
  const auto g = random_grad(100, 11);
  double prev = -1;
  for (std::size_t k : {1u, 10u, 40u, 90u}) {
    const double n = equivalent_n(g, k);
    EXPECT_GE(n, prev);
    prev = n;
  }
}

class MaxNSweep : public ::testing::TestWithParam<double> {};

TEST_P(MaxNSweep, SelectionRespectsThresholdInvariant) {
  const double n = GetParam();
  const auto g = random_grad(500, 12);
  const comm::VariableGrad v = select_max_n(g, 0, n);
  const float mx = *std::max_element(
      g.begin(), g.end(), [](float a, float b) {
        return std::fabs(a) < std::fabs(b);
      });
  const double thr = max_n_threshold(n, std::fabs(mx));
  // Every selected entry is above threshold; every skipped entry below.
  std::set<std::uint32_t> selected(v.indices.begin(), v.indices.end());
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (selected.count(static_cast<std::uint32_t>(i))) {
      EXPECT_GE(std::fabs(g[i]), thr);
    } else if (!v.is_dense()) {
      EXPECT_LT(std::fabs(g[i]), thr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, MaxNSweep,
                         ::testing::Values(0.85, 5.0, 10.0, 25.0, 50.0, 99.0));

}  // namespace
}  // namespace dlion::core

#include "core/sync_strategy.h"

#include <gtest/gtest.h>

#include <vector>

namespace dlion::core {
namespace {

TEST(SyncPolicy, Names) {
  EXPECT_EQ(SyncPolicy::synchronous().to_string(), "sync");
  EXPECT_EQ(SyncPolicy::asynchronous().to_string(), "async");
  EXPECT_EQ(SyncPolicy::bounded(5, 1).to_string(), "bounded(s=5,b=1)");
}

TEST(CanStart, AsyncNeverWaits) {
  const SyncPolicy async = SyncPolicy::asynchronous();
  std::vector<std::int64_t> peers = {-1, -1, -1};
  EXPECT_TRUE(can_start_iteration(async, 100, peers, 0));
}

TEST(CanStart, FirstIterationNeverWaits) {
  const SyncPolicy sync = SyncPolicy::synchronous();
  std::vector<std::int64_t> peers = {-1, -1, -1};
  EXPECT_TRUE(can_start_iteration(sync, 0, peers, 0));
}

TEST(CanStart, SynchronousRequiresAllPeersFresh) {
  const SyncPolicy sync = SyncPolicy::synchronous();
  // To start iteration 3, every peer must have delivered iteration >= 2.
  std::vector<std::int64_t> fresh = {0, 2, 2};
  std::vector<std::int64_t> stale = {0, 2, 1};
  EXPECT_TRUE(can_start_iteration(sync, 3, fresh, 0));
  EXPECT_FALSE(can_start_iteration(sync, 3, stale, 0));
}

TEST(CanStart, StalenessBoundRelaxesRequirement) {
  const SyncPolicy bounded = SyncPolicy::bounded(2, 0);
  // Iteration 5 requires peers at >= 5-1-2 = 2.
  std::vector<std::int64_t> peers = {0, 2, 2};
  EXPECT_TRUE(can_start_iteration(bounded, 5, peers, 0));
  std::vector<std::int64_t> too_stale = {0, 2, 1};
  EXPECT_FALSE(can_start_iteration(bounded, 5, too_stale, 0));
}

TEST(CanStart, BackupWorkersAreSkippable) {
  const SyncPolicy hop = SyncPolicy::bounded(0, 1);
  // One straggler peer may be ignored.
  std::vector<std::int64_t> one_behind = {0, 5, -1};
  EXPECT_TRUE(can_start_iteration(hop, 6, one_behind, 0));
  std::vector<std::int64_t> two_behind = {0, -1, -1};
  EXPECT_FALSE(can_start_iteration(hop, 6, two_behind, 0));
}

TEST(CanStart, EarlyIterationsWithinBoundDontWait) {
  const SyncPolicy bounded = SyncPolicy::bounded(5, 0);
  std::vector<std::int64_t> nothing = {0, -1, -1};
  // Iterations 1..5 require peers at >= iter-6 < 0: always allowed. From
  // iteration 6 onwards a peer delivery (iter >= 0) is required.
  EXPECT_TRUE(can_start_iteration(bounded, 5, nothing, 0));
  EXPECT_FALSE(can_start_iteration(bounded, 6, nothing, 0));
}

TEST(CanStart, SelfEntryIgnored) {
  const SyncPolicy sync = SyncPolicy::synchronous();
  // Worker 1's own slot is stale but that must not block it.
  std::vector<std::int64_t> peers = {5, -1, 5};
  EXPECT_TRUE(can_start_iteration(sync, 6, peers, 1));
}

struct SyncCase {
  std::uint64_t staleness;
  std::size_t backup;
  std::uint64_t next_iter;
  std::vector<std::int64_t> peers;
  bool expect;
};

class SyncPolicySweep : public ::testing::TestWithParam<SyncCase> {};

TEST_P(SyncPolicySweep, MatchesExpectation) {
  const SyncCase& c = GetParam();
  const SyncPolicy policy = SyncPolicy::bounded(c.staleness, c.backup);
  EXPECT_EQ(can_start_iteration(policy, c.next_iter, c.peers, 0), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SyncPolicySweep,
    ::testing::Values(
        // Hop's evaluation setting: staleness 5, 1 backup.
        SyncCase{5, 1, 10, {0, 9, 9, 9, 9, 1}, true},    // one slow, skipped
        SyncCase{5, 1, 10, {0, 9, 9, 9, 1, 1}, false},   // two slow
        SyncCase{5, 1, 10, {0, 4, 4, 4, 4, 4}, true},    // all at bound
        SyncCase{5, 1, 11, {0, 4, 4, 4, 4, 4}, false},   // all past bound
        // Pure synchronous.
        SyncCase{0, 0, 1, {0, 0, 0, 0, 0, 0}, true},
        SyncCase{0, 0, 2, {0, 1, 1, 1, 1, 0}, false},
        // Generous staleness.
        SyncCase{100, 0, 50, {0, -1, -1, -1, -1, -1}, true}));

}  // namespace
}  // namespace dlion::core

#include "core/link_prioritizer.h"

#include <gtest/gtest.h>

#include "core/gradient_select.h"

#include "common/rng.h"
#include "nn/model_zoo.h"

namespace dlion::core {
namespace {

nn::BuiltModel model_with_gradients(std::uint64_t seed) {
  common::Rng rng(seed);
  nn::BuiltModel bm = nn::make_mlp(rng, 16, 16, 4);
  common::Rng grad_rng(seed + 1);
  for (nn::Variable* v : bm.model.variables()) {
    for (auto& g : v->grad().span()) {
      g = static_cast<float>(grad_rng.normal());
    }
  }
  return bm;
}

LinkContext make_ctx(double mbps, double iters_per_sec,
                     double byte_scale = 1.0) {
  LinkContext ctx;
  ctx.self = 0;
  ctx.peer = 1;
  ctx.available_mbps = mbps;
  ctx.iterations_per_sec = iters_per_sec;
  ctx.byte_scale = byte_scale;
  ctx.learning_rate = 0.1;
  ctx.n_workers = 6;
  return ctx;
}

std::size_t total_entries(const std::vector<comm::VariableGrad>& vars) {
  std::size_t n = 0;
  for (const auto& v : vars) n += v.num_entries();
  return n;
}

TEST(LinkPrioritizer, WideLinkSendsEverything) {
  nn::BuiltModel bm = model_with_gradients(1);
  LinkPrioritizer lp({});
  const auto out = lp.generate(bm.model, make_ctx(10000.0, 1.0));
  EXPECT_EQ(total_entries(out), bm.model.num_params());
  EXPECT_DOUBLE_EQ(lp.last_n(), 100.0);
}

TEST(LinkPrioritizer, NarrowLinkSendsLess) {
  nn::BuiltModel bm = model_with_gradients(2);
  LinkPrioritizer lp({});
  const auto wide = lp.generate(bm.model, make_ctx(100.0, 1.0));
  const std::size_t wide_entries = total_entries(wide);
  const auto narrow = lp.generate(bm.model, make_ctx(0.01, 1.0));
  EXPECT_LT(total_entries(narrow), wide_entries);
  EXPECT_LT(lp.last_n(), 100.0);
}

TEST(LinkPrioritizer, SizeTracksBandwidthMonotonically) {
  nn::BuiltModel bm = model_with_gradients(3);
  LinkPrioritizer lp({});
  std::size_t prev = 0;
  for (double mbps : {0.005, 0.01, 0.05, 0.1, 1.0}) {
    const auto out = lp.generate(bm.model, make_ctx(mbps, 1.0));
    EXPECT_GE(total_entries(out), prev) << mbps << " Mbps";
    prev = total_entries(out);
  }
}

TEST(LinkPrioritizer, FasterIterationsShrinkBudget) {
  nn::BuiltModel bm = model_with_gradients(4);
  LinkPrioritizer lp({});
  const auto slow = lp.generate(bm.model, make_ctx(0.1, 1.0));
  const auto fast = lp.generate(bm.model, make_ctx(0.1, 10.0));
  EXPECT_LE(total_entries(fast), total_entries(slow));
}

TEST(LinkPrioritizer, ByteScaleShrinksEntryBudget) {
  nn::BuiltModel bm = model_with_gradients(5);
  LinkPrioritizer lp({});
  const auto raw = lp.generate(bm.model, make_ctx(0.1, 1.0, 1.0));
  const auto scaled = lp.generate(bm.model, make_ctx(0.1, 1.0, 100.0));
  EXPECT_LT(total_entries(scaled), total_entries(raw));
}

TEST(LinkPrioritizer, MinNFloorGuaranteesSelection) {
  nn::BuiltModel bm = model_with_gradients(6);
  LinkPrioritizerConfig cfg;
  cfg.min_n = 50.0;  // generous floor
  LinkPrioritizer lp(cfg);
  // Starved link: budget ~ 0, but the floor still selects Max 50 per var.
  const auto out = lp.generate(bm.model, make_ctx(1e-9, 100.0));
  std::size_t floor_total = 0;
  const auto& vars = bm.model.variables();
  for (std::size_t v = 0; v < vars.size(); ++v) {
    floor_total += count_max_n(vars[v]->grad().span(), 50.0);
  }
  EXPECT_GE(total_entries(out), floor_total);
}

TEST(LinkPrioritizer, EveryVariableRepresented) {
  nn::BuiltModel bm = model_with_gradients(7);
  LinkPrioritizer lp({});
  const auto out = lp.generate(bm.model, make_ctx(0.05, 1.0));
  ASSERT_EQ(out.size(), bm.model.num_variables());
  for (const auto& vg : out) {
    EXPECT_GE(vg.num_entries(), 1u);  // at least one entry per variable
  }
}

TEST(LinkPrioritizer, FixedModeIgnoresBandwidth) {
  LinkPrioritizerConfig cfg;
  cfg.adaptive = false;
  cfg.fixed_n = 10.0;
  nn::BuiltModel bm = model_with_gradients(8);
  LinkPrioritizer lp(cfg);
  const auto narrow = lp.generate(bm.model, make_ctx(0.001, 1.0));
  const auto wide = lp.generate(bm.model, make_ctx(1000.0, 1.0));
  EXPECT_EQ(total_entries(narrow), total_entries(wide));
  EXPECT_DOUBLE_EQ(lp.last_n(), 10.0);
}

TEST(LinkPrioritizer, ReportsLastEntries) {
  nn::BuiltModel bm = model_with_gradients(9);
  LinkPrioritizer lp({});
  const auto out = lp.generate(bm.model, make_ctx(0.1, 1.0));
  EXPECT_EQ(lp.last_entries(), total_entries(out));
}

}  // namespace
}  // namespace dlion::core

#include "core/dkt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/model_zoo.h"

namespace dlion::core {
namespace {

DktConfig best2all() {
  DktConfig cfg;
  cfg.mode = DktMode::kBest2All;
  cfg.period_iters = 10;
  cfg.loss_window = 3;
  cfg.lambda = 0.5;
  return cfg;
}

TEST(Dkt, LossWindowAverages) {
  DktModule dkt(best2all(), 0, 3);
  EXPECT_TRUE(std::isinf(dkt.avg_loss()));
  dkt.record_loss(1.0);
  dkt.record_loss(2.0);
  dkt.record_loss(3.0);
  EXPECT_DOUBLE_EQ(dkt.avg_loss(), 2.0);
  dkt.record_loss(7.0);  // window 3: {2, 3, 7}
  EXPECT_DOUBLE_EQ(dkt.avg_loss(), 4.0);
}

TEST(Dkt, BoundaryEveryPeriod) {
  DktModule dkt(best2all(), 0, 3);
  EXPECT_FALSE(dkt.is_boundary(0));
  EXPECT_FALSE(dkt.is_boundary(5));
  EXPECT_TRUE(dkt.is_boundary(10));
  EXPECT_FALSE(dkt.is_boundary(11));
  EXPECT_TRUE(dkt.is_boundary(20));
}

TEST(Dkt, NoneModeHasNoBoundaries) {
  DktConfig cfg = best2all();
  cfg.mode = DktMode::kNone;
  DktModule dkt(cfg, 0, 3);
  EXPECT_FALSE(dkt.is_boundary(10));
  EXPECT_FALSE(dkt.should_request(10));
}

TEST(Dkt, EarlyOnlyVariantStops) {
  DktConfig cfg = best2all();
  cfg.early_only_iters = 25;
  DktModule dkt(cfg, 0, 3);
  EXPECT_TRUE(dkt.is_boundary(10));
  EXPECT_TRUE(dkt.is_boundary(20));
  EXPECT_FALSE(dkt.is_boundary(30));
}

TEST(Dkt, BestWorkerTracksReports) {
  DktModule dkt(best2all(), 0, 3);
  dkt.record_loss(5.0);
  dkt.record_peer_loss(1, 2.0, 10);
  dkt.record_peer_loss(2, 8.0, 10);
  EXPECT_EQ(dkt.best_worker(), 1u);
  EXPECT_EQ(dkt.worst_worker(), 2u);
  dkt.record_peer_loss(1, 9.0, 20);
  EXPECT_EQ(dkt.best_worker(), 0u);
}

TEST(Dkt, WorstIgnoresUnreported) {
  DktModule dkt(best2all(), 0, 4);
  dkt.record_loss(1.0);
  dkt.record_peer_loss(2, 3.0, 10);
  // Workers 1, 3 never reported (+inf); worst must be a finite one.
  EXPECT_EQ(dkt.worst_worker(), 2u);
}

TEST(Dkt, Best2AllEveryoneButBestRequests) {
  DktModule self0(best2all(), 0, 3);
  self0.record_loss(5.0);
  self0.record_peer_loss(1, 1.0, 10);
  self0.record_peer_loss(2, 9.0, 10);
  EXPECT_TRUE(self0.should_request(10));  // worker 1 is best, pull from it

  DktModule self1(best2all(), 1, 3);
  self1.record_loss(1.0);
  self1.record_peer_loss(0, 5.0, 10);
  self1.record_peer_loss(2, 9.0, 10);
  EXPECT_FALSE(self1.should_request(10));  // is itself the best
}

TEST(Dkt, Best2WorstOnlyWorstRequests) {
  DktConfig cfg = best2all();
  cfg.mode = DktMode::kBest2Worst;
  DktModule middle(cfg, 0, 3);
  middle.record_loss(5.0);
  middle.record_peer_loss(1, 1.0, 10);
  middle.record_peer_loss(2, 9.0, 10);
  EXPECT_FALSE(middle.should_request(10));  // not the worst

  DktModule worst(cfg, 2, 3);
  worst.record_loss(9.0);
  worst.record_peer_loss(0, 5.0, 10);
  worst.record_peer_loss(1, 1.0, 10);
  EXPECT_TRUE(worst.should_request(10));
}

TEST(Dkt, MergeLambdaInterpolates) {
  common::Rng rng(1);
  nn::BuiltModel bm = nn::make_logistic_regression(rng, 4, 2);
  nn::Snapshot best = bm.model.weights();
  for (auto& t : best.values) t.fill(1.0f);
  for (nn::Variable* v : bm.model.variables()) v->value().fill(0.0f);

  DktConfig cfg = best2all();
  cfg.lambda = 0.25;
  DktModule dkt(cfg, 0, 2);
  dkt.merge(bm.model, best);
  for (nn::Variable* v : bm.model.variables()) {
    for (std::size_t i = 0; i < v->size(); ++i) {
      EXPECT_FLOAT_EQ(v->value()[i], 0.25f);  // w - 0.25*(w - 1) = 0.25
    }
  }
}

TEST(Dkt, MergeLambdaOneReplaces) {
  common::Rng rng(2);
  nn::BuiltModel bm = nn::make_logistic_regression(rng, 4, 2);
  nn::Snapshot best = bm.model.weights();
  for (auto& t : best.values) t.fill(3.0f);
  DktConfig cfg = best2all();
  cfg.lambda = 1.0;
  DktModule dkt(cfg, 0, 2);
  dkt.merge(bm.model, best);
  for (nn::Variable* v : bm.model.variables()) {
    for (std::size_t i = 0; i < v->size(); ++i) {
      EXPECT_FLOAT_EQ(v->value()[i], 3.0f);
    }
  }
}

TEST(Dkt, MergeLambdaZeroIsNoop) {
  common::Rng rng(3);
  nn::BuiltModel bm = nn::make_logistic_regression(rng, 4, 2);
  const nn::Snapshot before = bm.model.weights();
  nn::Snapshot best = before;
  for (auto& t : best.values) t.fill(9.0f);
  DktConfig cfg = best2all();
  cfg.lambda = 0.0;
  DktModule dkt(cfg, 0, 2);
  dkt.merge(bm.model, best);
  const nn::Snapshot after = bm.model.weights();
  for (std::size_t v = 0; v < before.values.size(); ++v) {
    for (std::size_t i = 0; i < before.values[v].size(); ++i) {
      EXPECT_FLOAT_EQ(after.values[v][i], before.values[v][i]);
    }
  }
}

TEST(Dkt, MergeCountMismatchThrows) {
  common::Rng rng(4);
  nn::BuiltModel bm = nn::make_logistic_regression(rng, 4, 2);
  nn::Snapshot bad;
  DktModule dkt(best2all(), 0, 2);
  EXPECT_THROW(dkt.merge(bm.model, bad), std::invalid_argument);
}

TEST(Dkt, ExpiryIgnoresStalePeerReports) {
  DktConfig cfg = best2all();
  cfg.peer_loss_expiry_iters = 20;
  DktModule dkt(cfg, 0, 3);
  dkt.record_loss(5.0);
  dkt.record_peer_loss(1, 1.0, 10);   // best, stamped at iter 10
  dkt.record_peer_loss(2, 3.0, 25);   // fresher but worse
  EXPECT_EQ(dkt.best_worker(25), 1u);  // age 15 <= 20: still counts
  EXPECT_EQ(dkt.best_worker(31), 2u);  // age 21 > 20: worker 1 expired
  // Re-reporting refreshes the stamp.
  dkt.record_peer_loss(1, 1.0, 31);
  EXPECT_EQ(dkt.best_worker(31), 1u);
}

TEST(Dkt, ExpiryZeroNeverExpires) {
  // Seed behaviour: expiry disabled means even ancient reports stay live.
  DktModule dkt(best2all(), 0, 3);
  ASSERT_EQ(dkt.config().peer_loss_expiry_iters, 0u);
  dkt.record_loss(5.0);
  dkt.record_peer_loss(1, 1.0, 0);
  EXPECT_EQ(dkt.best_worker(1000000), 1u);
}

TEST(Dkt, ExpiryWithoutNowIterKeepsEverything) {
  // Callers that do not pass a clock (seed call sites) see no expiry even
  // when the config enables it.
  DktConfig cfg = best2all();
  cfg.peer_loss_expiry_iters = 5;
  DktModule dkt(cfg, 0, 3);
  dkt.record_loss(5.0);
  dkt.record_peer_loss(1, 1.0, 0);
  EXPECT_EQ(dkt.best_worker(), 1u);
  EXPECT_EQ(dkt.best_worker(100), 0u);  // with a clock it does expire
}

TEST(Dkt, ExcludedPeersAreSkipped) {
  DktModule dkt(best2all(), 0, 3);
  dkt.record_loss(5.0);
  dkt.record_peer_loss(1, 1.0, 10);
  dkt.record_peer_loss(2, 3.0, 10);
  std::vector<bool> excluded(3, false);
  excluded[1] = true;  // e.g. suspected dead or pull timed out
  EXPECT_EQ(dkt.best_worker(std::nullopt, excluded), 2u);
  excluded[2] = true;
  EXPECT_EQ(dkt.best_worker(std::nullopt, excluded), 0u);  // falls back to self
}

TEST(Dkt, WorstRespectsExpiryAndExclusion) {
  DktConfig cfg = best2all();
  cfg.peer_loss_expiry_iters = 10;
  DktModule dkt(cfg, 0, 4);
  dkt.record_loss(1.0);
  dkt.record_peer_loss(2, 9.0, 0);   // worst but stale by iter 20
  dkt.record_peer_loss(3, 4.0, 18);  // fresh
  EXPECT_EQ(dkt.worst_worker(20), 3u);
  std::vector<bool> excluded(4, false);
  excluded[3] = true;
  EXPECT_EQ(dkt.worst_worker(20, excluded), 0u);  // only self remains
}

TEST(Dkt, InvalidConfigThrows) {
  DktConfig zero_period = best2all();
  zero_period.period_iters = 0;
  EXPECT_THROW(DktModule(zero_period, 0, 2), std::invalid_argument);
  DktConfig bad_lambda = best2all();
  bad_lambda.lambda = 1.5;
  EXPECT_THROW(DktModule(bad_lambda, 0, 2), std::invalid_argument);
  EXPECT_THROW(DktModule(best2all(), 5, 2), std::invalid_argument);
}

}  // namespace
}  // namespace dlion::core

// Failure-injection tests: resource collapses mid-training (a worker's
// compute drops to near zero, a link starves) and the synchronization
// strategies' behaviour under them - the paper's motivating scenario where
// co-located applications steal capacity (`stress`) or bandwidth (`tc`).
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "systems/registry.h"

namespace dlion::core {
namespace {

data::TrainTest blobs_data() { return data::make_blobs(21, 16, 4, 2048, 512); }

ClusterSpec spec_for(const std::string& system_name, double duration) {
  const systems::SystemSpec system = systems::make_system(system_name);
  ClusterSpec spec;
  spec.model = "logreg";
  spec.seed = 9;
  spec.duration_s = duration;
  spec.strategy_factory = system.strategy_factory;
  WorkerOptions options;
  options.learning_rate = 0.4;
  options.eval_period_iters = 10;
  options.gbs.initial_gbs = 48;
  options.fixed_lbs = 16;
  options.dkt.period_iters = 25;
  system.configure(options);
  spec.worker_options = options;
  return spec;
}

// A worker whose compute collapses 1000x at t = 30 s (a co-located job
// grabbing the machine).
sim::ComputeSpec collapsing_worker() {
  sim::ComputeSpec spec;
  spec.units = sim::Schedule{{0.0, 4.0}, {30.0, 0.004}};
  spec.flops_per_unit = 1e5;
  spec.iteration_overhead_s = 0.05;
  return spec;
}

sim::ComputeSpec healthy_worker() {
  sim::ComputeSpec spec;
  spec.units = sim::Schedule(4.0);
  spec.flops_per_unit = 1e5;
  spec.iteration_overhead_s = 0.05;
  return spec;
}

TEST(FailureInjection, SynchronousClusterStallsWithFrozenWorker) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("baseline", 90.0);  // synchronous
  spec.compute = {healthy_worker(), healthy_worker(), collapsing_worker()};
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  // Fully synchronous training is gated by the frozen worker: healthy
  // workers cannot run ahead more than one iteration.
  EXPECT_LE(cluster.worker(0).iterations(),
            cluster.worker(2).iterations() + 1);
}

TEST(FailureInjection, BackupWorkerPolicyKeepsClusterMoving) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("hop", 90.0);  // bounded(5, 1): skip 1 straggler
  spec.compute = {healthy_worker(), healthy_worker(), collapsing_worker()};
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  // Hop's backup-worker technique lets the healthy majority run far ahead
  // of the frozen straggler.
  EXPECT_GT(cluster.worker(0).iterations(),
            cluster.worker(2).iterations() + 20);
  EXPECT_GT(cluster.mean_accuracy(), 0.8);
}

TEST(FailureInjection, HopOutlivesBaselineUnderStraggler) {
  const data::TrainTest data = blobs_data();
  ClusterSpec base = spec_for("baseline", 90.0);
  base.compute = {healthy_worker(), healthy_worker(), collapsing_worker()};
  ClusterSpec hop = spec_for("hop", 90.0);
  hop.compute = base.compute;
  Cluster baseline_cluster(base, data.train, data.test);
  Cluster hop_cluster(hop, data.train, data.test);
  baseline_cluster.run();
  hop_cluster.run();
  EXPECT_GT(hop_cluster.total_iterations(),
            baseline_cluster.total_iterations());
}

TEST(FailureInjection, DlionRebalancesAwayFromDyingWorker) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 120.0);
  spec.compute = {healthy_worker(), healthy_worker(), collapsing_worker()};
  spec.worker_options.batch_update_period_s = 5.0;
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  // After the collapse, the LBS controller starves the dying worker of
  // batch and shifts it to the healthy ones.
  const double dying_lbs = cluster.worker(2).lbs_trace().last();
  const double healthy_lbs = cluster.worker(0).lbs_trace().last();
  EXPECT_GT(healthy_lbs, 4 * dying_lbs);
}

TEST(FailureInjection, StarvedLinkDoesNotWedgeDlion) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 90.0);
  spec.compute = {healthy_worker(), healthy_worker(), healthy_worker()};
  // Worker 1's uplink collapses to 1 kbps at t = 30 s.
  spec.network_setup = [](sim::Network& net) {
    net.set_egress(1, sim::Schedule{{0.0, 1000.0}, {30.0, 0.001}});
  };
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  // Bounded staleness + budget adaptation keep everyone iterating; the
  // cluster still converges on what flows through the healthy links.
  EXPECT_GT(cluster.worker(0).iterations(), 50u);
  EXPECT_GT(cluster.mean_accuracy(), 0.8);
}

TEST(FailureInjection, JitteredComputeStaysDeterministic) {
  const data::TrainTest data = blobs_data();
  auto jittered = [] {
    sim::ComputeSpec spec;
    spec.units = sim::Schedule(4.0);
    spec.flops_per_unit = 1e5;
    spec.iteration_overhead_s = 0.05;
    spec.jitter_frac = 0.2;  // +/-20% noisy iteration times
    return spec;
  };
  ClusterSpec spec = spec_for("dlion", 60.0);
  spec.compute = {jittered(), jittered(), jittered()};
  Cluster a(spec, data.train, data.test);
  Cluster b(spec, data.train, data.test);
  a.run();
  b.run();
  EXPECT_EQ(a.total_iterations(), b.total_iterations());
  EXPECT_DOUBLE_EQ(a.mean_accuracy(), b.mean_accuracy());
}

}  // namespace
}  // namespace dlion::core

// Protocol-level Worker tests: drive a single Worker through the message
// fabric with a scripted peer and observe its responses - the request/
// response behaviour of the Fig. 10 modules in isolation.
#include <gtest/gtest.h>

#include "core/worker.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "systems/baseline.h"

namespace dlion::core {
namespace {

class WorkerMessagesTest : public ::testing::Test {
 protected:
  WorkerMessagesTest()
      : network_(engine_, 2),
        fabric_(network_, 1.0),
        data_(data::make_blobs(3, 16, 4, 128, 32)) {
    fabric_.attach(1, [this](std::size_t from, comm::MessagePtr msg) {
      peer_inbox_.emplace_back(from, std::move(msg));
    });
    common::Rng rng(1);
    nn::BuiltModel built = nn::make_logistic_regression(rng, 16, 4);
    WorkerOptions options;
    options.learning_rate = 0.1;
    options.weighted_update = false;  // plain Eq. 4 for exact-step checks
    options.dkt.period_iters = 4;
    options.dkt.mode = DktMode::kBest2All;
    options.dkt.lambda = 1.0;  // replace-merge for exact-value checks
    options.sync = SyncPolicy::asynchronous();
    options.eval_period_iters = 100;
    worker_ = std::make_unique<Worker>(
        0, engine_, fabric_, sim::ComputeResource(exp::cpu_cores(4),
                                                  built.profile, 7),
        std::move(built), data::shard(data_.train, 2, 0), &data_.test,
        std::make_unique<systems::BaselineStrategy>(), options, 11);
  }

  template <typename T>
  std::size_t count_received() const {
    std::size_t n = 0;
    for (const auto& [from, msg] : peer_inbox_) {
      if (std::holds_alternative<T>(*msg)) ++n;
    }
    return n;
  }

  sim::Engine engine_;
  sim::Network network_;
  comm::Fabric fabric_;
  data::TrainTest data_;
  std::unique_ptr<Worker> worker_;
  std::vector<std::pair<std::size_t, comm::MessagePtr>> peer_inbox_;
};

TEST_F(WorkerMessagesTest, GradientUpdateMovesWeights) {
  const nn::Snapshot before = worker_->model().weights();
  comm::GradientUpdate update;
  update.from = 1;
  update.iteration = 0;
  update.lbs = 32;
  comm::VariableGrad vg;
  vg.var_index = 0;
  vg.dense_size =
      static_cast<std::uint32_t>(worker_->model().variables()[0]->size());
  vg.values = std::vector<float>(vg.dense_size, 1.0f);
  update.vars.push_back(std::move(vg));
  fabric_.send(1, 0, update);
  engine_.run();
  const nn::Snapshot after = worker_->model().weights();
  // w -= eta/n * db * 1 with eta=0.1, n=2, db=1 (fixed LBS matches).
  EXPECT_NEAR(after.values[0][0], before.values[0][0] - 0.05f, 1e-5);
}

TEST_F(WorkerMessagesTest, DktRequestAnsweredWithWeights) {
  fabric_.send(1, 0, comm::DktRequest{1, 5});
  engine_.run();
  ASSERT_EQ(count_received<comm::WeightSnapshot>(), 1u);
  for (const auto& [from, msg] : peer_inbox_) {
    if (const auto* snap = std::get_if<comm::WeightSnapshot>(msg.get())) {
      EXPECT_EQ(snap->from, 0u);
      EXPECT_EQ(snap->weights.parts.size(),
                worker_->model().num_variables());
    }
  }
}

TEST_F(WorkerMessagesTest, WeightSnapshotMergesIntoModel) {
  comm::WeightSnapshot snap;
  snap.from = 1;
  snap.loss = 0.01;
  for (const auto& var : worker_->model().variables()) {
    snap.weights.parts.emplace_back(std::vector<float>(var->size(), 2.0f));
  }
  fabric_.send(1, 0, snap);
  engine_.run();
  // lambda = 1: the snapshot replaces the local weights.
  const nn::Snapshot after = worker_->model().weights();
  for (const auto& t : after.values) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_FLOAT_EQ(t[i], 2.0f);
    }
  }
}

TEST_F(WorkerMessagesTest, TrainingBroadcastsGradientsAndDkt) {
  worker_->start(/*until=*/40.0);
  engine_.run_until(40.0);
  EXPECT_GT(worker_->iterations(), 4u);
  EXPECT_GT(count_received<comm::GradientUpdate>(), 4u);
  // DKT boundary every 4 iterations: loss reports must have been shared.
  EXPECT_GE(count_received<comm::LossReport>(), 1u);
}

TEST_F(WorkerMessagesTest, RcpReportRebalancesLbs) {
  // Enable dynamic batching behaviour through a fresh worker.
  common::Rng rng(2);
  nn::BuiltModel built = nn::make_logistic_regression(rng, 16, 4);
  WorkerOptions options;
  options.dynamic_batching = true;
  options.gbs.initial_gbs = 64;
  options.gbs.dataset_size = 128;
  options.sync = SyncPolicy::asynchronous();
  Worker dyn(0, engine_, fabric_,
             sim::ComputeResource(exp::cpu_cores(4), built.profile, 8),
             std::move(built), data::shard(data_.train, 2, 0), &data_.test,
             std::make_unique<systems::BaselineStrategy>(), options, 12);
  dyn.start(1.0);
  engine_.run_until(0.5);
  const std::size_t before = dyn.current_lbs();
  // A peer reporting enormous compute power should shrink our share.
  fabric_.send(1, 0, comm::RcpReport{1, 1e6});
  engine_.run_until(1.0);
  EXPECT_LT(dyn.current_lbs(), before);
}

}  // namespace
}  // namespace dlion::core

// Integration tests: full clusters of workers training real models over the
// simulated fabric, exercising every module of Fig. 10 together.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "exp/environments.h"
#include "core/link_prioritizer.h"
#include "data/synthetic.h"
#include "systems/registry.h"

namespace dlion::core {
namespace {

data::TrainTest blobs_data() {
  // Matches the "logreg" zoo profile: 16 features, 4 classes.
  return data::make_blobs(11, 16, 4, 2048, 512);
}

ClusterSpec base_spec(const std::string& system_name, std::size_t n_workers,
                      double duration) {
  const systems::SystemSpec system = systems::make_system(system_name);
  ClusterSpec spec;
  spec.model = "logreg";
  spec.seed = 5;
  spec.duration_s = duration;
  for (std::size_t i = 0; i < n_workers; ++i) {
    spec.compute.push_back(exp::cpu_cores(4));
  }
  spec.strategy_factory = system.strategy_factory;
  WorkerOptions options;
  options.learning_rate = 0.4;
  options.eval_period_iters = 10;
  options.gbs.initial_gbs = 16 * n_workers;
  options.fixed_lbs = 16;
  options.dkt.period_iters = 25;
  system.configure(options);
  spec.worker_options = options;
  return spec;
}

class SystemConvergenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SystemConvergenceTest, TrainsBlobsAboveNinetyPercent) {
  const data::TrainTest data = blobs_data();
  Cluster cluster(base_spec(GetParam(), 4, 120.0), data.train, data.test);
  cluster.run();
  EXPECT_GT(cluster.mean_accuracy(), 0.9)
      << "system " << GetParam() << " failed to converge";
  EXPECT_GT(cluster.total_iterations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SystemConvergenceTest,
                         ::testing::Values("dlion", "baseline", "hop", "gaia",
                                           "ako", "maxn", "dlion-no-wu",
                                           "dlion-no-dbwu"));

TEST(Cluster, DeterministicAcrossRuns) {
  const data::TrainTest data = blobs_data();
  Cluster a(base_spec("dlion", 3, 60.0), data.train, data.test);
  Cluster b(base_spec("dlion", 3, 60.0), data.train, data.test);
  a.run();
  b.run();
  const auto pa = a.mean_accuracy_trace().points();
  const auto pb = b.mean_accuracy_trace().points();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i].time, pb[i].time);
    EXPECT_DOUBLE_EQ(pa[i].value, pb[i].value);
  }
}

TEST(Cluster, DifferentSeedsDiffer) {
  const data::TrainTest data = blobs_data();
  ClusterSpec s1 = base_spec("dlion", 3, 60.0);
  ClusterSpec s2 = base_spec("dlion", 3, 60.0);
  s2.seed = 99;
  Cluster a(s1, data.train, data.test);
  Cluster b(s2, data.train, data.test);
  a.run();
  b.run();
  EXPECT_NE(a.total_iterations(), 0u);
  // Different seeds sample different minibatches, so the early loss
  // trajectories almost surely differ (final accuracy may saturate).
  const auto& la = a.worker(0).loss_trace().points();
  const auto& lb = b.worker(0).loss_trace().points();
  ASSERT_FALSE(la.empty());
  ASSERT_FALSE(lb.empty());
  bool any_diff = la.size() != lb.size();
  for (std::size_t i = 0; !any_diff && i < std::min(la.size(), lb.size());
       ++i) {
    any_diff = la[i].value != lb[i].value;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Cluster, TracesArePopulated) {
  const data::TrainTest data = blobs_data();
  Cluster cluster(base_spec("dlion", 3, 60.0), data.train, data.test);
  cluster.run();
  for (std::size_t w = 0; w < cluster.size(); ++w) {
    EXPECT_FALSE(cluster.worker(w).accuracy_trace().empty());
    EXPECT_FALSE(cluster.worker(w).loss_trace().empty());
    EXPECT_FALSE(cluster.worker(w).lbs_trace().empty());
    EXPECT_GT(cluster.worker(w).iterations(), 0u);
    // DLion's per-link prioritizer records the chosen equivalent N and the
    // per-peer partial gradient sizes.
    EXPECT_FALSE(cluster.worker(w).chosen_n_trace().empty());
    for (std::size_t peer = 0; peer < cluster.size(); ++peer) {
      if (peer != w) {
        EXPECT_FALSE(cluster.worker(w).entries_trace(peer).empty());
      }
    }
  }
  EXPECT_GT(cluster.total_bytes_sent(), 0u);
}

TEST(Cluster, LbsControllerTracksComputeRatio) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = base_spec("dlion", 3, 80.0);
  // Worker 0 has 4x the cores of worker 2.
  spec.compute.clear();
  spec.compute.push_back(exp::cpu_cores(16));
  spec.compute.push_back(exp::cpu_cores(8));
  spec.compute.push_back(exp::cpu_cores(4));
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  const double lbs0 = cluster.worker(0).lbs_trace().last();
  const double lbs2 = cluster.worker(2).lbs_trace().last();
  EXPECT_GT(lbs0, lbs2);
  // RCP for logreg is overhead-dominated, so the ratio is attenuated well
  // below 4x; it must still clearly favour the stronger worker.
  EXPECT_GT(lbs0 / lbs2, 1.2);
}

TEST(Cluster, FixedLbsWithoutDynamicBatching) {
  const data::TrainTest data = blobs_data();
  Cluster cluster(base_spec("baseline", 3, 40.0), data.train, data.test);
  cluster.run();
  for (std::size_t w = 0; w < cluster.size(); ++w) {
    EXPECT_EQ(cluster.worker(w).current_lbs(), 16u);
  }
}

TEST(Cluster, GbsControllerGrowsUnderDlion) {
  const data::TrainTest data = blobs_data();
  Cluster cluster(base_spec("dlion", 3, 120.0), data.train, data.test);
  cluster.run();
  const auto& gbs = cluster.worker(0).gbs_trace();
  ASSERT_FALSE(gbs.empty());
  EXPECT_GT(gbs.last(), gbs.points().front().value);
}

TEST(Cluster, SynchronousWorkersStayClose) {
  const data::TrainTest data = blobs_data();
  Cluster cluster(base_spec("baseline", 3, 60.0), data.train, data.test);
  cluster.run();
  std::uint64_t min_it = UINT64_MAX, max_it = 0;
  for (std::size_t w = 0; w < cluster.size(); ++w) {
    min_it = std::min(min_it, cluster.worker(w).iterations());
    max_it = std::max(max_it, cluster.worker(w).iterations());
  }
  EXPECT_LE(max_it - min_it, 2u);
}

TEST(Cluster, AsyncAllowsDivergentProgressUnderHeteroCompute) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = base_spec("ako", 3, 60.0);
  // logreg math is overhead-dominated under the CPU calibration, so build
  // explicit compute specs where the straggler's iterations take ~4x longer.
  spec.compute.clear();
  sim::ComputeSpec fast;
  fast.units = sim::Schedule(1.0);
  fast.flops_per_unit = 1e5;
  fast.iteration_overhead_s = 0.05;
  sim::ComputeSpec slow = fast;
  slow.flops_per_unit = 1e4;
  spec.compute = {fast, fast, slow};
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  EXPECT_GT(cluster.worker(0).iterations(),
            cluster.worker(2).iterations() + 5);
}

TEST(Cluster, RunUntilIsIncremental) {
  const data::TrainTest data = blobs_data();
  Cluster cluster(base_spec("dlion", 3, 60.0), data.train, data.test);
  cluster.run_until(30.0);
  const std::uint64_t mid = cluster.total_iterations();
  EXPECT_GT(mid, 0u);
  cluster.run();
  EXPECT_GT(cluster.total_iterations(), mid);
}

TEST(Cluster, ByteScaleMatchesProfile) {
  const data::TrainTest data = blobs_data();
  Cluster cluster(base_spec("dlion", 2, 10.0), data.train, data.test);
  // logreg nominal bytes = 4 * 16 * 4 = 256; actual = 68 params * 4 = 272.
  EXPECT_NEAR(cluster.byte_scale(), 256.0 / 272.0, 1e-9);
}

TEST(Cluster, InvalidSpecThrows) {
  const data::TrainTest data = blobs_data();
  ClusterSpec empty;
  EXPECT_THROW(Cluster(empty, data.train, data.test), std::invalid_argument);
  ClusterSpec no_factory = base_spec("dlion", 2, 10.0);
  no_factory.strategy_factory = nullptr;
  EXPECT_THROW(Cluster(no_factory, data.train, data.test),
               std::invalid_argument);
}

TEST(Cluster, GbsScheduleOverrideIsHonoured) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = base_spec("dlion", 3, 60.0);
  spec.worker_options.gbs_schedule = [](std::uint64_t, double now) {
    return now < 30.0 ? std::size_t{48} : std::size_t{96};
  };
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  const auto& gbs = cluster.worker(1).gbs_trace();
  EXPECT_DOUBLE_EQ(gbs.value_at(20.0), 48.0);
  EXPECT_DOUBLE_EQ(gbs.last(), 96.0);
}

}  // namespace
}  // namespace dlion::core

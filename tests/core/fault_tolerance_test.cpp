// Fault-tolerance integration tests: worker crashes, network partitions,
// and lossy links injected into full training clusters, exercising the
// heartbeat failure detector, wait-set degradation, checkpoint restore,
// state catch-up, and the deterministic-replay guarantee.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "systems/registry.h"

namespace dlion::core {
namespace {

data::TrainTest blobs_data() { return data::make_blobs(31, 16, 4, 2048, 512); }

ClusterSpec spec_for(const std::string& system_name, std::size_t n_workers,
                     double duration) {
  const systems::SystemSpec system = systems::make_system(system_name);
  ClusterSpec spec;
  spec.model = "logreg";
  spec.seed = 13;
  spec.duration_s = duration;
  for (std::size_t i = 0; i < n_workers; ++i) {
    spec.compute.push_back(exp::cpu_cores(4));
  }
  spec.strategy_factory = system.strategy_factory;
  WorkerOptions options;
  options.learning_rate = 0.4;
  options.eval_period_iters = 10;
  options.gbs.initial_gbs = 16 * n_workers;
  options.fixed_lbs = 16;
  options.dkt.period_iters = 25;
  system.configure(options);
  spec.worker_options = options;
  return spec;
}

TEST(FaultTolerance, CrashTwoOfSixPlusPartitionKeepsTrainingWithoutDeadlock) {
  // The acceptance scenario: two of six workers crash in staggered windows
  // and the cluster partitions 3|3, under bounded-staleness sync. With the
  // fault-tolerance layer on, suspicion shrinks the wait-set and training
  // rides through; the undefended twin stalls whenever the staleness budget
  // runs out against a dead or unreachable peer.
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 6, 120.0);  // bounded(5, 0)
  spec.faults.crash(4, 30.0, 60.0)
      .crash(5, 40.0, 70.0)
      .partition({0, 1, 2}, {3, 4, 5}, 80.0, 95.0);

  ClusterSpec undefended = spec;
  undefended.auto_fault_tolerance = false;

  Cluster ft_cluster(spec, data.train, data.test);
  Cluster raw_cluster(undefended, data.train, data.test);
  ft_cluster.run();   // completing at all proves no deadlock
  raw_cluster.run();

  // Healthy workers kept iterating through both crash windows and the
  // partition.
  for (std::size_t w : {0u, 1u, 2u, 3u}) {
    EXPECT_GT(ft_cluster.worker(w).iterations(), 100u) << "worker " << w;
    EXPECT_FALSE(ft_cluster.worker(w).crashed());
  }
  // Both crashed workers completed a crash->recover cycle.
  EXPECT_EQ(ft_cluster.worker(4).crash_count(), 1u);
  EXPECT_EQ(ft_cluster.worker(4).recover_count(), 1u);
  EXPECT_EQ(ft_cluster.worker(5).recover_count(), 1u);
  EXPECT_FALSE(ft_cluster.worker(4).crashed());
  // Graceful degradation beats stalling on dead peers.
  EXPECT_GT(ft_cluster.total_iterations(), raw_cluster.total_iterations());
  // The cluster still learns the task.
  EXPECT_GT(ft_cluster.mean_accuracy(), 0.8);
}

TEST(FaultTolerance, CrashedWorkerRestoresCheckpointAndCatchesUp) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 4, 120.0);
  spec.faults.crash(3, 30.0, 50.0);
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  const Worker& crashed = cluster.worker(3);
  EXPECT_EQ(crashed.recover_count(), 1u);
  // Checkpoint module ran (default period 20 s over a 120 s run).
  EXPECT_GE(crashed.checkpoints_taken(), 3u);
  // State catch-up: after restoring a checkpoint from <= t=30 the worker
  // adopts a live peer's iteration, so it finishes close to the healthy
  // workers instead of lagging by the lost window.
  EXPECT_GT(crashed.iterations(), cluster.worker(0).iterations() / 2);
  EXPECT_GT(cluster.mean_accuracy(), 0.8);
}

TEST(FaultTolerance, SuspicionRisesDuringCrashAndClearsAfterRecovery) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 3, 90.0);
  spec.faults.crash(2, 20.0, 50.0);
  Cluster cluster(spec, data.train, data.test);
  // Mid-crash, past the suspicion timeout (default 6 s): worker 0 must have
  // suspected worker 2.
  cluster.run_until(40.0);
  EXPECT_TRUE(cluster.worker(2).crashed());
  EXPECT_TRUE(cluster.worker(0).suspected_peers()[2]);
  EXPECT_EQ(cluster.worker(0).live_worker_count(), 2u);
  // After recovery plus a few heartbeats the suspicion has cleared.
  cluster.run();
  EXPECT_FALSE(cluster.worker(2).crashed());
  EXPECT_FALSE(cluster.worker(0).suspected_peers()[2]);
  EXPECT_EQ(cluster.worker(0).live_worker_count(), 3u);
}

TEST(FaultTolerance, LossyLinksDegradeButDoNotStopTraining) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 3, 90.0);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) spec.faults.lossy(i, j, 0.2, 10.0, 60.0);
    }
  }
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  ASSERT_NE(cluster.fault_injector(), nullptr);
  EXPECT_GT(cluster.fault_injector()->loss_drops(), 0u);
  EXPECT_GT(cluster.network().total_stats().messages_dropped, 0u);
  EXPECT_GT(cluster.mean_accuracy(), 0.8);
}

TEST(FaultTolerance, DeterministicReplayUnderFaultSchedule) {
  // The determinism guarantee extends to faulty runs: the same spec (same
  // seed, same fault schedule incl. probabilistic loss) replays to
  // bit-identical traces and statistics.
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 4, 90.0);
  spec.faults.crash(3, 20.0, 40.0).partition({0, 1}, {2, 3}, 50.0, 60.0);
  spec.faults.lossy(0, 1, 0.3, 10.0, 70.0);
  Cluster a(spec, data.train, data.test);
  Cluster b(spec, data.train, data.test);
  a.run();
  b.run();
  EXPECT_EQ(a.total_iterations(), b.total_iterations());
  EXPECT_EQ(a.network().total_stats().messages_dropped,
            b.network().total_stats().messages_dropped);
  EXPECT_EQ(a.fabric().dead_letters(), b.fabric().dead_letters());
  EXPECT_EQ(a.fabric().reliable_retries(), b.fabric().reliable_retries());
  const auto pa = a.mean_accuracy_trace().points();
  const auto pb = b.mean_accuracy_trace().points();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i].time, pb[i].time);
    EXPECT_DOUBLE_EQ(pa[i].value, pb[i].value);
  }
  // Per-worker loss traces too - not just the aggregated curve.
  for (std::size_t w = 0; w < a.size(); ++w) {
    const auto la = a.worker(w).loss_trace().points();
    const auto lb = b.worker(w).loss_trace().points();
    ASSERT_EQ(la.size(), lb.size()) << "worker " << w;
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_DOUBLE_EQ(la[i].time, lb[i].time);
      EXPECT_DOUBLE_EQ(la[i].value, lb[i].value);
    }
  }
}

TEST(FaultTolerance, EmptyScheduleAttachesNothingAndTouchesNoFaultState) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 3, 60.0);
  ASSERT_TRUE(spec.faults.empty());
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  EXPECT_EQ(cluster.fault_injector(), nullptr);
  EXPECT_EQ(cluster.network().total_stats().messages_dropped, 0u);
  EXPECT_EQ(cluster.fabric().dead_letters(), 0u);
  EXPECT_EQ(cluster.fabric().reliable_retries(), 0u);
  for (std::size_t w = 0; w < cluster.size(); ++w) {
    EXPECT_EQ(cluster.worker(w).crash_count(), 0u);
    EXPECT_EQ(cluster.worker(w).checkpoints_taken(), 0u);
    EXPECT_EQ(cluster.worker(w).live_worker_count(), 3u);
  }
}

TEST(FaultTolerance, ManualFaultToleranceWithoutFaultsIsAllowed) {
  // The layer can run on a healthy cluster (heartbeats + checkpoints only);
  // it must not disturb convergence.
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for("dlion", 3, 60.0);
  spec.worker_options.fault_tolerance.enabled = true;
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  EXPECT_GT(cluster.worker(0).checkpoints_taken(), 0u);
  EXPECT_EQ(cluster.worker(0).crash_count(), 0u);
  EXPECT_GT(cluster.mean_accuracy(), 0.8);
}

}  // namespace
}  // namespace dlion::core

// Elastic-membership integration tests: scripted joins and leaves over a
// training cluster, exercising roster-epoch propagation, multi-peer
// bootstrap weight transfer, GBS/LBS renormalization over the live set,
// and the determinism contract (same seed + churn schedule => byte-
// identical telemetry and final weights at any thread count, with or
// without an observer attached). Unit tests for the pure pieces -
// plan_bootstrap, allocate_lbs_live, RosterView::adopt, Autoscaler::decide
// - pin the protocol-level invariants the integration runs rely on.
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/autoscaler.h"
#include "core/cluster.h"
#include "core/lbs_controller.h"
#include "core/roster.h"
#include "data/synthetic.h"
#include "exp/environments.h"
#include "obs/obs.h"
#include "systems/registry.h"

namespace dlion::core {
namespace {

data::TrainTest blobs_data() { return data::make_blobs(31, 16, 4, 2048, 512); }

ClusterSpec spec_for(std::size_t capacity, double duration) {
  const systems::SystemSpec system = systems::make_system("dlion");
  ClusterSpec spec;
  spec.model = "logreg";
  spec.seed = 13;
  spec.duration_s = duration;
  for (std::size_t i = 0; i < capacity; ++i) {
    spec.compute.push_back(exp::cpu_cores(4));
  }
  spec.strategy_factory = system.strategy_factory;
  WorkerOptions options;
  options.learning_rate = 0.4;
  options.eval_period_iters = 10;
  options.gbs.initial_gbs = 16 * capacity;
  options.fixed_lbs = 16;
  options.dkt.period_iters = 25;
  system.configure(options);
  spec.worker_options = options;
  return spec;
}

/// A churn schedule shared by the determinism tests: 6 slots, 4 live at
/// t=0, two staggered joins, one leave.
ClusterSpec churn_spec(double duration) {
  ClusterSpec spec = spec_for(6, duration);
  ElasticSpec elastic;
  elastic.initial_workers = 4;
  elastic.membership.schedule.join(4, 20.0).join(5, 30.0).leave(2, 50.0);
  spec.elastic = std::move(elastic);
  return spec;
}

/// Everything a churn run produces that the determinism contract covers:
/// per-worker progress, the exact final weights, the accuracy curve,
/// fabric tallies, membership stats, and the metrics-registry export.
struct ChurnOut {
  std::vector<std::uint64_t> iterations;
  std::vector<std::vector<float>> weights;  // per worker, flattened
  std::vector<sim::TracePoint> curve;
  std::uint64_t total_iterations = 0;
  std::uint64_t dead_letters = 0;
  std::uint64_t stale_rejected = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t epoch = 0;
  std::size_t final_members = 0;
  std::string metrics_json;
};

ChurnOut run_churn(obs::Observability* o) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = churn_spec(90.0);
  spec.obs = o;
  Cluster cluster(spec, data.train, data.test);
  cluster.run();
  ChurnOut out;
  for (std::size_t w = 0; w < cluster.size(); ++w) {
    out.iterations.push_back(cluster.worker(w).iterations());
    const nn::Snapshot snap = cluster.worker(w).model().weights();
    std::vector<float> flat;
    for (const tensor::Tensor& t : snap.values) {
      flat.insert(flat.end(), t.data(), t.data() + t.size());
    }
    out.weights.push_back(std::move(flat));
  }
  out.curve = cluster.mean_accuracy_trace().points();
  out.total_iterations = cluster.total_iterations();
  out.dead_letters = cluster.fabric().dead_letters();
  out.stale_rejected = cluster.fabric().stale_epoch_rejected();
  const ElasticStats stats = cluster.membership()->stats();
  out.joins = stats.joins;
  out.leaves = stats.leaves;
  out.epoch = stats.epoch;
  out.final_members = stats.final_members;
  if (o != nullptr) out.metrics_json = o->metrics().to_json();
  return out;
}

void expect_identical(const ChurnOut& a, const ChurnOut& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t w = 0; w < a.weights.size(); ++w) {
    // Exact float equality: the contract is bit-identical, not close.
    EXPECT_EQ(a.weights[w], b.weights[w]) << "worker " << w;
  }
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].time, b.curve[i].time);
    EXPECT_DOUBLE_EQ(a.curve[i].value, b.curve[i].value);
  }
  EXPECT_EQ(a.total_iterations, b.total_iterations);
  EXPECT_EQ(a.dead_letters, b.dead_letters);
  EXPECT_EQ(a.stale_rejected, b.stale_rejected);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.final_members, b.final_members);
}

TEST(ElasticMembership, ChurnIsDeterministicAcrossThreadCounts) {
  // Same seed + same churn schedule => byte-identical telemetry and final
  // weights whether the thread pool runs 1 or 4 workers.
  common::ThreadPool::reset_global_for_testing(1);
  obs::Observability obs1;
  const ChurnOut single = run_churn(&obs1);

  common::ThreadPool::reset_global_for_testing(4);
  obs::Observability obs4;
  const ChurnOut pooled = run_churn(&obs4);

  common::ThreadPool::reset_global_for_testing(0);  // restore default

  expect_identical(single, pooled);
  EXPECT_EQ(single.metrics_json, pooled.metrics_json);
  EXPECT_EQ(single.joins, 2u);
  EXPECT_EQ(single.leaves, 1u);
}

TEST(ElasticMembership, ObserverDoesNotPerturbChurnRuns) {
  obs::Observability o;
  const ChurnOut on = run_churn(&o);
  const ChurnOut off = run_churn(nullptr);
  expect_identical(on, off);
}

TEST(ElasticMembership, ChurnReplaysBitIdentically) {
  const ChurnOut a = run_churn(nullptr);
  const ChurnOut b = run_churn(nullptr);
  expect_identical(a, b);
}

TEST(ElasticMembership, JoinerBootstrapsFromMultiplePeers) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for(5, 90.0);
  ElasticSpec elastic;
  elastic.initial_workers = 3;
  elastic.membership.schedule.join(3, 20.0).join(4, 35.0);
  spec.elastic = std::move(elastic);
  Cluster cluster(spec, data.train, data.test);
  cluster.run();

  for (std::size_t joiner : {3u, 4u}) {
    const Worker& w = cluster.worker(joiner);
    EXPECT_FALSE(w.dormant()) << "worker " << joiner;
    EXPECT_FALSE(w.bootstrapping()) << "worker " << joiner;
    EXPECT_GE(w.bootstrap_donor_count(), 2u) << "worker " << joiner;
    EXPECT_GT(w.bootstrap_bytes(), 0u) << "worker " << joiner;
    EXPECT_GE(w.bootstrap_complete_time(), 20.0) << "worker " << joiner;
    EXPECT_GT(w.iterations(), 0u) << "worker " << joiner;
  }

  const ElasticStats stats = cluster.membership()->stats();
  EXPECT_EQ(stats.joins, 2u);
  EXPECT_EQ(stats.final_members, 5u);
  ASSERT_EQ(stats.join_log.size(), 2u);
  for (const JoinRecord& rec : stats.join_log) {
    EXPECT_GE(rec.donors, 2u) << "worker " << rec.worker;
    EXPECT_GT(rec.bootstrap_bytes, 0u) << "worker " << rec.worker;
    EXPECT_GE(rec.completed, rec.requested) << "worker " << rec.worker;
  }

  // Every live worker converged on the controller's roster.
  for (std::size_t w = 0; w < cluster.size(); ++w) {
    EXPECT_EQ(cluster.worker(w).roster().epoch(),
              cluster.membership()->epoch())
        << "worker " << w;
    EXPECT_EQ(cluster.worker(w).roster().member_count(), 5u) << "worker " << w;
  }
}

TEST(ElasticMembership, ScaleInWithoutAccuracyCliff) {
  const data::TrainTest data = blobs_data();
  ClusterSpec spec = spec_for(8, 120.0);
  ElasticSpec elastic;
  elastic.initial_workers = 8;
  elastic.membership.schedule.scale_in(4, 4, 50.0, 2.0);
  spec.elastic = std::move(elastic);
  Cluster cluster(spec, data.train, data.test);
  cluster.run();

  const ElasticStats stats = cluster.membership()->stats();
  EXPECT_EQ(stats.leaves, 4u);
  EXPECT_EQ(stats.final_members, 4u);
  for (std::size_t w : {4u, 5u, 6u, 7u}) {
    EXPECT_TRUE(cluster.worker(w).dormant()) << "worker " << w;
  }
  // Survivors keep a consistent, renormalized roster...
  for (std::size_t w : {0u, 1u, 2u, 3u}) {
    EXPECT_FALSE(cluster.worker(w).dormant()) << "worker " << w;
    EXPECT_EQ(cluster.worker(w).roster().member_count(), 4u) << "worker " << w;
    EXPECT_GT(cluster.worker(w).iterations(), 50u) << "worker " << w;
  }
  // ...and the halved cluster still learns the task (no accuracy cliff).
  EXPECT_GT(cluster.mean_accuracy(), 0.8);
}

TEST(ElasticMembership, DisabledElasticMatchesLegacyRunExactly) {
  // elastic = nullopt and elastic with every slot live from t=0 and no
  // schedule must produce bit-identical runs: the epoch stamps are
  // transport-level and the roster never changes.
  const data::TrainTest data = blobs_data();
  ClusterSpec legacy = spec_for(4, 60.0);
  ClusterSpec noop = legacy;
  noop.elastic = ElasticSpec{};  // all slots live, empty schedule

  Cluster a(legacy, data.train, data.test);
  Cluster b(noop, data.train, data.test);
  a.run();
  b.run();

  EXPECT_EQ(a.membership(), nullptr);
  ASSERT_NE(b.membership(), nullptr);
  EXPECT_EQ(b.membership()->stats().epoch, 0u);
  EXPECT_EQ(a.total_iterations(), b.total_iterations());
  for (std::size_t w = 0; w < a.size(); ++w) {
    EXPECT_EQ(a.worker(w).iterations(), b.worker(w).iterations());
    const nn::Snapshot sa = a.worker(w).model().weights();
    const nn::Snapshot sb = b.worker(w).model().weights();
    ASSERT_EQ(sa.values.size(), sb.values.size());
    for (std::size_t t = 0; t < sa.values.size(); ++t) {
      ASSERT_EQ(sa.values[t].size(), sb.values[t].size());
      for (std::size_t i = 0; i < sa.values[t].size(); ++i) {
        EXPECT_EQ(sa.values[t].data()[i], sb.values[t].data()[i]);
      }
    }
  }
}

// --- Unit tests for the pure protocol pieces. ----------------------------

TEST(PlanBootstrap, SplitsVariablesDisjointlyAcrossDonors) {
  const std::vector<std::size_t> donors = {0, 2, 5};
  const auto ranges = plan_bootstrap(7, donors, 2);
  ASSERT_EQ(ranges.size(), 2u);  // fanout caps the donor count
  EXPECT_EQ(ranges[0].donor, 0u);
  EXPECT_EQ(ranges[1].donor, 2u);
  // Contiguous, disjoint, covering [0, 7), remainder on the first range.
  EXPECT_EQ(ranges[0].first_var, 0u);
  EXPECT_EQ(ranges[0].var_count, 4u);
  EXPECT_EQ(ranges[1].first_var, 4u);
  EXPECT_EQ(ranges[1].var_count, 3u);
}

TEST(PlanBootstrap, UsesAtLeastTwoDonorsWheneverPossible) {
  for (std::size_t num_vars = 2; num_vars <= 9; ++num_vars) {
    const auto ranges = plan_bootstrap(num_vars, {1, 3, 4}, 3);
    EXPECT_GE(ranges.size(), 2u) << num_vars << " vars";
    std::uint32_t next = 0;
    std::size_t total = 0;
    for (const BootstrapRange& r : ranges) {
      EXPECT_EQ(r.first_var, next);
      EXPECT_GT(r.var_count, 0u);
      next += r.var_count;
      total += r.var_count;
    }
    EXPECT_EQ(total, num_vars);
  }
}

TEST(PlanBootstrap, DegeneratesGracefully) {
  // One variable: a single range even with many donors.
  EXPECT_EQ(plan_bootstrap(1, {0, 1, 2}, 3).size(), 1u);
  // One donor: the whole model from that donor.
  const auto solo = plan_bootstrap(5, {7}, 2);
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo[0].donor, 7u);
  EXPECT_EQ(solo[0].var_count, 5u);
  // Zero variables: nothing to transfer.
  EXPECT_TRUE(plan_bootstrap(0, {0, 1}, 2).empty());
  // No donors: a protocol error.
  EXPECT_THROW(plan_bootstrap(5, {}, 2), std::invalid_argument);
}

TEST(AllocateLbsLive, RenormalizesGbsOverLiveSetExactly) {
  const std::vector<double> rcps = {1.0, 2.0, 3.0, 4.0};
  const std::vector<bool> live = {true, false, true, true};
  const auto lbs = allocate_lbs_live(64, rcps, live);
  ASSERT_EQ(lbs.size(), 4u);
  EXPECT_EQ(lbs[1], 0u);  // dormant slot holds zero batch
  EXPECT_EQ(std::accumulate(lbs.begin(), lbs.end(), std::size_t{0}), 64u);
  // Live shares follow the RCP ratios over the live set only.
  EXPECT_GT(lbs[3], lbs[2]);
  EXPECT_GT(lbs[2], lbs[0]);
}

TEST(AllocateLbsLive, AllLiveMatchesPlainAllocation) {
  const std::vector<double> rcps = {3.0, 1.0, 2.0};
  const std::vector<bool> live(3, true);
  EXPECT_EQ(allocate_lbs_live(48, rcps, live), allocate_lbs(48, rcps));
}

TEST(AllocateLbsLive, RejectsEmptyLiveSetAndSizeMismatch) {
  const std::vector<double> rcps = {1.0, 1.0};
  EXPECT_THROW(allocate_lbs_live(16, rcps, {false, false}),
               std::invalid_argument);
  EXPECT_THROW(allocate_lbs_live(16, rcps, {true}), std::invalid_argument);
}

TEST(RosterViewTest, AdoptsOnlyStrictlyNewerEpochs) {
  RosterView view(4);  // legacy all-member roster at epoch 0
  EXPECT_EQ(view.member_count(), 4u);

  // Stale and duplicate epochs are ignored deterministically.
  EXPECT_FALSE(view.adopt(0, {true, false, true, false}));
  EXPECT_EQ(view.member_count(), 4u);

  EXPECT_TRUE(view.adopt(3, {true, false, true, false}));
  EXPECT_EQ(view.epoch(), 3u);
  EXPECT_EQ(view.member_count(), 2u);
  EXPECT_EQ(view.member_ids(), (std::vector<std::size_t>{0, 2}));

  // An older update arriving late (reordered broadcast) must not win.
  EXPECT_FALSE(view.adopt(2, {true, true, true, true}));
  EXPECT_EQ(view.epoch(), 3u);
  EXPECT_EQ(view.member_count(), 2u);
}

TEST(AutoscalerPolicy, DecisionsFollowBottleneckAttribution) {
  AutoscalerConfig config;
  config.enabled = true;
  config.min_members = 2;
  const Autoscaler scaler(config);

  AutoscalerSignals healthy;
  healthy.members = 4;
  healthy.capacity = 8;
  healthy.mean_interval_s = 1.0;
  healthy.max_interval_s = 1.2;
  EXPECT_EQ(scaler.decide(healthy), ScaleDecision::kHold);

  // Straggler-dominated: add compute.
  AutoscalerSignals straggling = healthy;
  straggling.max_interval_s = 2.0;
  EXPECT_EQ(scaler.decide(straggling), ScaleDecision::kScaleOut);

  // Stalled: add compute.
  AutoscalerSignals stalled = healthy;
  stalled.seconds_since_progress = 60.0;
  EXPECT_EQ(scaler.decide(stalled), ScaleDecision::kScaleOut);

  // Network-bound: shed senders, and it dominates a simultaneous straggler.
  AutoscalerSignals saturated = straggling;
  saturated.max_backlog_bytes = 64.0 * 1024 * 1024;
  EXPECT_EQ(scaler.decide(saturated), ScaleDecision::kScaleIn);
  AutoscalerSignals dead_letters = healthy;
  dead_letters.dead_letter_delta = 100;
  EXPECT_EQ(scaler.decide(dead_letters), ScaleDecision::kScaleIn);

  // Bounds: never below min_members, never above capacity.
  AutoscalerSignals at_floor = dead_letters;
  at_floor.members = 2;
  EXPECT_EQ(scaler.decide(at_floor), ScaleDecision::kHold);
  AutoscalerSignals at_capacity = straggling;
  at_capacity.members = 8;
  EXPECT_EQ(scaler.decide(at_capacity), ScaleDecision::kHold);

  // Disabled policy always holds.
  EXPECT_EQ(Autoscaler(AutoscalerConfig{}).decide(straggling),
            ScaleDecision::kHold);
}

}  // namespace
}  // namespace dlion::core

#include "core/gbs_controller.h"

#include <gtest/gtest.h>

namespace dlion::core {
namespace {

GbsConfig small_config() {
  GbsConfig cfg;
  cfg.initial_gbs = 100;
  cfg.dataset_size = 10000;  // warm-up cap 100, speed-up cap 1000
  cfg.c_warmup = 50;
  cfg.c_speedup = 2.0;
  cfg.warmup_ticks = 3;
  return cfg;
}

TEST(GbsController, WarmupIsArithmetic) {
  GbsConfig cfg = small_config();
  cfg.dataset_size = 100000;  // warm-up cap 1000: no cap interference
  GbsController c(cfg);
  EXPECT_EQ(c.tick(), 150u);
  EXPECT_EQ(c.tick(), 200u);
  EXPECT_EQ(c.tick(), 250u);
}

TEST(GbsController, WarmupStopsAboveOnePercent) {
  GbsController c(small_config());  // warm-up cap = 100 = initial
  // initial 100 <= 100 so one increment happens, then 150 > 100 stops.
  EXPECT_EQ(c.tick(), 150u);
  EXPECT_EQ(c.tick(), 150u);
  EXPECT_EQ(c.tick(), 150u);
  EXPECT_TRUE(!c.in_warmup());
}

TEST(GbsController, SpeedupIsGeometric) {
  GbsConfig cfg = small_config();
  cfg.warmup_ticks = 0;  // straight to speed-up
  GbsController c(cfg);
  EXPECT_EQ(c.tick(), 200u);
  EXPECT_EQ(c.tick(), 400u);
  EXPECT_EQ(c.tick(), 800u);
}

TEST(GbsController, SpeedupStopsAboveTenPercent) {
  GbsConfig cfg = small_config();
  cfg.warmup_ticks = 0;
  GbsController c(cfg);
  for (int i = 0; i < 10; ++i) c.tick();
  // 100 -> 200 -> 400 -> 800 -> 1600 (> 1000) and stays.
  EXPECT_EQ(c.gbs(), 1600u);
  EXPECT_TRUE(c.saturated());
}

TEST(GbsController, DisabledNeverChanges) {
  GbsConfig cfg = small_config();
  cfg.enabled = false;
  GbsController c(cfg);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(c.tick(), 100u);
}

TEST(GbsController, PhaseIndicator) {
  GbsController c(small_config());
  EXPECT_TRUE(c.in_warmup());
  c.tick();
  c.tick();
  c.tick();
  EXPECT_FALSE(c.in_warmup());
}

TEST(GbsController, TickCountAdvances) {
  GbsController c(small_config());
  EXPECT_EQ(c.ticks(), 0u);
  c.tick();
  c.tick();
  EXPECT_EQ(c.ticks(), 2u);
}

TEST(GbsController, InvalidConfigThrows) {
  GbsConfig zero = small_config();
  zero.initial_gbs = 0;
  EXPECT_THROW(GbsController{zero}, std::invalid_argument);
  GbsConfig flat = small_config();
  flat.c_speedup = 1.0;
  EXPECT_THROW(GbsController{flat}, std::invalid_argument);
  GbsConfig nodata = small_config();
  nodata.dataset_size = 0;
  EXPECT_THROW(GbsController{nodata}, std::invalid_argument);
}

TEST(GbsController, PaperDefaultsTrajectory) {
  // Paper-style run: 60K dataset, initial GBS 192.
  GbsConfig cfg;
  cfg.dataset_size = 60000;  // warm-up cap 600, speed-up cap 6000
  GbsController c(cfg);
  std::size_t last = cfg.initial_gbs;
  for (int i = 0; i < 12; ++i) {
    const std::size_t g = c.tick();
    EXPECT_GE(g, last);  // monotone non-decreasing
    last = g;
  }
  EXPECT_GT(c.gbs(), 6000u);           // passed the 10% cap once
  EXPECT_LE(c.gbs(), 6000u * 2);       // but by at most one factor
}

}  // namespace
}  // namespace dlion::core

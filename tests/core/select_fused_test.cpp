// Tests for the fused selection paths: the single-pass select_max_n must
// match the obvious two-pass semantics exactly, and the magnitude-sharing
// *_mags variants must agree with their rescanning counterparts.

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/gradient_select.h"
#include "tensor/ops.h"

namespace dlion::core {
namespace {

std::vector<float> random_grad(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<float> g(n);
  for (auto& x : g) x = static_cast<float>(rng.normal(0.0, 0.5));
  return g;
}

/// Obviously-correct two-pass Max N used as the oracle for the fused pass.
comm::VariableGrad two_pass_max_n(std::span<const float> grad, double n) {
  comm::VariableGrad v;
  v.var_index = 0;
  v.dense_size = static_cast<std::uint32_t>(grad.size());
  const float mx = tensor::max_abs(grad);
  const double thr = max_n_threshold(n, mx);
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (std::fabs(grad[i]) >= thr) {
      indices.push_back(static_cast<std::uint32_t>(i));
      values.push_back(grad[i]);
    }
  }
  v.indices = indices;
  v.values = values;
  return v;
}

TEST(SelectMaxNFused, MatchesTwoPassOracle) {
  for (std::size_t size : {1u, 7u, 100u, 5000u}) {
    for (double n : {0.5, 1.0, 10.0, 50.0, 99.0}) {
      const auto grad = random_grad(size, size * 31 + 1);
      const auto fused = select_max_n(grad, 0, n);
      const auto oracle = two_pass_max_n(grad, n);
      ASSERT_EQ(oracle.indices, fused.indices) << "size=" << size
                                               << " n=" << n;
      ASSERT_EQ(oracle.values, fused.values) << "size=" << size << " n=" << n;
    }
  }
}

TEST(SelectMaxNFused, AscendingMagnitudesStressCompaction) {
  // Worst case for the running-max candidate buffer: every element raises
  // the max, so every element is a candidate when visited and almost all
  // are pruned by the end.
  std::vector<float> grad(4096);
  for (std::size_t i = 0; i < grad.size(); ++i) {
    grad[i] = static_cast<float>(i) * (i % 2 == 0 ? 1.0f : -1.0f);
  }
  const auto fused = select_max_n(grad, 0, 1.0);
  const auto oracle = two_pass_max_n(grad, 1.0);
  ASSERT_EQ(oracle.indices, fused.indices);
  ASSERT_EQ(oracle.values, fused.values);
}

TEST(SelectMaxNFused, AllZerosSelectsEverything) {
  std::vector<float> grad(17, 0.0f);
  const auto v = select_max_n(grad, 3, 1.0);
  EXPECT_EQ(17u, v.indices.size());
  EXPECT_EQ(3u, v.var_index);
}

TEST(Magnitudes, FusedPassMatchesMaxAbs) {
  const auto grad = random_grad(1234, 9);
  std::vector<float> mags;
  const float mx = magnitudes(grad, mags);
  EXPECT_EQ(tensor::max_abs(grad), mx);
  ASSERT_EQ(grad.size(), mags.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    ASSERT_EQ(std::fabs(grad[i]), mags[i]);
  }
}

TEST(CountMaxNMags, MatchesCountMaxN) {
  const auto grad = random_grad(2000, 17);
  std::vector<float> mags;
  const float mx = magnitudes(grad, mags);
  for (double n : {0.5, 5.0, 50.0, 100.0}) {
    EXPECT_EQ(count_max_n(grad, n), count_max_n_mags(mags, mx, n)) << n;
  }
}

TEST(SelectTopKMags, MatchesSelectTopKAndReportsThreshold) {
  const auto grad = random_grad(500, 23);
  std::vector<float> mags;
  const float mx = magnitudes(grad, mags);
  for (std::size_t k : {1u, 10u, 250u, 499u}) {
    const auto plain = select_top_k(grad, 1, k);
    float kth = -1.0f;
    const auto fused = select_top_k_mags(grad, mags, 1, k, &kth);
    ASSERT_EQ(plain.indices, fused.indices) << k;
    ASSERT_EQ(plain.values, fused.values) << k;
    // kth magnitude is the min magnitude of the selected set, and the
    // equivalent-N derived from it matches the rescanning equivalent_n.
    float mn = 3.4e38f;
    for (float v : fused.values) mn = std::min(mn, std::fabs(v));
    EXPECT_EQ(mn, kth) << k;
    EXPECT_DOUBLE_EQ(equivalent_n(grad, k),
                     equivalent_n_from_threshold(mx, kth))
        << k;
  }
}

TEST(SelectTopKMags, DenseAndEmptyEdges) {
  const auto grad = random_grad(8, 29);
  std::vector<float> mags;
  magnitudes(grad, mags);
  const auto dense = select_top_k_mags(grad, mags, 2, 8);
  EXPECT_TRUE(dense.indices.empty());  // dense representation
  EXPECT_EQ(8u, dense.values.size());
  const auto none = select_top_k_mags(grad, mags, 2, 0);
  EXPECT_TRUE(none.indices.empty());
  EXPECT_TRUE(none.values.empty());
}

}  // namespace
}  // namespace dlion::core

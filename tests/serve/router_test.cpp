// ReplicaRouter: deterministic capability-ranked placement and
// least-loaded routing with id tie-breaks.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "serve/router.h"
#include "serve_test_util.h"
#include "sim/engine.h"

namespace dlion::serve {
namespace {

TEST(ReplicaRouter, PlaceRanksMachinesByCapacityDescending) {
  std::vector<sim::ComputeSpec> machines = {
      machine_with_units(4.0), machine_with_units(8.0),
      machine_with_units(2.0)};
  // Ranking: machine 1 (8), machine 0 (4), machine 2 (2); replicas are
  // dealt round-robin down that ranking.
  EXPECT_EQ(ReplicaRouter::place(machines, 3),
            (std::vector<std::size_t>{1, 0, 2}));
  // More replicas than machines wrap around the ranking.
  EXPECT_EQ(ReplicaRouter::place(machines, 5),
            (std::vector<std::size_t>{1, 0, 2, 1, 0}));
  // Fewer replicas land on the strongest machines only.
  EXPECT_EQ(ReplicaRouter::place(machines, 2),
            (std::vector<std::size_t>{1, 0}));
}

TEST(ReplicaRouter, PlaceBreaksCapacityTiesByMachineId) {
  std::vector<sim::ComputeSpec> machines = {
      machine_with_units(4.0), machine_with_units(4.0),
      machine_with_units(4.0)};
  EXPECT_EQ(ReplicaRouter::place(machines, 3),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ReplicaRouter, RouteFavorsHigherCapacityWhenIdle) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  // Same queue depth everywhere: load = (outstanding+1)/capacity, so the
  // fastest machine wins the first request.
  auto r0 = make_test_replica(engine, &tt.test, &metrics, 0, 1.0);
  auto r1 = make_test_replica(engine, &tt.test, &metrics, 1, 4.0);
  auto r2 = make_test_replica(engine, &tt.test, &metrics, 2, 2.0);
  ReplicaRouter router({r0.get(), r1.get(), r2.get()});
  EXPECT_EQ(router.route(0.0), r1.get());
}

TEST(ReplicaRouter, RouteBreaksLoadTiesByLowestId) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  auto r0 = make_test_replica(engine, &tt.test, &metrics, 0, 2.0);
  auto r1 = make_test_replica(engine, &tt.test, &metrics, 1, 2.0);
  ReplicaRouter router({r0.get(), r1.get()});
  EXPECT_EQ(router.route(0.0), r0.get());
}

TEST(ReplicaRouter, RouteSkipsFullQueuesAndRejectsWhenAllFull) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  BatchingConfig batching;
  batching.queue_cap = 2;
  // A long deadline and max_batch above the cap keep requests queued (no
  // launch) while we fill the queues.
  batching.batch_deadline_s = 100.0;
  batching.max_batch = 100;
  auto r0 = make_test_replica(engine, &tt.test, &metrics, 0, 4.0, batching);
  auto r1 = make_test_replica(engine, &tt.test, &metrics, 1, 1.0, batching);
  ReplicaRouter router({r0.get(), r1.get()});

  Request req;
  // Fill the fast replica: the router must fall over to the slow one.
  r0->enqueue(req);
  r0->enqueue(req);
  EXPECT_TRUE(r0->queue_full());
  EXPECT_EQ(router.route(0.0), r1.get());
  // Fill the slow one too: every queue full => reject (nullptr).
  r1->enqueue(req);
  r1->enqueue(req);
  EXPECT_EQ(router.route(0.0), nullptr);
}

}  // namespace
}  // namespace dlion::serve

// Shared fixture pieces for the serving-tier tests: a tiny blobs dataset, a
// matching logreg replica on a bare engine, and heterogeneous machine specs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "nn/model_zoo.h"
#include "serve/replica.h"
#include "sim/compute_model.h"
#include "sim/engine.h"

namespace dlion::serve {

/// A small, fast serving dataset: 16-feature blobs, 4 classes, 64 test
/// samples (logreg reaches ~100% on it, so accuracy assertions are sharp).
inline data::TrainTest serve_test_data(std::uint64_t seed = 11) {
  return data::make_blobs(seed, /*features=*/16, /*classes=*/4,
                          /*num_train=*/256, /*num_test=*/64);
}

/// A machine with a flat capacity schedule.
inline sim::ComputeSpec machine_with_units(double units) {
  sim::ComputeSpec spec;
  spec.units = sim::Schedule(units);
  return spec;
}

/// A logreg replica (fast inference path) pinned to a flat-capacity
/// machine, with tuneable batching knobs. Weights are seeded identically
/// for every replica built from the same seed.
inline std::unique_ptr<Replica> make_test_replica(
    sim::Engine& engine, const data::Dataset* dataset,
    ReplicaMetrics* metrics, std::size_t id, double units,
    const BatchingConfig& batching = {}, std::uint64_t model_seed = 42) {
  common::Rng rng(model_seed);
  nn::BuiltModel built = nn::make_logistic_regression(rng, 16, 4);
  ReplicaConfig config;
  config.id = id;
  config.slot = id;
  config.machine = id;
  config.units = sim::Schedule(units);
  config.flops_per_unit = 1.0e8;
  config.flops_per_sample =
      built.profile.nominal_flops_per_sample / 3.0;
  config.batching = batching;
  return std::make_unique<Replica>(engine, std::move(config),
                                   std::move(built), dataset, metrics,
                                   /*obs=*/nullptr);
}

}  // namespace dlion::serve

// InferenceSession conformance: the compiled fast path must produce logits
// bit-identical to Model::forward (same kernels, same order), and the
// generic fallback must engage for non-MLP architectures and match too.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/model_zoo.h"
#include "serve/inference.h"
#include "tensor/tensor.h"

namespace dlion::serve {
namespace {

tensor::Tensor random_input(common::Rng& rng, std::size_t batch,
                            const nn::ModelProfile& p) {
  tensor::Tensor input(
      tensor::Shape{batch, p.channels, p.height, p.width});
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return input;
}

void expect_matches_forward(nn::BuiltModel& built, bool want_fast) {
  InferenceSession session(built.model, built.profile.channels,
                           built.profile.height, built.profile.width);
  EXPECT_EQ(session.fast_path(), want_fast);
  EXPECT_EQ(session.in_features(), built.profile.channels *
                                       built.profile.height *
                                       built.profile.width);
  common::Rng rng(99);
  for (std::size_t batch : {1u, 3u, 16u}) {
    tensor::Tensor input = random_input(rng, batch, built.profile);
    const tensor::Tensor expected = built.model.forward(input);
    ASSERT_EQ(expected.shape()[0], batch);
    // The session consumes the same row-major floats, flattened.
    const float* got = session.run(input.data(), batch);
    ASSERT_EQ(0, std::memcmp(got, expected.data(),
                             expected.size() * sizeof(float)))
        << "batch " << batch;
  }
}

TEST(InferenceSession, FastPathMatchesModelForwardBitwise) {
  common::Rng rng(42);
  nn::BuiltModel built = nn::make_cipher_lite(rng);
  expect_matches_forward(built, /*want_fast=*/true);
}

TEST(InferenceSession, LogisticRegressionTakesFastPath) {
  common::Rng rng(42);
  nn::BuiltModel built = nn::make_logistic_regression(rng, 16, 4);
  expect_matches_forward(built, /*want_fast=*/true);
}

TEST(InferenceSession, ConvModelFallsBackAndStillMatches) {
  common::Rng rng(42);
  nn::BuiltModel built = nn::make_cipher_cnn(rng);
  expect_matches_forward(built, /*want_fast=*/false);
}

TEST(InferenceSession, RepeatedRunsAreStable) {
  common::Rng rng(42);
  nn::BuiltModel built = nn::make_cipher_lite(rng);
  InferenceSession session(built.model, built.profile.channels,
                           built.profile.height, built.profile.width);
  common::Rng data_rng(7);
  tensor::Tensor input = random_input(data_rng, 8, built.profile);
  const std::size_t classes = built.profile.classes;
  const float* out = session.run(input.data(), 8);
  std::vector<float> first(out, out + 8 * classes);
  for (int i = 0; i < 5; ++i) {
    const float* again = session.run(input.data(), 8);
    ASSERT_EQ(0, std::memcmp(again, first.data(),
                             first.size() * sizeof(float)))
        << "rerun " << i;
  }
}

TEST(InferenceSession, SeesInPlaceWeightRefresh) {
  // The serving refresh path overwrites variable values via span copy; the
  // compiled plan must observe the new weights on the next run.
  common::Rng rng(42);
  nn::BuiltModel built = nn::make_logistic_regression(rng, 16, 4);
  InferenceSession session(built.model, built.profile.channels,
                           built.profile.height, built.profile.width);
  common::Rng data_rng(7);
  tensor::Tensor input = random_input(data_rng, 4, built.profile);

  const float* first_run = session.run(input.data(), 4);
  std::vector<float> before(first_run, first_run + 4 * 4);
  for (nn::Variable* v : built.model.variables()) {
    auto span = v->value().span();
    for (float& x : span) x += 0.25f;
  }
  const float* after = session.run(input.data(), 4);
  EXPECT_NE(0, std::memcmp(after, before.data(),
                           before.size() * sizeof(float)));
  // And it still agrees with the reference forward on the new weights.
  const tensor::Tensor expected = built.model.forward(input);
  EXPECT_EQ(0, std::memcmp(after, expected.data(),
                           expected.size() * sizeof(float)));
}

}  // namespace
}  // namespace dlion::serve

// ServingTier end-to-end on a bare engine + fabric: accounting
// invariants, rejection under overload, determinism across runs, and the
// publish/adopt refresh cycle.

#include <cstdint>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "comm/fabric.h"
#include "serve/serving.h"
#include "serve_test_util.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace dlion::serve {
namespace {

std::vector<sim::ComputeSpec> three_machines() {
  return {machine_with_units(4.0), machine_with_units(8.0),
          machine_with_units(2.0)};
}

struct TierRun {
  sim::Engine engine;
  // Slot 0 stands in for the training worker (the publish donor); the
  // replicas occupy slots 1..3, as in the cluster wiring.
  sim::Network net{engine, 4};
  comm::Fabric fabric{net, 1.0};
  data::TrainTest data = serve_test_data();
  std::unique_ptr<ServingTier> tier;

  explicit TierRun(const ServingSpec& spec, double duration = 5.0,
                   PublishSourceFn publish = nullptr) {
    tier = std::make_unique<ServingTier>(engine, fabric, spec, "logreg",
                                         three_machines(), &data.test,
                                         /*seed=*/42, /*first_slot=*/1,
                                         std::move(publish),
                                         /*obs=*/nullptr);
    tier->start(duration);
    engine.run_until(duration);
    tier->finalize(duration);
  }
};

ServingSpec small_spec() {
  ServingSpec spec;
  spec.replicas = 3;
  spec.arrival.rate_rps = 200.0;
  spec.publish_period_s = 0.0;  // no refresh unless the test asks
  return spec;
}

TEST(ServingTier, AccountingInvariantsHold) {
  TierRun run(small_spec());
  const ServingStats& s = run.tier->stats();
  EXPECT_GT(s.requests_arrived, 0u);
  EXPECT_EQ(s.requests_arrived, s.requests_admitted + s.requests_rejected);
  EXPECT_EQ(s.requests_served, s.requests_admitted - s.deadline_drops);
  EXPECT_GT(s.requests_served, 0u);
  EXPECT_GT(s.batches, 0u);
  EXPECT_LE(s.latency_p50_s, s.latency_p99_s);
  EXPECT_LE(s.latency_p99_s, s.latency_max_s);
  EXPECT_GT(s.requests_per_s, 0.0);
  // batch_size_counts is the full batch-size distribution: it sums to the
  // batch count and weights to the served request count minus nothing.
  std::uint64_t nbatches = 0, weighted = 0;
  for (std::size_t b = 0; b < s.batch_size_counts.size(); ++b) {
    nbatches += s.batch_size_counts[b];
    weighted += b * s.batch_size_counts[b];
  }
  EXPECT_EQ(nbatches, s.batches);
  // Every batched request was either served or is part of the in-flight
  // remainder folded into unserved_at_shutdown.
  EXPECT_GE(weighted, s.requests_served);
  EXPECT_LE(weighted - s.requests_served, s.unserved_at_shutdown);
  // Placement covers 3 replicas over the 3 machines.
  EXPECT_EQ(s.per_replica_served.size(), 3u);
  EXPECT_EQ(s.replica_machines, (std::vector<std::size_t>{1, 0, 2}));
  // Warm steady state: each replica allocates a handful of staging buffers
  // while its batch-size high watermark grows, then serves from the pool.
  EXPECT_GE(s.pool_misses, 3u);
  EXPECT_GT(s.pool_hits, 10 * s.pool_misses);
  // Serving accuracy on separable blobs beats the 1-in-4 random baseline
  // even with untrained (seed-initialized) weights replaced by... the
  // initial weights; just require a sane fraction.
  EXPECT_GE(s.served_accuracy, 0.0);
  EXPECT_LE(s.served_accuracy, 1.0);
}

TEST(ServingTier, OverloadRejectsAtAdmission) {
  ServingSpec spec = small_spec();
  spec.arrival.rate_rps = 4000.0;
  spec.batching.queue_cap = 16;
  TierRun run(spec, 3.0);
  const ServingStats& s = run.tier->stats();
  EXPECT_GT(s.requests_rejected, 0u);
  EXPECT_EQ(s.requests_arrived, s.requests_admitted + s.requests_rejected);
  EXPECT_EQ(s.requests_served, s.requests_admitted - s.deadline_drops);
}

TEST(ServingTier, DeterministicAcrossIdenticalRuns) {
  ServingSpec spec = small_spec();
  spec.arrival.kind = ArrivalKind::kBursty;
  TierRun a(spec);
  TierRun b(spec);
  const ServingStats& sa = a.tier->stats();
  const ServingStats& sb = b.tier->stats();
  EXPECT_EQ(sa.requests_arrived, sb.requests_arrived);
  EXPECT_EQ(sa.requests_served, sb.requests_served);
  EXPECT_EQ(sa.deadline_drops, sb.deadline_drops);
  EXPECT_EQ(sa.batches, sb.batches);
  EXPECT_EQ(sa.batch_size_counts, sb.batch_size_counts);
  EXPECT_EQ(sa.per_replica_served, sb.per_replica_served);
  // Bitwise, not approximate: the whole pipeline is deterministic.
  EXPECT_EQ(sa.latency_p50_s, sb.latency_p50_s);
  EXPECT_EQ(sa.latency_p99_s, sb.latency_p99_s);
  EXPECT_EQ(sa.latency_mean_s, sb.latency_mean_s);
  EXPECT_EQ(sa.served_accuracy, sb.served_accuracy);
}

TEST(ServingTier, PublishCycleRefreshesEveryReplica) {
  ServingSpec spec = small_spec();
  spec.publish_period_s = 1.0;
  spec.publish_chunk_vars = 1;  // force multi-chunk streaming
  // Donor: a differently-seeded logreg standing in for a training worker.
  common::Rng donor_rng(7);
  nn::BuiltModel donor = nn::make_logistic_regression(donor_rng, 16, 4);
  std::uint64_t iteration = 0;
  auto publish = [&]() -> std::optional<PublishSource> {
    iteration += 10;
    return PublishSource{/*slot=*/0, iteration, donor.model.weights()};
  };
  TierRun run(spec, 5.0, publish);
  const ServingStats& s = run.tier->stats();
  // Publishes at t = 1, 2, 3, 4 (k * period < duration).
  EXPECT_EQ(s.refreshes_published, 4u);
  EXPECT_EQ(s.refreshes_adopted, 4u * 3u);
  EXPECT_EQ(s.stale_publishes_ignored, 0u);
  for (std::size_t r = 0; r < run.tier->num_replicas(); ++r) {
    EXPECT_EQ(run.tier->replica(r).weight_version(), 4u);
    EXPECT_EQ(run.tier->replica(r).version_iteration(), 40u);
  }
  // Staleness resets on every adopt, so the max observed staleness stays
  // in the order of the publish period, not the run length.
  EXPECT_LE(s.staleness_max_s, 2.0);
}

TEST(ServingTier, EmptyPublishSourceSkipsTheRound) {
  ServingSpec spec = small_spec();
  spec.publish_period_s = 1.0;
  auto publish = []() -> std::optional<PublishSource> {
    return std::nullopt;  // e.g. no live worker
  };
  TierRun run(spec, 3.0, publish);
  const ServingStats& s = run.tier->stats();
  EXPECT_EQ(s.refreshes_published, 0u);
  EXPECT_EQ(s.refreshes_adopted, 0u);
}

}  // namespace
}  // namespace dlion::serve

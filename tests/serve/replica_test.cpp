// Replica batching policy on a bare engine: full-batch launch, deadline
// launch, admission-SLO sheds, service-time shape, and refresh adoption.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "comm/message.h"
#include "serve_test_util.h"
#include "sim/engine.h"

namespace dlion::serve {
namespace {

Request request_at(common::SimTime t, std::uint32_t sample = 0) {
  Request req;
  req.arrival = t;
  req.sample = sample;
  return req;
}

TEST(Replica, FullBatchLaunchesImmediately) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  BatchingConfig batching;
  batching.max_batch = 4;
  batching.batch_deadline_s = 10.0;  // deadline can't be the trigger
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0, batching);

  for (std::uint32_t i = 0; i < 4; ++i) rep->enqueue(request_at(0.0, i));
  // The 4th enqueue fills the batch: it launches at t=0 without any
  // engine time passing.
  EXPECT_EQ(rep->batches(), 1u);
  EXPECT_EQ(metrics.batch_size_counts[4], 1u);
  engine.run_until(10.0);
  EXPECT_EQ(rep->served(), 4u);
  EXPECT_EQ(rep->deadline_drops(), 0u);
  EXPECT_EQ(rep->outstanding(), 0u);
}

TEST(Replica, LoneRequestLaunchesAtTheBatchDeadline) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  BatchingConfig batching;
  batching.max_batch = 32;
  batching.batch_deadline_s = 0.05;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0, batching);

  rep->enqueue(request_at(0.0));
  engine.run_until(0.049);
  EXPECT_EQ(rep->batches(), 0u);  // still waiting for the batch to fill
  engine.run_until(1.0);
  EXPECT_EQ(rep->batches(), 1u);
  EXPECT_EQ(rep->served(), 1u);
  EXPECT_EQ(metrics.batch_size_counts[1], 1u);
  // Latency = deadline wait + service time, so it is at least the deadline.
  EXPECT_GE(metrics.latency.observed_min(), batching.batch_deadline_s);
}

TEST(Replica, StaleRequestsShedAtBatchFormation) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  BatchingConfig batching;
  batching.max_batch = 8;
  batching.batch_deadline_s = 0.01;
  batching.queue_timeout_s = 0.5;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0, batching);

  // A request that (by construction) already waited past the SLO when the
  // batch forms, alongside a fresh one.
  engine.at(1.0, [&] {
    rep->enqueue(request_at(0.2));  // 0.8s old: past queue_timeout_s
    rep->enqueue(request_at(1.0));
  });
  engine.run_until(5.0);
  EXPECT_EQ(rep->deadline_drops(), 1u);
  EXPECT_EQ(rep->served(), 1u);
}

TEST(Replica, ServiceTimeGrowsSublinearlyWithBatchSize) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0);
  const double t1 = rep->inference_seconds(1, 0.0);
  const double t8 = rep->inference_seconds(8, 0.0);
  const double t32 = rep->inference_seconds(32, 0.0);
  EXPECT_GT(t8, t1);
  EXPECT_GT(t32, t8);
  // Packed-GEMM efficiency: 32 samples cost far less than 32x one sample.
  EXPECT_LT(t32, 32.0 * t1);
  // Per-sample cost shrinks with batch size (the pull toward batching).
  EXPECT_LT(t32 / 32.0, t8 / 8.0);
  EXPECT_LT(t8 / 8.0, t1 / 1.0);
}

TEST(Replica, BackToBackBatchesDrainTheQueue) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  BatchingConfig batching;
  batching.max_batch = 4;
  batching.batch_deadline_s = 10.0;
  batching.queue_timeout_s = 100.0;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0, batching);

  // 8 requests at once: one full batch launches now, the second launches
  // from on_batch_done without waiting for the deadline.
  for (std::uint32_t i = 0; i < 8; ++i) rep->enqueue(request_at(0.0, i));
  EXPECT_EQ(rep->batches(), 1u);
  engine.run_until(50.0);
  EXPECT_EQ(rep->batches(), 2u);
  EXPECT_EQ(rep->served(), 8u);
  EXPECT_EQ(metrics.batch_size_counts[4], 2u);
}

TEST(Replica, WarmReplicaServesFromThePool) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  BatchingConfig batching;
  batching.max_batch = 4;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0, batching);

  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      rep->enqueue(request_at(engine.now(), i));
    }
    engine.run_until(engine.now() + 5.0);
  }
  EXPECT_EQ(rep->served(), 20u);
  // First batch allocates the staging tensor; every later one reuses it.
  EXPECT_EQ(rep->pool().misses(), 1u);
  EXPECT_EQ(rep->pool().hits(), 4u);
}

comm::Payload<float> payload_from(const tensor::Tensor& t) {
  return comm::Payload<float>(
      std::vector<float>(t.data(), t.data() + t.size()));
}

comm::ModelPublish full_publish(const nn::Model& model,
                                std::uint64_t version,
                                std::uint64_t iteration) {
  comm::ModelPublish msg;
  msg.version = version;
  msg.iteration = iteration;
  msg.first_var = 0;
  msg.total_vars = static_cast<std::uint32_t>(model.variables().size());
  for (const auto& t : model.weights().values) {
    msg.weights.parts.push_back(payload_from(t));
  }
  return msg;
}

TEST(Replica, AdoptsNewerVersionAndIgnoresStale) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0);
  // A donor model with different weights (different seed).
  common::Rng donor_rng(7);
  nn::BuiltModel donor = nn::make_logistic_regression(donor_rng, 16, 4);

  rep->on_publish(full_publish(donor.model, 3, 100), 1.0);
  EXPECT_EQ(rep->weight_version(), 3u);
  EXPECT_EQ(rep->version_iteration(), 100u);
  EXPECT_EQ(rep->refreshes_adopted(), 1u);
  // The replica now carries the donor's weights exactly.
  const auto got = rep->model().weights();
  const auto want = donor.model.weights();
  ASSERT_EQ(got.values.size(), want.values.size());
  for (std::size_t i = 0; i < got.values.size(); ++i) {
    EXPECT_EQ(got.values[i].span().size(), want.values[i].span().size());
    for (std::size_t j = 0; j < got.values[i].span().size(); ++j) {
      EXPECT_EQ(got.values[i][j], want.values[i][j]);
    }
  }

  // An older version arriving later (interleaved links) is ignored.
  rep->on_publish(full_publish(donor.model, 2, 50), 2.0);
  EXPECT_EQ(rep->weight_version(), 3u);
  EXPECT_EQ(rep->stale_publishes_ignored(), 1u);
  EXPECT_EQ(rep->refreshes_adopted(), 1u);
}

TEST(Replica, ChunkedPublishAdoptsOnLastChunk) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0);
  common::Rng donor_rng(7);
  nn::BuiltModel donor = nn::make_logistic_regression(donor_rng, 16, 4);
  const auto snapshot = donor.model.weights();
  const std::uint32_t total =
      static_cast<std::uint32_t>(snapshot.values.size());
  ASSERT_GE(total, 2u);

  // Stream one variable per chunk: only the final chunk flips the version.
  for (std::uint32_t first = 0; first < total; ++first) {
    comm::ModelPublish msg;
    msg.version = 1;
    msg.iteration = 10;
    msg.first_var = first;
    msg.total_vars = total;
    msg.weights.parts.push_back(payload_from(snapshot.values[first]));
    rep->on_publish(msg, 1.0);
    if (first + 1 < total) {
      EXPECT_EQ(rep->weight_version(), 0u) << "chunk " << first;
    }
  }
  EXPECT_EQ(rep->weight_version(), 1u);
  EXPECT_EQ(rep->refreshes_adopted(), 1u);
}

TEST(Replica, GeometryMismatchedPublishNeverApplies) {
  sim::Engine engine;
  data::TrainTest tt = serve_test_data();
  ReplicaMetrics metrics;
  auto rep = make_test_replica(engine, &tt.test, &metrics, 0, 4.0);
  const auto before = rep->model().weights();

  // Wrong total_vars (a publish from a different architecture).
  common::Rng donor_rng(7);
  nn::BuiltModel donor = nn::make_logistic_regression(donor_rng, 16, 4);
  comm::ModelPublish msg = full_publish(donor.model, 5, 1);
  msg.total_vars += 1;
  rep->on_publish(msg, 1.0);
  EXPECT_EQ(rep->weight_version(), 0u);
  EXPECT_EQ(rep->stale_publishes_ignored(), 1u);
  const auto after = rep->model().weights();
  for (std::size_t i = 0; i < before.values.size(); ++i) {
    for (std::size_t j = 0; j < before.values[i].span().size(); ++j) {
      ASSERT_EQ(after.values[i][j], before.values[i][j]);
    }
  }
}

}  // namespace
}  // namespace dlion::serve
